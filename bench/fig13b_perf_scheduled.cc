// Fig. 13(b): performance degradation with the scheme: buffer hits absorb
// stalls, so every strategy degrades less (some even speed up).
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(b) — performance degradation, with our scheme",
               "Fig. 13(b): paper: simple drops 10.4% -> 6.9%, history "
               "1.5% -> 1.0%");
  const GridResultSet results = run_policy_grid(all_app_names(), true);
  print_policy_grid(results, /*scheme=*/true, degradation);
  std::printf(
      "\n(execution-time increase vs the Default Scheme; negative = faster)\n");
  emit_env_sinks(results);
  return 0;
}
