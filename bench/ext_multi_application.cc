// Extension (the paper's Sec. VII future work): multi-application scenarios.
//
// Two applications share the storage system.  Each one's scheduling table is
// computed in isolation, so their node-clustering decisions interfere at the
// disks; the table quantifies how much of the scheme's single-application
// benefit survives co-scheduling.
#include "bench/bench_common.h"
#include "driver/multi_experiment.h"

using namespace dasched;
using namespace dasched::bench;

namespace {

MultiExperimentResult run_multi(const std::vector<std::string>& apps,
                                bool scheme) {
  MultiExperimentConfig cfg;
  cfg.apps = apps;
  cfg.scale = bench_scale();
  cfg.scale.num_processes = std::max(4, cfg.scale.num_processes / 2);
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = scheme;
  std::fprintf(stderr, "[bench] multi-app run (scheme=%d)...\n", scheme);
  return run_multi_experiment(cfg);
}

}  // namespace

int main() {
  print_header("Extension — multi-application co-scheduling",
               "Sec. VII future work: idle periods in multi-app scenarios");

  const std::vector<std::string> pair{"sar", "madbench2"};

  TextTable table({"configuration", "makespan (min)", "energy (kJ)",
                   "scheme benefit"});
  const MultiExperimentResult solo_a = run_multi({pair[0]}, false);
  const MultiExperimentResult solo_b = run_multi({pair[1]}, false);
  const MultiExperimentResult solo_a_s = run_multi({pair[0]}, true);
  const MultiExperimentResult solo_b_s = run_multi({pair[1]}, true);
  const double solo_energy = solo_a.energy_j.value() + solo_b.energy_j.value();
  const double solo_energy_s = solo_a_s.energy_j.value() + solo_b_s.energy_j.value();
  table.add_row({"back-to-back, history",
                 TextTable::fmt(to_minutes(solo_a.makespan + solo_b.makespan), 2),
                 TextTable::fmt(solo_energy / 1'000.0, 1),
                 TextTable::pct((solo_energy - solo_energy_s) / solo_energy)});

  const MultiExperimentResult both = run_multi(pair, false);
  const MultiExperimentResult both_s = run_multi(pair, true);
  table.add_row({"co-scheduled, history",
                 TextTable::fmt(to_minutes(both.makespan), 2),
                 TextTable::fmt(both.energy_j.value() / 1'000.0, 1),
                 TextTable::pct((both.energy_j.value() - both_s.energy_j.value()) / both.energy_j.value())});
  table.print();
  std::printf(
      "\nPer-application schedules are computed in isolation; the drop in\n"
      "the co-scheduled scheme benefit is the open problem the paper's\n"
      "future-work section names.\n");
  return 0;
}
