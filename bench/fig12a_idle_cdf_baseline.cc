// Fig. 12(a): CDF of disk idle-period lengths without the scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(a) — idle period CDF, without our scheme",
               "Fig. 12(a): y% of idle periods have length x msec or less");
  ExperimentGrid grid = base_grid(all_app_names());
  const GridResultSet results = run_bench_grid(grid);
  print_idle_cdf(results, /*scheme=*/false);
  emit_env_sinks(results);
  return 0;
}
