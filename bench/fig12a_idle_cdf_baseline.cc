// Fig. 12(a): CDF of disk idle-period lengths without the scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(a) \u2014 idle period CDF, without our scheme",
               "Fig. 12(a): y% of idle periods have length x msec or less");
  Runner runner;
  print_idle_cdf(runner, /*scheme=*/false);
  return 0;
}
