// A/B throughput harness for the sharded event engine (BENCH_sim_shard.json).
//
// Runs one large-topology experiment — 64 I/O nodes x 512 client processes,
// far beyond the paper's 8 x 32 evaluation cap — once per shard setting
// (0 = classic serial engine, then 1, 2, 4 worker threads) with several
// repetitions each, and reports the median wall-clock and events/second per
// setting as JSON on stdout.  The simulated results are bit-identical across
// shards >= 1 (test-enforced), so the only thing varying here is wall-clock.
//
// Knobs (strictly parsed): DASCHED_BENCH_SCALE (default 0.05),
// DASCHED_BENCH_PROCS (default 512), DASCHED_BENCH_NODES (default 64),
// DASCHED_BENCH_REPS (default 5).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "driver/experiment.h"
#include "engine/env_knobs.h"

using namespace dasched;

namespace {

struct Sample {
  double seconds = 0;
  std::int64_t events = 0;
};

Sample run_once(int shards, int nodes, int procs, double scale) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  cfg.scale.num_processes = procs;
  cfg.scale.factor = scale;
  cfg.storage.num_io_nodes = nodes;
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = true;
  cfg.shards = shards;
  const auto t0 = std::chrono::steady_clock::now();
  const ExperimentResult r = run_experiment(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  Sample s;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  s.events = r.events;
  return s;
}

}  // namespace

int main() {
  const int nodes = env_int("DASCHED_BENCH_NODES", 64);
  const int procs = env_int("DASCHED_BENCH_PROCS", 512);
  const double scale = env_double("DASCHED_BENCH_SCALE", 0.05);
  const int reps = env_int("DASCHED_BENCH_REPS", 5);

  char workload[192];
  std::snprintf(workload, sizeof(workload),
                "\"app\": \"sar\", \"policy\": \"history\", \"scheme\": true, "
                "\"nodes\": %d, \"procs\": %d, \"scale\": %g",
                nodes, procs, scale);
  bench::ThroughputJsonWriter json("sim_shard", workload, reps, "settings");

  double serial_median = 0;
  const std::vector<int> settings = {0, 1, 2, 4};
  for (std::size_t i = 0; i < settings.size(); ++i) {
    const int shards = settings[i];
    std::vector<double> seconds;
    std::int64_t events = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const Sample s = run_once(shards, nodes, procs, scale);
      seconds.push_back(s.seconds);
      events = s.events;
    }
    const double med = bench::median_seconds(seconds);
    if (shards == 1) serial_median = med;
    const double speedup = serial_median > 0 ? serial_median / med : 0.0;
    std::fprintf(stderr, "[shards=%d] median %.3fs, %lld events (%.0f ev/s)\n",
                 shards, med, static_cast<long long>(events),
                 static_cast<double>(events) / med);
    char fields[192];
    std::snprintf(fields, sizeof(fields),
                  "\"shards\": %d, \"median_seconds\": %.4f, "
                  "\"events\": %lld, \"events_per_sec\": %.0f, "
                  "\"speedup_vs_shards1\": %.3f",
                  shards, med, static_cast<long long>(events),
                  static_cast<double>(events) / med, speedup);
    json.row(fields, i + 1 == settings.size());
  }
  json.finish();
  return 0;
}
