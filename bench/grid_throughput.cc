// A/B throughput harness for workspace reuse on the grid (BENCH_grid.json).
//
// Runs one small-cell grid — the shape where per-cell setup cost dominates
// and cross-run reuse pays — twice per repetition: once with the legacy
// fresh-per-cell path (GridRunOptions::workspace = 0, every cell builds its
// own simulator/storage/workload/compile from scratch) and once with the
// per-worker ExperimentWorkspace (workspace = 1, warm pools + compile cache
// across cells).  Reports the median wall-clock, cells/second, and the
// reuse:fresh speedup per mode as JSON on stdout.  The per-cell results are
// bit-identical across modes (tests/driver/workspace_shape_test.cc), so the
// only thing varying here is wall-clock.  Runs on one worker thread so the
// medians measure the per-cell cost, not the host's scheduler.
//
// Knobs (strictly parsed): DASCHED_BENCH_REPS (default 5),
// DASCHED_BENCH_SCALE (default 0.1), DASCHED_BENCH_PROCS (default 4).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/experiment_grid.h"
#include "engine/grid_runner.h"

using namespace dasched;

namespace {

/// Small-cell grid: 2 apps x 2 policies x 2 schemes = 8 cells.  The policy
/// axis is where the compile cache earns its keep — cells differing only in
/// policy share a compiled schedule under reuse.
ExperimentGrid bench_grid(double scale, int procs) {
  ExperimentGrid grid;
  grid.base.scale.factor = scale;
  grid.base.scale.num_processes = procs;
  grid.apps = {"sar", "madbench2"};
  grid.policies = {PolicyKind::kHistory, PolicyKind::kSimple};
  grid.schemes = {false, true};
  return grid;
}

double run_once(const ExperimentGrid& grid, int workspace) {
  GridRunOptions opts;
  opts.threads = 1;
  opts.workspace = workspace;
  const auto t0 = std::chrono::steady_clock::now();
  const GridResultSet results = run_grid(grid, opts);
  const auto t1 = std::chrono::steady_clock::now();
  if (results.size() != grid.size()) {
    std::fprintf(stderr, "grid returned %zu of %zu cells\n", results.size(),
                 grid.size());
    std::exit(2);
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const int reps = env_int("DASCHED_BENCH_REPS", 5);
  const double scale = env_double("DASCHED_BENCH_SCALE", 0.1);
  const int procs = env_int("DASCHED_BENCH_PROCS", 4);
  const ExperimentGrid grid = bench_grid(scale, procs);
  const auto cells = static_cast<long long>(grid.size());

  char workload[160];
  std::snprintf(workload, sizeof(workload),
                "\"apps\": 2, \"policies\": 2, \"schemes\": 2, "
                "\"cells\": %lld, \"scale\": %g, \"procs\": %d, \"threads\": 1",
                cells, scale, procs);
  bench::ThroughputJsonWriter json("grid", workload, reps, "modes");

  struct Mode {
    const char* name;
    int workspace;
  };
  const std::vector<Mode> modes = {{"fresh", 0}, {"reuse", 1}};
  double fresh_median = 0;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    std::vector<double> seconds;
    for (int rep = 0; rep < reps; ++rep) {
      seconds.push_back(run_once(grid, modes[i].workspace));
    }
    const double med = bench::median_seconds(seconds);
    if (modes[i].workspace == 0) fresh_median = med;
    const double speedup = fresh_median > 0 ? fresh_median / med : 0.0;
    std::fprintf(stderr, "[%s] median %.3fs, %.1f cells/s (%.2fx)\n",
                 modes[i].name, med, static_cast<double>(cells) / med,
                 speedup);
    char fields[160];
    std::snprintf(fields, sizeof(fields),
                  "\"mode\": \"%s\", \"median_seconds\": %.4f, "
                  "\"cells\": %lld, \"cells_per_sec\": %.2f, "
                  "\"speedup_vs_fresh\": %.3f",
                  modes[i].name, med, cells, static_cast<double>(cells) / med,
                  speedup);
    json.row(fields, i + 1 == modes.size());
  }
  json.finish();
  return 0;
}
