// Fig. 14(b): performance improvement of the scheme (over history-based
// without scheduling) as theta varies — the paper finds larger theta trades
// performance for energy.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 14(b) — performance improvement vs theta",
               "Fig. 14(b): performance benefit of the scheme per theta");
  const std::vector<double> thetas{2, 4, 6, 8};

  ExperimentGrid grid = base_grid(sweep_app_names());
  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {false, true};
  grid.sweep = sweep_axis_by_name("theta", thetas);
  const GridResultSet results = run_bench_grid(grid);

  TextTable table({"theta", "exec no scheme (min)", "exec + scheme (min)",
                   "improvement"});
  for (const double t : thetas) {
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without +=
          to_sec(results.find(app, PolicyKind::kHistory, false, t).exec_time);
      with +=
          to_sec(results.find(app, PolicyKind::kHistory, true, t).exec_time);
    }
    table.add_row({std::to_string(static_cast<int>(t)),
                   TextTable::fmt(without / 60.0, 2),
                   TextTable::fmt(with / 60.0, 2),
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  emit_env_sinks(results);
  return 0;
}
