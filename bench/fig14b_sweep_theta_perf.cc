// Fig. 14(b): performance improvement of the scheme (over history-based
// without scheduling) as theta varies — the paper finds larger theta trades
// performance for energy.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 14(b) — performance improvement vs theta",
               "Fig. 14(b): performance benefit of the scheme per theta");
  Runner runner;
  TextTable table({"theta", "exec no scheme (min)", "exec + scheme (min)",
                   "improvement"});
  for (int theta : {2, 4, 6, 8}) {
    const std::string tag = "theta" + std::to_string(theta);
    const auto set_theta = [theta](ExperimentConfig& cfg) {
      cfg.compile.sched.theta = theta;
    };
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without += to_sec(
          runner.run(app, PolicyKind::kHistory, false, tag, set_theta).exec_time);
      with += to_sec(
          runner.run(app, PolicyKind::kHistory, true, tag, set_theta).exec_time);
    }
    table.add_row({std::to_string(theta), TextTable::fmt(without / 60.0, 2),
                   TextTable::fmt(with / 60.0, 2),
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  return 0;
}
