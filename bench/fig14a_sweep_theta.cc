// Fig. 14(a): energy reduction of the scheme (over history-based) as the
// per-node access cap theta varies — larger theta permits denser clustering
// and larger energy gains.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 14(a) — energy reduction vs theta",
               "Fig. 14(a): larger theta increases energy gains");
  Runner runner;
  TextTable table({"theta", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (int theta : {2, 4, 6, 8}) {
    const std::string tag = "theta" + std::to_string(theta);
    const auto set_theta = [theta](ExperimentConfig& cfg) {
      cfg.compile.sched.theta = theta;
    };
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without +=
          runner.run(app, PolicyKind::kHistory, false, tag, set_theta).energy_j;
      with +=
          runner.run(app, PolicyKind::kHistory, true, tag, set_theta).energy_j;
    }
    table.add_row({std::to_string(theta),
                   TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  return 0;
}
