// Fig. 14(a): energy reduction of the scheme (over history-based) as the
// per-node access cap theta varies — larger theta permits denser clustering
// and larger energy gains.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 14(a) — energy reduction vs theta",
               "Fig. 14(a): larger theta increases energy gains");
  const std::vector<double> thetas{2, 4, 6, 8};

  ExperimentGrid grid = base_grid(sweep_app_names());
  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {false, true};
  grid.sweep = sweep_axis_by_name("theta", thetas);
  const GridResultSet results = run_bench_grid(grid);

  TextTable table({"theta", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (const double t : thetas) {
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without += results.find(app, PolicyKind::kHistory, false, t).energy_j.value();
      with += results.find(app, PolicyKind::kHistory, true, t).energy_j.value();
    }
    table.add_row({std::to_string(static_cast<int>(t)),
                   TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  emit_env_sinks(results);
  return 0;
}
