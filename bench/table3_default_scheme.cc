// Table III: application execution times and disk energy under the Default
// Scheme (no power-saving mechanism).
//
// Paper values are reproduced as reference columns.  Absolute magnitudes
// differ by construction — our workloads run at a ~1/3-1/8 temporal scale
// and the paper's energy unit does not reconcile with its own Table II
// powers (see EXPERIMENTS.md) — but the relative ordering across
// applications is the comparable quantity.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Table III — Default Scheme characteristics",
               "Table III (exec time, disk energy per application)");

  const GridResultSet results = run_bench_grid(base_grid(all_app_names()));
  TextTable table({"application", "exec (min)", "energy (kJ)", "events",
                   "paper exec (min)", "paper energy (J)"});
  double our_total_exec = 0.0;
  double paper_total_exec = 0.0;
  for (const std::string& name : all_app_names()) {
    const App& app = app_by_name(name);
    const ExperimentResult& r = results.find(name, PolicyKind::kNone, false);
    our_total_exec += r.exec_minutes();
    paper_total_exec += app.paper_exec_minutes;
    table.add_row({name, TextTable::fmt(r.exec_minutes(), 2),
                   TextTable::fmt(r.energy_j.value() / 1'000.0, 1),
                   std::to_string(r.events),
                   TextTable::fmt(app.paper_exec_minutes, 1),
                   TextTable::fmt(app.paper_energy_joules, 1)});
  }
  table.print();
  std::printf(
      "\ntemporal scale vs paper: %.2fx (ordering across applications is the "
      "reproduced quantity)\n",
      our_total_exec / paper_total_exec);
  emit_env_sinks(results);
  return 0;
}
