// Fig. 13(a): performance degradation of the four strategies without the\n// scheme, relative to the Default Scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(a) \u2014 performance degradation, without our scheme", "Fig. 13(a): paper averages: simple 10.4%, others low single digits");
  Runner runner;
  print_policy_grid(runner, /*scheme=*/false, degradation);
  std::printf("\n(execution-time increase vs the Default Scheme)\n");
  return 0;
}
