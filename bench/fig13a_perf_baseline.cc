// Fig. 13(a): performance degradation of the four strategies without the
// scheme, relative to the Default Scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(a) — performance degradation, without our scheme",
               "Fig. 13(a): paper averages: simple 10.4%, others low single "
               "digits");
  const GridResultSet results = run_policy_grid(all_app_names(), false);
  print_policy_grid(results, /*scheme=*/false, degradation);
  std::printf("\n(execution-time increase vs the Default Scheme)\n");
  emit_env_sinks(results);
  return 0;
}
