// Fig. 12(c): normalized energy consumption of the four power-saving\n// strategies without the compiler-directed scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(c) \u2014 normalized energy, without our scheme", "Fig. 12(c): paper averages: simple 95.3%, prediction 93.7%, history 84.4%, staggered 90.2%");
  Runner runner;
  print_policy_grid(runner, /*scheme=*/false, normalized_energy);
  std::printf("\n(lower is better; 100%% = Default Scheme)\n");
  return 0;
}
