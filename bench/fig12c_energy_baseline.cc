// Fig. 12(c): normalized energy consumption of the four power-saving
// strategies without the compiler-directed scheme.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(c) — normalized energy, without our scheme",
               "Fig. 12(c): paper averages: simple 95.3%, prediction 93.7%, "
               "history 84.4%, staggered 90.2%");
  const GridResultSet results = run_policy_grid(all_app_names(), false);
  print_policy_grid(results, /*scheme=*/false, normalized_energy);
  std::printf("\n(lower is better; 100%% = Default Scheme)\n");
  emit_env_sinks(results);
  return 0;
}
