// Ablation: the two runtime-side knobs DESIGN.md calls out —
//   * the slack bound (how far the compiler may hoist an access), and
//   * the client-side prefetch buffer capacity.
// Both gate the scheme's ability to create long per-node idle windows.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Ablation — slack bound and prefetch buffer capacity",
               "DESIGN.md design-choice ablations (not a paper figure)");
  Runner runner;
  const std::string app = "sar";
  const double base = runner.baseline(app).energy_j;

  {
    TextTable table({"max slack (slots)", "history + scheme energy",
                     "vs default", "prefetches"});
    for (Slot bound : {Slot{50}, Slot{200}, Slot{600}, Slot{2'000}}) {
      const auto set_bound = [bound](ExperimentConfig& cfg) {
        cfg.max_slack = bound;
      };
      const ExperimentResult r =
          runner.run(app, PolicyKind::kHistory, true,
                     "slack" + std::to_string(bound), set_bound);
      table.add_row({std::to_string(bound),
                     TextTable::fmt(r.energy_j / 1'000.0, 1) + " kJ",
                     TextTable::pct(r.energy_j / base),
                     std::to_string(r.runtime.prefetches)});
    }
    table.print();
  }

  std::printf("\n");

  {
    TextTable table({"buffer capacity", "history + scheme energy",
                     "vs default", "buffer hits"});
    for (Bytes capacity : {mib(16), mib(64), mib(128), mib(512)}) {
      const auto set_buffer = [capacity](ExperimentConfig& cfg) {
        cfg.runtime.buffer_capacity = capacity;
      };
      const ExperimentResult r =
          runner.run(app, PolicyKind::kHistory, true,
                     "buf" + std::to_string(capacity >> 20), set_buffer);
      table.add_row({std::to_string(capacity >> 20) + " MB",
                     TextTable::fmt(r.energy_j / 1'000.0, 1) + " kJ",
                     TextTable::pct(r.energy_j / base),
                     std::to_string(r.runtime.buffer_hits)});
    }
    table.print();
  }
  std::printf("\n(application: sar)\n");
  return 0;
}
