// Ablation: the two runtime-side knobs DESIGN.md calls out —
//   * the slack bound (how far the compiler may hoist an access), and
//   * the client-side prefetch buffer capacity.
// Both gate the scheme's ability to create long per-node idle windows.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Ablation — slack bound and prefetch buffer capacity",
               "DESIGN.md design-choice ablations (not a paper figure)");
  const std::string app = "sar";
  const std::vector<double> slacks{50, 200, 600, 2'000};
  const std::vector<double> buffers{16, 64, 128, 512};

  ExperimentGrid grid = base_grid({app});
  const GridResultSet baseline = run_bench_grid(grid);
  const double base = baseline.find(app, PolicyKind::kNone, false).energy_j.value();

  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {true};
  grid.sweep = sweep_axis_by_name("slack", slacks);
  const GridResultSet slack_results = run_bench_grid(grid);
  grid.sweep = sweep_axis_by_name("buffer_mib", buffers);
  const GridResultSet buffer_results = run_bench_grid(grid);

  {
    TextTable table({"max slack (slots)", "history + scheme energy",
                     "vs default", "prefetches"});
    for (const double bound : slacks) {
      const ExperimentResult& r =
          slack_results.find(app, PolicyKind::kHistory, true, bound);
      table.add_row({std::to_string(static_cast<int>(bound)),
                     TextTable::fmt(r.energy_j.value() / 1'000.0, 1) + " kJ",
                     TextTable::pct(r.energy_j.value() / base),
                     std::to_string(r.runtime.prefetches)});
    }
    table.print();
  }

  std::printf("\n");

  {
    TextTable table({"buffer capacity", "history + scheme energy",
                     "vs default", "buffer hits"});
    for (const double mb : buffers) {
      const ExperimentResult& r =
          buffer_results.find(app, PolicyKind::kHistory, true, mb);
      table.add_row({std::to_string(static_cast<int>(mb)) + " MB",
                     TextTable::fmt(r.energy_j.value() / 1'000.0, 1) + " kJ",
                     TextTable::pct(r.energy_j.value() / base),
                     std::to_string(r.runtime.buffer_hits)});
    }
    table.print();
  }
  std::printf("\n(application: sar)\n");

  GridResultSet all = baseline;
  // GridResultSet is copyable; fold every sweep into one sink emission.
  all.append(slack_results);
  all.append(buffer_results);
  emit_env_sinks(all);
  return 0;
}
