// Google-benchmark microbenchmarks of the compile-time machinery, the
// discrete-event core and the grid engine.
//
// Sec. V-A reports the longest compilation taking ~1.4 s, roughly 40% more
// than without the scheme; these benches measure the cost of our slack
// analysis and scheduling passes so that claim can be checked against this
// implementation (see EXPERIMENTS.md).  The event-core and grid benches
// track the engine work: events/sec of the pooled small-buffer event loop
// and wall-clock scaling of the parallel grid runner.
#include <benchmark/benchmark.h>

#include "compiler/compile.h"
#include "core/scheduler.h"
#include "driver/experiment.h"
#include "engine/grid_runner.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "util/rng.h"
#include "workload/app.h"

namespace dasched {
namespace {

void BM_SignatureDistance(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(1);
  Signature a(n);
  Signature b(n);
  for (int i = 0; i < n / 4 + 1; ++i) {
    a.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
    b.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance(a, b));
  }
}
BENCHMARK(BM_SignatureDistance)->Arg(8)->Arg(32)->Arg(256);

std::vector<AccessRecord> random_accesses(int count, int nodes, Slot slots,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AccessRecord> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    AccessRecord rec;
    rec.id = i;
    rec.process = i % 32;
    rec.end = static_cast<Slot>(rng.next_below(static_cast<std::uint64_t>(slots)));
    rec.begin = rec.end - static_cast<Slot>(rng.next_below(
                              static_cast<std::uint64_t>(rec.end) + 1));
    rec.original = rec.end;
    rec.sig = Signature(nodes);
    rec.sig.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes))));
    rec.sig.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes))));
    out.push_back(std::move(rec));
  }
  return out;
}

void BM_BasicScheduling(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const Slot slots = 4'096;
  auto accesses = random_accesses(count, 8, slots, 42);
  for (auto _ : state) {
    AccessScheduler sched(8, slots, ScheduleOptions{});
    benchmark::DoNotOptimize(sched.schedule(accesses));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BasicScheduling)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ThetaConstrainedScheduling(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const Slot slots = 4'096;
  auto accesses = random_accesses(count, 8, slots, 7);
  ScheduleOptions opts;
  opts.theta = 4;
  for (auto _ : state) {
    AccessScheduler sched(8, slots, opts);
    benchmark::DoNotOptimize(sched.schedule(accesses));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ThetaConstrainedScheduling)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Full compiler pipeline on a real workload — the paper's "compilation
/// time" figure.  Run once per iteration at the test scale.
void BM_CompilePipeline(benchmark::State& state) {
  const bool scheduling = state.range(0) != 0;
  WorkloadScale scale;
  scale.num_processes = 32;
  scale.factor = 0.25;
  for (auto _ : state) {
    state.PauseTiming();
    StripingMap striping(8, kib(64));
    CompiledProgram trace = app_by_name("sar").build(striping, scale);
    state.ResumeTiming();
    CompileOptions opts;
    opts.enable_scheduling = scheduling;
    opts.slack.max_slack = 600;
    benchmark::DoNotOptimize(compile_trace(std::move(trace), striping, opts));
  }
}
BENCHMARK(BM_CompilePipeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"scheduling"});

/// Event-core throughput: N self-rescheduling timer chains, the simulator's
/// dominant workload shape (disk timers, client ticks).  Reports events/sec;
/// this is the number the allocation-lean core (pooled records + small-
/// buffer callbacks) lifts over the old std::function/shared_ptr design.
void BM_EventCoreTimerChains(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  constexpr std::int64_t kEventsPerIter = 200'000;
  std::int64_t events = 0;
  for (auto _ : state) {
    Simulator sim;
    std::int64_t remaining = kEventsPerIter;
    struct Chain {
      Simulator* sim;
      std::int64_t* remaining;
      SimTime period;
      void operator()() const {
        if (--*remaining <= 0) return;
        Chain next = *this;
        sim->schedule_after(period, next);
      }
    };
    for (int c = 0; c < chains; ++c) {
      Chain chain{&sim, &remaining, usec(10 + c)};
      sim.schedule_after(usec(c), chain);
    }
    while (sim.step()) {
    }
    events += kEventsPerIter;
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_EventCoreTimerChains)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);

/// Event-core schedule/cancel mix: half the scheduled events are cancelled
/// before firing, exercising handle bookkeeping (the pooled-slot fast path).
void BM_EventCoreCancelMix(benchmark::State& state) {
  constexpr int kBatch = 1'024;
  std::int64_t scheduled = 0;
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventHandle> handles;
    handles.reserve(kBatch);
    for (int round = 0; round < 64; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        handles.push_back(sim.schedule_after(usec(100 + i), [] {}));
      }
      for (int i = 0; i < kBatch; i += 2) handles[static_cast<std::size_t>(i)].cancel();
      while (sim.step()) {
      }
      handles.clear();
      scheduled += kBatch;
    }
  }
  state.SetItemsProcessed(scheduled);
}
BENCHMARK(BM_EventCoreCancelMix)->Unit(benchmark::kMillisecond);

/// Grid-runner scaling: one tiny real grid (8 cells), executed serially and
/// on a worker pool.  items/sec = cells/sec; the ratio of the Arg(8) to the
/// Arg(1) run is the grid wall-clock speedup on this machine (bounded by
/// hardware_concurrency — see BENCH_engine.json for recorded numbers).
void BM_GridRunner(benchmark::State& state) {
  ExperimentGrid grid;
  grid.base.scale.num_processes = 4;
  grid.base.scale.factor = 0.05;
  grid.apps = {"sar", "madbench2"};
  grid.policies = {PolicyKind::kNone, PolicyKind::kHistory};
  grid.schemes = {false, true};
  GridRunOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  std::int64_t cells = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_grid(grid, opts));
    cells += static_cast<std::int64_t>(grid.size());
  }
  state.SetItemsProcessed(cells);
}
BENCHMARK(BM_GridRunner)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"threads"})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --------------------------------------------------------------------------
// Storage data path (StorageSystem::route -> IoNode -> RaidLayout -> Disk).
// These benches pin the per-request cost of the storage fast path; the
// recorded A/B numbers live in BENCH_storage_path.json.
// --------------------------------------------------------------------------

/// Steady-state cached reads: every block is resident after warm-up, so each
/// request costs route + network events + cache lookup + join, no disk.
void BM_StoragePathCachedRead(benchmark::State& state) {
  Simulator sim;
  StorageSystem storage(sim, StorageConfig{});  // Table II defaults
  constexpr int kBlocks = 512;                  // 32 MiB working set, fits
  const FileId f = storage.create_file("hot", kib(64) * kBlocks);
  std::int64_t completed = 0;
  for (int i = 0; i < kBlocks; ++i) {           // warm the node caches
    storage.read(f, (i) * kib(64), kib(64),
                 [&completed] { ++completed; });
  }
  sim.run();
  constexpr int kReadsPerIter = 1'024;
  for (auto _ : state) {
    for (int i = 0; i < kReadsPerIter; ++i) {
      storage.read(f, (i % kBlocks) * kib(64), kib(64),
                   [&completed] { ++completed; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() * kReadsPerIter);
}
BENCHMARK(BM_StoragePathCachedRead)->Unit(benchmark::kMillisecond);

/// Cache-miss stream: tiny node caches + a file far larger than they hold,
/// so nearly every read walks the full miss path (LRU eviction, RAID map,
/// elevator queue, disk service, sequential prefetch).
void BM_StoragePathDiskMiss(benchmark::State& state) {
  Simulator sim;
  StorageConfig cfg;
  cfg.node.cache_capacity = mib(1);  // 16 blocks per node
  StorageSystem storage(sim, cfg);
  constexpr int kBlocks = 8'192;     // 512 MiB file
  const FileId f = storage.create_file("cold", kib(64) * kBlocks);
  std::int64_t completed = 0;
  std::int64_t pos = 0;
  constexpr int kReadsPerIter = 512;
  for (auto _ : state) {
    for (int i = 0; i < kReadsPerIter; ++i) {
      storage.read(f, (pos % kBlocks) * kib(64), kib(64),
                   [&completed] { ++completed; });
      pos += 1;
    }
    sim.run();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() * kReadsPerIter);
}
BENCHMARK(BM_StoragePathDiskMiss)->Unit(benchmark::kMillisecond);

/// Ack-early write bursts over random offsets: the cache absorbs the writes
/// while the per-disk elevator queues sort and drain the background flushes.
void BM_StoragePathWriteBurst(benchmark::State& state) {
  Simulator sim;
  StorageConfig cfg;
  cfg.node.cache_capacity = mib(4);
  StorageSystem storage(sim, cfg);
  constexpr int kBlocks = 4'096;
  const FileId f = storage.create_file("wb", kib(64) * kBlocks);
  Rng rng(99);
  std::vector<Bytes> offsets(2'048);
  for (Bytes& o : offsets) {
    o = (rng.next_below(kBlocks)) * kib(64);
  }
  std::int64_t completed = 0;
  for (auto _ : state) {
    for (const Bytes o : offsets) {
      storage.write(f, o, kib(64), [&completed] { ++completed; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(offsets.size()));
}
BENCHMARK(BM_StoragePathWriteBurst)->Unit(benchmark::kMillisecond);

/// End-to-end default-config grid cell (the BM_GridRunner cell shape): one
/// full experiment — workload build, compile, simulate — per iteration.
/// items/sec = cells/sec; this is the number the storage-path rewrite lifts.
void BM_StoragePathGridCell(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.app = state.range(0) == 0 ? "sar" : "madbench2";
  cfg.scale.num_processes = 8;
  cfg.scale.factor = 0.2;
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = state.range(1) != 0;
  std::int64_t cells = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(cfg));
    cells += 1;
  }
  state.SetItemsProcessed(cells);
}
BENCHMARK(BM_StoragePathGridCell)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"madbench2", "scheme"});

// --------------------------------------------------------------------------
// Scheduling-compiler fast path (AccessScheduler::schedule + slack analysis).
// These benches pin the cost of the scheme-on compile pipeline; recorded A/B
// numbers live in BENCH_scheduler.json.
// --------------------------------------------------------------------------

/// Pure scheduling pass over a realistic mixed-length workload with the
/// Table II defaults (δ = 20, θ = 4, max_candidates = 128).  items/sec =
/// accesses/sec through AccessScheduler::schedule.
void BM_SchedulerSchedule(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const Slot slots = 4'096;
  auto accesses = random_accesses(count, 8, slots, 42);
  Rng rng(17);
  for (auto& rec : accesses) {  // mixed lengths, as the extended algorithm sees
    const int len = 1 + static_cast<int>(rng.next_below(4));
    rec.length = std::min<int>(len, static_cast<int>(rec.end - rec.begin + 1));
  }
  for (auto _ : state) {
    AccessScheduler sched(8, slots, ScheduleOptions{});
    benchmark::DoNotOptimize(sched.schedule(accesses));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SchedulerSchedule)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Slack analysis (LastWriteMap interval store + signature assignment) on a
/// real application trace.  items/sec = read accesses analyzed per second.
void BM_SchedulerSlackAnalysis(benchmark::State& state) {
  StripingMap striping(8, kib(64));
  WorkloadScale scale;
  scale.num_processes = 32;
  scale.factor = 0.25;
  CompiledProgram trace = app_by_name("sar").build(striping, scale);
  SlackOptions opts;
  opts.max_slack = 600;
  std::int64_t reads = 0;
  for (auto _ : state) {
    analyze_slacks(trace, striping, opts);
    benchmark::DoNotOptimize(trace.reads.data());
    reads += static_cast<std::int64_t>(trace.reads.size());
  }
  state.SetItemsProcessed(reads);
}
BENCHMARK(BM_SchedulerSlackAnalysis)->Unit(benchmark::kMillisecond);

/// End-to-end scheme-on grid cell (the BM_StoragePathGridCell shape with the
/// scheme forced on): workload build + compile + schedule + simulate.  This
/// is the cell the scheduling-compiler fast path must lift ≥1.5x.
void BM_SchedulerGridCellSchemeOn(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.app = state.range(0) == 0 ? "sar" : "madbench2";
  cfg.scale.num_processes = 8;
  cfg.scale.factor = 0.2;
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = true;
  std::int64_t cells = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(cfg));
    cells += 1;
  }
  state.SetItemsProcessed(cells);
}
BENCHMARK(BM_SchedulerGridCellSchemeOn)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"app"});  // 0 = sar, 1 = madbench2

void BM_ReuseFactor(benchmark::State& state) {
  AccessScheduler sched(8, 1'000, ScheduleOptions{.delta = 20});
  auto accesses = random_accesses(200, 8, 1'000, 3);
  for (const auto& a : accesses) sched.place(a, a.end);
  AccessRecord probe = accesses.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.reuse_factor(probe, 500));
  }
}
BENCHMARK(BM_ReuseFactor);

}  // namespace
}  // namespace dasched

BENCHMARK_MAIN();
