// Google-benchmark microbenchmarks of the compile-time machinery.
//
// Sec. V-A reports the longest compilation taking ~1.4 s, roughly 40% more
// than without the scheme; these benches measure the cost of our slack
// analysis and scheduling passes so that claim can be checked against this
// implementation (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "compiler/compile.h"
#include "core/scheduler.h"
#include "util/rng.h"
#include "workload/app.h"

namespace dasched {
namespace {

void BM_SignatureDistance(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Rng rng(1);
  Signature a(n);
  Signature b(n);
  for (int i = 0; i < n / 4 + 1; ++i) {
    a.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
    b.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance(a, b));
  }
}
BENCHMARK(BM_SignatureDistance)->Arg(8)->Arg(32)->Arg(256);

std::vector<AccessRecord> random_accesses(int count, int nodes, Slot slots,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AccessRecord> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    AccessRecord rec;
    rec.id = i;
    rec.process = i % 32;
    rec.end = static_cast<Slot>(rng.next_below(static_cast<std::uint64_t>(slots)));
    rec.begin = rec.end - static_cast<Slot>(rng.next_below(
                              static_cast<std::uint64_t>(rec.end) + 1));
    rec.original = rec.end;
    rec.sig = Signature(nodes);
    rec.sig.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes))));
    rec.sig.set(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes))));
    out.push_back(std::move(rec));
  }
  return out;
}

void BM_BasicScheduling(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const Slot slots = 4'096;
  auto accesses = random_accesses(count, 8, slots, 42);
  for (auto _ : state) {
    AccessScheduler sched(8, slots, ScheduleOptions{});
    benchmark::DoNotOptimize(sched.schedule(accesses));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BasicScheduling)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ThetaConstrainedScheduling(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const Slot slots = 4'096;
  auto accesses = random_accesses(count, 8, slots, 7);
  ScheduleOptions opts;
  opts.theta = 4;
  for (auto _ : state) {
    AccessScheduler sched(8, slots, opts);
    benchmark::DoNotOptimize(sched.schedule(accesses));
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ThetaConstrainedScheduling)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

/// Full compiler pipeline on a real workload — the paper's "compilation
/// time" figure.  Run once per iteration at the test scale.
void BM_CompilePipeline(benchmark::State& state) {
  const bool scheduling = state.range(0) != 0;
  WorkloadScale scale;
  scale.num_processes = 32;
  scale.factor = 0.25;
  for (auto _ : state) {
    state.PauseTiming();
    StripingMap striping(8, kib(64));
    CompiledProgram trace = app_by_name("sar").build(striping, scale);
    state.ResumeTiming();
    CompileOptions opts;
    opts.enable_scheduling = scheduling;
    opts.slack.max_slack = 600;
    benchmark::DoNotOptimize(compile_trace(std::move(trace), striping, opts));
  }
}
BENCHMARK(BM_CompilePipeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"scheduling"});

void BM_ReuseFactor(benchmark::State& state) {
  AccessScheduler sched(8, 1'000, ScheduleOptions{.delta = 20});
  auto accesses = random_accesses(200, 8, 1'000, 3);
  for (const auto& a : accesses) sched.place(a, a.end);
  AccessRecord probe = accesses.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.reuse_factor(probe, 500));
  }
}
BENCHMARK(BM_ReuseFactor);

}  // namespace
}  // namespace dasched

BENCHMARK_MAIN();
