// Fig. 13(d): additional energy reduction of the scheme (over history-based)
// as the vertical reuse range delta varies — both very small and very large
// values hurt, with an interior optimum near the Table II default of 20.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(d) — energy reduction vs delta",
               "Fig. 13(d): interior optimum of the vertical reuse range");
  Runner runner;
  TextTable table({"delta", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (int delta : {5, 10, 20, 40, 80}) {
    const std::string tag = "delta" + std::to_string(delta);
    const auto set_delta = [delta](ExperimentConfig& cfg) {
      cfg.compile.sched.delta = delta;
    };
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without +=
          runner.run(app, PolicyKind::kHistory, false, tag, set_delta).energy_j;
      with +=
          runner.run(app, PolicyKind::kHistory, true, tag, set_delta).energy_j;
    }
    table.add_row({std::to_string(delta), TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  return 0;
}
