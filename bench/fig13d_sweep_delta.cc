// Fig. 13(d): additional energy reduction of the scheme (over history-based)
// as the vertical reuse range delta varies — both very small and very large
// values hurt, with an interior optimum near the Table II default of 20.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(d) — energy reduction vs delta",
               "Fig. 13(d): interior optimum of the vertical reuse range");
  const std::vector<double> deltas{5, 10, 20, 40, 80};

  ExperimentGrid grid = base_grid(sweep_app_names());
  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {false, true};
  grid.sweep = sweep_axis_by_name("delta", deltas);
  const GridResultSet results = run_bench_grid(grid);

  TextTable table({"delta", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (const double d : deltas) {
    double without = 0.0;
    double with = 0.0;
    for (const std::string& app : sweep_app_names()) {
      without += results.find(app, PolicyKind::kHistory, false, d).energy_j.value();
      with += results.find(app, PolicyKind::kHistory, true, d).energy_j.value();
    }
    table.add_row({std::to_string(static_cast<int>(d)),
                   TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  emit_env_sinks(results);
  return 0;
}
