// Daemon request-throughput harness (BENCH_serve.json).
//
// Starts an in-process ServeServer on an ephemeral loopback port and drives
// it with 1, 4 and 8 concurrent tenants, each issuing a batch of identical
// small-cell run requests over its own warm connection.  The first two
// requests per tenant are warm-up (workspace build + pool growth + compile);
// the timed batch then measures the daemon steady state — frame parse,
// zero-allocation warm run, result serialization, socket round-trip.
// Reports the median wall-clock and aggregate requests/second per tenant
// count, in the shared ThroughputJsonWriter envelope so tooling can diff
// BENCH_serve.json like the other BENCH_*.json reports.
//
// Results stay bit-identical across tenant counts (each tenant owns its
// workspace; tests/serve/serve_e2e_test.cc enforces it), so the only thing
// varying here is wall-clock.
//
// Knobs (strictly parsed): DASCHED_BENCH_REPS (default 3),
// DASCHED_BENCH_SCALE (default 0.1), DASCHED_BENCH_PROCS (default 4),
// DASCHED_BENCH_REQS (requests per tenant per rep, default 16).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace dasched;
using serve::ServeClient;
using serve::ServeOptions;
using serve::ServeServer;

namespace {

ExperimentConfig small_cell(double scale, int procs) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  cfg.scale.factor = scale;
  cfg.scale.num_processes = procs;
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = true;
  return cfg;
}

/// One repetition: `tenants` warm connections fire `reqs` requests each;
/// returns the wall-clock of the timed batch (warm-up excluded).
double run_once(const std::string& address, const ExperimentConfig& cfg,
                int tenants, int reqs) {
  std::vector<ServeClient> clients;
  clients.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    clients.push_back(ServeClient::connect(address));
  }
  // Warm-up outside the timer: build + steady-state re-touch per tenant.
  {
    std::vector<std::thread> warm;
    warm.reserve(clients.size());
    for (ServeClient& c : clients) {
      warm.emplace_back([&c, &cfg] {
        ServeClient::Reply reply;
        c.run(cfg, false, reply);
        c.run(cfg, false, reply);
      });
    }
    for (std::thread& t : warm) t.join();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (ServeClient& c : clients) {
    threads.emplace_back([&c, &cfg, reqs] {
      ServeClient::Reply reply;  // reused: the client path stays warm too
      for (int i = 0; i < reqs; ++i) c.run(cfg, false, reply);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const int reps = env_int("DASCHED_BENCH_REPS", 3);
  const double scale = env_double("DASCHED_BENCH_SCALE", 0.1);
  const int procs = env_int("DASCHED_BENCH_PROCS", 4);
  const int reqs = env_int("DASCHED_BENCH_REQS", 16);
  const ExperimentConfig cfg = small_cell(scale, procs);

  ServeOptions opts;
  opts.address = "tcp:0";
  opts.max_tenants = 16;
  ServeServer server(opts);
  server.start();

  char workload[128];
  std::snprintf(workload, sizeof(workload),
                "\"scale\": %g, \"procs\": %d, \"reqs_per_tenant\": %d", scale,
                procs, reqs);
  bench::ThroughputJsonWriter json("serve", workload, reps, "tenants");

  const std::vector<int> tenant_counts = {1, 4, 8};
  for (std::size_t i = 0; i < tenant_counts.size(); ++i) {
    const int tenants = tenant_counts[i];
    std::vector<double> seconds;
    for (int rep = 0; rep < reps; ++rep) {
      seconds.push_back(run_once(server.address(), cfg, tenants, reqs));
    }
    const double med = bench::median_seconds(seconds);
    const double total = static_cast<double>(tenants) * reqs;
    std::fprintf(stderr, "[tenants=%d] median %.3fs, %.1f req/s\n", tenants,
                 med, total / med);
    char fields[128];
    std::snprintf(fields, sizeof(fields),
                  "\"tenants\": %d, \"median_seconds\": %.4f, "
                  "\"requests\": %d, \"req_per_sec\": %.2f",
                  tenants, med, tenants * reqs, total / med);
    json.row(fields, i + 1 == tenant_counts.size());
  }
  json.finish();

  server.request_shutdown();
  server.wait();
  return 0;
}
