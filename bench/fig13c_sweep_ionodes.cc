// Fig. 13(c): additional energy reduction brought by the scheme over the
// history-based strategy, as the number of I/O nodes varies (2..32).
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(c) — energy reduction vs number of I/O nodes",
               "Fig. 13(c): reduction grows mildly with more I/O nodes");
  Runner runner;
  TextTable table({"I/O nodes", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (int nodes : {2, 4, 8, 16, 32}) {
    const std::string tag = "nodes" + std::to_string(nodes);
    const auto set_nodes = [nodes](ExperimentConfig& cfg) {
      cfg.storage.num_io_nodes = nodes;
    };
    double without = 0.0;
    double with = 0.0;
    double base = 0.0;
    for (const std::string& app : sweep_app_names()) {
      base += runner.baseline(app, tag, set_nodes).energy_j;
      without +=
          runner.run(app, PolicyKind::kHistory, false, tag, set_nodes).energy_j;
      with +=
          runner.run(app, PolicyKind::kHistory, true, tag, set_nodes).energy_j;
    }
    table.add_row({std::to_string(nodes), TextTable::pct(without / base),
                   TextTable::pct(with / base),
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  return 0;
}
