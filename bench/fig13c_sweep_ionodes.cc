// Fig. 13(c): additional energy reduction brought by the scheme over the
// history-based strategy, as the number of I/O nodes varies (2..32).
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 13(c) — energy reduction vs number of I/O nodes",
               "Fig. 13(c): reduction grows mildly with more I/O nodes");
  const std::vector<double> nodes{2, 4, 8, 16, 32};

  ExperimentGrid grid = base_grid(sweep_app_names());
  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {false, true};
  grid.sweep = sweep_axis_by_name("nodes", nodes);
  GridResultSet results = run_bench_grid(grid);
  grid.policies = {PolicyKind::kNone};
  grid.schemes = {false};
  results.append(run_bench_grid(grid));

  TextTable table({"I/O nodes", "history (no scheme)", "history + scheme",
                   "reduction from scheme"});
  for (const double n : nodes) {
    double without = 0.0;
    double with = 0.0;
    double base = 0.0;
    for (const std::string& app : sweep_app_names()) {
      base += results.find(app, PolicyKind::kNone, false, n).energy_j.value();
      without += results.find(app, PolicyKind::kHistory, false, n).energy_j.value();
      with += results.find(app, PolicyKind::kHistory, true, n).energy_j.value();
    }
    table.add_row({std::to_string(static_cast<int>(n)),
                   TextTable::pct(without / base), TextTable::pct(with / base),
                   TextTable::pct((without - with) / without)});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  emit_env_sinks(results);
  return 0;
}
