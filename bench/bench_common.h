// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench binary *declares* its slice of the paper's experimental grid
// (engine/experiment_grid.h), executes it on the thread-parallel grid
// runner (engine/grid_runner.h), and prints the corresponding rows/series
// as an ASCII table.  Structured results flow through the shared sink
// (engine/result_sink.h).  Environment knobs (strictly parsed — a
// malformed value stops the run):
//   DASCHED_BENCH_SCALE    workload scale factor (default 0.5, the bench
//                          calibration every number in EXPERIMENTS.md was
//                          measured at; 1.0 is the full paper-sized run)
//   DASCHED_BENCH_PROCS    client processes      (default 32, Table II)
//   DASCHED_BENCH_THREADS  grid worker threads   (default: DASCHED_GRID_THREADS,
//                          then hardware concurrency)
//   DASCHED_BENCH_CSV      write all cells as CSV to this path ("-" stdout)
//   DASCHED_BENCH_JSONL    write all cells as JSON lines to this path
#pragma once

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "driver/experiment.h"
#include "engine/env_knobs.h"
#include "engine/experiment_grid.h"
#include "engine/grid_runner.h"
#include "engine/result_sink.h"
#include "util/table.h"

namespace dasched::bench {

inline WorkloadScale bench_scale() {
  WorkloadScale s;
  s.factor = env_double("DASCHED_BENCH_SCALE", 0.5);
  s.num_processes = env_int("DASCHED_BENCH_PROCS", 32);
  return s;
}

inline int bench_threads() {
  return resolve_grid_threads(env_int("DASCHED_BENCH_THREADS", 0));
}

/// The six applications in Table III order.
inline const std::vector<std::string>& all_app_names() {
  static const std::vector<std::string> names{"hf",   "sar",       "astro",
                                              "apsi", "madbench2", "wupwise"};
  return names;
}

/// Fast subset used by the parameter sweeps (Figs. 13c/d, 14a/b), where the
/// paper reports aggregate trends rather than per-application bars.
inline const std::vector<std::string>& sweep_app_names() {
  static const std::vector<std::string> names{"sar", "apsi", "madbench2"};
  return names;
}

inline const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kinds{
      PolicyKind::kSimple, PolicyKind::kPrediction, PolicyKind::kHistory,
      PolicyKind::kStaggered};
  return kinds;
}

/// Grid template at the bench scale; axes default to a single baseline cell.
inline ExperimentGrid base_grid(std::vector<std::string> apps) {
  ExperimentGrid grid;
  grid.base.scale = bench_scale();
  grid.apps = std::move(apps);
  return grid;
}

/// Executes one declared grid on the worker pool, logging per-cell progress.
inline GridResultSet run_bench_grid(const ExperimentGrid& grid) {
  GridRunOptions opts;
  opts.threads = bench_threads();
  const std::size_t total = grid.size();
  opts.on_cell_done = [total](const GridCell& cell) {
    std::fprintf(stderr, "[bench] done %s/%s/%s%s (cell %zu of %zu)\n",
                 cell.app.c_str(), to_string(cell.policy),
                 cell.scheme ? "s" : "b",
                 cell.has_sweep
                     ? (" " + cell.sweep_name + "=" +
                        std::to_string(cell.sweep_value))
                           .c_str()
                     : "",
                 cell.index + 1, total);
  };
  return run_grid(grid, opts);
}

/// The recurring fig12/13 shape: the four policies at `scheme`, plus the
/// Default Scheme (no policy, no scheme) baselines the metrics divide by.
inline GridResultSet run_policy_grid(const std::vector<std::string>& apps,
                                     bool scheme) {
  ExperimentGrid grid = base_grid(apps);
  grid.policies = all_policies();
  grid.schemes = {scheme};
  GridResultSet results = run_bench_grid(grid);
  grid.policies = {PolicyKind::kNone};
  grid.schemes = {false};
  results.append(run_bench_grid(grid));
  return results;
}

/// Prints the Fig. 12-style idle-period CDF table for all applications.
inline void print_idle_cdf(const GridResultSet& results, bool scheme) {
  std::vector<std::string> header{"idleness (msec)"};
  for (const std::string& name : all_app_names()) header.push_back(name);
  TextTable table(std::move(header));

  std::map<std::string, std::vector<double>> cdfs;
  for (const std::string& name : all_app_names()) {
    cdfs[name] =
        results.find(name, PolicyKind::kNone, scheme).storage.idle_periods.cdf();
  }
  const auto edges = DurationHistogram::paper_edges_msec();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::vector<std::string> row{TextTable::fmt(edges[i], 0)};
    for (const std::string& name : all_app_names()) {
      row.push_back(TextTable::pct(cdfs[name][i]));
    }
    table.add_row(std::move(row));
  }
  table.print();
}

/// Prints the Fig. 12(c/d) / 13(a/b)-style grid: one row per application,
/// one column per policy, plus a cross-application average row.
/// `metric` maps (policy run, default-scheme baseline) to a fraction.
inline void print_policy_grid(
    const GridResultSet& results, bool scheme,
    const std::function<double(const ExperimentResult&,
                               const ExperimentResult&)>& metric) {
  TextTable table(
      {"application", "simple", "prediction", "history", "staggered"});
  std::map<PolicyKind, double> sums;
  for (const std::string& name : all_app_names()) {
    const ExperimentResult& base =
        results.find(name, PolicyKind::kNone, false);
    std::vector<std::string> row{name};
    for (PolicyKind kind : all_policies()) {
      const double v = metric(results.find(name, kind, scheme), base);
      sums[kind] += v;
      row.push_back(TextTable::pct(v));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (PolicyKind kind : all_policies()) {
    avg.push_back(
        TextTable::pct(sums[kind] / static_cast<double>(all_app_names().size())));
  }
  table.add_row(std::move(avg));
  table.print();
}

/// Median of a sample vector (odd: middle; even: mean of the two middles).
/// The A/B throughput harnesses report medians, not means — a single noisy
/// repetition on a busy CI host must not move the headline number.
inline double median_seconds(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Shared envelope of the BENCH_*.json throughput reports
/// (event_queue_throughput, shard_throughput, grid_throughput): every file
/// carries the same identification fields — name, workload-knob object,
/// host_cores, nproc, reps — followed by one row object per measured
/// setting, so tooling can diff any of them with the same reader.
class ThroughputJsonWriter {
 public:
  /// `workload_fields` is the inner key/value list of the "workload" object
  /// (already JSON-formatted, without braces); `reps` is appended to it.
  ThroughputJsonWriter(const char* name, const std::string& workload_fields,
                       int reps, const char* rows_key) {
    std::printf("{\n");
    std::printf("  \"name\": \"%s\",\n", name);
    const std::string inner =
        workload_fields.empty() ? std::string() : workload_fields + ", ";
    std::printf("  \"workload\": {%s\"reps\": %d},\n", inner.c_str(), reps);
    std::printf("  \"host_cores\": %u,\n", std::thread::hardware_concurrency());
    std::printf("  \"nproc\": %ld,\n", sysconf(_SC_NPROCESSORS_ONLN));
    std::printf("  \"%s\": [\n", rows_key);
  }

  /// One row object; `fields` is its inner key/value list (no braces).
  void row(const std::string& fields, bool last) {
    std::printf("    {%s}%s\n", fields.c_str(), last ? "" : ",");
  }

  void finish() { std::printf("  ]\n}\n"); }
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  const WorkloadScale s = bench_scale();
  std::printf("scale: factor=%.2f processes=%d threads=%d\n\n", s.factor,
              s.num_processes, bench_threads());
}

}  // namespace dasched::bench
