// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench binary replays the paper's experimental grid through
// `run_experiment` and prints the corresponding rows/series as an ASCII
// table.  Scale knobs (environment variables) let CI run the grid quickly:
//   DASCHED_BENCH_SCALE  workload scale factor (default 1.0 = calibrated)
//   DASCHED_BENCH_PROCS  client processes     (default 32, Table II)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "util/table.h"

namespace dasched::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

inline WorkloadScale bench_scale() {
  WorkloadScale s;
  s.factor = env_double("DASCHED_BENCH_SCALE", 0.5);
  s.num_processes = env_int("DASCHED_BENCH_PROCS", 32);
  return s;
}

/// The six applications in Table III order.
inline const std::vector<std::string>& all_app_names() {
  static const std::vector<std::string> names{"hf",   "sar",       "astro",
                                              "apsi", "madbench2", "wupwise"};
  return names;
}

/// Fast subset used by the parameter sweeps (Figs. 13c/d, 14a/b), where the
/// paper reports aggregate trends rather than per-application bars.
inline const std::vector<std::string>& sweep_app_names() {
  static const std::vector<std::string> names{"sar", "apsi", "madbench2"};
  return names;
}

inline const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kinds{
      PolicyKind::kSimple, PolicyKind::kPrediction, PolicyKind::kHistory,
      PolicyKind::kStaggered};
  return kinds;
}

inline ExperimentConfig base_config(const std::string& app) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.scale = bench_scale();
  return cfg;
}

/// Runs one experiment, caching results per (app, policy, scheme, tag) so a
/// bench binary never repeats an identical run.
class Runner {
 public:
  using Mutator = std::function<void(ExperimentConfig&)>;

  ExperimentResult run(const std::string& app, PolicyKind policy, bool scheme,
                       const std::string& tag = "", const Mutator& mutate = {}) {
    const std::string key =
        app + "/" + to_string(policy) + "/" + (scheme ? "s" : "b") + "/" + tag;
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;

    ExperimentConfig cfg = base_config(app);
    cfg.policy = policy;
    cfg.use_scheme = scheme;
    if (mutate) mutate(cfg);
    std::fprintf(stderr, "[bench] running %s ...\n", key.c_str());
    ExperimentResult result = run_experiment(cfg);
    cache_.emplace(key, result);
    return result;
  }

  /// Default-scheme baseline (no policy, no scheme).
  ExperimentResult baseline(const std::string& app, const std::string& tag = "",
                            const Mutator& mutate = {}) {
    return run(app, PolicyKind::kNone, false, tag, mutate);
  }

 private:
  std::map<std::string, ExperimentResult> cache_;
};

/// Prints the Fig. 12-style idle-period CDF table for all applications.
inline void print_idle_cdf(Runner& runner, bool scheme) {
  std::vector<std::string> header{"idleness (msec)"};
  for (const std::string& name : all_app_names()) header.push_back(name);
  TextTable table(std::move(header));

  std::map<std::string, std::vector<double>> cdfs;
  for (const std::string& name : all_app_names()) {
    const ExperimentResult r = runner.run(name, PolicyKind::kNone, scheme, "cdf");
    cdfs[name] = r.storage.idle_periods.cdf();
  }
  const auto edges = DurationHistogram::paper_edges_msec();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::vector<std::string> row{TextTable::fmt(edges[i], 0)};
    for (const std::string& name : all_app_names()) {
      row.push_back(TextTable::pct(cdfs[name][i]));
    }
    table.add_row(std::move(row));
  }
  table.print();
}

/// Prints the Fig. 12(c/d) / 13(a/b)-style grid: one row per application,
/// one column per policy, plus a cross-application average row.
/// `metric` maps (policy run, default-scheme baseline) to a fraction.
inline void print_policy_grid(
    Runner& runner, bool scheme,
    const std::function<double(const ExperimentResult&,
                               const ExperimentResult&)>& metric) {
  TextTable table(
      {"application", "simple", "prediction", "history", "staggered"});
  std::map<PolicyKind, double> sums;
  for (const std::string& name : all_app_names()) {
    const ExperimentResult base = runner.baseline(name);
    std::vector<std::string> row{name};
    for (PolicyKind kind : all_policies()) {
      const ExperimentResult r = runner.run(name, kind, scheme);
      const double v = metric(r, base);
      sums[kind] += v;
      row.push_back(TextTable::pct(v));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (PolicyKind kind : all_policies()) {
    avg.push_back(
        TextTable::pct(sums[kind] / static_cast<double>(all_app_names().size())));
  }
  table.add_row(std::move(avg));
  table.print();
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("== %s ==\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  const WorkloadScale s = bench_scale();
  std::printf("scale: factor=%.2f processes=%d\n\n", s.factor, s.num_processes);
}

}  // namespace dasched::bench
