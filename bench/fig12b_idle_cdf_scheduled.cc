// Fig. 12(b): CDF of disk idle-period lengths with the compiler-directed
// scheme: the distribution shifts right (longer idle periods).
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(b) \u2014 idle period CDF, with our scheme",
               "Fig. 12(b): idle periods lengthen under scheduling");
  Runner runner;
  print_idle_cdf(runner, /*scheme=*/true);
  return 0;
}
