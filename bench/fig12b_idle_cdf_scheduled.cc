// Fig. 12(b): CDF of disk idle-period lengths with the compiler-directed
// scheme: the distribution shifts right (longer idle periods).
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(b) — idle period CDF, with our scheme",
               "Fig. 12(b): idle periods lengthen under scheduling");
  ExperimentGrid grid = base_grid(all_app_names());
  grid.schemes = {true};
  const GridResultSet results = run_bench_grid(grid);
  print_idle_cdf(results, /*scheme=*/true);
  emit_env_sinks(results);
  return 0;
}
