// Fig. 12(d): normalized energy consumption with the compiler-directed
// scheme: the savings of every strategy roughly double.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Fig. 12(d) — normalized energy, with our scheme",
               "Fig. 12(d): paper averages: simple 90.6%, prediction 85.8%, "
               "history 70.8%, staggered 74.1%");
  const GridResultSet results = run_policy_grid(all_app_names(), true);
  print_policy_grid(results, /*scheme=*/true, normalized_energy);
  std::printf("\n(lower is better; 100%% = Default Scheme)\n");
  emit_env_sinks(results);
  return 0;
}
