// Sec. V-D (text): storage-cache capacity sensitivity.  The paper reports
// that shrinking the per-node cache from 64 MB to 32 MB increases the
// scheme's relative benefit (~+4.3%) while growing it to 256 MB shrinks the
// benefit (~-3.7%): a bigger cache absorbs disk activity by itself, leaving
// less for the scheme to save.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Sec. V-D — storage cache capacity sensitivity",
               "text: larger caches shrink the scheme's relative benefit");
  Runner runner;
  TextTable table({"cache per node", "history (no scheme)", "history + scheme",
                   "reduction from scheme", "cache hit rate"});
  for (Bytes capacity : {mib(32), mib(64), mib(256)}) {
    const std::string tag = "cache" + std::to_string(capacity >> 20);
    const auto set_cache = [capacity](ExperimentConfig& cfg) {
      cfg.storage.node.cache_capacity = capacity;
    };
    double without = 0.0;
    double with = 0.0;
    double hits = 0.0;
    for (const std::string& app : sweep_app_names()) {
      const ExperimentResult a =
          runner.run(app, PolicyKind::kHistory, false, tag, set_cache);
      const ExperimentResult b =
          runner.run(app, PolicyKind::kHistory, true, tag, set_cache);
      without += a.energy_j;
      with += b.energy_j;
      hits += a.storage.cache_hit_rate;
    }
    table.add_row({std::to_string(capacity >> 20) + " MB",
                   TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without),
                   TextTable::pct(hits / static_cast<double>(
                                             sweep_app_names().size()))});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  return 0;
}
