// Sec. V-D (text): storage-cache capacity sensitivity.  The paper reports
// that shrinking the per-node cache from 64 MB to 32 MB increases the
// scheme's relative benefit (~+4.3%) while growing it to 256 MB shrinks the
// benefit (~-3.7%): a bigger cache absorbs disk activity by itself, leaving
// less for the scheme to save.
#include "bench/bench_common.h"

using namespace dasched;
using namespace dasched::bench;

int main() {
  print_header("Sec. V-D — storage cache capacity sensitivity",
               "text: larger caches shrink the scheme's relative benefit");
  const std::vector<double> capacities{32, 64, 256};

  ExperimentGrid grid = base_grid(sweep_app_names());
  grid.policies = {PolicyKind::kHistory};
  grid.schemes = {false, true};
  grid.sweep = sweep_axis_by_name("cache_mib", capacities);
  const GridResultSet results = run_bench_grid(grid);

  TextTable table({"cache per node", "history (no scheme)", "history + scheme",
                   "reduction from scheme", "cache hit rate"});
  for (const double mb : capacities) {
    double without = 0.0;
    double with = 0.0;
    double hits = 0.0;
    for (const std::string& app : sweep_app_names()) {
      const ExperimentResult& a =
          results.find(app, PolicyKind::kHistory, false, mb);
      without += a.energy_j.value();
      with += results.find(app, PolicyKind::kHistory, true, mb).energy_j.value();
      hits += a.storage.cache_hit_rate;
    }
    table.add_row({std::to_string(static_cast<int>(mb)) + " MB",
                   TextTable::fmt(without / 1'000.0, 1) + " kJ",
                   TextTable::fmt(with / 1'000.0, 1) + " kJ",
                   TextTable::pct((without - with) / without),
                   TextTable::pct(hits / static_cast<double>(
                                             sweep_app_names().size()))});
  }
  table.print();
  std::printf("\n(aggregated over: sar, apsi, madbench2)\n");
  emit_env_sinks(results);
  return 0;
}
