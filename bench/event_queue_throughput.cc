// A/B throughput harness: ladder queue vs binary heap (BENCH_event_queue.json).
//
// Runs the event-core workload shapes from bench/microbench_scheduler.cc —
// self-rescheduling timer chains (the engine's dominant pattern), a
// schedule/cancel mix, and a bimodal near/far horizon mix that exercises
// every ladder tier — once per queue kind with several repetitions, and
// reports the median wall-clock, events/second, and the ladder:heap speedup
// per workload as JSON on stdout.  The popped event sequences are identical
// by construction (tests/sim/queue_differential_test.cc), so the only thing
// varying here is wall-clock.
//
// Knobs (strictly parsed): DASCHED_BENCH_REPS (default 5),
// DASCHED_BENCH_EVENTS (events per repetition, default 2'000'000).
#include <time.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "engine/env_knobs.h"
#include "sim/simulator.h"

using namespace dasched;

namespace {

/// N self-rescheduling timer chains; mirrors BM_EventCoreTimerChains.
void run_timer_chains(Simulator& sim, int chains, std::int64_t total_events) {
  std::int64_t remaining = total_events;
  struct Chain {
    Simulator* sim;
    std::int64_t* remaining;
    SimTime period;
    void operator()() const {
      if (--*remaining <= 0) return;
      Chain next = *this;
      sim->schedule_after(period, next);
    }
  };
  for (int c = 0; c < chains; ++c) {
    Chain chain{&sim, &remaining, usec(10 + c)};
    sim.schedule_after(usec(c), chain);
  }
  while (sim.step()) {
  }
}

/// Half the scheduled events cancel before firing; mirrors
/// BM_EventCoreCancelMix.
void run_cancel_mix(Simulator& sim, int /*chains*/, std::int64_t total_events) {
  constexpr int kBatch = 1'024;
  std::vector<EventHandle> handles;
  handles.reserve(kBatch);
  for (std::int64_t done = 0; done < total_events; done += kBatch) {
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(sim.schedule_after(usec(100 + i), [] {}));
    }
    for (int i = 0; i < kBatch; i += 2) {
      handles[static_cast<std::size_t>(i)].cancel();
    }
    while (sim.step()) {
    }
    handles.clear();
  }
}

/// 7:2:1 near/mid/far horizons from a deterministic LCG: pushes traffic
/// through the bottom ring, the rungs, and the far-future top tier.
void run_bimodal(Simulator& sim, int chains, std::int64_t total_events) {
  std::int64_t remaining = total_events;
  struct Chain {
    Simulator* sim;
    std::int64_t* remaining;
    std::uint64_t rng;
    void operator()() {
      if (--*remaining <= 0) return;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::uint64_t r = rng >> 33;
      const std::int64_t horizon =
          r % 10 < 7
              ? 1 + static_cast<std::int64_t>(r % 97)
              : (r % 10 < 9
                     ? 1'000 + static_cast<std::int64_t>(r % 9'001)
                     : 500'000 + static_cast<std::int64_t>(r % 1'000'000));
      Chain next = *this;
      sim->schedule_after(SimTime{horizon}, next);
    }
  };
  for (int c = 0; c < chains; ++c) {
    Chain chain{&sim, &remaining, static_cast<std::uint64_t>(c) * 977 + 1};
    sim.schedule_after(usec(c), chain);
  }
  while (sim.step()) {
  }
}

struct Workload {
  const char* name;
  void (*run)(Simulator&, int, std::int64_t);
  int chains;
};

/// Thread CPU time: the benchmark is single-threaded and deterministic, so
/// CPU seconds are the signal; wall-clock would fold in whatever else the
/// host is running (CI machines are rarely quiet).
double cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

double time_one(const Workload& w, QueueKind kind, std::int64_t events) {
  Simulator sim(kind);
  sim.reserve_events(8'192);
  const double t0 = cpu_now();
  w.run(sim, w.chains, events);
  return cpu_now() - t0;
}

}  // namespace

int main() {
  const int reps = env_int("DASCHED_BENCH_REPS", 5);
  const auto events = static_cast<std::int64_t>(
      env_int("DASCHED_BENCH_EVENTS", 2'000'000));
  const std::vector<Workload> workloads = {
      {"timer_chains/1", &run_timer_chains, 1},
      {"timer_chains/64", &run_timer_chains, 64},
      {"cancel_mix", &run_cancel_mix, 1},
      {"bimodal_horizons/64", &run_bimodal, 64},
  };

  bench::ThroughputJsonWriter json(
      "event_queue",
      "\"events_per_rep\": " + std::to_string(static_cast<long long>(events)),
      reps, "workloads");
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    double med[2] = {0, 0};
    for (QueueKind kind : {QueueKind::kHeap, QueueKind::kLadder}) {
      std::vector<double> seconds;
      for (int rep = 0; rep < reps; ++rep) {
        seconds.push_back(time_one(w, kind, events));
      }
      med[kind == QueueKind::kLadder ? 1 : 0] = bench::median_seconds(seconds);
    }
    const double speedup = med[1] > 0 ? med[0] / med[1] : 0.0;
    std::fprintf(stderr,
                 "[%s] heap %.3fs, ladder %.3fs (%.2fx, %.0f ev/s)\n", w.name,
                 med[0], med[1], speedup,
                 static_cast<double>(events) / med[1]);
    char fields[256];
    std::snprintf(fields, sizeof(fields),
                  "\"workload\": \"%s\", \"heap_median_seconds\": %.4f, "
                  "\"ladder_median_seconds\": %.4f, "
                  "\"ladder_events_per_sec\": %.0f, "
                  "\"ladder_speedup_vs_heap\": %.3f",
                  w.name, med[0], med[1],
                  static_cast<double>(events) / med[1], speedup);
    json.row(fields, i + 1 == workloads.size());
  }
  json.finish();
  return 0;
}
