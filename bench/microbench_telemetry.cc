// Google-benchmark microbenchmarks of the telemetry subsystem.
//
// The recorder sits on the simulation hot path (one virtual call + a 32-byte
// store per hooked event), so its cost must stay in single-digit
// nanoseconds per record and a fully traced run must stay within a few
// percent of an untraced one.  BM_TelemetryRecord measures the raw append;
// BM_TelemetryGridCell measures the end-to-end on/off delta on the same
// grid cell the storage and scheduler microbenches use.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "driver/experiment.h"
#include "telemetry/analytics.h"
#include "telemetry/recorder.h"

namespace dasched {
namespace {

/// Raw recording cost: bounds check + 32-byte store into a pooled chunk.
void BM_TelemetryRecord(benchmark::State& state) {
  TraceBuffer buf;
  buf.reserve(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    buf.append(TraceEvent{static_cast<SimTime>(i),
                          static_cast<std::uint16_t>(TraceEventKind::kQueueDepth),
                          static_cast<std::uint16_t>(i & 0xffu),
                          static_cast<std::uint32_t>(i), i, i});
    i += 1;
    if (buf.size() == (1 << 20)) buf.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_TelemetryRecord);

/// Trace-analysis throughput: events/sec through the analytics fold.
void BM_TelemetryAnalyze(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  cfg.scale.num_processes = 8;
  cfg.scale.factor = 0.2;
  cfg.policy = PolicyKind::kPrediction;
  cfg.telemetry.level = TraceLevel::kFull;
  const ExperimentResult r = run_experiment(cfg);
  std::vector<TraceEvent> events;
  events.reserve(r.telemetry->trace_events);
  // Rebuild a flat event stream at the recorded size for a stable input.
  for (std::uint64_t i = 0; i < r.telemetry->trace_events; ++i) {
    events.push_back(TraceEvent{
        static_cast<SimTime>(i),
        static_cast<std::uint16_t>(TraceEventKind::kEnergyAccrued),
        static_cast<std::uint16_t>(i % 8), 0,
        std::bit_cast<std::uint64_t>(0.001), 1000});
  }
  std::int64_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_trace(events, TraceMeta{}));
    total += static_cast<std::int64_t>(events.size());
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_TelemetryAnalyze)->Unit(benchmark::kMillisecond);

/// End-to-end overhead: the same grid cell untraced (arg 0), traced at
/// state level (arg 1) and traced at full level (arg 2).
void BM_TelemetryGridCell(benchmark::State& state) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  cfg.scale.num_processes = 8;
  cfg.scale.factor = 0.2;
  cfg.policy = PolicyKind::kHistory;
  cfg.use_scheme = true;
  switch (state.range(0)) {
    case 0: cfg.telemetry.level = TraceLevel::kOff; break;
    case 1: cfg.telemetry.level = TraceLevel::kState; break;
    default: cfg.telemetry.level = TraceLevel::kFull; break;
  }
  std::int64_t cells = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(cfg));
    cells += 1;
  }
  state.SetItemsProcessed(cells);
}
BENCHMARK(BM_TelemetryGridCell)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"level"});  // 0 = off, 1 = state, 2 = full

}  // namespace
}  // namespace dasched

BENCHMARK_MAIN();
