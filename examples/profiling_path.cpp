// The profiling front end: scheduling a non-affine workload.
//
// When loop bounds are symbolic or subscripts data-dependent, the paper
// falls back to a profiling tool.  This example records an irregular
// "adaptive mesh" workload — panel sizes and revisit patterns drawn at
// runtime — through TraceBuilder, compiles the recorded trace, and compares
// the simulated run with and without the scheme under the staggered
// multi-speed policy.
//
//   $ ./examples/profiling_path
#include <cstdio>

#include "compiler/compile.h"
#include "compiler/trace_builder.h"
#include "driver/experiment.h"
#include "io/cluster.h"
#include "storage/storage_system.h"
#include "util/rng.h"
#include "util/table.h"

using namespace dasched;

namespace {

/// An irregular refinement loop: each process owns a set of mesh panels,
/// revisits a random subset per step (data-dependent — not expressible as
/// an affine nest) and appends refinement output.
CompiledProgram record_trace(StripingMap& striping, int P, int steps) {
  const Bytes panel = kib(128);
  const int panels_per_proc = 48;
  const FileId mesh = striping.create_file(
      "amr.mesh", (P) * panels_per_proc * panel);
  const FileId out = striping.create_file(
      "amr.out", (P) * steps * panel);

  TraceBuilder tb(P);
  Rng rng(2026);
  for (int s = 0; s < steps; ++s) {
    for (int p = 0; p < P; ++p) {
      // Visit a random, data-dependent subset of panels.
      const int visits = 3 + static_cast<int>(rng.next_below(4));
      for (int v = 0; v < visits; ++v) {
        const auto panel_id =
            static_cast<std::int64_t>(rng.next_below(panels_per_proc));
        tb.read(p, mesh,
                (p) * panels_per_proc * panel +
                    panel_id * panel,
                panel);
        tb.compute(p, 4'000 + static_cast<SimTime>(rng.next_below(3'000)));
        tb.end_slot(p);
        // Padding slots: iterations without I/O.
        for (int pad = 0; pad < 2; ++pad) {
          tb.compute(p, 2'000);
          tb.end_slot(p);
        }
      }
      tb.write(p, out,
               (p) * steps * panel +
                   (s) * panel,
               panel);
      tb.end_slot(p);
    }
    // A load-balancing phase every few steps.
    if (s % 8 == 7) {
      for (int p = 0; p < P; ++p) tb.compute(p, sec(15.0));
      tb.end_iteration();
    }
  }
  return tb.build();
}

double run_once(bool scheme, double* exec_s) {
  Simulator sim;
  StorageConfig scfg;
  scfg.node.policy = PolicyKind::kStaggered;
  StorageSystem storage(sim, scfg);

  CompiledProgram trace = record_trace(storage.striping(), 8, 48);
  CompileOptions opts;
  opts.enable_scheduling = scheme;
  opts.slack.max_slack = 600;
  const Compiled compiled =
      compile_trace(std::move(trace), storage.striping(), opts);

  RuntimeConfig rt;
  rt.use_runtime_scheduler = scheme;
  Cluster cluster(sim, storage, compiled, rt);
  cluster.run_to_completion();
  *exec_s = to_sec(cluster.exec_time());
  return storage.finalize().energy_j.value();
}

}  // namespace

int main() {
  std::printf("== profiling front end: irregular AMR-style workload ==\n\n");
  TextTable table({"configuration", "exec (s)", "disk energy (kJ)"});
  double exec = 0.0;
  const double without = run_once(false, &exec);
  table.add_row({"staggered, no scheme", TextTable::fmt(exec, 1),
                 TextTable::fmt(without / 1'000.0, 2)});
  const double with = run_once(true, &exec);
  table.add_row({"staggered + scheme", TextTable::fmt(exec, 1),
                 TextTable::fmt(with / 1'000.0, 2)});
  table.print();
  std::printf("\nscheme effect on energy: %+.1f%%\n",
              (with - without) / without * 100.0);
  return 0;
}
