// Building your own workload with the affine loop-nest IR.
//
// This example writes a small out-of-core 2-D stencil (Jacobi sweep over
// row panels) directly against the public compiler API, compiles it, and
// inspects what the slack analysis discovered — the intra-process
// producer-consumer windows that make scheduling possible — before running
// it on the simulated cluster.
//
//   $ ./examples/custom_workload
#include <cstdio>

#include "compiler/compile.h"
#include "driver/experiment.h"
#include "io/cluster.h"
#include "storage/storage_system.h"
#include "util/table.h"

using namespace dasched;

namespace {

/// Double-buffered Jacobi: each half-step reads the panels the previous
/// half-step wrote into the other buffer, so every read carries a
/// producer-consumer slack of one full sweep (~R slots).
///
/// for t = 0..T/2-1:
///   for r = 0..R-1:  read A[r] (written last half-step); compute; write B[r]
///   for r = 0..R-1:  read B[r];                          compute; write A[r]
LoopProgram stencil(StripingMap& striping, int T, int R, int P) {
  using AE = AffineExpr;
  const std::int64_t panel = kib(256).count();
  const FileId grid_a = striping.create_file(
      "stencil.grid_a", (R) * P * panel);
  const FileId grid_b = striping.create_file(
      "stencil.grid_b", (R) * P * panel);

  const AE r = AE::var("r");
  const AE p = AE::var("p");

  auto sweep = [&](FileId src, FileId dst) {
    return make_loop(
        "r", 0, AE(R - 1),
        {
            make_loop("_io", 0, 0,
                      {
                          make_read(src, r * (P * panel) + p * panel, panel),
                          make_compute(AE(5'000)),
                          make_write(dst, r * (P * panel) + p * panel, panel),
                      },
                      /*slot_loop=*/true),
            // Compute-only iterations: the scheduler's room to manoeuvre.
            make_loop("_pad", 0, 2, {make_compute(AE(3'000))},
                      /*slot_loop=*/true),
        },
        /*slot_loop=*/false);
  };

  LoopProgram prog;
  prog.body.push_back(make_loop(
      "t", 0, AE(T / 2 - 1),
      {
          sweep(grid_a, grid_b),
          sweep(grid_b, grid_a),
          // Residual-norm reduction after each full step: an idle phase the
          // multi-speed policy can exploit.
          make_loop("_norm", 0, 0, {make_compute(AE(8'000'000))},
                    /*slot_loop=*/true),
      },
      /*slot_loop=*/false));
  return prog;
}

}  // namespace

int main() {
  std::printf("== custom workload: out-of-core Jacobi stencil ==\n\n");

  Simulator sim;
  StorageConfig scfg;
  scfg.node.policy = PolicyKind::kHistory;
  StorageSystem storage(sim, scfg);

  const int T = 12;
  const int R = 64;
  const int P = 8;
  const LoopProgram prog = stencil(storage.striping(), T, R, P);

  CompileOptions opts;
  opts.sched.delta = 20;
  opts.sched.theta = 4;
  const Compiled compiled = compile(prog, P, storage.striping(), opts);

  // What did the slack analysis find?
  std::int64_t input_reads = 0;
  std::int64_t bounded = 0;
  SummaryStats slack_len;
  for (const AccessRecord& rec : compiled.program.reads) {
    if (rec.writer_process < 0) {
      ++input_reads;
    } else {
      ++bounded;
      slack_len.add(static_cast<double>(rec.slack_length()));
    }
  }
  std::printf("reads: %zu (%lld first-touch, %lld producer-consumer)\n",
              compiled.program.reads.size(),
              static_cast<long long>(input_reads),
              static_cast<long long>(bounded));
  std::printf("producer-consumer slack: mean %.1f slots (~one full sweep of %d\n"
              "4-slot panel steps)\n",
              slack_len.mean(), R);
  std::printf("scheduling advanced accesses by %.1f slots on average\n\n",
              compiled.sched_stats.mean_advance_slots);

  Cluster cluster(sim, storage, compiled, RuntimeConfig{});
  cluster.run_to_completion();

  const StorageStats stats = storage.finalize();
  const RuntimeStats rt = cluster.stats();
  TextTable table({"metric", "value"});
  table.add_row({"simulated exec", TextTable::fmt(to_sec(cluster.exec_time()), 2) + " s"});
  table.add_row({"disk energy", TextTable::fmt(stats.energy_j.value() / 1'000.0, 2) + " kJ"});
  table.add_row({"prefetches", std::to_string(rt.prefetches)});
  table.add_row({"buffer hits", std::to_string(rt.buffer_hits)});
  table.add_row({"RPM transitions", std::to_string(stats.rpm_changes)});
  table.print();
  return 0;
}
