// Policy comparison: one paper workload across all four power-saving
// mechanisms, with and without the compiler-directed scheme — the core
// result of the paper (Figs. 12(c)/(d), 13(a)/(b)) on a single application.
//
//   $ ./examples/policy_comparison [app] [scale]
//   e.g. ./examples/policy_comparison madbench2 0.5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.h"
#include "util/table.h"

using namespace dasched;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "sar";
  const double factor = argc > 2 ? std::atof(argv[2]) : 0.5;

  ExperimentConfig base;
  base.app = app;
  base.scale.factor = factor;
  base.scale.num_processes = 24;

  std::printf("== %s: %s ==\n", app.c_str(),
              app_by_name(app).description.c_str());
  std::printf("running the Default Scheme baseline...\n");
  const ExperimentResult baseline = run_experiment(base);
  std::printf("baseline: %.2f simulated minutes, %.1f kJ disk energy\n\n",
              baseline.exec_minutes(), baseline.energy_j.value() / 1'000.0);

  TextTable table({"policy", "scheme", "energy vs default", "exec change",
                   "spin-downs", "RPM changes", "buffer hits"});
  for (PolicyKind kind :
       {PolicyKind::kSimple, PolicyKind::kPrediction, PolicyKind::kHistory,
        PolicyKind::kStaggered}) {
    for (bool scheme : {false, true}) {
      ExperimentConfig cfg = base;
      cfg.policy = kind;
      cfg.use_scheme = scheme;
      const ExperimentResult r = run_experiment(cfg);
      table.add_row({to_string(kind), scheme ? "yes" : "no",
                     TextTable::pct(normalized_energy(r, baseline)),
                     TextTable::pct(degradation(r, baseline)),
                     std::to_string(r.storage.spin_downs),
                     std::to_string(r.storage.rpm_changes),
                     std::to_string(r.runtime.buffer_hits)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): history-based saves most; the scheme\n"
      "increases every policy's savings and reduces its degradation.\n");
  return 0;
}
