// Quickstart: the paper's running example (Fig. 5), end to end.
//
// Builds the out-of-core matrix multiplication of Fig. 5 in the affine
// loop-nest IR, compiles it (slack analysis + data access scheduling), shows
// a slice of the generated scheduling table, then simulates the program on
// the Table II storage architecture with a history-based multi-speed policy,
// with and without the compiler-directed scheme.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "compiler/compile.h"
#include "driver/experiment.h"
#include "io/cluster.h"
#include "power/policies.h"
#include "storage/storage_system.h"
#include "util/table.h"

using namespace dasched;

namespace {

/// Fig. 5: files U, V, W of R x R blocks; each process owns a band of rows.
///   for m = 1, R:   read next block of U
///     for n = 1, R: read next block of V; compute; write block of W
/// Iterations are finer than the I/O calls (compute-only pad slots), which
/// is what gives the scheduler room to move accesses; a mid-run checkpoint
/// phase provides the idleness the power policy exploits.
LoopProgram matmul(StripingMap& striping, int R, std::int64_t block, int P) {
  const FileId u = striping.create_file("U", (R) * R * block);
  const FileId v_file = striping.create_file("V", (R) * R * block);
  const FileId w = striping.create_file("W", (R) * R * block);

  using AE = AffineExpr;
  const AE m = AE::var("m");
  const AE n = AE::var("n");
  const AE p = AE::var("p");
  const int rows_per_proc = R / P;

  auto rows = [&](AE lo, AE hi) {
    return make_loop(
        "m", lo, hi,
        {
            make_loop("_u", 0, 0,
                      {make_read(u, m * (R * block) + n * 0 + 0, block),
                       make_compute(AE(8'000))},
                      /*slot_loop=*/true),
            make_loop("n", 0, AE(R - 1),
                      {
                          make_loop("_v", 0, 0,
                                    {make_read(v_file,
                                               n * (R * block) + n * block,
                                               block),
                                     make_compute(AE(8'000))},
                                    /*slot_loop=*/true),
                          make_loop("_pad", 0, 1, {make_compute(AE(6'000))},
                                    /*slot_loop=*/true),
                          make_loop("_w", 0, 0,
                                    {make_compute(AE(6'000)),
                                     make_write(w,
                                                m * (R * block) + n * block,
                                                block)},
                                    /*slot_loop=*/true),
                      },
                      /*slot_loop=*/false),
            // Row-band flush: a short compute-only stretch.
            make_loop("_d", 0, 0, {make_compute(AE(2'500'000))},
                      /*slot_loop=*/true),
        },
        /*slot_loop=*/false);
  };

  LoopProgram prog;
  prog.body.push_back(rows(p * rows_per_proc,
                           p * rows_per_proc + (rows_per_proc / 2 - 1)));
  // Mid-run checkpoint: the long idle phase.
  prog.body.push_back(make_loop("_ck", 0, 0, {make_compute(AE(40'000'000))},
                                /*slot_loop=*/true));
  prog.body.push_back(rows(p * rows_per_proc + rows_per_proc / 2,
                           p * rows_per_proc + (rows_per_proc - 1)));
  return prog;
}

double run(PolicyKind policy, bool scheme, double* exec_minutes) {
  Simulator sim;
  StorageConfig scfg = StorageConfig::paper_defaults();
  scfg.node.policy = policy;
  StorageSystem storage(sim, scfg);

  const int R = 64;
  const int P = 8;
  LoopProgram prog = matmul(storage.striping(), R, kib(128).count(), P);

  CompileOptions copts;
  copts.enable_scheduling = scheme;
  copts.slack.max_slack = 128;
  Compiled compiled = compile(prog, P, storage.striping(), copts);

  if (scheme && exec_minutes == nullptr) {
    std::printf("scheduling table (process 0, first 6 entries):\n");
    int shown = 0;
    for (const TableEntry& e : compiled.table.entries(0)) {
      if (++shown > 6) break;
      std::printf("  slot %-5lld access#%-5d sig %s  slack [%lld, %lld]\n",
                  static_cast<long long>(e.slot), e.rec.id,
                  e.rec.sig.to_string().c_str(),
                  static_cast<long long>(e.rec.begin),
                  static_cast<long long>(e.rec.end));
    }
  }

  RuntimeConfig rt;
  rt.use_runtime_scheduler = scheme;
  Cluster cluster(sim, storage, compiled, rt);
  cluster.run_to_completion();

  StorageStats stats = storage.finalize();
  if (exec_minutes != nullptr) *exec_minutes = to_minutes(cluster.exec_time());
  return stats.energy_j.value();
}

}  // namespace

int main() {
  std::printf("== quickstart: Fig. 5 matrix multiplication ==\n\n");

  // Show the compiler output once.
  run(PolicyKind::kHistory, /*scheme=*/true, nullptr);
  std::printf("\n");

  TextTable table({"configuration", "disk energy (J)", "exec (min)",
                   "energy vs default"});
  double exec = 0.0;
  const double base = run(PolicyKind::kNone, false, &exec);
  table.add_row({"default (no policy)", TextTable::fmt(base, 1),
                 TextTable::fmt(exec, 2), "100.0%"});
  for (bool scheme : {false, true}) {
    const double e = run(PolicyKind::kHistory, scheme, &exec);
    table.add_row({scheme ? "history + scheduling" : "history-based DRPM",
                   TextTable::fmt(e, 1), TextTable::fmt(exec, 2),
                   TextTable::pct(e / base)});
  }
  table.print();
  return 0;
}
