// Allocation-free cross-run reuse: the per-worker experiment workspace.
//
// `run_experiment` builds a full simulation stack — engine, storage system,
// workload, compiled schedule, runtime cluster — per call, which is exactly
// right for one-off runs but dominates grid throughput once the per-cell
// simulated work is small.  An `ExperimentWorkspace` owns one such stack and
// rebuilds it *in place* between runs: every layer exposes a `reset()` that
// restores its constructor postcondition while keeping its allocations warm
// (event-record pools, ladder arenas, cache tables, elevator slabs, join
// pools, waiter arenas, result histograms), so the second and later runs of
// a topology-compatible configuration perform zero heap allocations
// (tests/driver/workspace_alloc_test.cc proves it with an operator-new
// interposer).
//
// Reuse is bit-identical to fresh construction by the same argument that
// makes the engines deterministic: all event ordering is (time, seq) keyed,
// and seq values are dense per-stream counters rewound by the resets.  Slot
// indices, generation counters and free-list layout never enter an ordering
// key, so warm pools are observationally indistinguishable from cold ones
// (DESIGN.md §16; tests/driver/workspace_differential_test.cc).
//
// Shape changes are handled with a capacity high-water-mark policy: growing
// a dimension (more processes, more events) reallocates once and keeps the
// larger footprint; nothing ever shrinks.  A genuine topology change
// (classic <-> sharded, shard count, node count, ...) rebuilds the affected
// components cleanly.  A run that threw mid-flight poisons the workspace;
// the next run detects it and rebuilds from scratch instead of trusting
// half-mutated state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "util/annotations.h"

namespace dasched {

class SimAuditor;

class ExperimentWorkspace {
 public:
  ExperimentWorkspace() = default;
  ~ExperimentWorkspace();

  ExperimentWorkspace(const ExperimentWorkspace&) = delete;
  ExperimentWorkspace& operator=(const ExperimentWorkspace&) = delete;

  /// Makes the workspace ready to run `cfg`: resets compatible components in
  /// place, rebuilds the ones whose shape genuinely changed (engine kind or
  /// sharding, storage topology, workload identity).  Called by `run`;
  /// exposed for tests that want to observe the rebuild decisions.
  void prepare(const ExperimentConfig& cfg);

  /// Runs one experiment, reusing the warm stack.  Same contract as
  /// `run_experiment(cfg)` — audits when `cfg.audit` is set and throws on a
  /// violation — but returns a reference to workspace-owned storage that is
  /// valid until the next `run` or the workspace's destruction.
  const ExperimentResult& run(const ExperimentConfig& cfg);

  /// Same, auditing into a caller-provided auditor (enabled regardless of
  /// `cfg.audit`); violations land in the auditor instead of throwing.
  const ExperimentResult& run(const ExperimentConfig& cfg, SimAuditor* auditor);

  /// True after a run threw mid-flight (the in-run marker was never
  /// cleared); the next prepare() rebuilds from scratch and clears it.
  [[nodiscard]] bool poisoned() const { return in_run_; }

  // Rebuild telemetry for tests and benches: how often each expensive stage
  // actually ran (engine construction, workload build, schedule compile).
  [[nodiscard]] std::uint64_t engine_rebuilds() const { return engine_rebuilds_; }
  [[nodiscard]] std::uint64_t workload_builds() const { return workload_builds_; }
  [[nodiscard]] std::uint64_t compile_misses() const { return compile_misses_; }
  [[nodiscard]] std::uint64_t runs_completed() const { return runs_completed_; }

 private:
  /// Everything that forces an engine (and therefore storage + cluster)
  /// rebuild.  The classic engine is topology-independent — its pools grow
  /// monotonically via reserve_events — so its key is a constant; the
  /// sharded engine bakes the lane layout and lookahead into construction.
  struct EngineKey {
    bool is_sharded = false;
    int shards = 0;
    LaneAssign lane_assign = LaneAssign::kBalanced;
    int num_io_nodes = 0;
    SimTime lookahead = 0;
    // lane_costs inputs (kBalanced placement is a pure function of these):
    int num_processes = 0;
    int num_disks = 0;

    friend bool operator==(const EngineKey&, const EngineKey&) = default;
  };

  /// Identity of the built workload: `App::build` registers files on the
  /// striping map, so it must run exactly once per (app, scale, striping
  /// geometry) — rerunning it would append duplicate files.
  struct WorkloadKey {
    std::string app;
    int num_processes = 0;
    double factor = 0.0;
    int num_io_nodes = 0;
    Bytes stripe_size = 0;

    friend bool operator==(const WorkloadKey&, const WorkloadKey&) = default;
  };

  struct CompileSlot {
    std::uint64_t epoch = 0;  // workload_epoch_ the compile belongs to
    std::uint64_t tick = 0;   // LRU stamp
    CompileOptions opts;
    std::unique_ptr<Compiled> compiled;
  };

  [[nodiscard]] static EngineKey engine_key_of(const ExperimentConfig& cfg);
  /// Drops every component; the next prepare() builds from scratch.
  void clear_all();
  /// Detaches audit/telemetry observers from every layer (simulator lanes,
  /// storage, nodes, disks, policies); they are re-installed per run.
  void detach_observers();
  /// Compiled schedule for the current workload under `copts`, via the LRU
  /// cache (bypassed when a scheduler observer is attached — the observer
  /// must see every placement, so the compile must actually run).
  const Compiled& obtain_compiled(const CompileOptions& copts);
  /// The grid's steady-state path: on a topology-compatible rerun it must
  /// not allocate (enforced by the lint's hot-alloc rule + the operator-new
  /// interposition test); every sanctioned warm-up/miss-path allocation in
  /// the implementation carries an inline allow(hot-alloc) justification.
  DASCHED_HOT const ExperimentResult& run_impl(const ExperimentConfig& cfg,
                                               SimAuditor* auditor);

  // Engine (exactly one of the two is non-null once prepared).
  std::unique_ptr<ShardedSimulator> sharded_;
  std::unique_ptr<Simulator> serial_;
  std::optional<EngineKey> engine_key_;

  // Storage (optional<> so a topology change can re-emplace in place).
  std::optional<StorageSystem> storage_;

  // Workload: the built (lowered) trace, reused across compiles.
  std::optional<WorkloadKey> workload_key_;
  CompiledProgram trace_;
  std::uint64_t workload_epoch_ = 0;

  // Compiled-schedule LRU.  unique_ptr entries give every compile a stable
  // address, which is what lets Cluster::reset skip its read-site index
  // rebuild on reruns over the same compile.
  static constexpr std::size_t kCompileCacheSlots = 4;
  std::vector<CompileSlot> compile_cache_;
  std::unique_ptr<Compiled> observed_compile_;  // trace-mode bypass slot
  std::uint64_t compile_tick_ = 0;
  /// The compile the cluster is currently bound to; never evicted, so the
  /// address comparison inside Cluster::reset can never see an ABA reuse.
  const Compiled* bound_compiled_ = nullptr;

  // Runtime.
  std::unique_ptr<Cluster> cluster_;
  ExperimentResult result_;

  /// Set for the duration of every run; still set at the next prepare()
  /// means the previous run threw mid-flight and the stack is suspect.
  bool in_run_ = false;
  std::uint64_t engine_rebuilds_ = 0;
  std::uint64_t workload_builds_ = 0;
  std::uint64_t compile_misses_ = 0;
  std::uint64_t runs_completed_ = 0;
};

/// Workspace-reusing counterpart of `run_experiment(cfg)`: identical results
/// (bit-for-bit), amortized construction.  The classic entry points are thin
/// wrappers over a single-use workspace.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                              ExperimentWorkspace& ws);

}  // namespace dasched
