#include "driver/experiment.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "check/install.h"
#include "telemetry/analytics.h"
#include "telemetry/export.h"
#include "telemetry/install.h"
#include "telemetry/trace_io.h"

namespace dasched {

namespace {

/// Relative tolerance between the telemetry energy-by-state aggregate and
/// the run's scalar total.  Both sum the exact same accrual terms; only the
/// cross-disk/cross-state addition order differs, so anything beyond
/// re-association noise is a genuine telemetry bug.
constexpr double kEnergyRelEps = 1e-9;

void write_telemetry_artifacts(const std::string& dir,
                               const TraceBuffer& buffer, const TraceMeta& meta,
                               const TelemetrySummary& summary) {
  std::filesystem::create_directories(dir);
  if (!save_trace(dir + "/trace.bin", buffer, meta)) {
    throw std::runtime_error("telemetry: cannot write " + dir + "/trace.bin");
  }
  std::ofstream sj(dir + "/summary.json");
  std::ofstream cj(dir + "/trace.json");
  if (!sj || !cj) {
    throw std::runtime_error("telemetry: cannot open outputs under " + dir);
  }
  write_summary_json(sj, summary);
  write_chrome_trace(cj, buffer, meta);
}

}  // namespace

std::vector<double> default_lane_costs(const StorageConfig& storage,
                                       const WorkloadScale& scale) {
  // Event-count proxies, not microseconds.  Per client request the client
  // lane runs the compute timer, the request dispatch, one routing hop per
  // stripe piece, and the join completion; a node lane runs its share of
  // the cache-lookup / elevator / disk-service / response chain plus policy
  // timers.  Requests spread evenly over nodes (RAID-0 striping), so each
  // node lane carries ~1/num_io_nodes of the disk-side work, scaled by its
  // disk count for the per-disk service and policy events.
  const double clients = static_cast<double>(scale.num_processes);
  const double nodes = static_cast<double>(storage.num_io_nodes);
  const double disks = static_cast<double>(storage.node.num_disks);
  std::vector<double> costs(static_cast<std::size_t>(1 + storage.num_io_nodes));
  costs[0] = clients * 4.0;
  const double per_node = (clients * 4.0) / nodes + disks * 2.0;
  for (std::size_t i = 1; i < costs.size(); ++i) costs[i] = per_node;
  return costs;
}

std::size_t default_event_reserve(const StorageConfig& storage,
                                  const WorkloadScale& scale) {
  // Concurrently *outstanding* events, not total events: each client keeps
  // a bounded in-flight chain (compute timer + one piece per node of the
  // current request + join), each disk a bounded set (service completion,
  // policy timer, elevator kick), plus prefetch slots per node.  The slack
  // constant absorbs transient double-booking around hand-offs.
  const std::size_t clients = static_cast<std::size_t>(scale.num_processes);
  const std::size_t nodes = static_cast<std::size_t>(storage.num_io_nodes);
  const std::size_t disks = static_cast<std::size_t>(storage.node.num_disks);
  const std::size_t prefetch =
      static_cast<std::size_t>(storage.node.prefetch_depth);
  return clients * (2 + nodes) + nodes * (disks * 3 + prefetch + 2) + 64;
}

void validate_experiment_topology(const ExperimentConfig& cfg) {
  if (cfg.scale.num_processes < 1) {
    throw std::invalid_argument(
        "experiment: num_processes must be >= 1, got " +
        std::to_string(cfg.scale.num_processes));
  }
  if (cfg.storage.num_io_nodes < 1) {
    throw std::invalid_argument("experiment: num_io_nodes must be >= 1, got " +
                                std::to_string(cfg.storage.num_io_nodes));
  }
  if (cfg.shards < 0) {
    throw std::invalid_argument(
        "experiment: shards must be >= 0 (0 = classic serial engine), got " +
        std::to_string(cfg.shards));
  }
  if (cfg.shards > cfg.storage.num_io_nodes) {
    throw std::invalid_argument(
        "experiment: shards (" + std::to_string(cfg.shards) +
        ") exceeds num_io_nodes (" + std::to_string(cfg.storage.num_io_nodes) +
        "); every worker needs at least one I/O-node event lane");
  }
  if (cfg.shards > 0 && cfg.storage.network_latency <= SimTime{0}) {
    throw std::invalid_argument(
        "experiment: sharded execution derives its lookahead from "
        "storage.network_latency, which must be positive");
  }
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (!cfg.audit) return run_experiment(cfg, nullptr);
  // Internal auditor: a violation is a fatal correctness bug, so surface the
  // report as an exception rather than as statistics.
  SimAuditor auditor;
  ExperimentResult out = run_experiment(cfg, &auditor);
  if (!auditor.clean()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "' failed its invariant audit:\n" +
                             auditor.report());
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                SimAuditor* auditor) {
  validate_experiment_topology(cfg);
  const bool is_sharded = cfg.shards > 0;

  // The client-facing lane: lane 0 of the sharded engine, or the lone
  // classic simulator.  Everything client-side (cluster, compile, routing)
  // talks to this lane only.
  std::unique_ptr<ShardedSimulator> sharded;
  std::unique_ptr<Simulator> serial;
  const std::size_t reserve = default_event_reserve(cfg.storage, cfg.scale);
  if (is_sharded) {
    ShardedSimConfig scfg;
    scfg.num_streams = 1 + cfg.storage.num_io_nodes;
    scfg.shards = cfg.shards;
    scfg.lookahead = cfg.storage.network_latency;
    scfg.lane_assign = cfg.lane_assign;
    scfg.lane_costs = default_lane_costs(cfg.storage, cfg.scale);
    sharded = std::make_unique<ShardedSimulator>(scfg);
    // Every lane gets the full-topology bound: generous (a node lane holds
    // only its node's events) but cheap, and it keeps the steady state of
    // every lane allocation-free regardless of the lane→worker map.
    for (int s = 0; s < scfg.num_streams; ++s) {
      sharded->lane(s).reserve_events(reserve);
    }
  } else {
    serial = std::make_unique<Simulator>();
    serial->reserve_events(reserve);
  }
  Simulator& sim = is_sharded ? sharded->lane(0) : *serial;

  StorageConfig storage_cfg = cfg.storage;
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  std::optional<StorageSystem> storage_holder;
  if (is_sharded) {
    storage_holder.emplace(*sharded, storage_cfg);
  } else {
    storage_holder.emplace(sim, storage_cfg);
  }
  StorageSystem& storage = *storage_holder;

  // Hook the auditor in before anything can schedule an event, so the
  // event-queue ledger sees the complete history.  A sharded run gets one
  // auditor per lane (merged after the workers stop) so every check stays
  // on its lane's thread.
  InstalledChecks checks;
  ShardedAuditLanes audit_lanes;
  if (auditor != nullptr) {
    if (is_sharded) {
      install_audit_sharded(audit_lanes, *sharded, storage, cfg.policy,
                            cfg.policy_cfg);
    } else {
      checks =
          install_audit(*auditor, sim, storage, cfg.policy, cfg.policy_cfg);
    }
  }

  // The telemetry recorder attaches beside the audit checks (every layer
  // multiplexes observers) and is strictly passive.  Sharded runs record
  // one trace per lane and merge them deterministically after the run.
  std::unique_ptr<TelemetryRecorder> recorder;
  std::vector<std::unique_ptr<TelemetryRecorder>> lane_recorders;
  TelemetryRecorder* client_recorder = nullptr;
  if (cfg.telemetry.enabled()) {
    if (is_sharded) {
      install_telemetry_sharded(lane_recorders, cfg.telemetry.level, *sharded,
                                storage);
      client_recorder = lane_recorders[0].get();
    } else {
      recorder = std::make_unique<TelemetryRecorder>(cfg.telemetry.level);
      install_telemetry(*recorder, sim, storage);
      client_recorder = recorder.get();
    }
    TraceMeta& meta = client_recorder->meta();
    meta.app = cfg.app;
    meta.policy = static_cast<int>(cfg.policy);
    meta.scheme = cfg.use_scheme;
  }

  const App& app = app_by_name(cfg.app);
  CompiledProgram trace = app.build(storage.striping(), cfg.scale);

  CompileOptions copts = cfg.compile;
  copts.enable_scheduling = cfg.use_scheme;
  copts.slack.length_unit = app.length_unit;
  copts.slack.max_slack = cfg.max_slack;
  if (client_recorder != nullptr &&
      client_recorder->level() >= TraceLevel::kFull) {
    copts.sched_observer = client_recorder;
  }
  Compiled compiled = compile_trace(std::move(trace), storage.striping(), copts);
  if (auditor != nullptr) {
    audit_compiled(*auditor, compiled, copts.sched, copts.enable_scheduling);
  }

  RuntimeConfig rt = cfg.runtime;
  rt.use_runtime_scheduler = cfg.use_scheme;
  Cluster cluster(sim, storage, compiled, rt);
  // Run until the application completes; power-policy timers may keep the
  // event queue alive past that point, and accounting must stop at the
  // application's end (the paper's energies cover program execution).  The
  // sharded engine checks the stop predicate at window barriers, so it
  // stops at the end of the window containing the last finish — a bounded
  // (< lookahead), deterministic tail shared by every shard count.
  if (is_sharded) {
    cluster.start();
    sharded->run([&cluster] { return cluster.all_finished(); });
  } else {
    cluster.run_to_completion();
  }

  if (!cluster.all_finished()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "': simulation drained but clients are stuck");
  }

  ExperimentResult out;
  out.app = cfg.app;
  out.policy = cfg.policy;
  out.scheme = cfg.use_scheme;
  out.exec_time = cluster.exec_time();
  out.storage = storage.finalize();
  out.energy_j = out.storage.energy_j;
  out.runtime = cluster.stats();
  out.sched = compiled.sched_stats;
  out.events = is_sharded ? sharded->events_executed() : sim.events_executed();

  if (client_recorder != nullptr) {
    // finalize() above fired the trailing accruals, so the trace now tiles
    // every disk's timeline completely.
    client_recorder->meta().end_time = sim.now();
    TraceBuffer merged;
    const TraceBuffer* buffer = &client_recorder->buffer();
    if (is_sharded) {
      std::vector<const TraceBuffer*> lanes;
      lanes.reserve(lane_recorders.size());
      for (const auto& r : lane_recorders) lanes.push_back(&r->buffer());
      merge_traces(lanes, merged);
      buffer = &merged;
    }
    auto summary = std::make_shared<TelemetrySummary>(
        analyze_trace(*buffer, client_recorder->meta()));

    // Reconcile the energy-by-state breakdown against the scalar total.
    // Under an auditor this extends the energy-conservation invariant;
    // without one a divergence is a fatal telemetry bug.
    EnergyConservationCheck* energy_check =
        is_sharded ? audit_lanes.energy : checks.energy;
    if (energy_check != nullptr) {
      if (is_sharded) merge_sharded_ledgers(audit_lanes);
      energy_check->cross_check_aggregate(summary->energy_by_state_j,
                                          out.energy_j, sim.now());
    }
    const double scale = std::max(std::fabs(out.energy_j.value()), 1.0);
    if (std::fabs((summary->energy_total_j - out.energy_j).value()) >
        kEnergyRelEps * scale) {
      throw std::runtime_error(
          "telemetry: energy-by-state breakdown diverges from the scalar "
          "total for experiment '" +
          cfg.app + "'");
    }

    if (!cfg.telemetry.dir.empty()) {
      write_telemetry_artifacts(cfg.telemetry.dir, *buffer,
                                client_recorder->meta(), *summary);
    }
    out.telemetry = std::move(summary);
  }

  if (auditor != nullptr) {
    if (is_sharded) finalize_audit_sharded(audit_lanes, *auditor);
    auditor->finalize();
    out.audited = true;
    out.audit_violations = auditor->violations_total();
  }
  return out;
}

}  // namespace dasched
