#include "driver/experiment.h"

#include <stdexcept>

namespace dasched {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  Simulator sim;

  StorageConfig storage_cfg = cfg.storage;
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  StorageSystem storage(sim, storage_cfg);

  const App& app = app_by_name(cfg.app);
  CompiledProgram trace = app.build(storage.striping(), cfg.scale);

  CompileOptions copts = cfg.compile;
  copts.enable_scheduling = cfg.use_scheme;
  copts.slack.length_unit = app.length_unit;
  copts.slack.max_slack = cfg.max_slack;
  Compiled compiled = compile_trace(std::move(trace), storage.striping(), copts);

  RuntimeConfig rt = cfg.runtime;
  rt.use_runtime_scheduler = cfg.use_scheme;
  Cluster cluster(sim, storage, compiled, rt);
  // Run until the application completes; power-policy timers may keep the
  // event queue alive past that point, and accounting must stop at the
  // application's end (the paper's energies cover program execution).
  cluster.run_to_completion();

  if (!cluster.all_finished()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "': simulation drained but clients are stuck");
  }

  ExperimentResult out;
  out.app = cfg.app;
  out.policy = cfg.policy;
  out.scheme = cfg.use_scheme;
  out.exec_time = cluster.exec_time();
  out.storage = storage.finalize();
  out.energy_j = out.storage.energy_j;
  out.runtime = cluster.stats();
  out.sched = compiled.sched_stats;
  out.events = sim.events_executed();
  return out;
}

}  // namespace dasched
