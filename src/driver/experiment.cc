#include "driver/experiment.h"

#include <stdexcept>
#include <string>

#include "driver/workspace.h"

namespace dasched {

std::vector<double> default_lane_costs(const StorageConfig& storage,
                                       const WorkloadScale& scale) {
  // Event-count proxies, not microseconds.  Per client request the client
  // lane runs the compute timer, the request dispatch, one routing hop per
  // stripe piece, and the join completion; a node lane runs its share of
  // the cache-lookup / elevator / disk-service / response chain plus policy
  // timers.  Requests spread evenly over nodes (RAID-0 striping), so each
  // node lane carries ~1/num_io_nodes of the disk-side work, scaled by its
  // disk count for the per-disk service and policy events.
  const double clients = static_cast<double>(scale.num_processes);
  const double nodes = static_cast<double>(storage.num_io_nodes);
  const double disks = static_cast<double>(storage.node.num_disks);
  std::vector<double> costs(static_cast<std::size_t>(1 + storage.num_io_nodes));
  costs[0] = clients * 4.0;
  const double per_node = (clients * 4.0) / nodes + disks * 2.0;
  for (std::size_t i = 1; i < costs.size(); ++i) costs[i] = per_node;
  return costs;
}

std::size_t default_event_reserve(const StorageConfig& storage,
                                  const WorkloadScale& scale) {
  // Concurrently *outstanding* events, not total events: each client keeps
  // a bounded in-flight chain (compute timer + one piece per node of the
  // current request + join), each disk a bounded set (service completion,
  // policy timer, elevator kick), plus prefetch slots per node.  The slack
  // constant absorbs transient double-booking around hand-offs.
  const std::size_t clients = static_cast<std::size_t>(scale.num_processes);
  const std::size_t nodes = static_cast<std::size_t>(storage.num_io_nodes);
  const std::size_t disks = static_cast<std::size_t>(storage.node.num_disks);
  const std::size_t prefetch =
      static_cast<std::size_t>(storage.node.prefetch_depth);
  return clients * (2 + nodes) + nodes * (disks * 3 + prefetch + 2) + 64;
}

void validate_experiment_topology(const ExperimentConfig& cfg) {
  if (cfg.scale.num_processes < 1) {
    throw ConfigError("scale.num_processes",
                      "experiment: num_processes must be >= 1, got " +
                          std::to_string(cfg.scale.num_processes));
  }
  if (cfg.storage.num_io_nodes < 1) {
    throw ConfigError("storage.num_io_nodes",
                      "experiment: num_io_nodes must be >= 1, got " +
                          std::to_string(cfg.storage.num_io_nodes));
  }
  if (cfg.shards < 0) {
    throw ConfigError(
        "shards",
        "experiment: shards must be >= 0 (0 = classic serial engine), got " +
            std::to_string(cfg.shards));
  }
  if (cfg.shards > cfg.storage.num_io_nodes) {
    throw ConfigError(
        "shards",
        "experiment: shards (" + std::to_string(cfg.shards) +
            ") exceeds num_io_nodes (" +
            std::to_string(cfg.storage.num_io_nodes) +
            "); every worker needs at least one I/O-node event lane");
  }
  if (cfg.shards > 0 && cfg.storage.network_latency <= SimTime{0}) {
    throw ConfigError(
        "storage.network_latency",
        "experiment: sharded execution derives its lookahead from "
        "storage.network_latency, which must be positive");
  }
}

// The classic entry points build the stack fresh per call by running a
// single-use workspace: the workspace's first run constructs every component
// the same way the pre-workspace code did (and bit-identity of reuse makes
// the distinction unobservable anyway — see DESIGN.md §16).

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ExperimentWorkspace ws;
  return ws.run(cfg);
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                SimAuditor* auditor) {
  ExperimentWorkspace ws;
  return ws.run(cfg, auditor);
}

}  // namespace dasched
