#include "driver/experiment.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "check/install.h"
#include "telemetry/analytics.h"
#include "telemetry/export.h"
#include "telemetry/install.h"
#include "telemetry/trace_io.h"

namespace dasched {

namespace {

/// Relative tolerance between the telemetry energy-by-state aggregate and
/// the run's scalar total.  Both sum the exact same accrual terms; only the
/// cross-disk/cross-state addition order differs, so anything beyond
/// re-association noise is a genuine telemetry bug.
constexpr double kEnergyRelEps = 1e-9;

void write_telemetry_artifacts(const std::string& dir,
                               const TelemetryRecorder& recorder,
                               const TelemetrySummary& summary) {
  std::filesystem::create_directories(dir);
  if (!save_trace(dir + "/trace.bin", recorder.buffer(), recorder.meta())) {
    throw std::runtime_error("telemetry: cannot write " + dir + "/trace.bin");
  }
  std::ofstream sj(dir + "/summary.json");
  std::ofstream cj(dir + "/trace.json");
  if (!sj || !cj) {
    throw std::runtime_error("telemetry: cannot open outputs under " + dir);
  }
  write_summary_json(sj, summary);
  write_chrome_trace(cj, recorder.buffer(), recorder.meta());
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (!cfg.audit) return run_experiment(cfg, nullptr);
  // Internal auditor: a violation is a fatal correctness bug, so surface the
  // report as an exception rather than as statistics.
  SimAuditor auditor;
  ExperimentResult out = run_experiment(cfg, &auditor);
  if (!auditor.clean()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "' failed its invariant audit:\n" +
                             auditor.report());
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                SimAuditor* auditor) {
  Simulator sim;

  StorageConfig storage_cfg = cfg.storage;
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  StorageSystem storage(sim, storage_cfg);

  // Hook the auditor in before anything can schedule an event, so the
  // event-queue ledger sees the complete history.
  InstalledChecks checks;
  if (auditor != nullptr) {
    checks = install_audit(*auditor, sim, storage, cfg.policy, cfg.policy_cfg);
  }

  // The telemetry recorder attaches beside the audit checks (every layer
  // multiplexes observers) and is strictly passive.
  std::unique_ptr<TelemetryRecorder> recorder;
  if (cfg.telemetry.enabled()) {
    recorder = std::make_unique<TelemetryRecorder>(cfg.telemetry.level);
    TraceMeta& meta = recorder->meta();
    meta.app = cfg.app;
    meta.policy = static_cast<int>(cfg.policy);
    meta.scheme = cfg.use_scheme;
    install_telemetry(*recorder, sim, storage);
  }

  const App& app = app_by_name(cfg.app);
  CompiledProgram trace = app.build(storage.striping(), cfg.scale);

  CompileOptions copts = cfg.compile;
  copts.enable_scheduling = cfg.use_scheme;
  copts.slack.length_unit = app.length_unit;
  copts.slack.max_slack = cfg.max_slack;
  if (recorder != nullptr && recorder->level() >= TraceLevel::kFull) {
    copts.sched_observer = recorder.get();
  }
  Compiled compiled = compile_trace(std::move(trace), storage.striping(), copts);
  if (auditor != nullptr) {
    audit_compiled(*auditor, compiled, copts.sched, copts.enable_scheduling);
  }

  RuntimeConfig rt = cfg.runtime;
  rt.use_runtime_scheduler = cfg.use_scheme;
  Cluster cluster(sim, storage, compiled, rt);
  // Run until the application completes; power-policy timers may keep the
  // event queue alive past that point, and accounting must stop at the
  // application's end (the paper's energies cover program execution).
  cluster.run_to_completion();

  if (!cluster.all_finished()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "': simulation drained but clients are stuck");
  }

  ExperimentResult out;
  out.app = cfg.app;
  out.policy = cfg.policy;
  out.scheme = cfg.use_scheme;
  out.exec_time = cluster.exec_time();
  out.storage = storage.finalize();
  out.energy_j = out.storage.energy_j;
  out.runtime = cluster.stats();
  out.sched = compiled.sched_stats;
  out.events = sim.events_executed();

  if (recorder != nullptr) {
    // finalize() above fired the trailing accruals, so the trace now tiles
    // every disk's timeline completely.
    recorder->meta().end_time = sim.now();
    auto summary = std::make_shared<TelemetrySummary>(
        analyze_trace(recorder->buffer(), recorder->meta()));

    // Reconcile the energy-by-state breakdown against the scalar total.
    // Under an auditor this extends the energy-conservation invariant;
    // without one a divergence is a fatal telemetry bug.
    if (checks.energy != nullptr) {
      checks.energy->cross_check_aggregate(summary->energy_by_state_j,
                                           out.energy_j, sim.now());
    }
    const double scale = std::max(std::fabs(out.energy_j.value()), 1.0);
    if (std::fabs((summary->energy_total_j - out.energy_j).value()) >
        kEnergyRelEps * scale) {
      throw std::runtime_error(
          "telemetry: energy-by-state breakdown diverges from the scalar "
          "total for experiment '" +
          cfg.app + "'");
    }

    if (!cfg.telemetry.dir.empty()) {
      write_telemetry_artifacts(cfg.telemetry.dir, *recorder, *summary);
    }
    out.telemetry = std::move(summary);
  }

  if (auditor != nullptr) {
    auditor->finalize();
    out.audited = true;
    out.audit_violations = auditor->violations_total();
  }
  return out;
}

}  // namespace dasched
