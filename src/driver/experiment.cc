#include "driver/experiment.h"

#include <memory>
#include <stdexcept>

#include "check/install.h"

namespace dasched {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (!cfg.audit) return run_experiment(cfg, nullptr);
  // Internal auditor: a violation is a fatal correctness bug, so surface the
  // report as an exception rather than as statistics.
  SimAuditor auditor;
  ExperimentResult out = run_experiment(cfg, &auditor);
  if (!auditor.clean()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "' failed its invariant audit:\n" +
                             auditor.report());
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                SimAuditor* auditor) {
  Simulator sim;

  StorageConfig storage_cfg = cfg.storage;
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  StorageSystem storage(sim, storage_cfg);

  // Hook the auditor in before anything can schedule an event, so the
  // event-queue ledger sees the complete history.
  if (auditor != nullptr) {
    install_audit(*auditor, sim, storage, cfg.policy, cfg.policy_cfg);
  }

  const App& app = app_by_name(cfg.app);
  CompiledProgram trace = app.build(storage.striping(), cfg.scale);

  CompileOptions copts = cfg.compile;
  copts.enable_scheduling = cfg.use_scheme;
  copts.slack.length_unit = app.length_unit;
  copts.slack.max_slack = cfg.max_slack;
  Compiled compiled = compile_trace(std::move(trace), storage.striping(), copts);
  if (auditor != nullptr) {
    audit_compiled(*auditor, compiled, copts.sched, copts.enable_scheduling);
  }

  RuntimeConfig rt = cfg.runtime;
  rt.use_runtime_scheduler = cfg.use_scheme;
  Cluster cluster(sim, storage, compiled, rt);
  // Run until the application completes; power-policy timers may keep the
  // event queue alive past that point, and accounting must stop at the
  // application's end (the paper's energies cover program execution).
  cluster.run_to_completion();

  if (!cluster.all_finished()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "': simulation drained but clients are stuck");
  }

  ExperimentResult out;
  out.app = cfg.app;
  out.policy = cfg.policy;
  out.scheme = cfg.use_scheme;
  out.exec_time = cluster.exec_time();
  out.storage = storage.finalize();
  out.energy_j = out.storage.energy_j;
  out.runtime = cluster.stats();
  out.sched = compiled.sched_stats;
  out.events = sim.events_executed();
  if (auditor != nullptr) {
    auditor->finalize();
    out.audited = true;
    out.audit_violations = auditor->violations_total();
  }
  return out;
}

}  // namespace dasched
