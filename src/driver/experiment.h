// End-to-end experiment runner.
//
// One experiment = one application × one power policy × scheme on/off,
// executed on a freshly built simulator + storage system.  Every bench
// binary (and the integration tests) goes through `run_experiment`, so the
// paper's pipeline — workload, compile, simulate, measure — lives in exactly
// one place.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "compiler/compile.h"
#include "io/cluster.h"
#include "power/policies.h"
#include "sim/sharded_sim.h"
#include "storage/storage_system.h"
#include "telemetry/events.h"
#include "util/histogram.h"
#include "workload/app.h"

/// Build-time default of `ExperimentConfig::audit`; the DASCHED_AUDIT CMake
/// option sets it to 1 so every experiment in the tree runs audited.
#ifndef DASCHED_AUDIT_DEFAULT
#define DASCHED_AUDIT_DEFAULT 0
#endif

namespace dasched {

class SimAuditor;
struct TelemetrySummary;

/// Configuration rejection with the offending field attached.  Subclasses
/// std::invalid_argument so existing catch sites keep working; daemon error
/// frames and CLI diagnostics use `field()` to tell clients *which* knob to
/// fix instead of forwarding a bare message.
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& message)
      : std::invalid_argument(message), field_(std::move(field)) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

struct ExperimentConfig {
  std::string app = "hf";
  WorkloadScale scale;
  StorageConfig storage;
  CompileOptions compile;
  RuntimeConfig runtime;
  /// Policy installed on every disk (kNone = the paper's Default Scheme).
  PolicyKind policy = PolicyKind::kNone;
  PolicyConfig policy_cfg;
  /// Enables the paper's contribution: compile-time scheduling + runtime
  /// prefetching.  False reproduces the "without our approach" runs.
  bool use_scheme = false;
  std::uint64_t seed = 1;

  /// Runs the experiment under the invariant auditor (src/check).  A
  /// violation makes `run_experiment` throw with the audit report, so a
  /// DASCHED_AUDIT=ON build turns every test into an invariant test.
  bool audit = DASCHED_AUDIT_DEFAULT != 0;

  /// Telemetry capture (src/telemetry).  Off by default; when enabled the
  /// run is traced, the summary lands in ExperimentResult::telemetry, the
  /// energy-by-state breakdown is reconciled against the scalar total, and
  /// `telemetry.dir` (if set) receives trace.bin / summary.json /
  /// trace.json.  The recorder is passive: enabling it cannot change any
  /// simulation result.
  TelemetryConfig telemetry;

  /// Slack bound: how far (in slots) the compiler may hoist an access.
  /// 0 = the full producer-to-consumer window (paper semantics); the runtime
  /// buffer capacity is then the only limit on hoisting.
  Slot max_slack = 600;

  /// Intra-run sharding (DESIGN.md §14).  0 = the classic serial engine
  /// (bit-identical to every earlier release).  N >= 1 selects the sharded
  /// engine with N worker threads over per-I/O-node event lanes; results
  /// are bit-identical for every N (the conservative-lookahead protocol),
  /// so `shards=1` is the serial reference the differential tests compare
  /// against.  The sharded engine differs from the classic one only in the
  /// stop instant: it stops at the end of the lookahead window containing
  /// the last client finish (< one network latency of extra simulated
  /// time), so its absolute energies differ from `shards=0` by that
  /// bounded, deterministic tail.  Requires 1 <= shards <= num_io_nodes.
  int shards = 0;

  /// Lane→worker placement for sharded runs (DESIGN.md §15.3).  A pure
  /// wall-clock knob: results are bit-identical for either value (the
  /// differential tests and the hexfloat probe enforce it), so the
  /// LPT-balanced map is the default and round_robin remains for A/B runs.
  LaneAssign lane_assign = LaneAssign::kBalanced;
};

/// The relative event-load weight of each lane (stream 0 = client layer,
/// stream 1+i = I/O node i) that `LaneAssign::kBalanced` feeds to the LPT
/// packer.  A pure function of the topology — the client lane carries every
/// request's generation/routing/join events, a node lane carries the
/// per-node cache/elevator/disk chain of its share of requests — so the
/// lane→worker map stays reproducible across runs and hosts.
[[nodiscard]] std::vector<double> default_lane_costs(const StorageConfig& storage,
                                                     const WorkloadScale& scale);

/// Topology-derived bound on concurrently outstanding events, used to
/// pre-reserve the event queue and record pool (Simulator::reserve_events)
/// so the steady state performs zero queue allocations.  Deliberately
/// generous — memory cost is ~56 bytes per slot — but growth past it is
/// still legal (the queues keep their annotated growth paths).
[[nodiscard]] std::size_t default_event_reserve(const StorageConfig& storage,
                                                const WorkloadScale& scale);

struct ExperimentResult {
  std::string app;
  PolicyKind policy = PolicyKind::kNone;
  bool scheme = false;

  SimTime exec_time = 0;
  Joules energy_j{};
  StorageStats storage;
  RuntimeStats runtime;
  ScheduleStats sched;
  std::int64_t events = 0;

  /// True when the run was audited; `audit_violations` is the total count
  /// (only ever non-zero with an external auditor, which does not throw).
  bool audited = false;
  std::int64_t audit_violations = 0;

  /// Analytics summary of the traced run; null when telemetry was off.
  /// Shared so grid sinks can aggregate without copying the histograms.
  std::shared_ptr<const TelemetrySummary> telemetry;

  [[nodiscard]] double exec_minutes() const { return to_minutes(exec_time); }
};

/// Validates the run topology: process/node counts must be positive (any
/// size is accepted — the paper's 8-node/32-client evaluation cap is a
/// default, not a limit), and a sharded run needs 1 <= shards <=
/// num_io_nodes plus a positive network latency (the lookahead source).
/// Throws ConfigError (a std::invalid_argument carrying the offending field
/// name) with a specific message otherwise.  Called by run_experiment;
/// exposed for tools, the daemon, and tests.
void validate_experiment_topology(const ExperimentConfig& cfg);

/// Runs a single experiment to completion.  Throws std::runtime_error if the
/// simulation deadlocks (a client never finishes) or if `cfg.audit` is set
/// and an invariant check fires.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Same, auditing into a caller-provided auditor (enabled regardless of
/// `cfg.audit`).  Violations are reported through the auditor instead of
/// throwing, so tools can print the full report.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                              SimAuditor* auditor);

/// Energy of `r` normalized to `baseline` (the paper's Fig. 12c/d y-axis).
[[nodiscard]] inline double normalized_energy(const ExperimentResult& r,
                                              const ExperimentResult& baseline) {
  return baseline.energy_j == Joules{0.0} ? 0.0
                                          : r.energy_j / baseline.energy_j;
}

/// Execution-time degradation of `r` relative to `baseline` (Fig. 13a/b).
[[nodiscard]] inline double degradation(const ExperimentResult& r,
                                        const ExperimentResult& baseline) {
  return baseline.exec_time == SimTime{0}
             ? 0.0
             : static_cast<double>(r.exec_time - baseline.exec_time) /
                   static_cast<double>(baseline.exec_time);
}

}  // namespace dasched
