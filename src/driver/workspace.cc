#include "driver/workspace.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "check/install.h"
#include "telemetry/analytics.h"
#include "telemetry/export.h"
#include "telemetry/install.h"
#include "telemetry/trace_io.h"
#include "util/annotations.h"

namespace dasched {

namespace {

/// Relative tolerance between the telemetry energy-by-state aggregate and
/// the run's scalar total.  Both sum the exact same accrual terms; only the
/// cross-disk/cross-state addition order differs, so anything beyond
/// re-association noise is a genuine telemetry bug.
constexpr double kEnergyRelEps = 1e-9;

void write_telemetry_artifacts(const std::string& dir,
                               const TraceBuffer& buffer, const TraceMeta& meta,
                               const TelemetrySummary& summary) {
  // dasched-lint: allow(hot-alloc): artifact writing, opt-in telemetry only
  std::filesystem::create_directories(dir);
  // dasched-lint: allow(hot-alloc): artifact writing, opt-in telemetry only
  if (!save_trace(dir + "/trace.bin", buffer, meta)) {
    // dasched-lint: allow(hot-alloc): fatal-error path
    throw std::runtime_error("telemetry: cannot write " + dir + "/trace.bin");
  }
  // dasched-lint: allow(hot-alloc): artifact writing, opt-in telemetry only
  std::ofstream sj(dir + "/summary.json");
  // dasched-lint: allow(hot-alloc): artifact writing, opt-in telemetry only
  std::ofstream cj(dir + "/trace.json");
  if (!sj || !cj) {
    // dasched-lint: allow(hot-alloc): fatal-error path
    throw std::runtime_error("telemetry: cannot open outputs under " + dir);
  }
  write_summary_json(sj, summary);
  write_chrome_trace(cj, buffer, meta);
}

}  // namespace

ExperimentWorkspace::~ExperimentWorkspace() {
  // Layers hold raw pointers to per-run observers; they are long gone by
  // now, but the stack is torn down here anyway.
}

ExperimentWorkspace::EngineKey ExperimentWorkspace::engine_key_of(
    const ExperimentConfig& cfg) {
  EngineKey key;
  key.is_sharded = cfg.shards > 0;
  if (key.is_sharded) {
    key.shards = cfg.shards;
    key.lane_assign = cfg.lane_assign;
    key.num_io_nodes = cfg.storage.num_io_nodes;
    key.lookahead = cfg.storage.network_latency;
    key.num_processes = cfg.scale.num_processes;
    key.num_disks = cfg.storage.node.num_disks;
  }
  // The classic engine's key stays all-default: one serial simulator serves
  // any topology, growing its pools monotonically via reserve_events.
  return key;
}

void ExperimentWorkspace::clear_all() {
  cluster_.reset();
  bound_compiled_ = nullptr;
  compile_cache_.clear();
  observed_compile_.reset();
  storage_.reset();
  workload_key_.reset();
  sharded_.reset();
  serial_.reset();
  engine_key_.reset();
}

void ExperimentWorkspace::detach_observers() {
  if (sharded_ != nullptr) {
    for (int s = 0; s < sharded_->num_streams(); ++s) {
      sharded_->lane(s).set_observer(nullptr);
    }
  } else if (serial_ != nullptr) {
    serial_->set_observer(nullptr);
  }
  if (!storage_.has_value()) return;
  storage_->set_observer(nullptr);
  for (int i = 0; i < storage_->num_io_nodes(); ++i) {
    IoNode& node = storage_->node(i);
    node.set_observer(nullptr);
    for (int d = 0; d < node.num_disks(); ++d) {
      node.disk(d).set_observer(nullptr);
      if (PowerPolicy* policy = node.policy(d)) policy->set_observer(nullptr);
    }
  }
}

void ExperimentWorkspace::prepare(const ExperimentConfig& cfg) {
  validate_experiment_topology(cfg);
  if (in_run_) {
    // The previous run threw mid-flight; nothing below the driver promises
    // exception-safe partial state, so rebuild everything from scratch.
    clear_all();
    in_run_ = false;
  }

  const EngineKey key = engine_key_of(cfg);
  if (!engine_key_.has_value() || !(*engine_key_ == key)) {
    // Everything holding references into the old engine dies with it.
    cluster_.reset();
    bound_compiled_ = nullptr;
    storage_.reset();
    workload_key_.reset();  // the striping map died with the storage system
    sharded_.reset();
    serial_.reset();
    if (key.is_sharded) {
      ShardedSimConfig scfg;
      scfg.num_streams = 1 + cfg.storage.num_io_nodes;
      scfg.shards = cfg.shards;
      scfg.lookahead = cfg.storage.network_latency;
      scfg.lane_assign = cfg.lane_assign;
      scfg.lane_costs = default_lane_costs(cfg.storage, cfg.scale);
      // dasched-lint: allow(hot-alloc): engine rebuild, topology change only
      sharded_ = std::make_unique<ShardedSimulator>(scfg);
    } else {
      // dasched-lint: allow(hot-alloc): engine rebuild, topology change only
      serial_ = std::make_unique<Simulator>();
    }
    engine_key_ = key;
    ++engine_rebuilds_;
  } else if (sharded_ != nullptr) {
    sharded_->reset();
  } else {
    serial_->reset();
  }
  // Grow-only and idempotent, so the classic engine can serve a bigger
  // topology without a rebuild (capacity high-water-mark policy).
  const std::size_t reserve = default_event_reserve(cfg.storage, cfg.scale);
  if (sharded_ != nullptr) {
    for (int s = 0; s < sharded_->num_streams(); ++s) {
      sharded_->lane(s).reserve_events(reserve);
    }
  } else {
    serial_->reserve_events(reserve);
  }

  StorageConfig storage_cfg = cfg.storage;  // all scalars; no allocation
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  if (!storage_.has_value()) {
    if (sharded_ != nullptr) {
      storage_.emplace(*sharded_, storage_cfg);
    } else {
      storage_.emplace(*serial_, storage_cfg);
    }
    workload_key_.reset();
  } else {
    storage_->reset(storage_cfg);
  }

  const bool workload_ok =
      workload_key_.has_value() && workload_key_->app == cfg.app &&
      workload_key_->num_processes == cfg.scale.num_processes &&
      workload_key_->factor == cfg.scale.factor &&
      workload_key_->num_io_nodes == cfg.storage.num_io_nodes &&
      workload_key_->stripe_size == cfg.storage.stripe_size;
  if (!workload_ok) {
    // App::build creates files on the striping map, so the map must be
    // emptied first; the deterministic rebuild then reproduces the exact
    // same file->offset mapping a fresh system would produce.
    storage_->striping().reset();
    const App& app = app_by_name(cfg.app);
    trace_ = app.build(storage_->striping(), cfg.scale);
    workload_key_ = WorkloadKey{cfg.app, cfg.scale.num_processes,
                                cfg.scale.factor, cfg.storage.num_io_nodes,
                                cfg.storage.stripe_size};
    ++workload_epoch_;
    ++workload_builds_;
  }
}

const Compiled& ExperimentWorkspace::obtain_compiled(
    const CompileOptions& copts) {
  ++compile_tick_;
  if (copts.sched_observer != nullptr) {
    // The observer must see every placement, so the compile actually runs.
    // Allocate the fresh result before releasing the old one: with both
    // alive at once the addresses must differ, so Cluster::reset's
    // same-address fast path can never mistake new content for old.
    CompiledProgram copy = trace_;
    // dasched-lint: allow(hot-alloc): trace-mode bypass, compiles every run
    auto fresh = std::make_unique<Compiled>(compile_trace(
        // dasched-lint: allow(hot-alloc): trace-mode bypass, compiles anew
        std::move(copy), storage_->striping(), copts));
    observed_compile_ = std::move(fresh);
    ++compile_misses_;
    return *observed_compile_;
  }
  for (CompileSlot& slot : compile_cache_) {
    if (slot.compiled != nullptr && slot.epoch == workload_epoch_ &&
        slot.opts == copts) {
      slot.tick = compile_tick_;
      return *slot.compiled;
    }
  }
  ++compile_misses_;
  CompiledProgram copy = trace_;  // compile_trace consumes its input
  // dasched-lint: allow(hot-alloc): compile-cache miss path, bounded by LRU
  auto fresh = std::make_unique<Compiled>(compile_trace(
      // dasched-lint: allow(hot-alloc): compile-cache miss path
      std::move(copy), storage_->striping(), copts));
  CompileSlot* victim = nullptr;
  if (compile_cache_.size() < kCompileCacheSlots) {
    // dasched-lint: allow(hot-alloc): cache warm-up, at most 4 slots ever
    victim = &compile_cache_.emplace_back();
  } else {
    // Evict the least recently used entry, but never the compile the
    // cluster is still bound to — freeing it could let a later allocation
    // reuse its address and defeat the same-address rerun fast path.
    for (CompileSlot& slot : compile_cache_) {
      if (slot.compiled.get() == bound_compiled_) continue;
      if (victim == nullptr || slot.tick < victim->tick) victim = &slot;
    }
  }
  victim->epoch = workload_epoch_;
  victim->tick = compile_tick_;
  victim->opts = copts;
  victim->compiled = std::move(fresh);
  return *victim->compiled;
}

const ExperimentResult& ExperimentWorkspace::run(const ExperimentConfig& cfg) {
  if (!cfg.audit) return run_impl(cfg, nullptr);
  // Internal auditor: a violation is a fatal correctness bug, so surface the
  // report as an exception rather than as statistics.
  SimAuditor auditor;
  const ExperimentResult& out = run_impl(cfg, &auditor);
  if (!auditor.clean()) {
    throw std::runtime_error("experiment '" + cfg.app +
                             "' failed its invariant audit:\n" +
                             auditor.report());
  }
  return out;
}

const ExperimentResult& ExperimentWorkspace::run(const ExperimentConfig& cfg,
                                                 SimAuditor* auditor) {
  return run_impl(cfg, auditor);
}

const ExperimentResult& ExperimentWorkspace::run_impl(
    const ExperimentConfig& cfg, SimAuditor* auditor) {
  prepare(cfg);
  in_run_ = true;  // cleared on success; a throw leaves it set -> poison
  const bool is_sharded = cfg.shards > 0;
  Simulator& sim = is_sharded ? sharded_->lane(0) : *serial_;
  StorageSystem& storage = *storage_;

  // Per-run observers (audit checks, telemetry recorders) die at the end of
  // this call, so every layer must drop its raw pointers to them even when
  // the run throws.
  struct DetachGuard {
    ExperimentWorkspace* ws;
    ~DetachGuard() { ws->detach_observers(); }
  } detach_guard{this};

  // Hook the auditor in before anything can schedule an event, so the
  // event-queue ledger sees the complete history.  A sharded run gets one
  // auditor per lane (merged after the workers stop) so every check stays
  // on its lane's thread.
  InstalledChecks checks;
  ShardedAuditLanes audit_lanes;
  if (auditor != nullptr) {
    if (is_sharded) {
      install_audit_sharded(audit_lanes, *sharded_, storage, cfg.policy,
                            cfg.policy_cfg);
    } else {
      checks =
          install_audit(*auditor, sim, storage, cfg.policy, cfg.policy_cfg);
    }
  }

  // The telemetry recorder attaches beside the audit checks (every layer
  // multiplexes observers) and is strictly passive.  Sharded runs record
  // one trace per lane and merge them deterministically after the run.
  std::unique_ptr<TelemetryRecorder> recorder;
  std::vector<std::unique_ptr<TelemetryRecorder>> lane_recorders;
  TelemetryRecorder* client_recorder = nullptr;
  if (cfg.telemetry.enabled()) {
    if (is_sharded) {
      install_telemetry_sharded(lane_recorders, cfg.telemetry.level, *sharded_,
                                storage);
      client_recorder = lane_recorders[0].get();
    } else {
      // dasched-lint: allow(hot-alloc): telemetry runs opt into recording
      recorder = std::make_unique<TelemetryRecorder>(cfg.telemetry.level);
      install_telemetry(*recorder, sim, storage);
      client_recorder = recorder.get();
    }
    TraceMeta& meta = client_recorder->meta();
    meta.app = cfg.app;
    meta.policy = static_cast<int>(cfg.policy);
    meta.scheme = cfg.use_scheme;
  }

  const App& app = app_by_name(cfg.app);
  CompileOptions copts = cfg.compile;
  copts.enable_scheduling = cfg.use_scheme;
  copts.slack.length_unit = app.length_unit;
  copts.slack.max_slack = cfg.max_slack;
  if (client_recorder != nullptr &&
      client_recorder->level() >= TraceLevel::kFull) {
    copts.sched_observer = client_recorder;
  }
  const Compiled& compiled = obtain_compiled(copts);
  if (auditor != nullptr) {
    audit_compiled(*auditor, compiled, copts.sched, copts.enable_scheduling);
  }

  RuntimeConfig rt = cfg.runtime;
  rt.use_runtime_scheduler = cfg.use_scheme;
  if (cluster_ == nullptr) {
    // dasched-lint: allow(hot-alloc): first run / post-rebuild construction
    cluster_ = std::make_unique<Cluster>(sim, storage, compiled, rt);
  } else {
    cluster_->reset(compiled, rt);
  }
  bound_compiled_ = &compiled;

  // Run until the application completes; power-policy timers may keep the
  // event queue alive past that point, and accounting must stop at the
  // application's end (the paper's energies cover program execution).  The
  // sharded engine checks the stop predicate at window barriers, so it
  // stops at the end of the window containing the last finish — a bounded
  // (< lookahead), deterministic tail shared by every shard count.
  if (is_sharded) {
    cluster_->start();
    Cluster& cluster = *cluster_;
    sharded_->run([&cluster] { return cluster.all_finished(); });
  } else {
    cluster_->run_to_completion();
  }

  if (!cluster_->all_finished()) {
    // dasched-lint: allow(hot-alloc): fatal-error path, never on success
    throw std::runtime_error("experiment '" + cfg.app +
                             "': simulation drained but clients are stuck");
  }

  result_.app = cfg.app;
  result_.policy = cfg.policy;
  result_.scheme = cfg.use_scheme;
  result_.exec_time = cluster_->exec_time();
  storage.finalize_into(result_.storage);
  result_.energy_j = result_.storage.energy_j;
  result_.runtime = cluster_->stats();
  result_.sched = compiled.sched_stats;
  result_.events =
      is_sharded ? sharded_->events_executed() : sim.events_executed();
  result_.audited = false;
  result_.audit_violations = 0;
  result_.telemetry = nullptr;

  if (client_recorder != nullptr) {
    // finalize() above fired the trailing accruals, so the trace now tiles
    // every disk's timeline completely.
    client_recorder->meta().end_time = sim.now();
    TraceBuffer merged;
    const TraceBuffer* buffer = &client_recorder->buffer();
    if (is_sharded) {
      std::vector<const TraceBuffer*> lanes;
      // dasched-lint: allow(hot-alloc): telemetry merge, opt-in runs only
      lanes.reserve(lane_recorders.size());
      // dasched-lint: allow(hot-alloc): telemetry merge, opt-in runs only
      for (const auto& r : lane_recorders) lanes.push_back(&r->buffer());
      merge_traces(lanes, merged);
      buffer = &merged;
    }
    // dasched-lint: allow(hot-alloc): telemetry summary, opt-in runs only
    auto summary = std::make_shared<TelemetrySummary>(
        // dasched-lint: allow(hot-alloc): telemetry analysis, opt-in only
        analyze_trace(*buffer, client_recorder->meta()));

    // Reconcile the energy-by-state breakdown against the scalar total.
    // Under an auditor this extends the energy-conservation invariant;
    // without one a divergence is a fatal telemetry bug.
    EnergyConservationCheck* energy_check =
        is_sharded ? audit_lanes.energy : checks.energy;
    if (energy_check != nullptr) {
      if (is_sharded) merge_sharded_ledgers(audit_lanes);
      energy_check->cross_check_aggregate(summary->energy_by_state_j,
                                          result_.energy_j, sim.now());
    }
    const double scale = std::max(std::fabs(result_.energy_j.value()), 1.0);
    if (std::fabs((summary->energy_total_j - result_.energy_j).value()) >
        kEnergyRelEps * scale) {
      // dasched-lint: allow(hot-alloc): fatal-error path, never on success
      throw std::runtime_error(
          "telemetry: energy-by-state breakdown diverges from the scalar "
          // dasched-lint: allow(hot-alloc): fatal-error path
          "total for experiment '" +
          cfg.app + "'");  // dasched-lint: allow(hot-alloc): fatal path
    }

    if (!cfg.telemetry.dir.empty()) {
      write_telemetry_artifacts(cfg.telemetry.dir, *buffer,
                                client_recorder->meta(), *summary);
    }
    result_.telemetry = std::move(summary);
  }

  if (auditor != nullptr) {
    if (is_sharded) finalize_audit_sharded(audit_lanes, *auditor);
    auditor->finalize();
    result_.audited = true;
    result_.audit_violations = auditor->violations_total();
  }
  in_run_ = false;
  ++runs_completed_;
  return result_;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg,
                                ExperimentWorkspace& ws) {
  return ws.run(cfg);
}

}  // namespace dasched
