// Multi-application scenarios — the paper's stated future work ("we plan to
// investigate the opportunities of increasing disk idle periods in
// multi-application scenarios").
//
// Several applications run concurrently against one storage system, each
// with its own client processes, compiled program and runtime scheduler.
// The interesting phenomenon this exposes: each application's scheduling
// table is computed in isolation, so the per-application node-clustering
// decisions interfere at the shared disks — quantified by comparing the
// combined run against the applications run back-to-back.
#pragma once

#include <string>
#include <vector>

#include "driver/experiment.h"

namespace dasched {

struct MultiExperimentConfig {
  /// Applications to co-schedule; each gets scale.num_processes clients.
  std::vector<std::string> apps;
  WorkloadScale scale;
  StorageConfig storage;
  CompileOptions compile;
  RuntimeConfig runtime;
  PolicyKind policy = PolicyKind::kNone;
  PolicyConfig policy_cfg;
  bool use_scheme = false;
  Slot max_slack = 600;
  std::uint64_t seed = 1;
};

struct MultiExperimentResult {
  /// Completion time of each application, in config order.
  std::vector<SimTime> exec_times;
  /// Completion of the slowest application.
  SimTime makespan = 0;
  double energy_j = 0.0;
  StorageStats storage;
  /// Per-application runtime statistics.
  std::vector<RuntimeStats> runtime;
};

/// Runs all applications concurrently on one storage system; accounting
/// stops when the last application completes.
[[nodiscard]] MultiExperimentResult run_multi_experiment(
    const MultiExperimentConfig& cfg);

}  // namespace dasched
