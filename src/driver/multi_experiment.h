// Multi-application scenarios — the paper's stated future work ("we plan to
// investigate the opportunities of increasing disk idle periods in
// multi-application scenarios").
//
// Several applications run concurrently against one storage system, each
// with its own client processes, compiled program and runtime scheduler.
// The interesting phenomenon this exposes: each application's scheduling
// table is computed in isolation, so the per-application node-clustering
// decisions interfere at the shared disks — quantified by comparing the
// combined run against the applications run back-to-back.
#pragma once

#include <string>
#include <vector>

#include "driver/experiment.h"

namespace dasched {

struct MultiExperimentConfig {
  /// Applications to co-schedule; each gets scale.num_processes clients.
  std::vector<std::string> apps;
  WorkloadScale scale;
  StorageConfig storage;
  CompileOptions compile;
  RuntimeConfig runtime;
  PolicyKind policy = PolicyKind::kNone;
  PolicyConfig policy_cfg;
  bool use_scheme = false;
  Slot max_slack = 600;
  std::uint64_t seed = 1;

  /// Runs the scenario under the invariant auditor (src/check).  A violation
  /// makes `run_multi_experiment` throw with the audit report, mirroring
  /// `ExperimentConfig::audit`; a DASCHED_AUDIT=ON build audits every run.
  bool audit = DASCHED_AUDIT_DEFAULT != 0;
};

struct MultiExperimentResult {
  /// Completion time of each application, in config order.
  std::vector<SimTime> exec_times;
  /// Completion of the slowest application.
  SimTime makespan = 0;
  Joules energy_j{};
  StorageStats storage;
  /// Per-application runtime statistics.
  std::vector<RuntimeStats> runtime;

  /// True when the run was audited; `audit_violations` is the total count
  /// (only ever non-zero with an external auditor, which does not throw).
  bool audited = false;
  std::int64_t audit_violations = 0;
};

/// Runs all applications concurrently on one storage system; accounting
/// stops when the last application completes.
[[nodiscard]] MultiExperimentResult run_multi_experiment(
    const MultiExperimentConfig& cfg);

/// As above, but records invariant checks into an external auditor instead
/// of throwing: the caller inspects `auditor->clean()` / the result's
/// `audit_violations`.  The auditor observes the shared simulator and
/// storage system plus every application's compiled schedule.
[[nodiscard]] MultiExperimentResult run_multi_experiment(
    const MultiExperimentConfig& cfg, SimAuditor* auditor);

}  // namespace dasched
