#include "driver/multi_experiment.h"

#include <memory>
#include <stdexcept>

#include "check/install.h"

namespace dasched {

MultiExperimentResult run_multi_experiment(const MultiExperimentConfig& cfg) {
  if (!cfg.audit) return run_multi_experiment(cfg, nullptr);
  // Internal auditor: a violation is a fatal correctness bug, so surface the
  // report as an exception rather than as statistics.
  SimAuditor auditor;
  MultiExperimentResult out = run_multi_experiment(cfg, &auditor);
  if (!auditor.clean()) {
    throw std::runtime_error(
        "multi-application scenario failed its invariant audit:\n" +
        auditor.report());
  }
  return out;
}

MultiExperimentResult run_multi_experiment(const MultiExperimentConfig& cfg,
                                           SimAuditor* auditor) {
  if (cfg.apps.empty()) {
    throw std::invalid_argument("run_multi_experiment: no applications");
  }

  Simulator sim;
  StorageConfig storage_cfg = cfg.storage;
  storage_cfg.node.policy = cfg.policy;
  storage_cfg.node.policy_cfg = cfg.policy_cfg;
  storage_cfg.seed = cfg.seed;
  StorageSystem storage(sim, storage_cfg);

  // Hook the auditor in before anything can schedule an event, so the
  // event-queue ledger sees the complete history.
  if (auditor != nullptr) {
    install_audit(*auditor, sim, storage, cfg.policy, cfg.policy_cfg);
  }

  // Compile every application against the shared striping map (files get
  // disjoint node-local extents) but with an isolated scheduling pass each —
  // exactly the interference the future-work scenario studies.
  std::vector<std::unique_ptr<Compiled>> compiled;
  for (const std::string& name : cfg.apps) {
    const App& app = app_by_name(name);
    CompiledProgram trace = app.build(storage.striping(), cfg.scale);
    CompileOptions copts = cfg.compile;
    copts.enable_scheduling = cfg.use_scheme;
    copts.slack.length_unit = app.length_unit;
    copts.slack.max_slack = cfg.max_slack;
    compiled.push_back(std::make_unique<Compiled>(
        compile_trace(std::move(trace), storage.striping(), copts)));
    if (auditor != nullptr) {
      audit_compiled(*auditor, *compiled.back(), copts.sched,
                     copts.enable_scheduling);
    }
  }

  std::vector<std::unique_ptr<Cluster>> clusters;
  for (const auto& c : compiled) {
    RuntimeConfig rt = cfg.runtime;
    rt.use_runtime_scheduler = cfg.use_scheme;
    clusters.push_back(std::make_unique<Cluster>(sim, storage, *c, rt));
  }

  for (auto& cluster : clusters) cluster->start();
  auto all_done = [&clusters] {
    for (const auto& c : clusters) {
      if (!c->all_finished()) return false;
    }
    return true;
  };
  while (!all_done() && sim.step()) {
  }
  if (!all_done()) {
    throw std::runtime_error("run_multi_experiment: clients stuck");
  }

  MultiExperimentResult out;
  for (auto& cluster : clusters) {
    out.exec_times.push_back(cluster->exec_time());
    out.makespan = std::max(out.makespan, cluster->exec_time());
    out.runtime.push_back(cluster->stats());
  }
  out.storage = storage.finalize();
  out.energy_j = out.storage.energy_j;
  if (auditor != nullptr) {
    auditor->finalize();
    out.audited = true;
    out.audit_violations = auditor->violations_total();
  }
  return out;
}

}  // namespace dasched
