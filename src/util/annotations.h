// Project contract annotations, consumed by tools/lint/dasched_lint.py.
//
// The repo's verification story rests on three contracts that the dynamic
// test suites (operator-new interposition, differential runs, the invariant
// auditor) can only probe for the workloads they happen to run.  The macros
// below mark the code that carries each contract so the static analyzer can
// enforce it over every TU:
//
//  * DASCHED_HOT — steady-state hot path: no heap allocation may be
//    reachable from this function within its TU.  Pool/slab warm-up growth
//    is the sanctioned exception and is suppressed at the growth site with
//    a `// dasched-lint: allow(hot-alloc): ...` comment.
//  * DASCHED_OBSERVER_PASSIVE — marks an observer implementation class:
//    its callbacks may only make const calls into simulation state (the
//    lint additionally discovers observers structurally, by inheritance
//    from the *Observer hook interfaces).
//
// Under Clang the macros also expand to [[clang::annotate]] so an
// AST-matcher front-end can find them without re-scanning source text;
// under GCC (the CI toolchain) they compile to nothing and the linter
// locates them textually.  Either way they impose zero runtime cost and
// cannot change generated code.
#pragma once

#if defined(__clang__)
#define DASCHED_HOT [[clang::annotate("dasched::hot")]]
#define DASCHED_OBSERVER_PASSIVE [[clang::annotate("dasched::passive")]]
#else
#define DASCHED_HOT
#define DASCHED_OBSERVER_PASSIVE
#endif
