// Fixed-capacity inline vector for hot-path fan-out buffers.
//
// The storage data path splits every request into small bounded sets (disk
// ops per chunk, prefetch candidates per miss); `InlineVec` holds those sets
// on the stack so the per-request path never touches the heap.  Elements
// must be trivially copyable and destructible — the container is a plain
// array plus a length, nothing more.
#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>

namespace dasched {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "InlineVec needs a non-zero capacity");
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "InlineVec is for plain hot-path value types");

 public:
  using value_type = T;

  InlineVec() = default;

  void push_back(const T& v) {
    assert(size_ < N && "InlineVec overflow");
    items_[size_++] = v;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    assert(size_ < N && "InlineVec overflow");
    items_[size_] = T{std::forward<Args>(args)...};
    return items_[size_++];
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == N; }
  [[nodiscard]] static constexpr std::size_t capacity() { return N; }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return items_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return items_[i];
  }

  [[nodiscard]] T* begin() { return items_; }
  [[nodiscard]] T* end() { return items_ + size_; }
  [[nodiscard]] const T* begin() const { return items_; }
  [[nodiscard]] const T* end() const { return items_ + size_; }
  [[nodiscard]] const T* data() const { return items_; }

 private:
  T items_[N];
  std::size_t size_ = 0;
};

}  // namespace dasched
