// Plain-text table rendering for benchmark/report output.
//
// Every bench binary prints its figure/table as an aligned ASCII table so the
// paper's rows and series can be compared at a glance.
#pragma once

#include <string>
#include <vector>

namespace dasched {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; missing trailing cells render empty, extra cells are
  /// kept and widen the table.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  /// Formats a fraction (0.123) as a percentage string ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dasched
