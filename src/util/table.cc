#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dasched {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string TextTable::to_string() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < ncols) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (ncols - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace dasched
