#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dasched {

std::vector<double> DurationHistogram::paper_edges_msec() {
  return {5,    10,    50,     100,    500,    1000,
          5000, 10000, 20000, 30000, 40000, 50000};
}

DurationHistogram::DurationHistogram(std::vector<double> edges_msec)
    : edges_msec_(std::move(edges_msec)),
      counts_(edges_msec_.size() + 1, 0) {}

DurationHistogram DurationHistogram::from_parts(std::vector<double> edges_msec,
                                                std::vector<std::int64_t> counts,
                                                std::int64_t total_count,
                                                double total_msec) {
  if (counts.size() != edges_msec.size() + 1) {
    throw std::invalid_argument(
        "DurationHistogram::from_parts: counts must have edges.size() + 1 "
        "entries");
  }
  DurationHistogram out(std::move(edges_msec));
  out.counts_ = std::move(counts);
  out.total_count_ = total_count;
  out.total_msec_ = total_msec;
  return out;
}

void DurationHistogram::add(SimTime duration) { add_msec(to_msec(duration)); }

void DurationHistogram::add_msec(double duration_msec) {
  const auto it =
      std::lower_bound(edges_msec_.begin(), edges_msec_.end(), duration_msec);
  counts_[static_cast<std::size_t>(it - edges_msec_.begin())] += 1;
  total_count_ += 1;
  total_msec_ += duration_msec;
}

std::vector<double> DurationHistogram::cdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_count_ == 0) return out;
  std::int64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    out[i] = static_cast<double>(running) / static_cast<double>(total_count_);
  }
  return out;
}

double DurationHistogram::fraction_at_or_below(double edge_msec) const {
  if (total_count_ == 0) return 0.0;
  std::int64_t running = 0;
  for (std::size_t i = 0; i < edges_msec_.size(); ++i) {
    if (edges_msec_[i] > edge_msec) break;
    running += counts_[i];
  }
  return static_cast<double>(running) / static_cast<double>(total_count_);
}

void DurationHistogram::merge(const DurationHistogram& other) {
  // Only histograms with identical bucketing can be merged.
  if (other.edges_msec_ != edges_msec_) {
    // Re-bucket sample-free merge is impossible; fall back to re-adding the
    // other histogram's mass at bucket edges (approximation never needed in
    // practice because all our histograms share the paper edges).
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      const double edge = i < other.edges_msec_.size()
                              ? other.edges_msec_[i]
                              : other.edges_msec_.back() * 2;
      for (std::int64_t k = 0; k < other.counts_[i]; ++k) add_msec(edge);
    }
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  total_msec_ += other.total_msec_;
}

void DurationHistogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  total_msec_ = 0.0;
}

void SummaryStats::add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += 1;
  sum_ += v;
  sum_sq_ += v * v;
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  return std::max(0.0, sum_sq_ / n - m * m);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

}  // namespace dasched
