// Bucketed histograms and CDFs.
//
// `DurationHistogram` reproduces the bucketing the paper uses for its idle
// period CDFs (Fig. 12): samples are durations in msec, buckets are the
// paper's {5, 10, 50, 100, 500, 1000, 5000, 10000, 20000, 30000, 40000,
// 50000+} msec edges by default, and `cdf()` returns, per bucket edge, the
// fraction of samples at or below the edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace dasched {

class DurationHistogram {
 public:
  /// Bucket edges used by Fig. 12 of the paper, in msec.
  static std::vector<double> paper_edges_msec();

  /// Builds a histogram with the given ascending bucket edges (msec).
  /// Samples above the last edge land in a final overflow bucket.
  explicit DurationHistogram(std::vector<double> edges_msec = paper_edges_msec());

  void add(SimTime duration);
  void add_msec(double duration_msec);

  /// Number of recorded samples.
  [[nodiscard]] std::int64_t count() const { return total_count_; }

  /// Sum of all recorded durations, in msec.
  [[nodiscard]] double total_msec() const { return total_msec_; }

  [[nodiscard]] double mean_msec() const {
    return total_count_ == 0 ? 0.0 : total_msec_ / static_cast<double>(total_count_);
  }

  [[nodiscard]] const std::vector<double>& edges_msec() const { return edges_msec_; }

  /// Per-edge cumulative fraction of samples <= edge, in [0,1].  The final
  /// returned entry corresponds to the overflow bucket and is always 1 when
  /// any sample exists.
  [[nodiscard]] std::vector<double> cdf() const;

  /// Raw per-bucket counts (edges.size() + 1 entries; last is overflow).
  [[nodiscard]] const std::vector<std::int64_t>& counts() const { return counts_; }

  /// Fraction of samples <= the given duration edge (msec); interpolates
  /// nothing, uses bucket granularity (the paper's plots do the same).
  [[nodiscard]] double fraction_at_or_below(double edge_msec) const;

  void merge(const DurationHistogram& other);

  void clear();

  /// Reconstructs a histogram from its accessor parts — the inverse of
  /// (edges_msec, counts, count, total_msec), used by the serve result
  /// codec to rebuild client-side histograms bit-identical to the server's.
  /// Throws std::invalid_argument when counts.size() != edges.size() + 1.
  [[nodiscard]] static DurationHistogram from_parts(
      std::vector<double> edges_msec, std::vector<std::int64_t> counts,
      std::int64_t total_count, double total_msec);

 private:
  std::vector<double> edges_msec_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_count_ = 0;
  double total_msec_ = 0.0;
};

/// Streaming summary statistics (count/mean/min/max/stddev).
class SummaryStats {
 public:
  void add(double v);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dasched
