// Multiplexing observer list shared by every observable simulation layer.
//
// Each layer (simulator, disk, I/O node, storage system) exposes passive
// observer hooks that both the invariant auditor (src/check) and the
// telemetry recorder (src/telemetry) tap — often simultaneously.  Instead of
// every consumer stacking its own fan-out shim over a single observer slot,
// the layers hold one `ObserverList` and notify every attached observer in
// registration order.  The empty list costs one begin/end load per hook
// site, so the hooks stay in release builds; attachment is setup-time work
// and the only place the list may allocate.
#pragma once

#include <algorithm>
#include <vector>

namespace dasched {

template <typename Observer>
class ObserverList {
 public:
  /// Registers `obs` (nullptr and duplicates are ignored).
  void add(Observer* obs) {
    if (obs == nullptr || contains(obs)) return;
    // dasched-lint: allow(hot-alloc): per-run observer install; erase keeps
    // the capacity warm, so re-registration on a warm list never grows
    taps_.push_back(obs);
  }

  /// Detaches `obs` if present, preserving the order of the others.
  void remove(Observer* obs) {
    taps_.erase(std::remove(taps_.begin(), taps_.end(), obs), taps_.end());
  }

  /// Detaches everything, then registers `obs` if non-null — the semantics
  /// of the layers' legacy single-slot `set_observer(p)`.
  void reset(Observer* obs) {
    taps_.clear();
    add(obs);
  }

  [[nodiscard]] bool empty() const { return taps_.empty(); }
  [[nodiscard]] bool contains(Observer* obs) const {
    return std::find(taps_.begin(), taps_.end(), obs) != taps_.end();
  }

  /// Invokes `fn(observer)` on every attached observer, in attach order.
  /// Observers are passive: they must not detach themselves mid-notify.
  template <typename Fn>
  void notify(Fn&& fn) const {
    for (Observer* obs : taps_) fn(obs);
  }

 private:
  std::vector<Observer*> taps_;
};

}  // namespace dasched
