// Dimensioned arithmetic types used throughout the simulator.
//
// Simulated time is an integer count of microseconds (`SimTime`), sizes are
// integer byte counts (`Bytes`), and energy accounting runs on `Joules` and
// `Watts` wrapping the same `double` representation the ledgers always used.
// Each is a strong wrapper exposing only dimensionally valid operators:
//
//     SimTime ± SimTime → SimTime        Bytes ± Bytes → Bytes
//     SimTime / SimTime → int64 ratio    Bytes / Bytes → int64 ratio
//     Watts × SimTime   → Joules         Joules / SimTime → Watts
//     Joules / Watts    → double seconds
//
// Cross-unit expressions (seconds-for-joules, bytes-for-usec, assigning one
// unit to another) no longer compile; see tests/util/units_compile_fail.
// Raw integer literals still convert implicitly into `SimTime`/`Bytes` so
// counts and zeros read naturally, but no unit ever converts silently back
// out — escape hatches are the explicit `count()`/`value()` accessors and
// `static_cast<double>`.
//
// Bit-identity: every operator inlines to exactly the scalar expression the
// pre-wrapper code wrote (same representation, same float-op order), so all
// serialized artifacts stay bit-identical (tools/hexfloat_probe proves it).
// The wrappers are trivially copyable with trivial default constructors —
// like the raw scalars they replace, so POD records (`TraceEvent`, the event
// queue) keep their layout and triviality.
#pragma once

#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <type_traits>

namespace dasched {

/// Simulated time in microseconds since simulation start.
class SimTime {
 public:
  SimTime() = default;  // uninitialized, like the raw int64 it replaces
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  constexpr SimTime(T v) : v_(static_cast<std::int64_t>(v)) {}  // NOLINT(google-explicit-constructor)
  explicit constexpr SimTime(double v) : v_(static_cast<std::int64_t>(v)) {}

  [[nodiscard]] constexpr std::int64_t count() const { return v_; }
  explicit constexpr operator double() const { return static_cast<double>(v_); }

  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime min() {
    return SimTime{std::numeric_limits<std::int64_t>::min()};
  }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime o) { v_ += o.v_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { v_ -= o.v_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.v_ + b.v_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.v_ - b.v_}; }
  friend constexpr SimTime operator-(SimTime a) { return SimTime{-a.v_}; }

  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr SimTime operator*(SimTime a, T k) { return SimTime{a.v_ * k}; }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr SimTime operator*(T k, SimTime a) { return SimTime{k * a.v_}; }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr SimTime operator/(SimTime a, T k) { return SimTime{a.v_ / k}; }
  /// Dimensionless ratio of two durations.
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.v_ / b.v_; }
  friend constexpr SimTime operator%(SimTime a, SimTime b) { return SimTime{a.v_ % b.v_}; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.v_; }
  friend std::istream& operator>>(std::istream& is, SimTime& t) { return is >> t.v_; }

 private:
  std::int64_t v_;
};

static_assert(std::is_trivially_copyable_v<SimTime> && sizeof(SimTime) == 8);

inline constexpr std::int64_t kUsecPerMsec = 1'000;
inline constexpr std::int64_t kUsecPerSec = 1'000'000;

[[nodiscard]] constexpr SimTime usec(std::int64_t v) { return SimTime{v}; }
[[nodiscard]] constexpr SimTime msec(double v) {
  return SimTime{static_cast<std::int64_t>(v * static_cast<double>(kUsecPerMsec))};
}
[[nodiscard]] constexpr SimTime sec(double v) {
  return SimTime{static_cast<std::int64_t>(v * static_cast<double>(kUsecPerSec))};
}

[[nodiscard]] constexpr double to_msec(SimTime t) {
  return static_cast<double>(t.count()) / static_cast<double>(kUsecPerMsec);
}
[[nodiscard]] constexpr double to_sec(SimTime t) {
  return static_cast<double>(t.count()) / static_cast<double>(kUsecPerSec);
}
[[nodiscard]] constexpr double to_minutes(SimTime t) {
  return to_sec(t) / 60.0;
}

/// Size or on-disk position as a byte count.
class Bytes {
 public:
  Bytes() = default;  // uninitialized, like the raw int64 it replaces
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  constexpr Bytes(T v) : v_(static_cast<std::int64_t>(v)) {}  // NOLINT(google-explicit-constructor)
  explicit constexpr Bytes(double v) : v_(static_cast<std::int64_t>(v)) {}

  [[nodiscard]] constexpr std::int64_t count() const { return v_; }
  explicit constexpr operator double() const { return static_cast<double>(v_); }

  [[nodiscard]] static constexpr Bytes max() {
    return Bytes{std::numeric_limits<std::int64_t>::max()};
  }

  friend constexpr bool operator==(Bytes, Bytes) = default;
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  constexpr Bytes& operator+=(Bytes o) { v_ += o.v_; return *this; }
  constexpr Bytes& operator-=(Bytes o) { v_ -= o.v_; return *this; }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.v_ + b.v_}; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.v_ - b.v_}; }
  friend constexpr Bytes operator-(Bytes a) { return Bytes{-a.v_}; }

  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr Bytes operator*(Bytes a, T k) { return Bytes{a.v_ * k}; }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr Bytes operator*(T k, Bytes a) { return Bytes{k * a.v_}; }
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  friend constexpr Bytes operator/(Bytes a, T k) { return Bytes{a.v_ / k}; }
  /// Dimensionless ratio (e.g. a stripe or block index).
  friend constexpr std::int64_t operator/(Bytes a, Bytes b) { return a.v_ / b.v_; }
  friend constexpr Bytes operator%(Bytes a, Bytes b) { return Bytes{a.v_ % b.v_}; }

  friend std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.v_; }
  friend std::istream& operator>>(std::istream& is, Bytes& b) { return is >> b.v_; }

 private:
  std::int64_t v_;
};

static_assert(std::is_trivially_copyable_v<Bytes> && sizeof(Bytes) == 8);

inline constexpr std::int64_t kKiB = 1'024;
inline constexpr std::int64_t kMiB = 1'024 * kKiB;
inline constexpr std::int64_t kGiB = 1'024 * kMiB;

[[nodiscard]] constexpr Bytes kib(std::int64_t v) { return Bytes{v * kKiB}; }
[[nodiscard]] constexpr Bytes mib(std::int64_t v) { return Bytes{v * kMiB}; }
[[nodiscard]] constexpr Bytes gib(std::int64_t v) { return Bytes{v * kGiB}; }

class Watts;

/// Energy, wrapping the `double` joule representation of the ledgers.
class Joules {
 public:
  Joules() = default;  // uninitialized; `Joules{}` value-initializes to 0
  explicit constexpr Joules(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  friend constexpr bool operator==(Joules, Joules) = default;
  friend constexpr auto operator<=>(Joules, Joules) = default;

  constexpr Joules& operator+=(Joules o) { v_ += o.v_; return *this; }
  constexpr Joules& operator-=(Joules o) { v_ -= o.v_; return *this; }

  friend constexpr Joules operator+(Joules a, Joules b) { return Joules{a.v_ + b.v_}; }
  friend constexpr Joules operator-(Joules a, Joules b) { return Joules{a.v_ - b.v_}; }
  friend constexpr Joules operator-(Joules a) { return Joules{-a.v_}; }
  friend constexpr Joules operator*(Joules a, double k) { return Joules{a.v_ * k}; }
  friend constexpr Joules operator*(double k, Joules a) { return Joules{k * a.v_}; }
  friend constexpr Joules operator/(Joules a, double k) { return Joules{a.v_ / k}; }
  /// Dimensionless ratio (normalized energy).
  friend constexpr double operator/(Joules a, Joules b) { return a.v_ / b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Joules j) { return os << j.v_; }

 private:
  double v_;
};

static_assert(std::is_trivially_copyable_v<Joules> && sizeof(Joules) == 8);

/// Power, wrapping the `double` watt representation of the power model.
class Watts {
 public:
  Watts() = default;  // uninitialized; `Watts{}` value-initializes to 0
  explicit constexpr Watts(double v) : v_(v) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  friend constexpr bool operator==(Watts, Watts) = default;
  friend constexpr auto operator<=>(Watts, Watts) = default;

  constexpr Watts& operator+=(Watts o) { v_ += o.v_; return *this; }
  constexpr Watts& operator-=(Watts o) { v_ -= o.v_; return *this; }

  friend constexpr Watts operator+(Watts a, Watts b) { return Watts{a.v_ + b.v_}; }
  friend constexpr Watts operator-(Watts a, Watts b) { return Watts{a.v_ - b.v_}; }
  friend constexpr Watts operator*(Watts a, double k) { return Watts{a.v_ * k}; }
  friend constexpr Watts operator*(double k, Watts a) { return Watts{k * a.v_}; }
  friend constexpr Watts operator/(Watts a, double k) { return Watts{a.v_ / k}; }
  /// Dimensionless ratio of two powers.
  friend constexpr double operator/(Watts a, Watts b) { return a.v_ / b.v_; }

  /// Energy of drawing this power for `t`.  Expands to exactly
  /// `w * to_sec(t)` — the expression the ledger always computed.
  friend constexpr Joules operator*(Watts w, SimTime t) {
    return Joules{w.v_ * to_sec(t)};
  }
  friend constexpr Joules operator*(SimTime t, Watts w) {
    return Joules{w.v_ * to_sec(t)};
  }

  friend std::ostream& operator<<(std::ostream& os, Watts w) { return os << w.v_; }

 private:
  double v_;
};

static_assert(std::is_trivially_copyable_v<Watts> && sizeof(Watts) == 8);

/// Mean power over an interval.
[[nodiscard]] constexpr Watts operator/(Joules j, SimTime t) {
  return Watts{j.value() / to_sec(t)};
}
/// Seconds this energy lasts at the given draw (break-even arithmetic).
[[nodiscard]] constexpr double operator/(Joules j, Watts w) {
  return j.value() / w.value();
}

}  // namespace dasched

// `SimTime` and `Bytes` stand in for raw int64 counters, which the code base
// occasionally bounds with numeric_limits (e.g. Simulator::run's default
// horizon); specializing keeps those call sites natural.
template <>
struct std::numeric_limits<dasched::SimTime> {
  static constexpr bool is_specialized = true;
  static constexpr dasched::SimTime max() { return dasched::SimTime::max(); }
  static constexpr dasched::SimTime min() { return dasched::SimTime::min(); }
  static constexpr dasched::SimTime lowest() { return dasched::SimTime::min(); }
};
template <>
struct std::numeric_limits<dasched::Bytes> {
  static constexpr bool is_specialized = true;
  static constexpr dasched::Bytes max() { return dasched::Bytes::max(); }
  static constexpr dasched::Bytes min() {
    return dasched::Bytes{std::numeric_limits<std::int64_t>::min()};
  }
  static constexpr dasched::Bytes lowest() { return min(); }
};

// Identity hashing on the raw count, exactly as the int64 they replace —
// for containers keyed on a time or a byte offset.
template <>
struct std::hash<dasched::SimTime> {
  std::size_t operator()(dasched::SimTime t) const noexcept {
    return std::hash<std::int64_t>{}(t.count());
  }
};
template <>
struct std::hash<dasched::Bytes> {
  std::size_t operator()(dasched::Bytes b) const noexcept {
    return std::hash<std::int64_t>{}(b.count());
  }
};
