// Time and size units used throughout the simulator.
//
// Simulated time is an integer count of microseconds (`SimTime`).  An
// integral time base keeps event ordering exact and reproducible; helpers
// below convert to and from the floating-point units used in reports.
#pragma once

#include <cstdint>

namespace dasched {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kUsecPerMsec = 1'000;
inline constexpr SimTime kUsecPerSec = 1'000'000;

[[nodiscard]] constexpr SimTime usec(std::int64_t v) { return v; }
[[nodiscard]] constexpr SimTime msec(double v) {
  return static_cast<SimTime>(v * static_cast<double>(kUsecPerMsec));
}
[[nodiscard]] constexpr SimTime sec(double v) {
  return static_cast<SimTime>(v * static_cast<double>(kUsecPerSec));
}

[[nodiscard]] constexpr double to_msec(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kUsecPerMsec);
}
[[nodiscard]] constexpr double to_sec(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kUsecPerSec);
}
[[nodiscard]] constexpr double to_minutes(SimTime t) {
  return to_sec(t) / 60.0;
}

/// Sizes are plain byte counts.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1'024;
inline constexpr Bytes kMiB = 1'024 * kKiB;
inline constexpr Bytes kGiB = 1'024 * kMiB;

[[nodiscard]] constexpr Bytes kib(std::int64_t v) { return v * kKiB; }
[[nodiscard]] constexpr Bytes mib(std::int64_t v) { return v * kMiB; }
[[nodiscard]] constexpr Bytes gib(std::int64_t v) { return v * kGiB; }

}  // namespace dasched
