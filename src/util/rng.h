// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every source of randomness in the project (scheduling tie-breaks, workload
// jitter) draws from a seeded `Rng`, so experiments are reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace dasched {

/// Derives an independent stream seed from (base, index) via splitmix64: the
/// base selects a stream family, the index a position within it. Used for
/// per-cell grid seeds and per-component (I/O node, disk) seeds so sibling
/// components never share correlated low bits the way `base * K + i` did.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability `p`.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dasched
