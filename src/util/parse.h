// Strict, allocation-free string parsing.
//
// Every user-facing number in the tree — CLI flags, environment knobs,
// trace-file fields, daemon request values — must parse the *entire* token
// or be rejected; a typo that atoi would silently turn into 0 produces a
// nonsense run instead of an error.  These helpers are the one
// implementation: `std::from_chars` over string_views, so they are usable
// from the libraries below engine/ (sim/, workload/) and from the daemon's
// steady-state request path, where a temporary std::string per field would
// be a heap allocation.
//
// engine/env_knobs keeps its std::string front end (and the historic
// strtod/strtoll semantics) for the knob helpers; the fatal-error print
// shared by every strict knob lives here so sharded_sim.cc and
// ladder_queue.cc no longer duplicate it below the engine library.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

namespace dasched {

/// Parses the entire view as a base-10 integer; nullopt on empty input,
/// trailing garbage, or overflow.  Never allocates.
[[nodiscard]] inline std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Parses the entire view as a floating-point number; nullopt on garbage.
/// Never allocates.
[[nodiscard]] inline std::optional<double> parse_f64(std::string_view s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// The shared fatal path of every strict knob: print
/// `<name>: invalid value '<v>' (expected <kind>)` and stop with status 2.
[[noreturn]] inline void die_invalid_value(const char* name, const char* value,
                                           const char* kind) {
  std::fprintf(stderr, "%s: invalid value '%s' (expected %s)\n", name, value,
               kind);
  std::exit(2);
}

}  // namespace dasched
