#include "workload/patterns.h"

namespace dasched::patterns {

namespace {
using AE = AffineExpr;

AE pvar() { return AE::var(kProcessVar); }
}  // namespace

Stmt io_step(Stmt call, const StepShape& shape) {
  StmtList slot{std::move(call), make_compute(AE(shape.io_compute.count()))};
  StmtList outer;
  outer.push_back(make_loop("_s", 0, 0, std::move(slot), /*slot_loop=*/true));
  if (shape.pads > 0 && shape.pad_compute > 0) {
    outer.push_back(make_loop("_pad", 0, AE(shape.pads - 1),
                              {make_compute(AE(shape.pad_compute.count()))},
                              /*slot_loop=*/true));
  }
  return make_loop("_g", 0, 0, std::move(outer), /*slot_loop=*/false);
}

Stmt sequential_scan(FileId file, std::int64_t count, Bytes block,
                     const StepShape& shape, const std::string& var) {
  const AE i = AE::var(var);
  const AE offset = pvar() * (count * block.count()) + i * block.count();
  return make_loop(var, 0, AE(count - 1),
                   {io_step(make_read(file, offset, block.count()), shape)},
                   /*slot_loop=*/false);
}

Stmt interleaved_scan(FileId file, std::int64_t count, Bytes block,
                      Bytes stride, const StepShape& shape,
                      const std::string& var) {
  const AE i = AE::var(var);
  const AE offset = i * stride.count() + pvar() * block.count();
  return make_loop(var, 0, AE(count - 1),
                   {io_step(make_read(file, offset, block.count()), shape)},
                   /*slot_loop=*/false);
}

Stmt hot_block_reread(FileId file, std::int64_t count, Bytes block,
                      const StepShape& shape, const std::string& var) {
  const AE offset = pvar() * block.count();
  return make_loop(var, 0, AE(count - 1),
                   {io_step(make_read(file, offset, block.count()), shape)},
                   /*slot_loop=*/false);
}

Stmt update_sweep(FileId file, std::int64_t count, Bytes block,
                  const StepShape& shape, const std::string& var) {
  const AE i = AE::var(var);
  const AE offset = pvar() * (count * block.count()) + i * block.count();
  // Read and write sit in separate slots: a same-slot write would clamp the
  // read's slack to length 1 (the conservative race rule, see slack.h).
  StmtList outer;
  outer.push_back(make_loop("_r", 0, 0,
                            {make_read(file, offset, block.count()),
                             make_compute(AE(shape.io_compute.count()))},
                            /*slot_loop=*/true));
  outer.push_back(make_loop("_w", 0, 0,
                            {make_compute(AE(shape.pad_compute.count())),
                             make_write(file, offset, block.count())},
                            /*slot_loop=*/true));
  if (shape.pads > 0 && shape.pad_compute > 0) {
    outer.push_back(make_loop("_pad", 0, AE(shape.pads - 1),
                              {make_compute(AE(shape.pad_compute.count()))},
                              /*slot_loop=*/true));
  }
  return make_loop(var, 0, AE(count - 1),
                   {make_loop("_g", 0, 0, std::move(outer), false)},
                   /*slot_loop=*/false);
}

Stmt producer_stream(FileId file, std::int64_t count, Bytes block,
                     const StepShape& shape, const std::string& var) {
  const AE i = AE::var(var);
  const AE offset = pvar() * (count * block.count()) + i * block.count();
  return make_loop(var, 0, AE(count - 1),
                   {io_step(make_write(file, offset, block.count()), shape)},
                   /*slot_loop=*/false);
}

Stmt compute_phase(SimTime duration) {
  return make_loop("_ph", 0, 0, {make_compute(AE(duration.count()))},
                   /*slot_loop=*/true);
}

}  // namespace dasched::patterns
