#include "workload/trace_replay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "compiler/trace_builder.h"
#include "util/parse.h"
#include "util/rng.h"

namespace dasched {

namespace {

// A trace claiming more processes than this is almost certainly a field mixed
// up with an offset; real parallel traces are orders of magnitude smaller.
constexpr std::int32_t kMaxProcs = 16'384;
constexpr const char* kBlkImplicitFile = "trace.data";

[[noreturn]] void fail(const std::string& source, std::int64_t line,
                       const char* field, const std::string& detail) {
  throw TraceParseError(source, line, field, detail);
}

/// Splits `line` at commas into `out` (no escaping: native CSV field values
/// must not contain commas, which the parser enforces for file names).
/// Returns the field count, or -1 when the line has more fields than `cap`.
int split_csv(std::string_view line, std::string_view* out, int cap) {
  int n = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (n == cap) return -1;
    out[n++] = line.substr(start, comma == std::string_view::npos
                                      ? std::string_view::npos
                                      : comma - start);
    if (comma == std::string_view::npos) return n;
    start = comma + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::int64_t field_i64(std::string_view v, const std::string& source,
                       std::int64_t line, const char* field) {
  const auto parsed = parse_i64(trim(v));
  if (!parsed) {
    fail(source, line, field,
         "expected an integer, got '" + std::string(trim(v)) + "'");
  }
  return *parsed;
}

bool field_op(std::string_view v, const std::string& source, std::int64_t line) {
  const std::string_view t = trim(v);
  if (t == "R" || t == "r" || t == "read") return false;
  if (t == "W" || t == "w" || t == "write") return true;
  fail(source, line, "op", "expected R|W, got '" + std::string(t) + "'");
}

/// Record under construction: file still by name (interning happens after
/// the whole parse, against the name-sorted table).
struct RawRecord {
  std::int64_t ts_us = 0;
  std::int32_t proc = 0;
  std::string file;
  Bytes offset = 0;
  Bytes bytes = 0;
  bool is_write = false;
};

struct ParseState {
  const std::string& source;
  std::vector<RawRecord> records;
  /// last timestamp per process, for the monotonicity check.
  std::vector<std::int64_t> last_ts;

  explicit ParseState(const std::string& src) : source(src) {}

  void add(RawRecord rec, std::int64_t line) {
    if (rec.ts_us < 0) {
      fail(source, line, "ts", "timestamp must be >= 0");
    }
    if (rec.proc < 0 || rec.proc >= kMaxProcs) {
      fail(source, line, "proc",
           "process id must be in [0, " + std::to_string(kMaxProcs) + "), got " +
               std::to_string(rec.proc));
    }
    if (rec.file.empty()) fail(source, line, "file", "file name must be non-empty");
    for (const char c : rec.file) {
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(source, line, "file", "file name contains a control character");
      }
    }
    if (rec.offset < Bytes{0}) fail(source, line, "offset", "offset must be >= 0");
    if (rec.bytes <= Bytes{0}) {
      fail(source, line, "bytes",
           "op size must be > 0, got " + std::to_string(rec.bytes.count()));
    }
    if (rec.offset.count() >
        std::numeric_limits<std::int64_t>::max() - rec.bytes.count()) {
      fail(source, line, "offset", "offset + bytes overflows a 64-bit range");
    }
    if (static_cast<std::size_t>(rec.proc) >= last_ts.size()) {
      last_ts.resize(static_cast<std::size_t>(rec.proc) + 1,
                     std::numeric_limits<std::int64_t>::min());
    }
    auto& last = last_ts[static_cast<std::size_t>(rec.proc)];
    if (rec.ts_us < last) {
      fail(source, line, "ts",
           "timestamp regresses for process " + std::to_string(rec.proc) +
               " (" + std::to_string(rec.ts_us) + " < " + std::to_string(last) +
               "); per-process order must be non-decreasing");
    }
    last = rec.ts_us;
    records.push_back(std::move(rec));
  }
};

bool is_blank_or_comment(std::string_view line) {
  const std::string_view t = trim(line);
  return t.empty() || t.front() == '#';
}

void parse_native_csv_line(ParseState& st, std::string_view line,
                           std::int64_t lineno) {
  std::string_view f[7];
  const int n = split_csv(line, f, 7);
  if (n != 6) {
    fail(st.source, lineno, "line",
         "expected 6 comma-separated fields (ts_us,proc,file,offset,bytes,op), "
         "got " + std::to_string(n < 0 ? 7 : n));
  }
  RawRecord rec;
  rec.ts_us = field_i64(f[0], st.source, lineno, "ts_us");
  rec.proc = static_cast<std::int32_t>(field_i64(f[1], st.source, lineno, "proc"));
  rec.file = std::string(trim(f[2]));
  rec.offset = Bytes{field_i64(f[3], st.source, lineno, "offset")};
  rec.bytes = Bytes{field_i64(f[4], st.source, lineno, "bytes")};
  rec.is_write = field_op(f[5], st.source, lineno);
  st.add(std::move(rec), lineno);
}

void parse_blk_line(ParseState& st, std::string_view line, std::int64_t lineno) {
  std::string_view f[6];
  const int n = split_csv(line, f, 6);
  if (n != 5) {
    fail(st.source, lineno, "line",
         "expected 5 comma-separated fields (ts,proc,offset,bytes,op), got " +
             std::to_string(n < 0 ? 6 : n));
  }
  const auto ts_sec = parse_f64(trim(f[0]));
  if (!ts_sec || !std::isfinite(*ts_sec)) {
    fail(st.source, lineno, "ts",
         "expected seconds (float), got '" + std::string(trim(f[0])) + "'");
  }
  if (*ts_sec < 0.0 || *ts_sec > 9.0e12) {
    fail(st.source, lineno, "ts", "timestamp out of range");
  }
  RawRecord rec;
  rec.ts_us = std::llround(*ts_sec * 1e6);
  rec.proc = static_cast<std::int32_t>(field_i64(f[1], st.source, lineno, "proc"));
  rec.file = kBlkImplicitFile;
  rec.offset = Bytes{field_i64(f[2], st.source, lineno, "offset")};
  rec.bytes = Bytes{field_i64(f[3], st.source, lineno, "bytes")};
  rec.is_write = field_op(f[4], st.source, lineno);
  st.add(std::move(rec), lineno);
}

// --- minimal JSONL scanner -------------------------------------------------
// One flat object per line, string/integer values only — deliberately not a
// general JSON parser (no dependency budget for one); the schema is ours.

struct JsonCursor {
  std::string_view s;
  std::size_t i = 0;
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
};

std::string_view json_string(JsonCursor& c, ParseState& st, std::int64_t line) {
  if (!c.eat('"')) fail(st.source, line, "line", "expected '\"' in JSON object");
  const std::size_t start = c.i;
  while (c.i < c.s.size() && c.s[c.i] != '"') {
    if (c.s[c.i] == '\\') {
      fail(st.source, line, "line", "escape sequences are not supported");
    }
    ++c.i;
  }
  if (c.i == c.s.size()) fail(st.source, line, "line", "unterminated string");
  const std::string_view out = c.s.substr(start, c.i - start);
  ++c.i;  // closing quote
  return out;
}

void parse_native_jsonl_line(ParseState& st, std::string_view line,
                             std::int64_t lineno) {
  JsonCursor c{trim(line)};
  if (!c.eat('{')) fail(st.source, lineno, "line", "expected a JSON object");
  RawRecord rec;
  bool saw_ts = false, saw_proc = false, saw_file = false, saw_offset = false,
       saw_bytes = false, saw_op = false;
  while (true) {
    const std::string_view key = json_string(c, st, lineno);
    if (!c.eat(':')) fail(st.source, lineno, "line", "expected ':' after key");
    if (key == "file" || key == "op") {
      const std::string_view v = json_string(c, st, lineno);
      if (key == "file") {
        rec.file = std::string(v);
        saw_file = true;
      } else {
        rec.is_write = field_op(v, st.source, lineno);
        saw_op = true;
      }
    } else {
      c.skip_ws();
      const std::size_t start = c.i;
      while (c.i < c.s.size() && c.s[c.i] != ',' && c.s[c.i] != '}' &&
             c.s[c.i] != ' ' && c.s[c.i] != '\t') {
        ++c.i;
      }
      const std::string_view num = c.s.substr(start, c.i - start);
      if (key == "ts_us") {
        rec.ts_us = field_i64(num, st.source, lineno, "ts_us");
        saw_ts = true;
      } else if (key == "proc") {
        rec.proc = static_cast<std::int32_t>(
            field_i64(num, st.source, lineno, "proc"));
        saw_proc = true;
      } else if (key == "offset") {
        rec.offset = Bytes{field_i64(num, st.source, lineno, "offset")};
        saw_offset = true;
      } else if (key == "bytes") {
        rec.bytes = Bytes{field_i64(num, st.source, lineno, "bytes")};
        saw_bytes = true;
      } else {
        fail(st.source, lineno, "line", "unknown key '" + std::string(key) + "'");
      }
    }
    if (c.eat(',')) continue;
    if (c.eat('}')) break;
    fail(st.source, lineno, "line", "expected ',' or '}' in JSON object");
  }
  c.skip_ws();
  if (c.i != c.s.size()) {
    fail(st.source, lineno, "line", "trailing characters after JSON object");
  }
  if (!saw_ts) fail(st.source, lineno, "ts_us", "missing key");
  if (!saw_proc) fail(st.source, lineno, "proc", "missing key");
  if (!saw_file) fail(st.source, lineno, "file", "missing key");
  if (!saw_offset) fail(st.source, lineno, "offset", "missing key");
  if (!saw_bytes) fail(st.source, lineno, "bytes", "missing key");
  if (!saw_op) fail(st.source, lineno, "op", "missing key");
  st.add(std::move(rec), lineno);
}

// ---------------------------------------------------------------------------

bool has_suffix(const std::string& s, const char* suffix) {
  const std::size_t n = std::string_view(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

TraceFormat detect_format(std::string_view content, const std::string& source) {
  if (has_suffix(source, ".jsonl")) return TraceFormat::kNativeJsonl;
  if (has_suffix(source, ".blk")) return TraceFormat::kBlk;
  if (has_suffix(source, ".csv")) return TraceFormat::kNativeCsv;
  // Sniff the first non-blank, non-comment, non-header line.
  std::size_t pos = 0;
  while (pos <= content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const std::string_view line = content.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? content.size() + 1 : nl + 1;
    if (is_blank_or_comment(line)) continue;
    const std::string_view t = trim(line);
    if (t.front() == '{') return TraceFormat::kNativeJsonl;
    if (t.substr(0, 2) == "ts") continue;  // header line: format-ambiguous
    std::string_view f[8];
    const int n = split_csv(t, f, 8);
    if (n == 6) return TraceFormat::kNativeCsv;
    if (n == 5) return TraceFormat::kBlk;
    fail(source, 1, "line",
         "cannot auto-detect the trace format (expected a JSON object, 6 CSV "
         "fields, or 5 blk fields); pass an explicit format");
  }
  fail(source, 1, "trace", "trace contains no records");
}

void validate_options(const ReplayOptions& opts) {
  if (opts.slot_us <= 0) {
    throw std::invalid_argument("replay: slot_us must be > 0, got " +
                                std::to_string(opts.slot_us));
  }
  if (opts.min_compute_us < 0 || opts.max_compute_us < opts.min_compute_us) {
    throw std::invalid_argument(
        "replay: need 0 <= min_compute_us <= max_compute_us");
  }
  if (opts.granularity < 1) {
    throw std::invalid_argument("replay: granularity must be >= 1, got " +
                                std::to_string(opts.granularity));
  }
  if (!(opts.jitter_frac >= 0.0 && opts.jitter_frac <= 1.0)) {
    throw std::invalid_argument("replay: jitter_frac must be in [0, 1]");
  }
}

/// FNV-1a over a stream of 64-bit words (strings fold in byte-wise).
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void word(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    word(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

TraceParseError::TraceParseError(const std::string& source, std::int64_t line,
                                 std::string field, const std::string& detail)
    : std::runtime_error(source + ":" + std::to_string(line) + ": field '" +
                         field + "': " + detail),
      source_(source),
      line_(line),
      field_(std::move(field)) {}

const char* to_string(TraceFormat f) {
  switch (f) {
    case TraceFormat::kAuto:
      return "auto";
    case TraceFormat::kNativeCsv:
      return "csv";
    case TraceFormat::kNativeJsonl:
      return "jsonl";
    case TraceFormat::kBlk:
      return "blk";
  }
  return "?";
}

std::optional<TraceFormat> parse_trace_format(std::string_view s) {
  if (s == "auto") return TraceFormat::kAuto;
  if (s == "csv") return TraceFormat::kNativeCsv;
  if (s == "jsonl") return TraceFormat::kNativeJsonl;
  if (s == "blk") return TraceFormat::kBlk;
  return std::nullopt;
}

ReplayTrace parse_replay_trace(std::string_view content,
                               const std::string& source,
                               const ReplayOptions& opts) {
  validate_options(opts);
  TraceFormat format = opts.format;
  if (format == TraceFormat::kAuto) format = detect_format(content, source);

  ParseState st(source);
  std::size_t pos = 0;
  std::int64_t lineno = 0;
  bool header_allowed = format != TraceFormat::kNativeJsonl;
  while (pos <= content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const std::string_view line = content.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? content.size() + 1 : nl + 1;
    ++lineno;
    if (is_blank_or_comment(line)) continue;
    if (header_allowed && trim(line).substr(0, 2) == "ts") {
      // Optional CSV header (`ts_us,proc,...` / `ts,proc,...`); only ever
      // the first data-bearing line.
      header_allowed = false;
      continue;
    }
    header_allowed = false;
    switch (format) {
      case TraceFormat::kNativeCsv:
        parse_native_csv_line(st, line, lineno);
        break;
      case TraceFormat::kNativeJsonl:
        parse_native_jsonl_line(st, line, lineno);
        break;
      case TraceFormat::kBlk:
        parse_blk_line(st, line, lineno);
        break;
      case TraceFormat::kAuto:
        break;  // resolved above
    }
  }
  if (st.records.empty()) {
    fail(source, lineno, "trace", "trace contains no records");
  }

  ReplayTrace trace;
  trace.source = source;

  // File table: name-sorted, deduplicated, sizes at the high-water mark.
  std::vector<std::string> names;
  names.reserve(st.records.size());
  for (const RawRecord& r : st.records) names.push_back(r.file);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  trace.files.reserve(names.size());
  for (std::string& n : names) trace.files.push_back(ReplayFile{std::move(n), 0});

  auto file_index = [&trace](const std::string& name) {
    const auto it = std::lower_bound(
        trace.files.begin(), trace.files.end(), name,
        [](const ReplayFile& f, const std::string& n) { return f.name < n; });
    return static_cast<std::int32_t>(it - trace.files.begin());
  };

  int max_proc = 0;
  trace.records.reserve(st.records.size());
  for (const RawRecord& r : st.records) {
    ReplayRecord rec;
    rec.ts_us = r.ts_us;
    rec.proc = r.proc;
    rec.file = file_index(r.file);
    rec.offset = r.offset;
    rec.bytes = r.bytes;
    rec.is_write = r.is_write;
    auto& f = trace.files[static_cast<std::size_t>(rec.file)];
    f.size = std::max(f.size, rec.offset + rec.bytes);
    max_proc = std::max(max_proc, static_cast<int>(rec.proc));
    trace.records.push_back(rec);
  }
  trace.num_processes = max_proc + 1;

  // Canonical order: timestamp-major; processes colliding on a timestamp are
  // interleaved by a seeded splitmix64 rank (deterministic, seed-keyed);
  // per-process program order is preserved (stable sort + the monotonicity
  // check above).
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [&opts](const ReplayRecord& a, const ReplayRecord& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     const std::uint64_t ra =
                         derive_seed(opts.seed, static_cast<std::uint64_t>(a.proc));
                     const std::uint64_t rb =
                         derive_seed(opts.seed, static_cast<std::uint64_t>(b.proc));
                     if (ra != rb) return ra < rb;
                     return a.proc < b.proc;
                   });
  return trace;
}

ReplayTrace parse_replay_file(const std::string& path,
                              const ReplayOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("replay: cannot open trace file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay_trace(buf.str(), path, opts);
}

CompiledProgram lower_replay(const ReplayTrace& trace, StripingMap& striping,
                             const ReplayOptions& opts) {
  validate_options(opts);
  std::vector<FileId> ids;
  ids.reserve(trace.files.size());
  for (const ReplayFile& f : trace.files) {
    ids.push_back(striping.create_file(f.name, f.size));
  }

  // Jitter streams: one per process, seeded from the replay seed so the
  // lowering stays a pure function of (trace, options).
  std::vector<Rng> jitter;
  if (opts.jitter_frac > 0.0) {
    jitter.reserve(static_cast<std::size_t>(trace.num_processes));
    for (int p = 0; p < trace.num_processes; ++p) {
      jitter.emplace_back(derive_seed(opts.seed, 0x6a697474ULL + p));
    }
  }

  TraceBuilder tb(trace.num_processes);
  std::size_t i = 0;
  std::int64_t prev_slot = -1;
  while (i < trace.records.size()) {
    const std::int64_t slot = trace.records[i].ts_us / opts.slot_us;
    // Compute gap: the simulated time between this occupied quantum and the
    // previous one (one quantum for the first), clamped to the options'
    // range so pathological gaps neither vanish nor stall the run.
    const std::int64_t gap_us =
        prev_slot < 0 ? opts.slot_us : (slot - prev_slot) * opts.slot_us;
    const std::int64_t compute_us =
        std::clamp(gap_us, opts.min_compute_us, opts.max_compute_us);
    for (int p = 0; p < trace.num_processes; ++p) {
      std::int64_t c = compute_us;
      if (!jitter.empty()) {
        const double u = jitter[static_cast<std::size_t>(p)].next_double();
        c = std::llround(static_cast<double>(c) *
                         (1.0 + opts.jitter_frac * (u - 0.5)));
        if (c < 1) c = 1;
      }
      tb.compute(p, SimTime{c});
    }
    for (; i < trace.records.size() &&
           trace.records[i].ts_us / opts.slot_us == slot;
         ++i) {
      const ReplayRecord& r = trace.records[i];
      const FileId f = ids[static_cast<std::size_t>(r.file)];
      if (r.is_write) {
        tb.write(r.proc, f, r.offset, r.bytes);
      } else {
        tb.read(r.proc, f, r.offset, r.bytes);
      }
    }
    tb.end_iteration();
    prev_slot = slot;
  }
  return tb.build(opts.granularity);
}

std::uint64_t replay_fingerprint(const ReplayTrace& trace,
                                 const ReplayOptions& opts) {
  Fingerprint fp;
  fp.word(static_cast<std::uint64_t>(trace.num_processes));
  fp.word(trace.files.size());
  for (const ReplayFile& f : trace.files) {
    fp.str(f.name);
    fp.word(static_cast<std::uint64_t>(f.size.count()));
  }
  fp.word(trace.records.size());
  for (const ReplayRecord& r : trace.records) {
    fp.word(static_cast<std::uint64_t>(r.ts_us));
    fp.word(static_cast<std::uint64_t>(r.proc));
    fp.word(static_cast<std::uint64_t>(r.file));
    fp.word(static_cast<std::uint64_t>(r.offset.count()));
    fp.word(static_cast<std::uint64_t>(r.bytes.count()));
    fp.byte(r.is_write ? 1 : 0);
  }
  fp.word(static_cast<std::uint64_t>(opts.slot_us));
  fp.word(static_cast<std::uint64_t>(opts.min_compute_us));
  fp.word(static_cast<std::uint64_t>(opts.max_compute_us));
  fp.word(static_cast<std::uint64_t>(opts.granularity));
  fp.word(opts.seed);
  std::uint64_t jbits;
  static_assert(sizeof(jbits) == sizeof(opts.jitter_frac));
  __builtin_memcpy(&jbits, &opts.jitter_frac, sizeof(jbits));
  fp.word(jbits);
  return fp.h;
}

const App& register_replay_trace(ReplayTrace trace, const ReplayOptions& opts) {
  validate_options(opts);
  const std::uint64_t fp = replay_fingerprint(trace, opts);
  char name[32];
  std::snprintf(name, sizeof(name), "replay:%016llx",
                static_cast<unsigned long long>(fp));

  App app;
  app.name = name;
  app.description = "replayed trace (" + trace.source + ")";
  app.uses_profiling = true;
  app.length_unit = kib(256);
  app.granularity = 1;  // coarsening is opts.granularity, applied in-lower
  app.fixed_processes = trace.num_processes;
  // The closure owns the trace; shared_ptr keeps the App copyable (App holds
  // a std::function) without duplicating a large record vector per copy.
  auto shared = std::make_shared<const ReplayTrace>(std::move(trace));
  const ReplayOptions captured = opts;
  app.build = [shared, captured](StripingMap& striping,
                                 const WorkloadScale& scale) {
    if (scale.num_processes != shared->num_processes) {
      throw std::invalid_argument(
          "replay: the trace defines " + std::to_string(shared->num_processes) +
          " processes; run it with exactly that many (got " +
          std::to_string(scale.num_processes) + ")");
    }
    return lower_replay(*shared, striping, captured);
  };
  return register_app(std::move(app));
}

const App& register_replay_file(const std::string& path,
                                const ReplayOptions& opts) {
  return register_replay_trace(parse_replay_file(path, opts), opts);
}

}  // namespace dasched
