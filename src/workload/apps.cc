#include "workload/app.h"

#include <deque>
#include <mutex>
#include <stdexcept>

#include "compiler/loop_program.h"
#include "compiler/lower.h"
#include "compiler/trace_builder.h"
#include "util/rng.h"

namespace dasched {

namespace {

using AE = AffineExpr;

AE v(const char* name) { return AE::var(name); }

/// A compute-only phase of `usec` microseconds occupying one slot — the
/// inter-phase idle gaps that give power policies something to exploit.
Stmt phase(SimTime usec) {
  return make_loop("_ph", 0, 0, {make_compute(AE(usec.count()))}, /*slot_loop=*/true);
}

/// An I/O step at the paper's iteration granularity: the I/O call (plus a
/// share of the compute) occupies one slot, followed by `pads` compute-only
/// slots.  Iterations without I/O are what give the scheduler room to hoist
/// and cluster accesses — with one access in every slot, the
/// one-access-per-process-per-slot rule would force the identity schedule.
Stmt step(StmtList body, SimTime pad_usec = 0, int pads = 3) {
  StmtList outer;
  outer.push_back(make_loop("_s", 0, 0, std::move(body), /*slot_loop=*/true));
  if (pads > 0 && pad_usec > 0) {
    outer.push_back(make_loop("_pad", 0, pads - 1,
                              {make_compute(AE(pad_usec.count()))},
                              /*slot_loop=*/true));
  }
  return make_loop("_g", 0, 0, std::move(outer), /*slot_loop=*/false);
}

// ---------------------------------------------------------------------------
// hf — Hartree-Fock method.  Iterative SCF: every iteration re-reads the
// two-electron integral file (row- and column-ordered passes) and a partner
// process's density block, then runs a short diagonalization and updates its
// own density block.  Dense millisecond-gap read bursts, a ~3 s
// diagonalization per iteration, and two ~110/60 s restart phases.
// ---------------------------------------------------------------------------
CompiledProgram build_hf(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t B = s.scaled(300);
  const std::int64_t iters_per_stage = s.scaled(2);
  const std::int64_t P = s.num_processes;
  const std::int64_t rk = kib(128).count();  // integral block
  const std::int64_t dk = kib(128).count();  // density block

  const FileId f_int = striping.create_file("hf.integrals", P * B * rk);
  const FileId f_intT = striping.create_file("hf.integrals_T", P * B * rk);
  const FileId f_dens = striping.create_file("hf.density", P * dk);

  auto scf_stage = [&](StmtList& body) {
    body.push_back(make_loop(
        "i", 0, AE(iters_per_stage - 1),
        {
            make_loop(
                "b", 0, AE(B - 1),
                {
                    // Row pass: process-contiguous.
                    step({make_read(f_int, v("p") * (B * rk) + v("b") * rk, rk),
                          make_compute(AE(3'000) + v("p") * 37)},
                         2'000),
                    // Column pass: interleaved across processes.
                    step({make_read(f_intT, v("b") * (P * rk) + v("p") * rk, rk),
                          make_compute(AE(3'000) + v("p") * 23)},
                         2'000),
                    // Partner density block, produced last iteration by
                    // process P-1-p (affine inter-process dependence).
                    step({make_read(f_dens, AE((P - 1) * dk) - v("p") * dk, dk),
                          make_compute(AE(3'000))},
                         2'000),
                },
                /*slot_loop=*/false),
            // Diagonalization, then the density update closing the iteration.
            step({make_compute(AE(40'000)),
                  make_write(f_dens, v("p") * dk, dk)}),
        },
        /*slot_loop=*/false));
  };

  LoopProgram prog;
  scf_stage(prog.body);
  prog.body.push_back(phase(sec(20.0)));  // basis re-orthogonalization
  scf_stage(prog.body);
  prog.body.push_back(phase(sec(220.0)));  // checkpoint / restart
  scf_stage(prog.body);
  prog.body.push_back(phase(sec(20.0)));
  scf_stage(prog.body);
  prog.body.push_back(phase(sec(160.0)));  // second checkpoint
  scf_stage(prog.body);
  prog.body.push_back(phase(sec(20.0)));
  scf_stage(prog.body);
  return lower(prog, s.num_processes);
}

// ---------------------------------------------------------------------------
// sar — synthetic aperture radar kernel.  Frame pipeline: a streaming burst
// of swath reads per frame, a ~2 s image-formation gap, then result writes;
// two ~100/60 s calibration phases.
// ---------------------------------------------------------------------------
CompiledProgram build_sar(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t F = s.scaled(24);
  const std::int64_t S = 80;  // swaths per frame
  const std::int64_t W = 10;  // image-write slots per frame
  const std::int64_t P = s.num_processes;
  const std::int64_t swath = kib(256).count();
  const std::int64_t cal = kib(64).count();
  const std::int64_t img = kib(256).count();

  const FileId f_raw = striping.create_file("sar.raw", P * F * S * swath);
  const FileId f_cal = striping.create_file("sar.cal", P * cal);
  const FileId f_img = striping.create_file("sar.img", P * F * W * img);

  auto frames = [&](StmtList& body, std::int64_t lo, std::int64_t hi) {
    body.push_back(make_loop(
        "f", AE(lo), AE(hi),
        {
            make_loop("s", 0, AE(S - 1),
                      {
                          step({make_read(f_raw,
                                          v("p") * (F * S * swath) +
                                              v("f") * (S * swath) +
                                              v("s") * swath,
                                          swath),
                                make_compute(AE(4'000) + v("p") * 23)},
                               2'000),
                          step({make_read(f_cal, v("p") * cal, cal),
                                make_compute(AE(3'000))},
                               1'500),
                      },
                      /*slot_loop=*/false),
            phase(msec(45.0)),  // image formation hand-off
            make_loop("w", 0, AE(W - 1),
                      {
                          make_write(f_img,
                                     v("p") * (F * W * img) + v("f") * (W * img) +
                                         v("w") * img,
                                     img),
                          make_compute(AE(8'000)),
                      },
                      /*slot_loop=*/true),
        },
        /*slot_loop=*/false));
  };

  LoopProgram prog;
  frames(prog.body, 0, F / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));  // geolocation update
  frames(prog.body, F / 4, F / 2 - 1);
  prog.body.push_back(phase(sec(220.0)));  // antenna recalibration
  frames(prog.body, F / 2, 3 * F / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));
  frames(prog.body, 3 * F / 4, F - 1);
  prog.body.push_back(phase(sec(170.0)));  // final mosaicking
  return lower(prog, s.num_processes);
}

// ---------------------------------------------------------------------------
// astro — analysis of astronomical data.  Epoch scans of a column-major
// time-series cube (the 4 MiB inter-sample stride pins each process to a
// fixed I/O-node set: strong vertical reuse), a ~4 s model fit per epoch and
// one ~110 s cross-matching phase mid-run.
// ---------------------------------------------------------------------------
CompiledProgram build_astro(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t E = s.scaled(32);
  const std::int64_t T = 100;  // samples per epoch
  const std::int64_t P = s.num_processes;
  const std::int64_t samp = kib(128).count();
  const std::int64_t hdr = kib(64).count();
  const std::int64_t out = kib(64).count();

  const FileId f_ts = striping.create_file("astro.timeseries", E * T * P * samp);
  const FileId f_hdr = striping.create_file("astro.catalog", P * hdr);
  const FileId f_out = striping.create_file("astro.results", P * E * out);

  auto epochs = [&](StmtList& body, std::int64_t lo, std::int64_t hi) {
    body.push_back(make_loop(
        "e", AE(lo), AE(hi),
        {
            make_loop("t", 0, AE(T - 1),
                      {
                          // Stride P*samp between consecutive t: the same
                          // node set every slot.
                          step({make_read(f_ts,
                                          v("e") * (T * P * samp) +
                                              v("t") * (P * samp) +
                                              v("p") * samp,
                                          samp),
                                make_compute(AE(4'000) + v("p") * 41)},
                               2'500),
                          step({make_read(f_hdr, v("p") * hdr, hdr),
                                make_compute(AE(3'000))},
                               1'500),
                      },
                      /*slot_loop=*/false),
            // Model fit, then the epoch's result record.
            step({make_compute(AE(40'000)),
                  make_write(f_out, v("p") * (E * out) + v("e") * out, out)}),
        },
        /*slot_loop=*/false));
  };

  LoopProgram prog;
  epochs(prog.body, 0, E / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));  // period-folding checkpoint
  epochs(prog.body, E / 4, E / 2 - 1);
  prog.body.push_back(phase(sec(240.0)));  // catalog cross-matching
  epochs(prog.body, E / 2, 3 * E / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));
  epochs(prog.body, 3 * E / 4, E - 1);
  return lower(prog, s.num_processes);
}

// ---------------------------------------------------------------------------
// apsi — pollutant distribution modeling.  Out-of-core plane sweeps over a
// 3-D grid: each time step re-reads the planes it wrote in the previous step
// (bounded producer-consumer slacks of ~2K slots) plus sequential forcing
// data, then a ~5 s chemistry gap; two ~100/70 s radiation phases.
// ---------------------------------------------------------------------------
CompiledProgram build_apsi(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t T = s.scaled(18);
  const std::int64_t K = 80;  // planes
  const std::int64_t P = s.num_processes;
  const std::int64_t plane = kib(192).count();
  const std::int64_t flux = kib(64).count();

  const FileId f_grid = striping.create_file("apsi.grid", K * P * plane);
  const FileId f_flux = striping.create_file("apsi.forcing", T * K * flux);

  auto steps = [&](StmtList& body, std::int64_t lo, std::int64_t hi) {
    body.push_back(make_loop(
        "t", AE(lo), AE(hi),
        {
            make_loop(
                "k", 0, AE(K - 1),
                {
                    step({make_read(f_grid,
                                    v("k") * (P * plane) + v("p") * plane,
                                    plane),
                          make_compute(AE(4'000) + v("p") * 29)},
                         2'000),
                    step({make_read(f_flux, v("t") * (K * flux) + v("k") * flux,
                                    flux),
                          make_compute(AE(3'000)),
                          make_write(f_grid,
                                     v("k") * (P * plane) + v("p") * plane,
                                     plane)},
                         1'500),
                },
                /*slot_loop=*/false),
            phase(msec(45.0)),  // chemistry hand-off
        },
        /*slot_loop=*/false));
  };

  LoopProgram prog;
  steps(prog.body, 0, T / 6 - 1);
  prog.body.push_back(phase(sec(20.0)));  // aerosol update
  steps(prog.body, T / 6, T / 3 - 1);
  prog.body.push_back(phase(sec(200.0)));  // radiation
  steps(prog.body, T / 3, T / 2 - 1);
  prog.body.push_back(phase(sec(20.0)));
  steps(prog.body, T / 2, 2 * T / 3 - 1);
  prog.body.push_back(phase(sec(160.0)));  // second radiation pass
  steps(prog.body, 2 * T / 3, 5 * T / 6 - 1);
  prog.body.push_back(phase(sec(20.0)));
  steps(prog.body, 5 * T / 6, T - 1);
  return lower(prog, s.num_processes);
}

// ---------------------------------------------------------------------------
// madbench2 — cosmic microwave background radiation calculation.  Phased
// matrix pipeline: write-out, a ~15 s compute-only phase, then read-back of
// the matrices written earlier (finite cross-phase slacks).  Data-dependent
// jitter makes the nest non-affine, so this app is recorded through the
// profiling front end.
// ---------------------------------------------------------------------------
CompiledProgram build_madbench2(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t G = s.scaled(4);
  const std::int64_t Wslots = 60;
  const std::int64_t Sslots = 1;  // compute-only slots per phase
  const std::int64_t Cslots = 120;
  const int P = s.num_processes;
  const Bytes chunk = kib(256);

  const Bytes per_proc = G * Wslots * 2 * chunk;
  const FileId f_mat = striping.create_file("madbench2.matrices",
                                            P * per_proc);

  TraceBuilder tb(P);
  Rng rng(0x6d616462ULL);
  for (std::int64_t g = 0; g < G; ++g) {
    if (g == G / 2) {
      // Mid-run map-making checkpoint: the one long idle phase.
      for (int p = 0; p < P; ++p) tb.compute(p, sec(170.0));
      tb.end_iteration();
    }
    for (std::int64_t j = 0; j < Wslots; ++j) {
      for (int p = 0; p < P; ++p) {
        for (int c = 0; c < 2; ++c) {
          const Bytes off = p * per_proc +
                            ((g * Wslots + j) * 2 + c) * chunk;
          tb.write(p, f_mat, off, chunk);
        }
        tb.compute(p, 8'000 + static_cast<SimTime>(rng.next_below(6'000)));
      }
      tb.end_iteration();
    }
    for (std::int64_t j = 0; j < Sslots; ++j) {
      for (int p = 0; p < P; ++p) {
        tb.compute(p, 20'000'000 + static_cast<SimTime>(rng.next_below(800'000)));
      }
      tb.end_iteration();
    }
    for (std::int64_t j = 0; j < Cslots; ++j) {
      for (int p = 0; p < P; ++p) {
        const Bytes off = p * per_proc +
                          (g * Wslots * 2 + j) * chunk;
        tb.read(p, f_mat, off, chunk);
        tb.compute(p, 9'000 + static_cast<SimTime>(rng.next_below(8'000)));
        tb.end_slot(p);
      }
    }
  }
  return tb.build();
}

// ---------------------------------------------------------------------------
// wupwise — physics / quantum chromodynamics.  Out-of-core lattice sweeps:
// each sweep streams the (read-only) gauge field and rewrites the spinor
// field it re-reads next sweep, then a ~4 s gauge-fixing gap; two ~130/90 s
// measurement phases.  Largest dataset, longest run.
// ---------------------------------------------------------------------------
CompiledProgram build_wupwise(StripingMap& striping, const WorkloadScale& s) {
  const std::int64_t I = s.scaled(12);
  const std::int64_t C = 320;  // lattice chunks per sweep
  const std::int64_t P = s.num_processes;
  const std::int64_t gk = kib(256).count();
  const std::int64_t sk = kib(128).count();

  const FileId f_gauge = striping.create_file("wupwise.gauge", C * P * gk);
  const FileId f_spin = striping.create_file("wupwise.spinor", P * C * sk);

  auto sweeps = [&](StmtList& body, std::int64_t lo, std::int64_t hi) {
    body.push_back(make_loop(
        "i", AE(lo), AE(hi),
        {
            make_loop(
                "c", 0, AE(C - 1),
                {
                    step({make_read(f_gauge, v("c") * (P * gk) + v("p") * gk,
                                    gk),
                          make_compute(AE(4'000) + v("p") * 31)},
                         2'500),
                    step({make_read(f_spin, v("p") * (C * sk) + v("c") * sk,
                                    sk),
                          make_compute(AE(4'000)),
                          make_write(f_spin, v("p") * (C * sk) + v("c") * sk,
                                     sk)},
                         2'000),
                },
                /*slot_loop=*/false),
            phase(msec(45.0)),  // gauge-fixing hand-off
        },
        /*slot_loop=*/false));
  };

  LoopProgram prog;
  sweeps(prog.body, 0, I / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));  // plaquette averaging
  sweeps(prog.body, I / 4, I / 2 - 1);
  prog.body.push_back(phase(sec(260.0)));  // measurement
  sweeps(prog.body, I / 2, 3 * I / 4 - 1);
  prog.body.push_back(phase(sec(20.0)));
  sweeps(prog.body, 3 * I / 4, I - 1);
  prog.body.push_back(phase(sec(200.0)));  // final measurement
  return lower(prog, s.num_processes);
}

}  // namespace

const std::vector<App>& all_apps() {
  static const std::vector<App> apps = [] {
    std::vector<App> out;
    out.push_back(App{"hf", "Hartree-Fock Method", 27.9, 3'637.4, false,
                      mib(1), 1, /*fixed_processes=*/0, build_hf});
    out.push_back(App{"sar", "Synthetic Aperture Radar Kernel", 11.1, 1'227.3,
                      false, kib(192), 1, /*fixed_processes=*/0, build_sar});
    out.push_back(App{"astro", "Analysis of Astronomical Data", 16.8, 2'837.6,
                      false, mib(1), 1, /*fixed_processes=*/0, build_astro});
    out.push_back(App{"apsi", "Pollutant Distribution Modeling", 13.7, 3'094.1,
                      false, mib(1), 1, /*fixed_processes=*/0, build_apsi});
    out.push_back(App{"madbench2", "Cosmic Microwave Background Radiation",
                      9.8, 1'955.3, true, kib(512), 1, /*fixed_processes=*/0, build_madbench2});
    out.push_back(App{"wupwise", "Physics / Quantum Chromodynamics", 39.8,
                      4'812.1, false, kib(192), 1, /*fixed_processes=*/0, build_wupwise});
    return out;
  }();
  return apps;
}

namespace {

// Registered (dynamic) apps.  A deque gives every entry a stable address —
// register_app hands out references that must survive later registrations —
// and the mutex covers both registration and lookup, so daemon tenants can
// upload traces while other tenants resolve app names.  Function-local
// statics avoid any global-init ordering hazard with all_apps().
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::deque<App>& registered_apps() {
  static std::deque<App> apps;
  return apps;
}

}  // namespace

const App& register_app(App app) {
  for (const App& builtin : all_apps()) {
    if (builtin.name == app.name) {
      throw std::invalid_argument("register_app: '" + app.name +
                                  "' shadows a built-in application");
    }
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (const App& existing : registered_apps()) {
    if (existing.name == app.name) return existing;  // first-wins idempotence
  }
  registered_apps().push_back(std::move(app));
  return registered_apps().back();
}

const App& app_by_name(const std::string& name) {
  for (const App& app : all_apps()) {
    if (app.name == name) return app;
  }
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const App& app : registered_apps()) {
      if (app.name == name) return app;
    }
  }
  throw std::out_of_range("unknown application: " + name);
}

}  // namespace dasched
