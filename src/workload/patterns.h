// Reusable access-pattern builders for the affine loop-nest IR.
//
// The six paper applications (apps.cc) are compositions of a handful of
// canonical parallel I/O patterns; this header exposes those patterns as a
// small combinator library so new workloads (examples, tests, user studies)
// can be assembled declaratively.  Every builder returns a `Stmt` that can
// be dropped into a `LoopProgram` body.
//
// Conventions shared with the rest of the compiler: `p` is the process id,
// `P` the process count; each I/O call occupies one scheduling slot followed
// by `pads` compute-only slots (see DESIGN.md on iteration granularity).
#pragma once

#include <string>

#include "compiler/loop_program.h"
#include "util/units.h"

namespace dasched::patterns {

/// Knobs shared by all pattern builders.
struct StepShape {
  /// CPU time in the I/O slot itself.
  SimTime io_compute = usec(4'000);
  /// CPU time of each trailing compute-only slot.
  SimTime pad_compute = usec(2'000);
  /// Number of trailing compute-only slots.
  int pads = 2;
};

/// One I/O step: the call plus its pad slots.
[[nodiscard]] Stmt io_step(Stmt call, const StepShape& shape);

/// Process-partitioned sequential scan: process p reads `count` blocks of
/// `block` bytes from its contiguous band of `file` (band stride =
/// count*block per process).  The classic streaming input pattern (sar).
[[nodiscard]] Stmt sequential_scan(FileId file, std::int64_t count, Bytes block,
                                   const StepShape& shape = {},
                                   const std::string& var = "i");

/// Interleaved scan: block i of process p sits at i*stride + p*block, the
/// layout of (i*P + p)*block with stride = P*block.  Consecutive iterations
/// of one process stride by `stride`, which for node-aligned strides pins
/// the process to a fixed I/O-node set (astro).  The stride is a build-time
/// constant because i*P*block is not affine in (i, P) jointly.
[[nodiscard]] Stmt interleaved_scan(FileId file, std::int64_t count,
                                    Bytes block, Bytes stride,
                                    const StepShape& shape = {},
                                    const std::string& var = "i");

/// Hot-block re-read: every iteration reads the same process-private block
/// (calibration tables, density matrices) — storage-cache resident.
[[nodiscard]] Stmt hot_block_reread(FileId file, std::int64_t count,
                                    Bytes block, const StepShape& shape = {},
                                    const std::string& var = "i");

/// In-place update sweep: read block i, compute, write it back (apsi's
/// plane sweep).  Reads carry one-sweep producer-consumer slacks when the
/// sweep is repeated.
[[nodiscard]] Stmt update_sweep(FileId file, std::int64_t count, Bytes block,
                                const StepShape& shape = {},
                                const std::string& var = "i");

/// Producer stream: write `count` process-private blocks (madbench's
/// write-out phase).
[[nodiscard]] Stmt producer_stream(FileId file, std::int64_t count,
                                   Bytes block, const StepShape& shape = {},
                                   const std::string& var = "i");

/// A compute-only phase of the given length in one slot — the idle gaps the
/// power policies exploit.
[[nodiscard]] Stmt compute_phase(SimTime duration);

}  // namespace dasched::patterns
