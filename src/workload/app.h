// Workload models of the paper's six applications (Table III).
//
// The originals are parallel, I/O-intensive scientific codes with dataset
// sizes of 190-446 GB.  We reproduce each one's *structure* — loop nests,
// request sizes, stride patterns, read/write mix, phase layout and
// compute-to-I/O ratio — at a dataset and runtime scale of roughly 1/8 so a
// simulation completes in seconds of wall time.  All reported paper
// comparisons are on values normalized to the Default scheme, which is
// invariant under this uniform scaling (see DESIGN.md).
//
// Five applications are expressed in the affine loop-nest IR (the paper's
// polyhedral path); madbench2 is recorded through the profiling front end
// (TraceBuilder) to exercise the non-affine path.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "compiler/program.h"
#include "storage/striping.h"
#include "util/units.h"

namespace dasched {

struct WorkloadScale {
  int num_processes = 32;
  /// Multiplies iteration counts; 1.0 = the calibrated default, small values
  /// (e.g. 0.05) give test-sized runs.
  double factor = 1.0;

  [[nodiscard]] std::int64_t scaled(std::int64_t n, std::int64_t min = 2) const {
    const auto v = static_cast<std::int64_t>(static_cast<double>(n) * factor);
    return v < min ? min : v;
  }
};

struct App {
  std::string name;
  std::string description;
  /// Table III reference values (unscaled originals).
  double paper_exec_minutes = 0.0;
  double paper_energy_joules = 0.0;
  /// True when the app goes through the profiling (trace) front end.
  bool uses_profiling = false;
  /// Per-app compile tweaks.
  Bytes length_unit = mib(1);
  int granularity = 1;
  /// > 0: the workload defines its own process count (replayed traces carry
  /// theirs in the trace); callers must run it with exactly this many
  /// processes instead of scaling WorkloadScale::num_processes freely.
  int fixed_processes = 0;
  /// Registers the app's files on `striping` and returns the lowered
  /// per-process slot plans.
  std::function<CompiledProgram(StripingMap&, const WorkloadScale&)> build;
};

/// The six applications, in Table III order:
/// hf, sar, astro, apsi, madbench2, wupwise.
[[nodiscard]] const std::vector<App>& all_apps();

/// Lookup by name: the six built-ins first, then the registered-app table.
/// Throws std::out_of_range for unknown names.
[[nodiscard]] const App& app_by_name(const std::string& name);

/// Registers a dynamically built app (a replayed trace) under `app.name` and
/// returns a stable reference resolvable through `app_by_name`.  Thread-safe;
/// registration is first-wins and idempotent — re-registering an existing
/// name returns the original entry unchanged, so content-addressed names
/// (replay:<fingerprint>) make concurrent uploads of the same trace converge
/// on one shared App.  Shadowing a built-in name throws
/// std::invalid_argument.  Registered apps live for the process lifetime.
const App& register_app(App app);

}  // namespace dasched
