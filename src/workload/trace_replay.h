// Trace-replay ingestion: external I/O traces as workloads.
//
// The six Table III applications are synthetic reconstructions; real
// evaluations replay production traces.  This front end parses external
// trace files into a canonical record list and lowers them — through the
// same profiling path madbench2 uses (compiler/trace_builder.h) — into the
// `CompiledProgram` the slack analysis and scheduler consume, so a replayed
// trace is a first-class App: runnable via `dasched_run --replay`, grid
// axes, the workspace, and daemon requests.
//
// Formats (docs in EXPERIMENTS.md "Trace replay"):
//   * native CSV:   `ts_us,proc,file,offset,bytes,op` — op is R or W,
//                    `#` comments and an optional header line allowed.
//   * native JSONL: one flat object per line with the same six keys.
//   * blk:          SNIA/blktrace-style `ts,proc,offset,bytes,op` — ts in
//                    seconds (fractional), one implicit file.
//
// Determinism: lowering is a pure function of (trace bytes, ReplayOptions).
// Files are registered in name-sorted order; records are sorted by
// timestamp with a seeded splitmix64 tie-break between processes that
// collide on a timestamp (per-process program order is always preserved —
// the parser rejects per-process timestamp regressions).  No wall-clock, no
// unordered-container iteration anywhere on the path, so `dasched_lint`
// stays green and a trace replays bit-identically in-process, through a
// single-tenant daemon, and under N concurrent tenants (DESIGN.md §17).
//
// Parsing never touches simulation state: a malformed trace throws
// `TraceParseError` (with file/line/field context) before any workspace or
// striping mutation, so a bad upload can never poison a warm tenant.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/program.h"
#include "storage/striping.h"
#include "util/units.h"
#include "workload/app.h"

namespace dasched {

/// Parse failure with precise provenance.  `what()` renders
/// `<source>:<line>: field '<field>': <detail>`.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(const std::string& source, std::int64_t line,
                  std::string field, const std::string& detail);

  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  [[nodiscard]] std::int64_t line() const noexcept { return line_; }
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string source_;
  std::int64_t line_;
  std::string field_;
};

enum class TraceFormat : std::uint8_t {
  kAuto = 0,    // sniff: extension first, then the first data line
  kNativeCsv,   // ts_us,proc,file,offset,bytes,op
  kNativeJsonl, // same keys, one JSON object per line
  kBlk,         // ts,proc,offset,bytes,op (seconds; single implicit file)
};

[[nodiscard]] const char* to_string(TraceFormat f);
/// Parses auto|csv|jsonl|blk; nullopt otherwise.
[[nodiscard]] std::optional<TraceFormat> parse_trace_format(std::string_view s);

/// One canonical I/O record; `file` indexes ReplayTrace::files.
struct ReplayRecord {
  std::int64_t ts_us = 0;
  std::int32_t proc = 0;
  std::int32_t file = 0;
  Bytes offset = 0;
  Bytes bytes = 0;
  bool is_write = false;
};

struct ReplayFile {
  std::string name;
  Bytes size = 0;  // high-water mark of offset + bytes
};

struct ReplayTrace {
  /// Name-sorted; registration order on the striping map.
  std::vector<ReplayFile> files;
  /// Sorted by (ts_us, seeded proc tie-break, input order).
  std::vector<ReplayRecord> records;
  int num_processes = 0;
  /// The parse's source label (path or upload name), for diagnostics.
  std::string source;
};

struct ReplayOptions {
  TraceFormat format = TraceFormat::kAuto;
  /// Timestamp quantum: records within one quantum share a scheduling slot.
  std::int64_t slot_us = 10'000;
  /// Per-slot compute is the inter-slot timestamp gap, clamped to this
  /// range so one silent week in a trace cannot stall the simulation.
  std::int64_t min_compute_us = 1'000;
  std::int64_t max_compute_us = 5'000'000;
  /// Slot coarsening (the paper's d), applied after lowering.
  int granularity = 1;
  /// Seed for the cross-process timestamp tie-break and the optional
  /// compute jitter; part of the replayed app's identity (fingerprint).
  std::uint64_t seed = 1;
  /// > 0 adds deterministic per-process compute jitter of +-frac/2,
  /// mirroring the recorded jitter of the profiled paper apps.  0 = off.
  double jitter_frac = 0.0;

  friend bool operator==(const ReplayOptions&, const ReplayOptions&) = default;
};

/// Parses `content` (the full trace text) as `source`; throws
/// TraceParseError on any malformed line and std::invalid_argument on
/// invalid options.  Performs no I/O and touches no global state.
[[nodiscard]] ReplayTrace parse_replay_trace(std::string_view content,
                                             const std::string& source,
                                             const ReplayOptions& opts);

/// Reads and parses a trace file; std::runtime_error if unreadable.
[[nodiscard]] ReplayTrace parse_replay_file(const std::string& path,
                                            const ReplayOptions& opts);

/// Registers the trace's files on `striping` (name-sorted) and lowers the
/// records to per-process slot plans through the profiling front end.
[[nodiscard]] CompiledProgram lower_replay(const ReplayTrace& trace,
                                           StripingMap& striping,
                                           const ReplayOptions& opts);

/// Content fingerprint of (canonical records + files + options): the
/// identity under which the trace is registered.  Format-independent — the
/// same I/O sequence uploaded as CSV or JSONL hashes identically.
[[nodiscard]] std::uint64_t replay_fingerprint(const ReplayTrace& trace,
                                               const ReplayOptions& opts);

/// Registers the parsed trace as an App named `replay:<fingerprint-hex>`
/// with `fixed_processes = trace.num_processes`, and returns the stable
/// registry entry.  Content-addressed + first-wins registration makes
/// repeated/concurrent uploads of the same trace converge on one App.
const App& register_replay_trace(ReplayTrace trace, const ReplayOptions& opts);

/// parse_replay_file + register_replay_trace.
const App& register_replay_file(const std::string& path,
                                const ReplayOptions& opts);

}  // namespace dasched
