// Event-queue sanity (invariant 5 of the audit catalog).
//
// Mirrors the `Simulator` contract from the outside: no event may be
// scheduled for the past, fired events must replay in nondecreasing time
// order at their scheduled instants, and a cancelled handle must never have
// its callback run.  The check keeps its own ledger of pending events, so a
// engine-side bookkeeping bug (double fire, lost cancellation) cannot hide.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "check/audit.h"
#include "sim/simulator.h"
#include "util/annotations.h"

namespace dasched {

class DASCHED_OBSERVER_PASSIVE EventQueueCheck final
    : public InvariantCheck,
      public SimObserver {
 public:
  explicit EventQueueCheck(SimAuditor& auditor) : InvariantCheck(auditor) {}

  [[nodiscard]] const char* name() const override { return "event-queue"; }

  // SimObserver --------------------------------------------------------------
  void on_event_scheduled(std::uint64_t seq, SimTime t, SimTime now) override;
  void on_event_fired(std::uint64_t seq, SimTime t, bool cancelled) override;
  void on_event_discarded(std::uint64_t seq) override;

  /// Events scheduled but neither fired nor discarded (pending timers).
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  std::unordered_map<std::uint64_t, SimTime> pending_;
  SimTime last_fired_ = 0;
};

}  // namespace dasched
