#include "check/event_check.h"

#include <string>

namespace dasched {

void EventQueueCheck::on_event_scheduled(std::uint64_t seq, SimTime t,
                                         SimTime now) {
  evaluated();
  if (t < now) {
    fail(now, "event #" + std::to_string(seq) + " scheduled at t=" +
                  std::to_string(t.count()) + "us, in the past of now=" +
                  std::to_string(now.count()) + "us");
    t = now;  // the engine clamps; mirror it so the ledger stays in sync
  }
  pending_.emplace(seq, t);
}

void EventQueueCheck::on_event_fired(std::uint64_t seq, SimTime t,
                                     bool cancelled) {
  evaluated();
  if (cancelled) {
    fail(t, "cancelled event #" + std::to_string(seq) + " fired anyway");
  }
  const auto it = pending_.find(seq);
  if (it == pending_.end()) {
    fail(t, "event #" + std::to_string(seq) +
                " fired without a matching schedule (double fire?)");
  } else {
    if (it->second != t) {
      fail(t, "event #" + std::to_string(seq) + " fired at t=" +
                  std::to_string(t.count()) + "us but was scheduled for t=" +
                  std::to_string(it->second.count()) + "us");
    }
    pending_.erase(it);
  }
  if (t < last_fired_) {
    fail(t, "time ran backwards: event #" + std::to_string(seq) +
                " fired at t=" + std::to_string(t.count()) +
                "us after an event at t=" + std::to_string(last_fired_.count()) + "us");
  }
  last_fired_ = t > last_fired_ ? t : last_fired_;
}

void EventQueueCheck::on_event_discarded(std::uint64_t seq) {
  evaluated();
  if (pending_.erase(seq) == 0) {
    fail(last_fired_, "event #" + std::to_string(seq) +
                          " discarded without a matching schedule");
  }
}

}  // namespace dasched
