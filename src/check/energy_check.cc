#include "check/energy_check.h"

#include <cmath>
#include <sstream>

namespace dasched {

namespace {

/// Absolute slack for comparing two double energy sums.  The simulator and
/// the ledger add the same terms in the same order, so differences beyond
/// rounding noise are genuine mis-bookings.
constexpr double kAbsEpsJ = 1e-6;

bool close(Joules a, Joules b) {
  const double av = std::fabs(a.value());
  const double bv = std::fabs(b.value());
  const double scale = av > bv ? av : bv;
  return std::fabs((a - b).value()) <= kAbsEpsJ + 1e-12 * scale;
}

}  // namespace

EnergyConservationCheck::Ledger& EnergyConservationCheck::ledger_for(
    const Disk& disk) {
  const auto it = ledger_index_.find(&disk);
  if (it != ledger_index_.end()) return ledgers_[it->second].second;
  ledger_index_.emplace(&disk, ledgers_.size());
  ledgers_.emplace_back(&disk, Ledger{disk.params()});
  return ledgers_.back().second;
}

Watts EnergyConservationCheck::expected_power_w(const Ledger& ledger,
                                                const Disk& disk,
                                                DiskState state, Rpm rpm) {
  switch (state) {
    case DiskState::kIdle: return ledger.model.idle_w(rpm);
    case DiskState::kSeeking: return ledger.model.seek_w(rpm);
    case DiskState::kTransferring: return ledger.model.active_w(rpm);
    case DiskState::kSpinningDown: return ledger.model.spin_down_w();
    case DiskState::kStandby: return ledger.model.standby_w();
    case DiskState::kSpinningUp: return ledger.model.spin_up_w();
    case DiskState::kChangingSpeed:
      return ledger.model.rpm_transition_w(disk.transition_from(),
                                           disk.transition_to());
  }
  return Watts{0.0};
}

void EnergyConservationCheck::on_energy_accrued(const Disk& disk,
                                                DiskState state, Rpm rpm,
                                                SimTime dt, Joules joules) {
  evaluated();
  Ledger& ledger = ledger_for(disk);
  const Joules expected = expected_power_w(ledger, disk, state, rpm) * dt;
  if (!close(expected, joules)) {
    std::ostringstream os;
    os << "disk booked " << joules << " J for " << to_sec(dt) << " s in "
       << to_string(state) << " at " << rpm << " rpm; power model implies "
       << expected << " J";
    fail(disk.sim().now(), os.str());
  }
  // Grow the ledger by what the mode/residency product says, so a one-off
  // mis-booking also surfaces as a running-total divergence.
  ledger.expected_j += expected;
  ledger.expected_by_state_j[static_cast<int>(state)] += expected;
  ledger.residency[static_cast<int>(state)] += dt;
}

void EnergyConservationCheck::cross_check_total(const Disk& disk,
                                                const char* where) {
  evaluated();
  const Ledger& ledger = ledger_for(disk);
  const Joules booked = disk.stats().energy_j;
  if (!close(ledger.expected_j, booked)) {
    std::ostringstream os;
    os << where << ": disk total energy " << booked
       << " J diverges from sum(mode residency x wattage) = "
       << ledger.expected_j << " J";
    fail(disk.sim().now(), os.str());
  }
}

void EnergyConservationCheck::on_state_change(const Disk& disk, DiskState from,
                                              DiskState to) {
  (void)from, (void)to;
  cross_check_total(disk, "mode transition");
}

void EnergyConservationCheck::on_finalized(const Disk& disk) {
  cross_check_total(disk, "finalize");
  Ledger& ledger = ledger_for(disk);
  const DiskStats& stats = disk.stats();

  Joules by_state_sum{};
  for (int s = 0; s < kNumDiskStates; ++s) {
    by_state_sum += stats.energy_by_state_j[static_cast<std::size_t>(s)];
    if (!close(stats.energy_by_state_j[static_cast<std::size_t>(s)],
               ledger.expected_by_state_j[static_cast<std::size_t>(s)])) {
      std::ostringstream os;
      os << "finalize: energy booked to " << to_string(static_cast<DiskState>(s))
         << " is " << stats.energy_by_state_j[static_cast<std::size_t>(s)]
         << " J; residency x wattage implies "
         << ledger.expected_by_state_j[static_cast<std::size_t>(s)] << " J";
      fail(disk.sim().now(), os.str());
    }
  }
  evaluated();
  if (!close(by_state_sum, stats.energy_j)) {
    std::ostringstream os;
    os << "finalize: per-state energies sum to " << by_state_sum
       << " J but total is " << stats.energy_j << " J";
    fail(disk.sim().now(), os.str());
  }
  evaluated();
  if (ledger.residency[static_cast<int>(DiskState::kStandby)] !=
      stats.time_in_standby) {
    std::ostringstream os;
    os << "finalize: standby residency " << to_sec(stats.time_in_standby)
       << " s disagrees with observed "
       << to_sec(ledger.residency[static_cast<int>(DiskState::kStandby)])
       << " s";
    fail(disk.sim().now(), os.str());
  }
}

Joules EnergyConservationCheck::ledger_total_j() const {
  Joules total{};
  for (const auto& [disk, ledger] : ledgers_) total += ledger.expected_j;
  return total;
}

std::array<Joules, kNumDiskStates> EnergyConservationCheck::ledger_by_state_j()
    const {
  std::array<Joules, kNumDiskStates> out{};
  for (const auto& [disk, ledger] : ledgers_) {
    for (int s = 0; s < kNumDiskStates; ++s) {
      out[static_cast<std::size_t>(s)] +=
          ledger.expected_by_state_j[static_cast<std::size_t>(s)];
    }
  }
  return out;
}

void EnergyConservationCheck::cross_check_aggregate(
    const std::array<Joules, kNumDiskStates>& by_state_j, Joules total_j,
    SimTime when) {
  Joules external_sum{};
  for (Joules v : by_state_j) external_sum += v;

  evaluated();
  if (!close(external_sum, total_j)) {
    std::ostringstream os;
    os << "aggregate: external per-state energies sum to " << external_sum
       << " J but the run's scalar total is " << total_j << " J";
    fail(when, os.str());
  }

  const std::array<Joules, kNumDiskStates> ledger = ledger_by_state_j();
  for (int s = 0; s < kNumDiskStates; ++s) {
    evaluated();
    if (!close(by_state_j[static_cast<std::size_t>(s)],
               ledger[static_cast<std::size_t>(s)])) {
      std::ostringstream os;
      os << "aggregate: external energy in "
         << to_string(static_cast<DiskState>(s)) << " is "
         << by_state_j[static_cast<std::size_t>(s)]
         << " J; the independent ledgers sum to "
         << ledger[static_cast<std::size_t>(s)] << " J";
      fail(when, os.str());
    }
  }
}

}  // namespace dasched
