// Energy conservation (invariant 1 of the audit catalog).
//
// Replays every energy accrual against an independent `PowerModel` instance:
// the joules a disk books for a residency interval must equal
// (mode wattage at the interval's speed) x (interval length), and the disk's
// running `energy_j` must equal the ledger's independent sum — cross-checked
// at every mode transition and again at finalize, where the per-state energy
// split and the standby-residency counter are also reconciled.
#pragma once

#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/audit.h"
#include "disk/disk.h"
#include "disk/power_model.h"
#include "util/annotations.h"

namespace dasched {

class DASCHED_OBSERVER_PASSIVE EnergyConservationCheck final
    : public InvariantCheck,
                                      public DiskObserver {
 public:
  explicit EnergyConservationCheck(SimAuditor& auditor)
      : InvariantCheck(auditor) {}

  [[nodiscard]] const char* name() const override {
    return "energy-conservation";
  }

  // DiskObserver -------------------------------------------------------------
  void on_energy_accrued(const Disk& disk, DiskState state, Rpm rpm,
                         SimTime dt, Joules joules) override;
  void on_state_change(const Disk& disk, DiskState from, DiskState to) override;
  void on_finalized(const Disk& disk) override;

  // External aggregates ------------------------------------------------------
  /// Cross-checks an externally derived per-state energy breakdown (the
  /// telemetry summary's) against the independent ledgers and against the
  /// run's scalar total `total_j` — the conservation invariant extended
  /// across the telemetry path.  Records violations on divergence.
  void cross_check_aggregate(
      const std::array<Joules, kNumDiskStates>& by_state_j, Joules total_j,
      SimTime when);

  /// Sum of all disks' independent ledgers (valid after the run).
  [[nodiscard]] Joules ledger_total_j() const;
  [[nodiscard]] std::array<Joules, kNumDiskStates> ledger_by_state_j() const;

  /// Appends a shard-local peer's per-disk ledgers (lanes audit disjoint
  /// disk sets), so `cross_check_aggregate` covers the whole fleet after a
  /// sharded run's per-lane checks merge.  Peers append in lane order and
  /// each peer's vector keeps first-accrual order, so the sums stay
  /// deterministic and shard-count invariant.
  void absorb_ledgers(const EnergyConservationCheck& other) {
    for (const auto& [disk, ledger] : other.ledgers_) {
      ledger_index_.emplace(disk, ledgers_.size());
      ledgers_.emplace_back(disk, ledger);
    }
  }

 private:
  struct Ledger {
    PowerModel model;
    Joules expected_j{};
    std::array<Joules, kNumDiskStates> expected_by_state_j{};
    std::array<SimTime, kNumDiskStates> residency{};
    explicit Ledger(const DiskParams& params) : model(params) {}
  };

  Ledger& ledger_for(const Disk& disk);
  /// Wattage the disk must draw in `state` — the auditor's own reading of
  /// the power model, independent of `Disk::current_power_w`.
  [[nodiscard]] static Watts expected_power_w(const Ledger& ledger,
                                              const Disk& disk,
                                              DiskState state, Rpm rpm);
  void cross_check_total(const Disk& disk, const char* where);

  // Ledgers are iterated when aggregating (float sums feed audit reports),
  // so they live in a vector in first-accrual order — deterministic for a
  // deterministic simulation.  The pointer-keyed unordered map is a
  // lookup-only index; its iteration order can never reach a report.
  std::unordered_map<const Disk*, std::size_t> ledger_index_;
  std::vector<std::pair<const Disk*, Ledger>> ledgers_;
};

}  // namespace dasched
