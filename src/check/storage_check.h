// Cache/striping accounting (invariant 4 of the audit catalog).
//
// Taps both the client-level router and every I/O node.  On each routed
// request the stripe math is re-derived: the pieces must tile the byte range
// exactly, stay inside single stripes, land on the round-robin node that
// `StripingMap::node_of_stripe` names, and point into allocated node-local
// space.  Per node, the observed hit/miss/prefetch/disk-op streams must
// reconcile with the `CacheStats` and disk counters the node reports at
// finalize, and no node may deliver more requests than were routed to it.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "check/audit.h"
#include "storage/io_node.h"
#include "storage/storage_system.h"
#include "storage/striping.h"
#include "util/annotations.h"

namespace dasched {

class DASCHED_OBSERVER_PASSIVE StorageAccountingCheck final
    : public InvariantCheck,
                                     public IoNodeObserver,
                                     public StorageObserver {
 public:
  /// `striping` enables the per-request stripe-math re-derivation; without it
  /// (standalone I/O-node tests) only the per-node ledgers are checked.
  explicit StorageAccountingCheck(SimAuditor& auditor,
                                  const StripingMap* striping = nullptr)
      : InvariantCheck(auditor), striping_(striping) {}

  [[nodiscard]] const char* name() const override {
    return "storage-accounting";
  }

  // StorageObserver ----------------------------------------------------------
  void on_request_routed(FileId f, Bytes offset, Bytes size, bool is_write,
                         std::span<const StripePiece> pieces) override;

  // IoNodeObserver -----------------------------------------------------------
  void on_read(const IoNode& node, Bytes offset, Bytes size,
               bool background) override;
  void on_write(const IoNode& node, Bytes offset, Bytes size) override;
  void on_block_lookup(const IoNode& node, Bytes block, bool hit) override;
  void on_prefetch_issued(const IoNode& node, Bytes block) override;
  void on_disk_ops_issued(const IoNode& node, std::size_t count) override;
  void on_finalized(const IoNode& node, const IoNodeStats& stats) override;

  void at_end() override;

  /// Folds a shard-local peer's per-node delivery ledgers into this
  /// (routing-side) check ahead of `at_end`'s routed-vs-delivered pass.
  /// Lanes own disjoint node sets, so this is a plain union.
  void absorb_node_ledgers(const StorageAccountingCheck& other) {
    // dasched-lint: allow(nondet-unordered-iter): union into another
    // unordered map — the merged content is iteration-order independent.
    for (const auto& [id, ledger] : other.ledgers_) ledgers_[id] = ledger;
  }

 private:
  struct NodeLedger {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t prefetches = 0;
    std::int64_t disk_ops = 0;
    /// Demand (non-background) node-local reads delivered to the node.
    std::int64_t demand_reads = 0;
    std::int64_t background_reads = 0;
    std::int64_t writes = 0;
    /// Blocks touched by writes (upper-bounds write-path insertions).
    std::int64_t write_blocks = 0;
    bool finalized = false;
  };

  struct RoutedLedger {
    std::int64_t read_pieces = 0;
    std::int64_t write_pieces = 0;
  };

  NodeLedger& ledger_for(const IoNode& node) {
    return ledgers_[node.node_id()];
  }

  const StripingMap* striping_;
  std::unordered_map<int, NodeLedger> ledgers_;
  std::unordered_map<int, RoutedLedger> routed_;
  bool routing_seen_ = false;
};

}  // namespace dasched
