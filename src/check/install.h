// Wiring helpers: attach the full invariant catalog to a live simulation
// stack (or to compiled artifacts) with two calls.
//
//   SimAuditor auditor;
//   install_audit(auditor, sim, storage, cfg.policy, cfg.policy_cfg);
//   audit_compiled(auditor, compiled, opts.sched);
//   ... run ...
//   auditor.finalize();
//
// The auditor owns the checks; the layers keep raw observer pointers (each
// layer multiplexes observers natively, so audit composes with telemetry),
// so the auditor must outlive the simulation.
#pragma once

#include "check/audit.h"
#include "check/disk_state_check.h"
#include "check/energy_check.h"
#include "check/event_check.h"
#include "check/schedule_check.h"
#include "check/storage_check.h"
#include <memory>
#include <vector>

#include "compiler/compile.h"
#include "sim/sharded_sim.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"

namespace dasched {

/// The runtime checks one `install_audit` call registers.
struct InstalledChecks {
  EventQueueCheck* events = nullptr;
  EnergyConservationCheck* energy = nullptr;
  DiskStateMachineCheck* disk_state = nullptr;
  StorageAccountingCheck* storage = nullptr;
};

/// Registers the four runtime checks and hooks them into the simulator, the
/// storage system, every I/O node and every disk.  `policy`/`policy_cfg`
/// must describe the power policy the disks actually run.
InstalledChecks install_audit(SimAuditor& auditor, Simulator& sim,
                              StorageSystem& storage, PolicyKind policy,
                              const PolicyConfig& policy_cfg);

/// Registers the scheduling-consistency check and validates one compiled
/// program immediately (it is a pure artifact validator).
ScheduleConsistencyCheck& audit_compiled(SimAuditor& auditor,
                                         const Compiled& compiled,
                                         const ScheduleOptions& opts,
                                         bool scheduling_enabled = true);

/// Shard-local audit wiring: one auditor per lane, so every observer
/// callback stays on the worker thread that owns its lane, with no shared
/// mutable state between workers.  Merged into one report after the run by
/// `finalize_audit_sharded`.
struct ShardedAuditLanes {
  std::vector<std::unique_ptr<SimAuditor>> auditors;  // one per lane
  /// Lane 0's routing-side accounting check (sees on_request_routed only).
  StorageAccountingCheck* routing = nullptr;
  /// Lane 0's energy check: owns no disks, serves as the aggregate sink the
  /// node lanes' ledgers merge into (cross_check_aggregate target).
  EnergyConservationCheck* energy = nullptr;
  std::vector<StorageAccountingCheck*> node_accounting;  // per node lane
  std::vector<EnergyConservationCheck*> node_energy;     // per node lane
  bool merged = false;  // set by merge_sharded_ledgers

  [[nodiscard]] bool installed() const { return !auditors.empty(); }
};

/// Sharded counterpart of `install_audit`: lane 0 gets the event-queue and
/// routing checks, each node lane gets event-queue, energy, disk-state and
/// delivery-ledger checks wired to its own node and disks.
void install_audit_sharded(ShardedAuditLanes& lanes, ShardedSimulator& sim,
                           StorageSystem& storage, PolicyKind policy,
                           const PolicyConfig& policy_cfg);

/// Merges the node lanes' delivery and energy ledgers into lane 0's checks.
/// Call after the run and after `StorageSystem::finalize()` (the node-side
/// finalize cross-checks fire there); afterwards `lanes.energy` covers the
/// whole disk fleet (cross_check_aggregate works).  Idempotent.
void merge_sharded_ledgers(ShardedAuditLanes& lanes);

/// Runs every lane's end-of-run pass and absorbs all findings into `into`
/// (merging the ledgers first if the caller has not).  Call last, before
/// reading `into`'s report.
void finalize_audit_sharded(ShardedAuditLanes& lanes, SimAuditor& into);

}  // namespace dasched
