// Wiring helpers: attach the full invariant catalog to a live simulation
// stack (or to compiled artifacts) with two calls.
//
//   SimAuditor auditor;
//   install_audit(auditor, sim, storage, cfg.policy, cfg.policy_cfg);
//   audit_compiled(auditor, compiled, opts.sched);
//   ... run ...
//   auditor.finalize();
//
// The auditor owns the checks; the layers keep raw observer pointers (each
// layer multiplexes observers natively, so audit composes with telemetry),
// so the auditor must outlive the simulation.
#pragma once

#include "check/audit.h"
#include "check/disk_state_check.h"
#include "check/energy_check.h"
#include "check/event_check.h"
#include "check/schedule_check.h"
#include "check/storage_check.h"
#include "compiler/compile.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"

namespace dasched {

/// The runtime checks one `install_audit` call registers.
struct InstalledChecks {
  EventQueueCheck* events = nullptr;
  EnergyConservationCheck* energy = nullptr;
  DiskStateMachineCheck* disk_state = nullptr;
  StorageAccountingCheck* storage = nullptr;
};

/// Registers the four runtime checks and hooks them into the simulator, the
/// storage system, every I/O node and every disk.  `policy`/`policy_cfg`
/// must describe the power policy the disks actually run.
InstalledChecks install_audit(SimAuditor& auditor, Simulator& sim,
                              StorageSystem& storage, PolicyKind policy,
                              const PolicyConfig& policy_cfg);

/// Registers the scheduling-consistency check and validates one compiled
/// program immediately (it is a pure artifact validator).
ScheduleConsistencyCheck& audit_compiled(SimAuditor& auditor,
                                         const Compiled& compiled,
                                         const ScheduleOptions& opts,
                                         bool scheduling_enabled = true);

}  // namespace dasched
