#include "check/schedule_check.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>

namespace dasched {

void ScheduleConsistencyCheck::validate(const Compiled& compiled,
                                        const ScheduleOptions& opts,
                                        bool scheduling_enabled) {
  check_records(compiled.program.reads, compiled.program.num_slots);
  if (scheduling_enabled) {
    check_placements(compiled.scheduled, compiled.program.num_slots);
    check_double_booking(compiled.scheduled);
    check_theta(compiled.scheduled, opts, compiled.sched_stats);
  }
  check_table(compiled.table, compiled.scheduled);
}

void ScheduleConsistencyCheck::check_records(
    const std::vector<AccessRecord>& records, Slot num_slots) {
  for (const AccessRecord& rec : records) {
    evaluated();
    std::ostringstream os;
    if (rec.begin > rec.end) {
      os << "access #" << rec.id << " has slack [" << rec.begin << ", "
         << rec.end << "]: the negative-slack clamp to length 1 was skipped";
    } else if (rec.length < 1) {
      os << "access #" << rec.id << " has non-positive length " << rec.length;
    } else if (rec.begin < 0 || (num_slots > 0 && rec.end >= num_slots)) {
      os << "access #" << rec.id << " slack [" << rec.begin << ", " << rec.end
         << "] leaves the coarsened slot space [0, " << num_slots << ")";
    } else if (rec.original < rec.begin || rec.original > rec.end) {
      os << "access #" << rec.id << " original point " << rec.original
         << " outside its slack [" << rec.begin << ", " << rec.end << "]";
    } else {
      continue;
    }
    fail(0, os.str());
  }
}

void ScheduleConsistencyCheck::check_placements(
    const std::vector<ScheduledAccess>& scheduled, Slot num_slots) {
  for (const ScheduledAccess& s : scheduled) {
    evaluated();
    std::ostringstream os;
    if (s.forced) {
      if (s.slot != s.rec.original) {
        os << "forced access #" << s.rec.id << " sits at slot " << s.slot
           << " instead of its original point " << s.rec.original;
        fail(0, os.str());
      }
      continue;
    }
    if (s.slot < s.rec.begin || s.slot > s.rec.latest_start()) {
      os << "access #" << s.rec.id << " scheduled at slot " << s.slot
         << " outside its slack [" << s.rec.begin << ", "
         << s.rec.latest_start() << "]";
      fail(0, os.str());
    } else if (num_slots > 0 &&
               (s.slot < 0 || s.slot + s.rec.length > num_slots)) {
      os << "access #" << s.rec.id << " occupies [" << s.slot << ", "
         << s.slot + s.rec.length - 1 << "], beyond the " << num_slots
         << "-slot table";
      fail(0, os.str());
    }
  }
}

void ScheduleConsistencyCheck::check_double_booking(
    const std::vector<ScheduledAccess>& scheduled) {
  // Per process: which access occupies each slot.  Forced pins are exempt —
  // a forced access genuinely shares its original slot (the whole slack was
  // occupied), and the scheduler marks it as such.
  std::map<int, std::map<Slot, int>> occupancy;
  for (const ScheduledAccess& s : scheduled) {
    if (s.forced) continue;
    auto& slots = occupancy[s.rec.process];
    for (int k = 0; k < s.rec.length; ++k) {
      evaluated();
      const auto [it, inserted] = slots.emplace(s.slot + k, s.rec.id);
      if (!inserted) {
        std::ostringstream os;
        os << "process " << s.rec.process << " slot " << s.slot + k
           << " double-booked by accesses #" << it->second << " and #"
           << s.rec.id;
        fail(0, os.str());
      }
    }
  }
}

void ScheduleConsistencyCheck::check_theta(
    const std::vector<ScheduledAccess>& scheduled, const ScheduleOptions& opts,
    const ScheduleStats& stats) {
  if (opts.theta <= 0 || scheduled.empty()) return;
  // Final per-(slot, node) counts.  When the scheduler reported neither
  // fallbacks nor forced pins, every placement passed theta_ok against a
  // subset of these counts, so the cap must hold exactly.  Otherwise each
  // over-cap unit must be attributable to a fallback/forced access.
  std::map<std::pair<Slot, int>, std::int64_t> counts;
  std::int64_t worst_per_access = 0;
  for (const ScheduledAccess& s : scheduled) {
    worst_per_access = std::max(
        worst_per_access, static_cast<std::int64_t>(s.rec.length) *
                              static_cast<std::int64_t>(s.rec.sig.popcount()));
    for (int k = 0; k < s.rec.length; ++k) {
      s.rec.sig.for_each_node(
          [&counts, &s, k](int node) { counts[{s.slot + k, node}] += 1; });
    }
  }
  const std::int64_t excused = stats.theta_fallbacks + stats.forced;
  std::int64_t excess = 0;
  for (const auto& [key, count] : counts) {
    evaluated();
    if (count <= opts.theta) continue;
    excess += count - opts.theta;
    if (excused == 0) {
      std::ostringstream os;
      os << "slot " << key.first << " puts " << count
         << " accesses on I/O node " << key.second << ", over the theta cap of "
         << opts.theta << " with no fallback reported";
      fail(0, os.str());
    }
  }
  evaluated();
  if (excused > 0 && excess > excused * worst_per_access) {
    std::ostringstream os;
    os << "total theta excess " << excess << " cannot be explained by "
       << excused << " fallback/forced placements";
    fail(0, os.str());
  }
}

void ScheduleConsistencyCheck::check_table(
    const SchedulingTable& table, const std::vector<ScheduledAccess>& scheduled) {
  evaluated();
  if (table.total_entries() != static_cast<std::int64_t>(scheduled.size())) {
    std::ostringstream os;
    os << "table holds " << table.total_entries() << " entries for "
       << scheduled.size() << " scheduled accesses";
    fail(0, os.str());
    return;
  }
  // Every scheduled access appears exactly once, in its process's list, at
  // its chosen slot, in (slot, id) order.
  std::set<std::tuple<int, Slot, int>> expected;
  int max_process = -1;
  for (const ScheduledAccess& s : scheduled) {
    expected.emplace(s.rec.process, s.slot, s.rec.id);
    max_process = std::max(max_process, s.rec.process);
  }
  for (int p = 0; p <= max_process; ++p) {
    const TableEntry* prev = nullptr;
    for (const TableEntry& e : table.entries(p)) {
      evaluated();
      if (e.rec.process != p) {
        std::ostringstream os;
        os << "access #" << e.rec.id << " of process " << e.rec.process
           << " filed under process " << p;
        fail(0, os.str());
      }
      if (expected.erase({p, e.slot, e.rec.id}) == 0) {
        std::ostringstream os;
        os << "table entry (process " << p << ", slot " << e.slot
           << ", access #" << e.rec.id << ") does not match any scheduled access";
        fail(0, os.str());
      }
      if (prev != nullptr && (prev->slot > e.slot ||
                              (prev->slot == e.slot && prev->rec.id >= e.rec.id))) {
        std::ostringstream os;
        os << "process " << p << " table out of (slot, id) order at access #"
           << e.rec.id;
        fail(0, os.str());
      }
      prev = &e;
    }
  }
  evaluated();
  if (!expected.empty()) {
    std::ostringstream os;
    os << expected.size() << " scheduled access(es) missing from the table";
    fail(0, os.str());
  }
}

}  // namespace dasched
