#include "check/storage_check.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace dasched {

void StorageAccountingCheck::on_request_routed(
    FileId f, Bytes offset, Bytes size, bool is_write,
    std::span<const StripePiece> pieces) {
  routing_seen_ = true;
  for (const StripePiece& p : pieces) {
    auto& routed = routed_[p.io_node];
    (is_write ? routed.write_pieces : routed.read_pieces) += 1;
  }
  if (striping_ == nullptr) return;

  evaluated();
  const Bytes stripe = striping_->stripe_size();
  if (offset < 0 || size <= 0 || offset + size > striping_->file_size(f)) {
    std::ostringstream os;
    os << "request [" << offset << ", " << offset + size << ") leaves file "
       << striping_->file_name(f) << " of " << striping_->file_size(f) << " B";
    fail(0, os.str());
    return;
  }

  // Walk the byte range in file order and re-derive where each piece must
  // land; the router hands pieces out in the same order.
  Bytes cur = offset;
  for (const StripePiece& p : pieces) {
    evaluated();
    std::ostringstream os;
    const std::int64_t stripe_index = cur / stripe;
    const Bytes within = cur - stripe_index * stripe;
    if (p.length <= 0 || within + p.length > stripe) {
      os << "piece of " << p.length << " B at file offset " << cur
         << " crosses the " << stripe << " B stripe boundary";
    } else if (p.io_node != striping_->node_of_stripe(f, stripe_index)) {
      os << "stripe " << stripe_index << " of file " << striping_->file_name(f)
         << " routed to I/O node " << p.io_node << "; round-robin places it on node "
         << striping_->node_of_stripe(f, stripe_index);
    } else if (p.node_offset < 0 ||
               p.node_offset + p.length > striping_->allocated_on(p.io_node)) {
      os << "piece points at node-local range [" << p.node_offset << ", "
         << p.node_offset + p.length << ") on node " << p.io_node
         << ", beyond the " << striping_->allocated_on(p.io_node)
         << " B allocated there";
    } else {
      cur += p.length;
      continue;
    }
    fail(0, os.str());
    return;
  }
  evaluated();
  if (cur != offset + size) {
    std::ostringstream os;
    os << "pieces cover " << cur - offset << " B of a " << size << " B request";
    fail(0, os.str());
  }
}

void StorageAccountingCheck::on_read(const IoNode& node, Bytes offset,
                                     Bytes size, bool background) {
  (void)offset, (void)size;
  NodeLedger& ledger = ledger_for(node);
  (background ? ledger.background_reads : ledger.demand_reads) += 1;
}

void StorageAccountingCheck::on_write(const IoNode& node, Bytes offset,
                                      Bytes size) {
  NodeLedger& ledger = ledger_for(node);
  ledger.writes += 1;
  const Bytes bs = node.cache().block_size();
  ledger.write_blocks += (offset + size - 1) / bs - offset / bs + 1;
}

void StorageAccountingCheck::on_block_lookup(const IoNode& node, Bytes block,
                                             bool hit) {
  (void)block;
  NodeLedger& ledger = ledger_for(node);
  (hit ? ledger.hits : ledger.misses) += 1;
}

void StorageAccountingCheck::on_prefetch_issued(const IoNode& node, Bytes block) {
  (void)block;
  ledger_for(node).prefetches += 1;
}

void StorageAccountingCheck::on_disk_ops_issued(const IoNode& node,
                                                std::size_t count) {
  ledger_for(node).disk_ops += static_cast<std::int64_t>(count);
}

void StorageAccountingCheck::on_finalized(const IoNode& node,
                                          const IoNodeStats& stats) {
  NodeLedger& ledger = ledger_for(node);
  ledger.finalized = true;
  const int id = node.node_id();
  const CacheStats& cache = stats.cache;

  evaluated();
  if (cache.hits != ledger.hits || cache.misses != ledger.misses) {
    std::ostringstream os;
    os << "node " << id << " cache reports " << cache.hits << " hits / "
       << cache.misses << " misses; " << ledger.hits << " / " << ledger.misses
       << " demand lookups were observed";
    fail(0, os.str());
  }
  evaluated();
  if (stats.requests != cache.hits + cache.misses) {
    std::ostringstream os;
    os << "node " << id << " request count " << stats.requests
       << " != hits + misses = " << cache.hits + cache.misses;
    fail(0, os.str());
  }
  evaluated();
  if (stats.disk_requests != ledger.disk_ops) {
    std::ostringstream os;
    os << "node " << id << " disks served " << stats.disk_requests
       << " requests; the node issued " << ledger.disk_ops;
    fail(0, os.str());
  }
  evaluated();
  const std::int64_t live = cache.insertions - cache.evictions - cache.invalidations;
  if (static_cast<std::int64_t>(node.cache().size()) != live ||
      node.cache().size() > node.cache().max_blocks()) {
    std::ostringstream os;
    os << "node " << id << " cache holds " << node.cache().size()
       << " blocks; insertions - evictions - invalidations = " << live
       << " (capacity " << node.cache().max_blocks() << ")";
    fail(0, os.str());
  }
  evaluated();
  if (cache.insertions > ledger.misses + ledger.prefetches + ledger.write_blocks) {
    std::ostringstream os;
    os << "node " << id << " cache absorbed " << cache.insertions
       << " insertions; only " << ledger.misses << " misses + "
       << ledger.prefetches << " prefetches + " << ledger.write_blocks
       << " write blocks could have caused them";
    fail(0, os.str());
  }
}

void StorageAccountingCheck::at_end() {
  if (!routing_seen_) return;
  // Walk nodes in id order so a multi-node failure always produces the
  // same report, whatever the hash iteration order.
  std::vector<int> ids;
  ids.reserve(ledgers_.size());
  // dasched-lint: allow(nondet-unordered-iter): keys are sorted below
  // before any observable output is produced.
  for (const auto& [id, ledger] : ledgers_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  // Deliveries cross the simulated network, so a run cut short may leave
  // routed pieces in flight — delivered <= routed, never the reverse.
  for (const int id : ids) {
    const NodeLedger& ledger = ledgers_.at(id);
    evaluated();
    const auto it = routed_.find(id);
    const RoutedLedger routed = it == routed_.end() ? RoutedLedger{} : it->second;
    const std::int64_t delivered_reads = ledger.demand_reads + ledger.background_reads;
    if (delivered_reads > routed.read_pieces || ledger.writes > routed.write_pieces) {
      std::ostringstream os;
      os << "node " << id << " served " << delivered_reads << " reads / "
         << ledger.writes << " writes but only " << routed.read_pieces << " / "
         << routed.write_pieces << " pieces were routed to it";
      fail(0, os.str());
    }
  }
}

}  // namespace dasched
