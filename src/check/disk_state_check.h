// Disk state-machine legality (invariant 2 of the audit catalog).
//
// Watches every disk state transition against the legal-transition matrix of
// the mechanical model: a request may only enter service from the idle
// (spinning) state — never while in standby or mid spin-up/down — speed
// changes must move between valid ladder points (one downward step at a time
// under the Staggered policy), and the duty-cycle cooldowns
// (`simple_cooldown` / `staggered_cooldown`) must separate a spin-up (or
// full-speed restore) from the next power-saving transition.
#pragma once

#include <unordered_map>

#include "check/audit.h"
#include "disk/disk.h"
#include "power/policies.h"
#include "util/annotations.h"

namespace dasched {

class DASCHED_OBSERVER_PASSIVE DiskStateMachineCheck final
    : public InvariantCheck,
      public DiskObserver {
 public:
  /// `policy`/`cfg` describe the power policy driving the audited disks, so
  /// the policy-specific invariants (cooldowns, Staggered adjacency) apply.
  DiskStateMachineCheck(SimAuditor& auditor, PolicyKind policy = PolicyKind::kNone,
                        PolicyConfig cfg = {})
      : InvariantCheck(auditor), policy_(policy), cfg_(cfg) {}

  [[nodiscard]] const char* name() const override {
    return "disk-state-machine";
  }

  // DiskObserver -------------------------------------------------------------
  void on_state_change(const Disk& disk, DiskState from, DiskState to) override;
  void on_service_start(const Disk& disk, const DiskRequest& req) override;
  void on_request_submitted(const Disk& disk, const DiskRequest& req) override;

  /// True when the state machine may move from `from` to `to`.
  [[nodiscard]] static bool legal_transition(DiskState from, DiskState to);

 private:
  struct DiskTrack {
    /// Completion time of the last spin-up (kSpinningUp -> kIdle); -1 before
    /// the first one.
    SimTime last_spin_up_done = -1;
    /// Last arrival that found the disk below full speed (it restarts the
    /// Staggered cooldown clock); -1 before the first one.
    SimTime last_slow_arrival = -1;
    /// Completion time of the last speed change (kChangingSpeed -> kIdle);
    /// -1 before the first one.  A Staggered descent may cross several
    /// ladder points in one transition only when it starts at this instant
    /// (steps queued while the previous transition was in flight drain as
    /// one batch — see StaggeredMultiSpeed).
    SimTime last_speed_change_done = -1;
  };

  void check_rpm_transition(const Disk& disk, const DiskTrack& track,
                            SimTime now);

  PolicyKind policy_;
  PolicyConfig cfg_;
  std::unordered_map<const Disk*, DiskTrack> tracks_;
};

}  // namespace dasched
