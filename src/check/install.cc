#include "check/install.h"

namespace dasched {

InstalledChecks install_audit(SimAuditor& auditor, Simulator& sim,
                              StorageSystem& storage, PolicyKind policy,
                              const PolicyConfig& policy_cfg) {
  InstalledChecks out;
  out.events = &auditor.add_check<EventQueueCheck>();
  sim.add_observer(out.events);

  // Every layer multiplexes its observers natively (util/observer_list.h),
  // so the checks attach side by side with any telemetry recorder.
  out.energy = &auditor.add_check<EnergyConservationCheck>();
  out.disk_state = &auditor.add_check<DiskStateMachineCheck>(policy, policy_cfg);

  out.storage = &auditor.add_check<StorageAccountingCheck>(&storage.striping());
  storage.add_observer(out.storage);
  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    IoNode& node = storage.node(n);
    node.add_observer(out.storage);
    for (int d = 0; d < node.num_disks(); ++d) {
      node.disk(d).add_observer(out.energy);
      node.disk(d).add_observer(out.disk_state);
    }
  }
  return out;
}

void install_audit_sharded(ShardedAuditLanes& lanes, ShardedSimulator& sim,
                           StorageSystem& storage, PolicyKind policy,
                           const PolicyConfig& policy_cfg) {
  lanes = ShardedAuditLanes{};
  const int streams = sim.num_streams();
  for (int s = 0; s < streams; ++s) {
    lanes.auditors.push_back(std::make_unique<SimAuditor>());
  }

  SimAuditor& client = *lanes.auditors[0];
  sim.lane(0).add_observer(&client.add_check<EventQueueCheck>());
  lanes.routing =
      &client.add_check<StorageAccountingCheck>(&storage.striping());
  storage.add_observer(lanes.routing);
  lanes.energy = &client.add_check<EnergyConservationCheck>();

  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    SimAuditor& aud = *lanes.auditors[static_cast<std::size_t>(1 + n)];
    sim.lane(1 + n).add_observer(&aud.add_check<EventQueueCheck>());
    auto& energy = aud.add_check<EnergyConservationCheck>();
    auto& disk_state = aud.add_check<DiskStateMachineCheck>(policy, policy_cfg);
    // No striping map: the node-lane check keeps delivery ledgers only; the
    // routing-side stripe math runs on lane 0.
    auto& accounting = aud.add_check<StorageAccountingCheck>();
    IoNode& node = storage.node(n);
    node.add_observer(&accounting);
    for (int d = 0; d < node.num_disks(); ++d) {
      node.disk(d).add_observer(&energy);
      node.disk(d).add_observer(&disk_state);
    }
    lanes.node_accounting.push_back(&accounting);
    lanes.node_energy.push_back(&energy);
  }
}

void merge_sharded_ledgers(ShardedAuditLanes& lanes) {
  if (lanes.merged) return;
  lanes.merged = true;
  for (const StorageAccountingCheck* c : lanes.node_accounting) {
    lanes.routing->absorb_node_ledgers(*c);
  }
  for (const EnergyConservationCheck* c : lanes.node_energy) {
    lanes.energy->absorb_ledgers(*c);
  }
}

void finalize_audit_sharded(ShardedAuditLanes& lanes, SimAuditor& into) {
  merge_sharded_ledgers(lanes);
  for (auto& aud : lanes.auditors) {
    aud->finalize();
    into.absorb(*aud);
  }
}

ScheduleConsistencyCheck& audit_compiled(SimAuditor& auditor,
                                         const Compiled& compiled,
                                         const ScheduleOptions& opts,
                                         bool scheduling_enabled) {
  auto& check = auditor.add_check<ScheduleConsistencyCheck>();
  check.validate(compiled, opts, scheduling_enabled);
  return check;
}

}  // namespace dasched
