#include "check/install.h"

#include <memory>
#include <vector>

namespace dasched {

namespace {

/// Fans one disk's observer slot out to several checks (the energy and
/// state-machine checks both tap every disk).
class DiskObserverMux final : public DiskObserver {
 public:
  void add(DiskObserver* tap) { taps_.push_back(tap); }

  void on_state_change(const Disk& disk, DiskState from, DiskState to) override {
    for (DiskObserver* t : taps_) t->on_state_change(disk, from, to);
  }
  void on_energy_accrued(const Disk& disk, DiskState state, Rpm rpm, SimTime dt,
                         double joules) override {
    for (DiskObserver* t : taps_) t->on_energy_accrued(disk, state, rpm, dt, joules);
  }
  void on_service_start(const Disk& disk, const DiskRequest& req) override {
    for (DiskObserver* t : taps_) t->on_service_start(disk, req);
  }
  void on_request_submitted(const Disk& disk, const DiskRequest& req) override {
    for (DiskObserver* t : taps_) t->on_request_submitted(disk, req);
  }
  void on_finalized(const Disk& disk) override {
    for (DiskObserver* t : taps_) t->on_finalized(disk);
  }

 private:
  std::vector<DiskObserver*> taps_;
};

}  // namespace

InstalledChecks install_audit(SimAuditor& auditor, Simulator& sim,
                              StorageSystem& storage, PolicyKind policy,
                              const PolicyConfig& policy_cfg) {
  InstalledChecks out;
  out.events = &auditor.add_check<EventQueueCheck>();
  sim.set_observer(out.events);

  out.energy = &auditor.add_check<EnergyConservationCheck>();
  out.disk_state = &auditor.add_check<DiskStateMachineCheck>(policy, policy_cfg);
  auto mux = std::make_shared<DiskObserverMux>();
  mux->add(out.energy);
  mux->add(out.disk_state);

  out.storage = &auditor.add_check<StorageAccountingCheck>(&storage.striping());
  storage.set_observer(out.storage);
  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    IoNode& node = storage.node(n);
    node.set_observer(out.storage);
    for (int d = 0; d < node.num_disks(); ++d) {
      node.disk(d).set_observer(mux.get());
    }
  }
  auditor.adopt(std::move(mux));
  return out;
}

ScheduleConsistencyCheck& audit_compiled(SimAuditor& auditor,
                                         const Compiled& compiled,
                                         const ScheduleOptions& opts,
                                         bool scheduling_enabled) {
  auto& check = auditor.add_check<ScheduleConsistencyCheck>();
  check.validate(compiled, opts, scheduling_enabled);
  return check;
}

}  // namespace dasched
