#include "check/install.h"

namespace dasched {

InstalledChecks install_audit(SimAuditor& auditor, Simulator& sim,
                              StorageSystem& storage, PolicyKind policy,
                              const PolicyConfig& policy_cfg) {
  InstalledChecks out;
  out.events = &auditor.add_check<EventQueueCheck>();
  sim.add_observer(out.events);

  // Every layer multiplexes its observers natively (util/observer_list.h),
  // so the checks attach side by side with any telemetry recorder.
  out.energy = &auditor.add_check<EnergyConservationCheck>();
  out.disk_state = &auditor.add_check<DiskStateMachineCheck>(policy, policy_cfg);

  out.storage = &auditor.add_check<StorageAccountingCheck>(&storage.striping());
  storage.add_observer(out.storage);
  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    IoNode& node = storage.node(n);
    node.add_observer(out.storage);
    for (int d = 0; d < node.num_disks(); ++d) {
      node.disk(d).add_observer(out.energy);
      node.disk(d).add_observer(out.disk_state);
    }
  }
  return out;
}

ScheduleConsistencyCheck& audit_compiled(SimAuditor& auditor,
                                         const Compiled& compiled,
                                         const ScheduleOptions& opts,
                                         bool scheduling_enabled) {
  auto& check = auditor.add_check<ScheduleConsistencyCheck>();
  check.validate(compiled, opts, scheduling_enabled);
  return check;
}

}  // namespace dasched
