// Scheduling-table consistency (invariant 3 of the audit catalog).
//
// Validates the compiler's artifacts rather than tapping a simulation layer:
// slack windows must be well-formed (the "negative slack becomes a slack of
// length 1" clamp always applied, every slot index inside the d-coarsened
// slot space), chosen scheduling points must respect slacks and per-process
// exclusivity (no slot double-booking except explicitly `forced` pins), the
// theta cap must hold whenever the scheduler reported no fallbacks, and the
// per-process tables the runtime walks must agree exactly with the
// scheduler's decisions.
#pragma once

#include <vector>

#include "check/audit.h"
#include "compiler/compile.h"
#include "core/access.h"
#include "core/scheduler.h"
#include "core/scheduling_table.h"

namespace dasched {

class ScheduleConsistencyCheck final : public InvariantCheck {
 public:
  explicit ScheduleConsistencyCheck(SimAuditor& auditor)
      : InvariantCheck(auditor) {}

  [[nodiscard]] const char* name() const override {
    return "schedule-consistency";
  }

  /// Runs every sub-check against one compiled program.  With
  /// `scheduling_enabled == false` (a baseline compile: every access sits at
  /// its original point, bypassing the scheduler) only the record and table
  /// invariants apply — the baseline legitimately double-books slots and
  /// ignores theta.
  void validate(const Compiled& compiled, const ScheduleOptions& opts,
                bool scheduling_enabled = true);

  // Individual sub-checks (also driven directly by the unit tests) ----------

  /// Slack windows well-formed and inside [0, num_slots).
  void check_records(const std::vector<AccessRecord>& records, Slot num_slots);

  /// Chosen slots inside slacks; forced pins at their original points.
  void check_placements(const std::vector<ScheduledAccess>& scheduled,
                        Slot num_slots);

  /// Per process, at most one non-forced access per slot.
  void check_double_booking(const std::vector<ScheduledAccess>& scheduled);

  /// Theta cap on per-node per-slot access counts.
  void check_theta(const std::vector<ScheduledAccess>& scheduled,
                   const ScheduleOptions& opts, const ScheduleStats& stats);

  /// Table entries are exactly the scheduled accesses, ordered per process.
  void check_table(const SchedulingTable& table,
                   const std::vector<ScheduledAccess>& scheduled);
};

}  // namespace dasched
