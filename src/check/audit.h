// The invariant-audit subsystem (see DESIGN.md, "Verification & static
// analysis").
//
// A `SimAuditor` owns a set of pluggable `InvariantCheck`s.  Each check taps
// one or more simulation layers through the passive observer hooks the
// layers expose (`SimObserver`, `DiskObserver`, `IoNodeObserver`,
// `StorageObserver`) or validates compile-time artifacts directly, and
// reports `Violation`s back to the auditor.  The simulation itself never
// changes behaviour under audit: observers only read.
//
// The audit exists because the reproduced figures are energy/performance
// deltas from a deterministic simulator — a silent accounting bug (energy
// booked to the wrong mode, a request served by a spun-down disk, a
// double-booked scheduling slot) corrupts every figure without failing a
// functional test.  Every invariant here is a conservation or legality law
// the paper's model implies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/units.h"

namespace dasched {

/// One detected invariant breach.
struct Violation {
  /// Name of the check that fired (e.g. "energy-conservation").
  std::string check;
  /// Human-readable description with the offending values.
  std::string detail;
  /// Simulated time of detection; 0 for compile-time artifact checks.
  SimTime time = 0;
};

class SimAuditor;

/// Base class of all invariant checks.  Concrete checks additionally derive
/// from the observer interface(s) of the layers they audit.
class InvariantCheck {
 public:
  explicit InvariantCheck(SimAuditor& auditor) : auditor_(auditor) {}
  InvariantCheck(const InvariantCheck&) = delete;
  InvariantCheck& operator=(const InvariantCheck&) = delete;
  virtual ~InvariantCheck() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// End-of-run cross-checks; called once by `SimAuditor::finalize()`.
  virtual void at_end() {}

 protected:
  /// Records a violation against this check.
  void fail(SimTime time, std::string detail);
  /// Counts one invariant evaluation (kept cheap: a single increment).
  void evaluated();

  SimAuditor& auditor_;
};

/// Registry and violation sink for one audited run.
class SimAuditor {
 public:
  SimAuditor() = default;
  SimAuditor(const SimAuditor&) = delete;
  SimAuditor& operator=(const SimAuditor&) = delete;

  /// Constructs a check in place and registers it.  The auditor owns it.
  template <typename Check, typename... Args>
  Check& add_check(Args&&... args) {
    auto check = std::make_unique<Check>(*this, std::forward<Args>(args)...);
    Check& ref = *check;
    checks_.push_back(std::move(check));
    return ref;
  }

  /// Keeps an auxiliary wiring object (observer fan-out, etc.) alive for the
  /// auditor's lifetime.
  void adopt(std::shared_ptr<void> component) {
    components_.push_back(std::move(component));
  }

  /// Records a violation.  Storage is capped; `violations_total()` keeps the
  /// true count.
  void record(Violation v);

  /// Folds another auditor's findings into this one (a sharded run merges
  /// its per-lane auditors after the workers stop).  The other auditor keeps
  /// its checks; violations and counters are copied over (up to the same
  /// storage cap), and its check count joins this report's total.
  void absorb(const SimAuditor& other);

  /// Runs every check's end-of-run pass.  Idempotent.
  void finalize();

  [[nodiscard]] bool clean() const { return violations_total_ == 0; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::int64_t violations_total() const {
    return violations_total_;
  }
  [[nodiscard]] std::int64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::size_t num_checks() const {
    return checks_.size() + absorbed_checks_;
  }

  /// Multi-line human-readable report (violations or an all-clear line).
  [[nodiscard]] std::string report() const;

 private:
  friend class InvariantCheck;

  static constexpr std::size_t kMaxStoredViolations = 256;

  std::vector<std::unique_ptr<InvariantCheck>> checks_;
  std::vector<std::shared_ptr<void>> components_;
  std::vector<Violation> violations_;
  std::int64_t violations_total_ = 0;
  std::int64_t evaluations_ = 0;
  std::size_t absorbed_checks_ = 0;
  bool finalized_ = false;
};

}  // namespace dasched
