#include "check/audit.h"

#include <sstream>

namespace dasched {

void InvariantCheck::fail(SimTime time, std::string detail) {
  auditor_.record(Violation{name(), std::move(detail), time});
}

void InvariantCheck::evaluated() { ++auditor_.evaluations_; }

void SimAuditor::record(Violation v) {
  ++violations_total_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(std::move(v));
  }
}

void SimAuditor::absorb(const SimAuditor& other) {
  evaluations_ += other.evaluations_;
  violations_total_ += other.violations_total_;
  absorbed_checks_ += other.num_checks();
  for (const Violation& v : other.violations_) {
    if (violations_.size() >= kMaxStoredViolations) break;
    violations_.push_back(v);
  }
}

void SimAuditor::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& check : checks_) check->at_end();
}

std::string SimAuditor::report() const {
  std::ostringstream os;
  if (clean()) {
    os << "audit: " << evaluations_ << " invariant evaluations across "
       << num_checks() << " checks, no violations\n";
    return os.str();
  }
  os << "audit: " << violations_total_ << " violation(s) across "
     << num_checks() << " checks (" << evaluations_ << " evaluations)\n";
  for (const Violation& v : violations_) {
    os << "  [" << v.check << "] t=" << to_sec(v.time) << "s  " << v.detail
       << "\n";
  }
  if (violations_total_ > static_cast<std::int64_t>(violations_.size())) {
    os << "  ... "
       << violations_total_ - static_cast<std::int64_t>(violations_.size())
       << " further violation(s) suppressed\n";
  }
  return os.str();
}

}  // namespace dasched
