#include "check/disk_state_check.h"

#include <sstream>
#include <string>

namespace dasched {

bool DiskStateMachineCheck::legal_transition(DiskState from, DiskState to) {
  switch (from) {
    case DiskState::kIdle:
      return to == DiskState::kSeeking || to == DiskState::kTransferring ||
             to == DiskState::kSpinningDown || to == DiskState::kChangingSpeed;
    case DiskState::kSeeking:
      return to == DiskState::kTransferring;
    case DiskState::kTransferring:
      return to == DiskState::kIdle;
    case DiskState::kSpinningDown:
      // Completion lands in standby; an arrival aborts into re-acceleration.
      return to == DiskState::kStandby || to == DiskState::kSpinningUp;
    case DiskState::kStandby:
      return to == DiskState::kSpinningUp;
    case DiskState::kSpinningUp:
      return to == DiskState::kIdle;
    case DiskState::kChangingSpeed:
      return to == DiskState::kIdle;
  }
  return false;
}

void DiskStateMachineCheck::check_rpm_transition(const Disk& disk,
                                                 const DiskTrack& track,
                                                 SimTime now) {
  const DiskParams& p = disk.params();
  const Rpm from = disk.transition_from();
  const Rpm to = disk.transition_to();
  evaluated();
  auto on_ladder = [&p](Rpm r) {
    return r >= p.min_rpm && r <= p.max_rpm && (r - p.min_rpm) % p.rpm_step == 0;
  };
  if (!p.multi_speed) {
    fail(now, "speed change on a single-speed disk");
  } else if (!on_ladder(from) || !on_ladder(to)) {
    std::ostringstream os;
    os << "speed change " << from << " -> " << to
       << " rpm leaves the ladder [" << p.min_rpm << ", " << p.max_rpm
       << "] step " << p.rpm_step;
    fail(now, os.str());
  }
  if (policy_ == PolicyKind::kStaggered) {
    // Fig. 3b: the walk descends one ladder point per step; only the
    // restore on a request arrival jumps, and it jumps straight to full
    // speed.  Steps that queued up while a previous transition was in
    // flight drain as one batched transition, which must then begin the
    // instant the previous one completed.
    if (to < from && from - to != p.rpm_step &&
        track.last_speed_change_done != now) {
      std::ostringstream os;
      os << "staggered policy stepped down " << from << " -> " << to
         << " rpm, skipping ladder points outside a batched walk";
      fail(now, os.str());
    } else if (to > from && to != p.max_rpm) {
      std::ostringstream os;
      os << "staggered policy restored " << from << " -> " << to
         << " rpm instead of full speed " << p.max_rpm;
      fail(now, os.str());
    }
  }
}

void DiskStateMachineCheck::on_state_change(const Disk& disk, DiskState from,
                                            DiskState to) {
  const SimTime now = disk.sim().now();
  evaluated();
  if (!legal_transition(from, to)) {
    std::ostringstream os;
    os << "illegal state transition " << to_string(from) << " -> "
       << to_string(to);
    fail(now, os.str());
  }
  DiskTrack& track = tracks_[&disk];

  if (to == DiskState::kChangingSpeed) {
    check_rpm_transition(disk, track, now);
    if (policy_ == PolicyKind::kStaggered &&
        disk.transition_to() < disk.transition_from() &&
        track.last_slow_arrival >= 0) {
      evaluated();
      const SimTime elapsed = now - track.last_slow_arrival;
      if (elapsed < cfg_.staggered_cooldown) {
        std::ostringstream os;
        os << "staggered step-down " << to_sec(elapsed)
           << " s after a full-speed restore; staggered_cooldown is "
           << to_sec(cfg_.staggered_cooldown) << " s";
        fail(now, os.str());
      }
    }
  }

  if (to == DiskState::kSpinningDown && policy_ == PolicyKind::kSimple &&
      track.last_spin_up_done >= 0) {
    evaluated();
    const SimTime elapsed = now - track.last_spin_up_done;
    if (elapsed < cfg_.simple_cooldown) {
      std::ostringstream os;
      os << "spin-down " << to_sec(elapsed)
         << " s after the last spin-up completed; simple_cooldown is "
         << to_sec(cfg_.simple_cooldown) << " s";
      fail(now, os.str());
    }
  }

  if (from == DiskState::kSpinningUp && to == DiskState::kIdle) {
    track.last_spin_up_done = now;
  }
  if (from == DiskState::kChangingSpeed && to == DiskState::kIdle) {
    track.last_speed_change_done = now;
  }
}

void DiskStateMachineCheck::on_service_start(const Disk& disk,
                                             const DiskRequest& req) {
  evaluated();
  if (disk.state() != DiskState::kIdle) {
    std::ostringstream os;
    os << "request (offset " << req.offset << ", " << req.size
       << " B) entered service while the disk was " << to_string(disk.state());
    fail(disk.sim().now(), os.str());
  }
}

void DiskStateMachineCheck::on_request_submitted(const Disk& disk,
                                                 const DiskRequest& req) {
  (void)req;
  if (disk.current_rpm() != disk.params().max_rpm ||
      disk.desired_rpm() != disk.params().max_rpm) {
    tracks_[&disk].last_slow_arrival = disk.sim().now();
  }
}

}  // namespace dasched
