// Wiring helper: attach one recorder to every layer of a built simulation
// stack with a single call, mirroring check/install.h.
//
//   TelemetryRecorder recorder(TraceLevel::kState);
//   install_telemetry(recorder, sim, storage);
//   ... run ...
//   TelemetrySummary summary = analyze_trace(recorder.buffer(), recorder.meta());
//
// The layers keep raw observer pointers, so the recorder must outlive the
// simulation.  Attaching composes with the invariant auditor: every layer
// multiplexes its observers (util/observer_list.h).
#pragma once

#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "telemetry/recorder.h"

namespace dasched {

/// Attaches `recorder` to the simulator (kFull only), the storage router,
/// every I/O node, every disk and every power policy, registers the disk
/// id mapping and fills the structural trace metadata (node/disk counts,
/// seed).  App/policy/scheme metadata is the caller's to set.
void install_telemetry(TelemetryRecorder& recorder, Simulator& sim,
                       StorageSystem& storage);

}  // namespace dasched
