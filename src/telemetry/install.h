// Wiring helper: attach one recorder to every layer of a built simulation
// stack with a single call, mirroring check/install.h.
//
//   TelemetryRecorder recorder(TraceLevel::kState);
//   install_telemetry(recorder, sim, storage);
//   ... run ...
//   TelemetrySummary summary = analyze_trace(recorder.buffer(), recorder.meta());
//
// The layers keep raw observer pointers, so the recorder must outlive the
// simulation.  Attaching composes with the invariant auditor: every layer
// multiplexes its observers (util/observer_list.h).
#pragma once

#include <memory>
#include <vector>

#include "sim/sharded_sim.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "telemetry/recorder.h"

namespace dasched {

/// Attaches `recorder` to the simulator (kFull only), the storage router,
/// every I/O node, every disk and every power policy, registers the disk
/// id mapping and fills the structural trace metadata (node/disk counts,
/// seed).  App/policy/scheme metadata is the caller's to set.
void install_telemetry(TelemetryRecorder& recorder, Simulator& sim,
                       StorageSystem& storage);

/// Sharded counterpart: one recorder per lane, so recording stays on the
/// worker thread that owns the lane.  `recorders[0]` taps the client lane
/// (storage router, lane-0 simulator) and carries the run metadata;
/// `recorders[1+i]` taps I/O node i with its disks and policies, using
/// global disk ids.  Merge the per-lane buffers with `merge_traces` after
/// the run.  App/policy/scheme metadata on `recorders[0]` is the caller's
/// to set.
void install_telemetry_sharded(
    std::vector<std::unique_ptr<TelemetryRecorder>>& recorders,
    TraceLevel level, ShardedSimulator& sim, StorageSystem& storage);

}  // namespace dasched
