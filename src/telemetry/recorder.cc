#include "telemetry/recorder.h"

namespace dasched {

void TraceBuffer::reserve(std::size_t events) {
  std::size_t capacity = free_.size() * kChunkEvents;
  if (!chunks_.empty()) {
    capacity += kChunkEvents - chunks_.back()->used;
  }
  while (capacity < events) {
    free_.push_back(std::make_unique<Chunk>());
    capacity += kChunkEvents;
  }
  // grow() moves free-listed chunks into chunks_; pre-size the pointer
  // array too, so the reserved appends stay allocation-free.
  chunks_.reserve(chunks_.size() + free_.size());
}

void TraceBuffer::clear() {
  for (auto& c : chunks_) {
    c->used = 0;
    free_.push_back(std::move(c));
  }
  chunks_.clear();
  size_ = 0;
}

void TraceBuffer::grow() {
  if (!free_.empty()) {
    // dasched-lint: allow(hot-alloc): pointer-array growth amortizes; a
    // reserve() pre-sizes it for bounded captures.
    chunks_.push_back(std::move(free_.back()));
    free_.pop_back();
  } else {
    // dasched-lint: allow(hot-alloc): chunk allocation is the documented
    // cold path (once per kChunkEvents appends, never after clear()).
    chunks_.push_back(std::make_unique<Chunk>());
  }
}

void TelemetryRecorder::register_disk(const Disk& disk, int node, int local) {
  const int id = node * (meta_.disks_per_node > 0 ? meta_.disks_per_node : 1) +
                 local;
  disk_ids_.emplace(&disk, static_cast<std::uint16_t>(id));
}

void TelemetryRecorder::on_event_fired(std::uint64_t seq, SimTime t,
                                       bool cancelled) {
  if (!wants(TraceLevel::kFull) || cancelled) return;
  record(t, TraceEventKind::kEventDispatched, 0, 0, seq, 0);
}

void TelemetryRecorder::on_state_change(const Disk& disk, DiskState from,
                                        DiskState to) {
  if (!wants(TraceLevel::kState)) return;
  const auto aux = static_cast<std::uint32_t>(from) |
                   (static_cast<std::uint32_t>(to) << 8);
  record(disk.sim().now(), TraceEventKind::kStateChange, disk_id(disk), aux,
         static_cast<std::uint64_t>(disk.current_rpm()), 0);
}

void TelemetryRecorder::on_energy_accrued(const Disk& disk, DiskState state,
                                          Rpm rpm, SimTime dt, Joules joules) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kEnergyAccrued, disk_id(disk),
         static_cast<std::uint32_t>(state), std::bit_cast<std::uint64_t>(joules),
         static_cast<std::uint64_t>(dt.count()));
  (void)rpm;
}

void TelemetryRecorder::on_stream_idle_begin(const Disk& disk) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kStreamIdleBegin, disk_id(disk), 0,
         0, 0);
}

void TelemetryRecorder::on_stream_idle_end(const Disk& disk, SimTime duration,
                                           bool counted) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kStreamIdleEnd, disk_id(disk),
         counted ? 1u : 0u, static_cast<std::uint64_t>(duration.count()), 0);
}

void TelemetryRecorder::on_request_submitted(const Disk& disk,
                                             const DiskRequest& req) {
  if (!wants(TraceLevel::kRequest)) return;
  const std::uint32_t aux =
      (req.is_write ? 1u : 0u) | (req.background ? 2u : 0u);
  const SimTime now = disk.sim().now();
  const std::uint16_t id = disk_id(disk);
  record(now, TraceEventKind::kRequestSubmitted, id, aux,
         static_cast<std::uint64_t>(req.offset.count()),
         static_cast<std::uint64_t>(req.size.count()));
  record(now, TraceEventKind::kQueueDepth, id, 0,
         static_cast<std::uint64_t>(disk.queue_depth()), 0);
}

void TelemetryRecorder::on_service_start(const Disk& disk,
                                         const DiskRequest& req) {
  if (!wants(TraceLevel::kRequest)) return;
  const std::uint32_t aux =
      (req.is_write ? 1u : 0u) | (req.background ? 2u : 0u);
  record(disk.sim().now(), TraceEventKind::kServiceStart, disk_id(disk), aux,
         static_cast<std::uint64_t>(req.offset.count()),
         static_cast<std::uint64_t>(req.size.count()));
}

void TelemetryRecorder::on_service_complete(const Disk& disk,
                                            SimTime service_time) {
  if (!wants(TraceLevel::kRequest)) return;
  const SimTime now = disk.sim().now();
  const std::uint16_t id = disk_id(disk);
  record(now, TraceEventKind::kServiceComplete, id, 0,
         static_cast<std::uint64_t>(service_time.count()), 0);
  record(now, TraceEventKind::kQueueDepth, id, 0,
         static_cast<std::uint64_t>(disk.queue_depth()), 0);
}

void TelemetryRecorder::on_finalized(const Disk& disk) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kDiskFinalized, disk_id(disk), 0,
         std::bit_cast<std::uint64_t>(disk.stats().energy_j), 0);
}

void TelemetryRecorder::on_policy_action(const Disk& disk,
                                         PolicyDecision decision,
                                         SimTime predicted_idle, Rpm rpm) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kPolicyAction, disk_id(disk),
         static_cast<std::uint32_t>(decision),
         static_cast<std::uint64_t>(predicted_idle.count()),
         static_cast<std::uint64_t>(rpm));
}

void TelemetryRecorder::on_idle_observed(const Disk& disk, SimTime predicted,
                                         SimTime actual) {
  if (!wants(TraceLevel::kState)) return;
  record(disk.sim().now(), TraceEventKind::kIdleObserved, disk_id(disk), 0,
         static_cast<std::uint64_t>(predicted.count()),
         static_cast<std::uint64_t>(actual.count()));
}

void TelemetryRecorder::on_read(const IoNode& node, Bytes offset, Bytes size,
                                bool background) {
  if (!wants(TraceLevel::kRequest)) return;
  record(node.disk(0).sim().now(), TraceEventKind::kNodeRead,
         static_cast<std::uint16_t>(node.node_id()), background ? 1u : 0u,
         static_cast<std::uint64_t>(offset.count()), static_cast<std::uint64_t>(size.count()));
}

void TelemetryRecorder::on_write(const IoNode& node, Bytes offset, Bytes size) {
  if (!wants(TraceLevel::kRequest)) return;
  record(node.disk(0).sim().now(), TraceEventKind::kNodeWrite,
         static_cast<std::uint16_t>(node.node_id()), 0,
         static_cast<std::uint64_t>(offset.count()), static_cast<std::uint64_t>(size.count()));
}

void TelemetryRecorder::on_block_lookup(const IoNode& node, Bytes block,
                                        bool hit) {
  if (!wants(TraceLevel::kFull)) return;
  record(node.disk(0).sim().now(), TraceEventKind::kBlockLookup,
         static_cast<std::uint16_t>(node.node_id()), hit ? 1u : 0u,
         static_cast<std::uint64_t>(block.count()), 0);
}

void TelemetryRecorder::on_prefetch_issued(const IoNode& node, Bytes block) {
  if (!wants(TraceLevel::kFull)) return;
  record(node.disk(0).sim().now(), TraceEventKind::kPrefetchIssued,
         static_cast<std::uint16_t>(node.node_id()), 0,
         static_cast<std::uint64_t>(block.count()), 0);
}

void TelemetryRecorder::on_disk_ops_issued(const IoNode& node,
                                           std::size_t count) {
  if (!wants(TraceLevel::kFull)) return;
  record(node.disk(0).sim().now(), TraceEventKind::kDiskOpsIssued,
         static_cast<std::uint16_t>(node.node_id()), 0,
         static_cast<std::uint64_t>(count), 0);
}

void TelemetryRecorder::on_request_routed(FileId f, Bytes offset, Bytes size,
                                          bool is_write,
                                          std::span<const StripePiece> pieces) {
  if (!wants(TraceLevel::kFull)) return;
  const std::uint32_t aux =
      (is_write ? 1u : 0u) |
      (static_cast<std::uint32_t>(pieces.size() & 0x7fffffffu) << 1);
  record(sim_ != nullptr ? sim_->now() : 0, TraceEventKind::kRequestRouted,
         static_cast<std::uint16_t>(f), aux, static_cast<std::uint64_t>(offset.count()),
         static_cast<std::uint64_t>(size.count()));
}

void merge_traces(std::span<const TraceBuffer* const> lanes, TraceBuffer& out) {
  out.clear();
  std::size_t total = 0;
  for (const TraceBuffer* lane : lanes) total += lane->size();
  out.reserve(total);
  // Linear-scan k-way merge: the lane count (1 + I/O nodes) is small next
  // to the event count, and per-lane traces are already time-ordered.
  std::vector<std::size_t> cursor(lanes.size(), 0);
  for (std::size_t done = 0; done < total; ++done) {
    std::size_t best = lanes.size();
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      if (cursor[l] >= lanes[l]->size()) continue;
      if (best == lanes.size() ||
          (*lanes[l])[cursor[l]].time < (*lanes[best])[cursor[best]].time) {
        best = l;  // strict < keeps ties on the lowest lane index
      }
    }
    out.append((*lanes[best])[cursor[best]]);
    ++cursor[best];
  }
}

void TelemetryRecorder::on_access_placed(const AccessRecord& rec, Slot slot,
                                         bool forced, bool theta_fallback) {
  if (!wants(TraceLevel::kFull)) return;
  const std::uint32_t aux = (forced ? 1u : 0u) | (theta_fallback ? 2u : 0u);
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot))) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rec.original))
       << 32);
  // Placement happens at compile time, before the simulation clock starts.
  record(0, TraceEventKind::kAccessPlaced,
         static_cast<std::uint16_t>(rec.process), aux, packed,
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rec.id)));
}

}  // namespace dasched
