// Binary trace persistence.
//
// Layout: 8-byte magic "DSTRC001", one fixed-size POD header carrying the
// run metadata, then `event_count` raw 32-byte TraceEvents.  The format is
// host-endian — it is a per-run artifact consumed on the machine that wrote
// it (tools/trace_dump.cc, tests), not an interchange format.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "telemetry/events.h"
#include "telemetry/recorder.h"

namespace dasched {

inline constexpr char kTraceMagic[8] = {'D', 'S', 'T', 'R', 'C', '0', '0', '1'};

/// A trace read back from disk.
struct LoadedTrace {
  TraceMeta meta;
  std::vector<TraceEvent> events;
};

/// Writes the trace to `path`; false on any I/O error.
[[nodiscard]] bool save_trace(const std::string& path, const TraceBuffer& buf,
                              const TraceMeta& meta);

/// Reads a trace written by `save_trace`; nullopt on missing file, bad
/// magic, or a truncated event section.
[[nodiscard]] std::optional<LoadedTrace> load_trace(const std::string& path);

}  // namespace dasched
