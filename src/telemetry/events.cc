#include "telemetry/events.h"

namespace dasched {

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kState: return "state";
    case TraceLevel::kRequest: return "request";
    case TraceLevel::kFull: return "full";
  }
  return "?";
}

std::optional<TraceLevel> parse_trace_level(const std::string& s) {
  if (s == "off") return TraceLevel::kOff;
  if (s == "state") return TraceLevel::kState;
  if (s == "request") return TraceLevel::kRequest;
  if (s == "full") return TraceLevel::kFull;
  return std::nullopt;
}

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kStateChange: return "state-change";
    case TraceEventKind::kEnergyAccrued: return "energy-accrued";
    case TraceEventKind::kStreamIdleBegin: return "stream-idle-begin";
    case TraceEventKind::kStreamIdleEnd: return "stream-idle-end";
    case TraceEventKind::kPolicyAction: return "policy-action";
    case TraceEventKind::kIdleObserved: return "idle-observed";
    case TraceEventKind::kDiskFinalized: return "disk-finalized";
    case TraceEventKind::kRequestSubmitted: return "request-submitted";
    case TraceEventKind::kServiceStart: return "service-start";
    case TraceEventKind::kServiceComplete: return "service-complete";
    case TraceEventKind::kQueueDepth: return "queue-depth";
    case TraceEventKind::kNodeRead: return "node-read";
    case TraceEventKind::kNodeWrite: return "node-write";
    case TraceEventKind::kBlockLookup: return "block-lookup";
    case TraceEventKind::kPrefetchIssued: return "prefetch-issued";
    case TraceEventKind::kDiskOpsIssued: return "disk-ops-issued";
    case TraceEventKind::kRequestRouted: return "request-routed";
    case TraceEventKind::kAccessPlaced: return "access-placed";
    case TraceEventKind::kEventDispatched: return "event-dispatched";
  }
  return "?";
}

}  // namespace dasched
