// Typed binary trace events — the telemetry subsystem's on-disk and
// in-memory unit of record.
//
// A trace is a flat time-ordered stream of 32-byte POD `TraceEvent`s.  The
// `kind` selects the meaning of the remaining fields; `subject` identifies
// the emitting entity (global disk id, I/O-node id, process id or file id,
// per kind); `aux` carries small kind-specific flags and `arg0`/`arg1` the
// payload (doubles travel bit-cast through `std::bit_cast`).  Keeping the
// record trivially copyable makes recording a single store sequence into a
// pooled chunk (recorder.h) and persistence a straight fwrite (trace_io.h).
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>

#include "util/units.h"

namespace dasched {

/// How much of the stack a recording captures.  Each level is a superset of
/// the previous one.
enum class TraceLevel : int {
  kOff = 0,
  /// Power-state transitions, energy accruals, idle-period boundaries and
  /// policy decisions — everything the residency/energy analytics need.
  kState = 1,
  /// Plus per-request disk service spans, queue depths and node-level
  /// request arrivals.
  kRequest = 2,
  /// Plus cache lookups, prefetches, stripe routing, scheduler placements
  /// and raw simulator event dispatch.
  kFull = 3,
};

[[nodiscard]] const char* to_string(TraceLevel level);

/// Parses "off" / "state" / "request" / "full"; nullopt on anything else.
[[nodiscard]] std::optional<TraceLevel> parse_trace_level(
    const std::string& s);

/// Event kinds, grouped by the minimum level that records them.  The
/// numeric gaps between groups are deliberate: `kind / 16` is the group.
enum class TraceEventKind : std::uint16_t {
  // --- kState -------------------------------------------------------------
  /// subject=disk, aux=from | to<<8, arg0=current rpm.
  kStateChange = 1,
  /// subject=disk, aux=state, arg0=bit_cast(joules), arg1=dt (µs).
  kEnergyAccrued = 2,
  /// subject=disk.
  kStreamIdleBegin = 3,
  /// subject=disk, aux=counted, arg0=duration (µs).
  kStreamIdleEnd = 4,
  /// subject=disk, aux=PolicyDecision, arg0=predicted idle (µs), arg1=rpm.
  kPolicyAction = 5,
  /// subject=disk, arg0=predicted (µs), arg1=actual (µs).
  kIdleObserved = 6,
  /// subject=disk, arg0=bit_cast(total energy J).
  kDiskFinalized = 7,

  // --- kRequest -----------------------------------------------------------
  /// subject=disk, aux=is_write | background<<1, arg0=offset, arg1=size.
  kRequestSubmitted = 16,
  /// subject=disk, aux=is_write | background<<1, arg0=offset, arg1=size.
  kServiceStart = 17,
  /// subject=disk, arg0=service time (µs).
  kServiceComplete = 18,
  /// subject=disk, arg0=demand+background queue depth after the transition.
  kQueueDepth = 19,
  /// subject=node, aux=background, arg0=offset, arg1=size.
  kNodeRead = 20,
  /// subject=node, arg0=offset, arg1=size.
  kNodeWrite = 21,

  // --- kFull --------------------------------------------------------------
  /// subject=node, aux=hit, arg0=block offset.
  kBlockLookup = 32,
  /// subject=node, arg0=block offset.
  kPrefetchIssued = 33,
  /// subject=node, arg0=op count.
  kDiskOpsIssued = 34,
  /// subject=file, aux=is_write | num_pieces<<1, arg0=offset, arg1=size.
  kRequestRouted = 35,
  /// subject=process, aux=forced | theta_fallback<<1,
  /// arg0=slot | original<<32 (two uint32 halves), arg1=access id.
  kAccessPlaced = 36,
  /// subject=0, arg0=event sequence number.
  kEventDispatched = 37,
};

/// Minimum level at which `kind` is recorded.
[[nodiscard]] constexpr TraceLevel level_of(TraceEventKind kind) {
  const auto group = static_cast<std::uint16_t>(kind) / 16;
  return group == 0 ? TraceLevel::kState
                    : (group == 1 ? TraceLevel::kRequest : TraceLevel::kFull);
}

[[nodiscard]] const char* to_string(TraceEventKind kind);

struct TraceEvent {
  SimTime time = 0;  // µs, simulated
  std::uint16_t kind = 0;
  std::uint16_t subject = 0;
  std::uint32_t aux = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;

  [[nodiscard]] TraceEventKind event_kind() const {
    return static_cast<TraceEventKind>(kind);
  }
  /// arg0 as a bit-cast double (energy payloads).
  [[nodiscard]] double arg0_double() const {
    return std::bit_cast<double>(arg0);
  }
};

static_assert(sizeof(TraceEvent) == 32, "trace events are 32-byte records");
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Per-run telemetry knobs, carried inside ExperimentConfig.
struct TelemetryConfig {
  TraceLevel level = TraceLevel::kOff;
  /// Output directory for trace.bin / summary.json / trace.json; empty
  /// keeps the trace in memory only (the summary is still computed).
  std::string dir;

  [[nodiscard]] bool enabled() const { return level != TraceLevel::kOff; }
};

/// Structural metadata describing one recorded run; persisted in the trace
/// file header and embedded in the analytics summary.
struct TraceMeta {
  std::string app;
  int policy = 0;  // PolicyKind as int (telemetry stays decoupled from power)
  bool scheme = false;
  std::uint64_t seed = 0;
  int num_nodes = 0;
  int disks_per_node = 0;
  TraceLevel level = TraceLevel::kOff;
  /// Simulated end of accounting (set after finalize).
  SimTime end_time = 0;
};

}  // namespace dasched
