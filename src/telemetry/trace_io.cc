#include "telemetry/trace_io.h"

#include <cstring>
#include <fstream>

namespace dasched {

namespace {

/// Fixed-size on-disk header following the magic.
struct TraceFileHeader {
  char app[32] = {};
  std::int32_t policy = 0;
  std::int32_t level = 0;
  std::uint8_t scheme = 0;
  std::uint8_t pad[7] = {};
  std::uint64_t seed = 0;
  std::int32_t num_nodes = 0;
  std::int32_t disks_per_node = 0;
  std::int64_t end_time = 0;
  std::uint64_t event_count = 0;
};

static_assert(sizeof(TraceFileHeader) == 80);
static_assert(std::is_trivially_copyable_v<TraceFileHeader>);

}  // namespace

bool save_trace(const std::string& path, const TraceBuffer& buf,
                const TraceMeta& meta) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;

  TraceFileHeader h;
  std::strncpy(h.app, meta.app.c_str(), sizeof(h.app) - 1);
  h.policy = meta.policy;
  h.level = static_cast<std::int32_t>(meta.level);
  h.scheme = meta.scheme ? 1 : 0;
  h.seed = meta.seed;
  h.num_nodes = meta.num_nodes;
  h.disks_per_node = meta.disks_per_node;
  h.end_time = meta.end_time.count();
  h.event_count = buf.size();

  os.write(kTraceMagic, sizeof(kTraceMagic));
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  buf.for_each([&os](const TraceEvent& ev) {
    os.write(reinterpret_cast<const char*>(&ev), sizeof(ev));
  });
  os.flush();
  return os.good();
}

std::optional<LoadedTrace> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;

  char magic[sizeof(kTraceMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }

  TraceFileHeader h;
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is) return std::nullopt;

  LoadedTrace out;
  out.meta.app.assign(h.app, strnlen(h.app, sizeof(h.app)));
  out.meta.policy = h.policy;
  out.meta.level = static_cast<TraceLevel>(h.level);
  out.meta.scheme = h.scheme != 0;
  out.meta.seed = h.seed;
  out.meta.num_nodes = h.num_nodes;
  out.meta.disks_per_node = h.disks_per_node;
  out.meta.end_time = h.end_time;

  out.events.resize(h.event_count);
  if (h.event_count > 0) {
    is.read(reinterpret_cast<char*>(out.events.data()),
            static_cast<std::streamsize>(h.event_count * sizeof(TraceEvent)));
    if (!is) return std::nullopt;
  }
  return out;
}

}  // namespace dasched
