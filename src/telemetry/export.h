// Trace exporters.
//
//  * write_chrome_trace — Chrome trace_event JSON (load in Perfetto or
//    chrome://tracing).  One "process" per I/O node; per disk, one thread
//    track of power-state slices ("X" complete events) and one of policy
//    decisions ("i" instants), plus a queue-depth counter track.
//  * write_summary_json — the analytics summary as a single JSON object
//    (per-disk residency/energy, idle histograms with p50/p95/max,
//    prediction accuracy, event counters).
#pragma once

#include <iosfwd>

#include "telemetry/analytics.h"
#include "telemetry/events.h"
#include "telemetry/recorder.h"

namespace dasched {

/// Streams the trace as Chrome trace_event JSON.  Works at any level; with
/// < kState there is nothing to draw but the output is still valid JSON.
void write_chrome_trace(std::ostream& os, const TraceBuffer& buf,
                        const TraceMeta& meta);

/// Same, from a loaded trace (tools/trace_dump.cc offline conversion).
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events,
                        const TraceMeta& meta);

/// Writes the analytics summary as one JSON object.
void write_summary_json(std::ostream& os, const TelemetrySummary& summary);

}  // namespace dasched
