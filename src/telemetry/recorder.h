// Low-overhead per-run trace recorder.
//
// `TraceBuffer` stores events in pooled fixed-size chunks: appending is a
// bounds check plus a 32-byte store, chunks are recycled through a free
// list on `clear()`, and `reserve()` pre-allocates so steady-state
// recording performs zero heap allocations
// (tests/telemetry/recorder_alloc_test.cc).
//
// `TelemetryRecorder` implements every layer's observer interface and
// filters by `TraceLevel`, so one object taps the whole stack (simulator,
// disks, power policies, I/O nodes, storage router, access scheduler).  It
// is strictly passive: it never mutates simulation state, so an enabled
// recorder cannot change any result — and an absent one costs each hook
// site a single empty-list test (the disabled path stays bit-identical and
// allocation-free, tests/telemetry/telemetry_run_test.cc).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/scheduler.h"
#include "disk/disk.h"
#include "sim/simulator.h"
#include "storage/io_node.h"
#include "storage/storage_system.h"
#include "telemetry/events.h"
#include "util/annotations.h"

namespace dasched {

/// Append-only event store built from pooled fixed-size chunks.
class TraceBuffer {
 public:
  static constexpr std::size_t kChunkEvents = 8192;

  DASCHED_HOT void append(const TraceEvent& ev) {
    if (chunks_.empty() || chunks_.back()->used == kChunkEvents) grow();
    Chunk& c = *chunks_.back();
    c.events[c.used] = ev;
    c.used += 1;
    size_ += 1;
  }

  /// Pre-allocates capacity for at least `events` further appends.
  void reserve(std::size_t events);

  /// Drops all events, recycling every chunk into the free list (no
  /// deallocation; the next recording reuses the memory).
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Random access by append index.  Chunks fill sequentially, so every
  /// chunk except the last is full and the address is O(1) arithmetic.
  [[nodiscard]] const TraceEvent& operator[](std::size_t i) const {
    return chunks_[i / kChunkEvents]->events[i % kChunkEvents];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& c : chunks_) {
      for (std::size_t i = 0; i < c->used; ++i) fn(c->events[i]);
    }
  }

 private:
  struct Chunk {
    std::array<TraceEvent, kChunkEvents> events;
    std::size_t used = 0;
  };

  void grow();

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<Chunk>> free_;
  std::size_t size_ = 0;
};

/// Deterministic k-way merge of per-lane traces into `out`, ordered by
/// (time, lane index, in-lane order).  A sharded run records one trace per
/// lane; each lane's sequence depends only on the topology (never on the
/// worker count), and this merge rule is a pure function of those
/// sequences, so the merged stream is shard-count invariant
/// (tests/driver/shard_differential_test.cc).  `out` is cleared first.
void merge_traces(std::span<const TraceBuffer* const> lanes, TraceBuffer& out);

/// One recorder per run; attach with telemetry/install.h.
class DASCHED_OBSERVER_PASSIVE TelemetryRecorder final
    : public SimObserver,
                                public DiskObserver,
                                public IoNodeObserver,
                                public StorageObserver,
                                public PolicyObserver,
                                public SchedulerObserver {
 public:
  explicit TelemetryRecorder(TraceLevel level) : level_(level) {
    meta_.level = level;
  }

  [[nodiscard]] TraceLevel level() const { return level_; }
  [[nodiscard]] TraceBuffer& buffer() { return buf_; }
  [[nodiscard]] const TraceBuffer& buffer() const { return buf_; }
  [[nodiscard]] TraceMeta& meta() { return meta_; }
  [[nodiscard]] const TraceMeta& meta() const { return meta_; }

  /// Maps `disk` to the global disk id `node * disks_per_node + local`.
  void register_disk(const Disk& disk, int node, int local);

  /// Clock source for hooks whose callback carries no simulator reference
  /// (storage routing).  Set by install_telemetry.
  void set_simulator(const Simulator& sim) { sim_ = &sim; }

  // SimObserver (kFull) ------------------------------------------------------
  void on_event_fired(std::uint64_t seq, SimTime t, bool cancelled) override;

  // DiskObserver (kState / kRequest) -----------------------------------------
  void on_state_change(const Disk& disk, DiskState from, DiskState to) override;
  void on_energy_accrued(const Disk& disk, DiskState state, Rpm rpm,
                         SimTime dt, Joules joules) override;
  void on_stream_idle_begin(const Disk& disk) override;
  void on_stream_idle_end(const Disk& disk, SimTime duration,
                          bool counted) override;
  void on_request_submitted(const Disk& disk, const DiskRequest& req) override;
  void on_service_start(const Disk& disk, const DiskRequest& req) override;
  void on_service_complete(const Disk& disk, SimTime service_time) override;
  void on_finalized(const Disk& disk) override;

  // PolicyObserver (kState) --------------------------------------------------
  void on_policy_action(const Disk& disk, PolicyDecision decision,
                        SimTime predicted_idle, Rpm rpm) override;
  void on_idle_observed(const Disk& disk, SimTime predicted,
                        SimTime actual) override;

  // IoNodeObserver (kRequest / kFull) ----------------------------------------
  void on_read(const IoNode& node, Bytes offset, Bytes size,
               bool background) override;
  void on_write(const IoNode& node, Bytes offset, Bytes size) override;
  void on_block_lookup(const IoNode& node, Bytes block, bool hit) override;
  void on_prefetch_issued(const IoNode& node, Bytes block) override;
  void on_disk_ops_issued(const IoNode& node, std::size_t count) override;

  // StorageObserver (kFull) --------------------------------------------------
  void on_request_routed(FileId f, Bytes offset, Bytes size, bool is_write,
                         std::span<const StripePiece> pieces) override;

  // SchedulerObserver (kFull; compile time, stamped at t=0) ------------------
  void on_access_placed(const AccessRecord& rec, Slot slot, bool forced,
                        bool theta_fallback) override;

 private:
  [[nodiscard]] bool wants(TraceLevel required) const {
    return static_cast<int>(level_) >= static_cast<int>(required);
  }
  [[nodiscard]] std::uint16_t disk_id(const Disk& disk) const {
    const auto it = disk_ids_.find(&disk);
    return it == disk_ids_.end() ? 0xffff : it->second;
  }
  DASCHED_HOT void record(SimTime t, TraceEventKind kind, std::uint16_t subject,
              std::uint32_t aux, std::uint64_t arg0, std::uint64_t arg1) {
    buf_.append(TraceEvent{t, static_cast<std::uint16_t>(kind), subject, aux,
                           arg0, arg1});
  }

  TraceLevel level_;
  TraceBuffer buf_;
  TraceMeta meta_;
  const Simulator* sim_ = nullptr;
  std::unordered_map<const Disk*, std::uint16_t> disk_ids_;
};

}  // namespace dasched
