// Trace analytics: folds a recorded event stream into per-disk power-state
// residency timelines, log-bucketed idle-period histograms, energy-by-state
// breakdowns reconciled against the Table II power model, and
// prediction-accuracy statistics.
//
// Energy accrual events fully tile each disk's timeline (Disk::accrue fires
// one per residency interval), so the per-disk per-state sums here add the
// exact same terms in the exact same order as DiskStats — they are bit-equal
// per (disk, state), and the cross-disk aggregate agrees with the run's
// scalar energy to ~1e-12 relative (re-association only).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "disk/disk.h"
#include "telemetry/events.h"
#include "telemetry/recorder.h"

namespace dasched {

/// Log-bucketed duration histogram: bucket i counts durations in
/// [2^i, 2^(i+1)) µs (bucket 0 also absorbs <= 1 µs).
struct LogHistogram {
  static constexpr int kBuckets = 63;

  std::array<std::int64_t, kBuckets> counts{};
  std::int64_t total = 0;
  double sum_us = 0.0;
  /// Σ d², so sum_sq / sum is the time-weighted mean: the expected length of
  /// the idle period a randomly chosen idle *instant* falls into.
  double sum_sq_us = 0.0;
  SimTime min_us = 0;
  SimTime max_us = 0;

  void add(SimTime duration_us);

  [[nodiscard]] double mean_us() const {
    return total == 0 ? 0.0 : sum_us / static_cast<double>(total);
  }
  [[nodiscard]] double time_weighted_mean_us() const {
    return sum_us == 0.0 ? 0.0 : sum_sq_us / sum_us;
  }
  /// Percentile estimate (p in [0, 1]) with linear interpolation inside the
  /// containing power-of-two bucket.
  [[nodiscard]] double percentile_us(double p) const;

  void merge(const LogHistogram& other);
};

/// Residency / energy / idle profile of one disk.
struct DiskTimeline {
  int node = 0;
  int local = 0;
  std::array<SimTime, kNumDiskStates> residency{};
  std::array<Joules, kNumDiskStates> energy_by_state_j{};
  Joules energy_j{};
  LogHistogram idle;  // counted stream-idle gaps only (Fig. 12 quantity)
  std::int64_t requests = 0;
  std::int64_t services = 0;
  SimTime busy_time = 0;
};

/// Predicted-vs-actual idleness accuracy of the attached power policy.
struct PredictionStats {
  std::int64_t observations = 0;
  std::int64_t overpredictions = 0;   // predicted > actual
  std::int64_t underpredictions = 0;  // predicted < actual
  double sum_abs_error_us = 0.0;
  double sum_signed_error_us = 0.0;  // predicted - actual
  double sum_predicted_us = 0.0;
  double sum_actual_us = 0.0;

  [[nodiscard]] double mean_abs_error_us() const {
    return observations == 0
               ? 0.0
               : sum_abs_error_us / static_cast<double>(observations);
  }
  [[nodiscard]] double mean_signed_error_us() const {
    return observations == 0
               ? 0.0
               : sum_signed_error_us / static_cast<double>(observations);
  }
};

/// Everything one trace folds down to.
struct TelemetrySummary {
  TraceMeta meta;
  std::vector<DiskTimeline> disks;

  // Aggregates over all disks.
  std::array<SimTime, kNumDiskStates> residency{};
  std::array<Joules, kNumDiskStates> energy_by_state_j{};
  Joules energy_total_j{};
  LogHistogram idle;
  PredictionStats prediction;
  std::array<std::int64_t, kNumPolicyDecisions> policy_actions{};

  // Event counters.
  std::int64_t disk_requests = 0;
  std::int64_t services = 0;
  std::int64_t node_reads = 0;
  std::int64_t node_writes = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t prefetches = 0;
  std::int64_t requests_routed = 0;
  std::int64_t accesses_placed = 0;
  std::int64_t forced_placements = 0;
  std::int64_t theta_fallbacks = 0;
  std::int64_t sim_events = 0;
  std::uint64_t trace_events = 0;
};

/// Streaming fold; feed events in recording order, then `finish()`.
class TraceAnalyzer {
 public:
  void add(const TraceEvent& ev);
  [[nodiscard]] TelemetrySummary finish(const TraceMeta& meta);

 private:
  DiskTimeline& timeline_for(std::uint16_t subject);

  TelemetrySummary s_;
};

[[nodiscard]] TelemetrySummary analyze_trace(const TraceBuffer& buf,
                                             const TraceMeta& meta);
[[nodiscard]] TelemetrySummary analyze_trace(
    const std::vector<TraceEvent>& events, const TraceMeta& meta);

}  // namespace dasched
