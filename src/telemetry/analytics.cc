#include "telemetry/analytics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dasched {

void LogHistogram::add(SimTime duration_us) {
  const auto v = static_cast<std::uint64_t>(std::max<SimTime>(duration_us, 0).count());
  // Bucket i covers [2^i, 2^(i+1)); 0 and 1 both land in bucket 0.
  const int bucket =
      v <= 1 ? 0
             : std::min(kBuckets - 1, static_cast<int>(std::bit_width(v)) - 1);
  counts[static_cast<std::size_t>(bucket)] += 1;
  if (total == 0 || duration_us < min_us) min_us = duration_us;
  if (duration_us > max_us) max_us = duration_us;
  total += 1;
  const auto d = static_cast<double>(duration_us);
  sum_us += d;
  sum_sq_us += d * d;
}

double LogHistogram::percentile_us(double p) const {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t c = counts[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      // Linear interpolation inside [2^i, 2^(i+1)).
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i);
      const double hi = std::ldexp(1.0, i + 1);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      const double v = lo + frac * (hi - lo);
      return std::min(v, static_cast<double>(max_us));
    }
    seen += c;
  }
  return static_cast<double>(max_us);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.total == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] +=
        other.counts[static_cast<std::size_t>(i)];
  }
  if (total == 0 || other.min_us < min_us) min_us = other.min_us;
  max_us = std::max(max_us, other.max_us);
  total += other.total;
  sum_us += other.sum_us;
  sum_sq_us += other.sum_sq_us;
}

DiskTimeline& TraceAnalyzer::timeline_for(std::uint16_t subject) {
  const auto id = static_cast<std::size_t>(subject);
  if (s_.disks.size() <= id) s_.disks.resize(id + 1);
  return s_.disks[id];
}

void TraceAnalyzer::add(const TraceEvent& ev) {
  s_.trace_events += 1;
  switch (ev.event_kind()) {
    case TraceEventKind::kEnergyAccrued: {
      DiskTimeline& d = timeline_for(ev.subject);
      const auto state = static_cast<std::size_t>(ev.aux);
      if (state < static_cast<std::size_t>(kNumDiskStates)) {
        d.residency[state] += static_cast<SimTime>(ev.arg1);
        // Same addition order as Disk::accrue -> bit-equal per (disk, state).
        d.energy_by_state_j[state] += Joules{ev.arg0_double()};
      }
      break;
    }
    case TraceEventKind::kStreamIdleEnd: {
      if (ev.aux != 0) {
        timeline_for(ev.subject).idle.add(static_cast<SimTime>(ev.arg0));
      }
      break;
    }
    case TraceEventKind::kPolicyAction: {
      const auto d = static_cast<std::size_t>(ev.aux);
      if (d < s_.policy_actions.size()) s_.policy_actions[d] += 1;
      break;
    }
    case TraceEventKind::kIdleObserved: {
      const auto predicted = static_cast<double>(ev.arg0);
      const auto actual = static_cast<double>(ev.arg1);
      PredictionStats& p = s_.prediction;
      p.observations += 1;
      if (predicted > actual) p.overpredictions += 1;
      if (predicted < actual) p.underpredictions += 1;
      p.sum_abs_error_us += std::fabs(predicted - actual);
      p.sum_signed_error_us += predicted - actual;
      p.sum_predicted_us += predicted;
      p.sum_actual_us += actual;
      break;
    }
    case TraceEventKind::kRequestSubmitted:
      timeline_for(ev.subject).requests += 1;
      s_.disk_requests += 1;
      break;
    case TraceEventKind::kServiceComplete: {
      DiskTimeline& d = timeline_for(ev.subject);
      d.services += 1;
      d.busy_time += static_cast<SimTime>(ev.arg0);
      s_.services += 1;
      break;
    }
    case TraceEventKind::kNodeRead:
      s_.node_reads += 1;
      break;
    case TraceEventKind::kNodeWrite:
      s_.node_writes += 1;
      break;
    case TraceEventKind::kBlockLookup:
      if (ev.aux != 0) {
        s_.cache_hits += 1;
      } else {
        s_.cache_misses += 1;
      }
      break;
    case TraceEventKind::kPrefetchIssued:
      s_.prefetches += 1;
      break;
    case TraceEventKind::kRequestRouted:
      s_.requests_routed += 1;
      break;
    case TraceEventKind::kAccessPlaced:
      s_.accesses_placed += 1;
      if ((ev.aux & 1u) != 0) s_.forced_placements += 1;
      if ((ev.aux & 2u) != 0) s_.theta_fallbacks += 1;
      break;
    case TraceEventKind::kEventDispatched:
      s_.sim_events += 1;
      break;
    case TraceEventKind::kStateChange:
    case TraceEventKind::kStreamIdleBegin:
    case TraceEventKind::kDiskFinalized:
    case TraceEventKind::kServiceStart:
    case TraceEventKind::kQueueDepth:
    case TraceEventKind::kDiskOpsIssued:
      break;  // shape-only events; the exporters render them
  }
}

TelemetrySummary TraceAnalyzer::finish(const TraceMeta& meta) {
  s_.meta = meta;
  const int dpn = std::max(meta.disks_per_node, 1);
  for (std::size_t id = 0; id < s_.disks.size(); ++id) {
    DiskTimeline& d = s_.disks[id];
    d.node = static_cast<int>(id) / dpn;
    d.local = static_cast<int>(id) % dpn;
    Joules disk_total{};
    for (int st = 0; st < kNumDiskStates; ++st) {
      const auto i = static_cast<std::size_t>(st);
      s_.residency[i] += d.residency[i];
      s_.energy_by_state_j[i] += d.energy_by_state_j[i];
      disk_total += d.energy_by_state_j[i];
    }
    d.energy_j = disk_total;
    // Mirrors StorageStats aggregation (per-disk totals, then across
    // disks), so the aggregate tracks the run's scalar energy closely.
    s_.energy_total_j += disk_total;
    s_.idle.merge(d.idle);
  }
  return std::move(s_);
}

TelemetrySummary analyze_trace(const TraceBuffer& buf, const TraceMeta& meta) {
  TraceAnalyzer a;
  buf.for_each([&a](const TraceEvent& ev) { a.add(ev); });
  return a.finish(meta);
}

TelemetrySummary analyze_trace(const std::vector<TraceEvent>& events,
                               const TraceMeta& meta) {
  TraceAnalyzer a;
  for (const TraceEvent& ev : events) a.add(ev);
  return a.finish(meta);
}

}  // namespace dasched
