#include "telemetry/export.h"

#include <iomanip>
#include <ostream>
#include <vector>

namespace dasched {

namespace {

/// Incremental Chrome trace_event writer: per-disk power-state slices are
/// reconstructed from kStateChange events (disks start kIdle at t = 0) and
/// the trailing slice is flushed to meta.end_time.
class ChromeWriter {
 public:
  ChromeWriter(std::ostream& os, const TraceMeta& meta) : os_(os), meta_(meta) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    const int dpn = meta_.disks_per_node > 0 ? meta_.disks_per_node : 1;
    const int total = meta_.num_nodes * dpn;
    disks_.resize(static_cast<std::size_t>(total > 0 ? total : 0));
    for (int id = 0; id < total; ++id) {
      thread_name(pid_of(id), state_tid(id),
                  "disk " + disk_label(id) + " state");
      thread_name(pid_of(id), policy_tid(id),
                  "disk " + disk_label(id) + " policy");
    }
  }

  void event(const TraceEvent& ev) {
    switch (ev.event_kind()) {
      case TraceEventKind::kStateChange: {
        const int id = ev.subject;
        if (id >= static_cast<int>(disks_.size())) return;
        TrackState& t = disks_[static_cast<std::size_t>(id)];
        const int from = static_cast<int>(ev.aux & 0xffu);
        const int to = static_cast<int>((ev.aux >> 8) & 0xffu);
        slice(id, t.since, ev.time, static_cast<DiskState>(from), t.rpm);
        t.state = to;
        t.since = ev.time;
        t.rpm = static_cast<Rpm>(ev.arg0);
        break;
      }
      case TraceEventKind::kPolicyAction: {
        const int id = ev.subject;
        begin_record();
        os_ << "{\"ph\":\"i\",\"pid\":" << pid_of(id)
            << ",\"tid\":" << policy_tid(id) << ",\"ts\":" << ev.time
            << ",\"s\":\"t\",\"name\":\""
            << to_string(static_cast<PolicyDecision>(ev.aux))
            << "\",\"args\":{\"predicted_us\":" << ev.arg0
            << ",\"rpm\":" << ev.arg1 << "}}";
        break;
      }
      case TraceEventKind::kQueueDepth: {
        const int id = ev.subject;
        begin_record();
        os_ << "{\"ph\":\"C\",\"pid\":" << pid_of(id)
            << ",\"tid\":" << state_tid(id) << ",\"ts\":" << ev.time
            << ",\"name\":\"disk " << disk_label(id)
            << " queue\",\"args\":{\"depth\":" << ev.arg0 << "}}";
        break;
      }
      default:
        break;
    }
  }

  void finish() {
    for (std::size_t id = 0; id < disks_.size(); ++id) {
      const TrackState& t = disks_[id];
      if (meta_.end_time > t.since) {
        slice(static_cast<int>(id), t.since, meta_.end_time,
              static_cast<DiskState>(t.state), t.rpm);
      }
    }
    os_ << "]}\n";
  }

 private:
  struct TrackState {
    int state = 0;  // DiskState::kIdle
    SimTime since = 0;
    Rpm rpm = 0;
  };

  [[nodiscard]] int dpn() const {
    return meta_.disks_per_node > 0 ? meta_.disks_per_node : 1;
  }
  [[nodiscard]] int pid_of(int id) const { return id / dpn(); }
  [[nodiscard]] int state_tid(int id) const { return (id % dpn()) * 2; }
  [[nodiscard]] int policy_tid(int id) const { return (id % dpn()) * 2 + 1; }
  [[nodiscard]] std::string disk_label(int id) const {
    return std::to_string(pid_of(id)) + "." + std::to_string(id % dpn());
  }

  void begin_record() {
    if (!first_) os_ << ",";
    first_ = false;
    os_ << "\n";
  }

  void thread_name(int pid, int tid, const std::string& name) {
    begin_record();
    os_ << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name << "\"}}";
  }

  void slice(int id, SimTime from, SimTime to, DiskState state, Rpm rpm) {
    if (to <= from) return;
    begin_record();
    os_ << "{\"ph\":\"X\",\"pid\":" << pid_of(id)
        << ",\"tid\":" << state_tid(id) << ",\"ts\":" << from
        << ",\"dur\":" << (to - from) << ",\"name\":\"" << to_string(state)
        << "\",\"args\":{\"rpm\":" << rpm << "}}";
  }

  std::ostream& os_;
  const TraceMeta& meta_;
  std::vector<TrackState> disks_;
  bool first_ = true;
};

void json_histogram(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\":" << h.total << ",\"mean_us\":" << h.mean_us()
     << ",\"time_weighted_mean_us\":" << h.time_weighted_mean_us()
     << ",\"p50_us\":" << h.percentile_us(0.50)
     << ",\"p95_us\":" << h.percentile_us(0.95) << ",\"min_us\":" << h.min_us
     << ",\"max_us\":" << h.max_us << ",\"buckets\":[";
  // Emit trailing-zero-trimmed bucket counts (log2 bucket i = [2^i, 2^i+1)).
  int last = -1;
  for (int i = 0; i < LogHistogram::kBuckets; ++i) {
    if (h.counts[static_cast<std::size_t>(i)] != 0) last = i;
  }
  for (int i = 0; i <= last; ++i) {
    if (i > 0) os << ",";
    os << h.counts[static_cast<std::size_t>(i)];
  }
  os << "]}";
}

void json_state_array(std::ostream& os, const char* key,
                      const std::array<Joules, kNumDiskStates>& v) {
  os << "\"" << key << "\":{";
  for (int s = 0; s < kNumDiskStates; ++s) {
    if (s > 0) os << ",";
    os << "\"" << to_string(static_cast<DiskState>(s))
       << "\":" << v[static_cast<std::size_t>(s)];
  }
  os << "}";
}

void json_residency(std::ostream& os,
                    const std::array<SimTime, kNumDiskStates>& v) {
  os << "\"residency_us\":{";
  for (int s = 0; s < kNumDiskStates; ++s) {
    if (s > 0) os << ",";
    os << "\"" << to_string(static_cast<DiskState>(s))
       << "\":" << v[static_cast<std::size_t>(s)];
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceBuffer& buf,
                        const TraceMeta& meta) {
  ChromeWriter w(os, meta);
  buf.for_each([&w](const TraceEvent& ev) { w.event(ev); });
  w.finish();
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events,
                        const TraceMeta& meta) {
  ChromeWriter w(os, meta);
  for (const TraceEvent& ev : events) w.event(ev);
  w.finish();
}

void write_summary_json(std::ostream& os, const TelemetrySummary& s) {
  const auto saved = os.precision();
  os << std::setprecision(17);
  os << "{\"app\":\"" << s.meta.app << "\",\"policy\":" << s.meta.policy
     << ",\"scheme\":" << (s.meta.scheme ? "true" : "false")
     << ",\"seed\":" << s.meta.seed << ",\"level\":\""
     << to_string(s.meta.level) << "\",\"num_nodes\":" << s.meta.num_nodes
     << ",\"disks_per_node\":" << s.meta.disks_per_node
     << ",\"end_time_us\":" << s.meta.end_time
     << ",\"trace_events\":" << s.trace_events
     << ",\"energy_total_j\":" << s.energy_total_j << ",";
  json_state_array(os, "energy_by_state_j", s.energy_by_state_j);
  os << ",";
  json_residency(os, s.residency);
  os << ",\"idle\":";
  json_histogram(os, s.idle);
  os << ",\"prediction\":{\"observations\":" << s.prediction.observations
     << ",\"overpredictions\":" << s.prediction.overpredictions
     << ",\"underpredictions\":" << s.prediction.underpredictions
     << ",\"mean_abs_error_us\":" << s.prediction.mean_abs_error_us()
     << ",\"mean_signed_error_us\":" << s.prediction.mean_signed_error_us()
     << ",\"sum_predicted_us\":" << s.prediction.sum_predicted_us
     << ",\"sum_actual_us\":" << s.prediction.sum_actual_us << "}";
  os << ",\"policy_actions\":{";
  for (int d = 0; d < kNumPolicyDecisions; ++d) {
    if (d > 0) os << ",";
    os << "\"" << to_string(static_cast<PolicyDecision>(d))
       << "\":" << s.policy_actions[static_cast<std::size_t>(d)];
  }
  os << "}";
  os << ",\"counters\":{\"disk_requests\":" << s.disk_requests
     << ",\"services\":" << s.services << ",\"node_reads\":" << s.node_reads
     << ",\"node_writes\":" << s.node_writes
     << ",\"cache_hits\":" << s.cache_hits
     << ",\"cache_misses\":" << s.cache_misses
     << ",\"prefetches\":" << s.prefetches
     << ",\"requests_routed\":" << s.requests_routed
     << ",\"accesses_placed\":" << s.accesses_placed
     << ",\"forced_placements\":" << s.forced_placements
     << ",\"theta_fallbacks\":" << s.theta_fallbacks
     << ",\"sim_events\":" << s.sim_events << "}";
  os << ",\"disks\":[";
  for (std::size_t i = 0; i < s.disks.size(); ++i) {
    const DiskTimeline& d = s.disks[i];
    if (i > 0) os << ",";
    os << "{\"node\":" << d.node << ",\"disk\":" << d.local
       << ",\"energy_j\":" << d.energy_j << ",";
    json_state_array(os, "energy_by_state_j", d.energy_by_state_j);
    os << ",";
    json_residency(os, d.residency);
    os << ",\"requests\":" << d.requests << ",\"services\":" << d.services
       << ",\"busy_time_us\":" << d.busy_time << ",\"idle\":";
    json_histogram(os, d.idle);
    os << "}";
  }
  os << "]}\n";
  os.precision(saved);
}

}  // namespace dasched
