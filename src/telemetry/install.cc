#include "telemetry/install.h"

namespace dasched {

void install_telemetry(TelemetryRecorder& recorder, Simulator& sim,
                       StorageSystem& storage) {
  TraceMeta& meta = recorder.meta();
  meta.num_nodes = storage.num_io_nodes();
  meta.disks_per_node =
      storage.num_io_nodes() > 0 ? storage.node(0).num_disks() : 0;
  meta.seed = storage.config().seed;

  recorder.set_simulator(sim);
  if (recorder.level() >= TraceLevel::kFull) sim.add_observer(&recorder);
  storage.add_observer(&recorder);
  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    IoNode& node = storage.node(n);
    node.add_observer(&recorder);
    for (int d = 0; d < node.num_disks(); ++d) {
      recorder.register_disk(node.disk(d), n, d);
      node.disk(d).add_observer(&recorder);
      if (PowerPolicy* policy = node.policy(d)) {
        policy->add_observer(&recorder);
      }
    }
  }
}

}  // namespace dasched
