#include "telemetry/install.h"

namespace dasched {

void install_telemetry(TelemetryRecorder& recorder, Simulator& sim,
                       StorageSystem& storage) {
  TraceMeta& meta = recorder.meta();
  meta.num_nodes = storage.num_io_nodes();
  meta.disks_per_node =
      storage.num_io_nodes() > 0 ? storage.node(0).num_disks() : 0;
  meta.seed = storage.config().seed;

  recorder.set_simulator(sim);
  if (recorder.level() >= TraceLevel::kFull) sim.add_observer(&recorder);
  storage.add_observer(&recorder);
  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    IoNode& node = storage.node(n);
    node.add_observer(&recorder);
    for (int d = 0; d < node.num_disks(); ++d) {
      recorder.register_disk(node.disk(d), n, d);
      node.disk(d).add_observer(&recorder);
      if (PowerPolicy* policy = node.policy(d)) {
        policy->add_observer(&recorder);
      }
    }
  }
}

void install_telemetry_sharded(
    std::vector<std::unique_ptr<TelemetryRecorder>>& recorders,
    TraceLevel level, ShardedSimulator& sim, StorageSystem& storage) {
  recorders.clear();
  for (int s = 0; s < sim.num_streams(); ++s) {
    recorders.push_back(std::make_unique<TelemetryRecorder>(level));
  }

  TelemetryRecorder& client = *recorders[0];
  TraceMeta& meta = client.meta();
  meta.num_nodes = storage.num_io_nodes();
  meta.disks_per_node =
      storage.num_io_nodes() > 0 ? storage.node(0).num_disks() : 0;
  meta.seed = storage.config().seed;
  client.set_simulator(sim.lane(0));
  if (client.level() >= TraceLevel::kFull) sim.lane(0).add_observer(&client);
  storage.add_observer(&client);

  for (int n = 0; n < storage.num_io_nodes(); ++n) {
    TelemetryRecorder& rec = *recorders[static_cast<std::size_t>(1 + n)];
    rec.set_simulator(sim.lane(1 + n));
    if (rec.level() >= TraceLevel::kFull) sim.lane(1 + n).add_observer(&rec);
    IoNode& node = storage.node(n);
    node.add_observer(&rec);
    for (int d = 0; d < node.num_disks(); ++d) {
      rec.register_disk(node.disk(d), n, d);
      node.disk(d).add_observer(&rec);
      if (PowerPolicy* policy = node.policy(d)) {
        policy->add_observer(&rec);
      }
    }
  }
}

}  // namespace dasched
