// Per-state disk power as a function of rotation speed.
//
// Eq. 1 of the paper gives motor power proportional to the square of the
// angular velocity.  Each Table II figure is split into an electronics floor
// (speed-independent) plus a motor share that scales with (omega/omega_max)^2.
#pragma once

#include "disk/disk_params.h"

namespace dasched {

class PowerModel {
 public:
  explicit PowerModel(const DiskParams& params) : p_(params) {}

  [[nodiscard]] Watts idle_w(Rpm rpm) const {
    return scaled(p_.idle_power_w, p_.idle_floor_w, rpm);
  }
  [[nodiscard]] Watts active_w(Rpm rpm) const {
    return scaled(p_.active_power_w, p_.active_floor_w, rpm);
  }
  [[nodiscard]] Watts seek_w(Rpm rpm) const {
    return scaled(p_.seek_power_w, p_.seek_floor_w, rpm);
  }
  [[nodiscard]] Watts standby_w() const { return p_.standby_power_w; }
  [[nodiscard]] Watts spin_up_w() const { return p_.spin_up_power_w; }
  [[nodiscard]] Watts spin_down_w() const { return p_.spin_down_power_w; }

  /// Power drawn while changing speed between two ladder points.
  [[nodiscard]] Watts rpm_transition_w(Rpm from, Rpm to) const {
    const Watts hi = idle_w(from > to ? from : to);
    return p_.rpm_transition_power_factor * hi;
  }

 private:
  [[nodiscard]] Watts scaled(Watts total_at_max, Watts floor, Rpm rpm) const {
    const Watts motor = total_at_max - floor;
    const double ratio = static_cast<double>(rpm) / static_cast<double>(p_.max_rpm);
    return Watts{floor.value() + motor.value() * ratio * ratio};
  }

  DiskParams p_;
};

}  // namespace dasched
