#include "disk/disk.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dasched {

const char* to_string(PolicyDecision d) {
  switch (d) {
    case PolicyDecision::kSpinDown: return "spin-down";
    case PolicyDecision::kPreWake: return "pre-wake";
    case PolicyDecision::kSetRpm: return "set-rpm";
    case PolicyDecision::kRestoreRpm: return "restore-rpm";
    case PolicyDecision::kStepDown: return "step-down";
  }
  return "?";
}

const char* to_string(DiskState s) {
  switch (s) {
    case DiskState::kIdle: return "idle";
    case DiskState::kSeeking: return "seeking";
    case DiskState::kTransferring: return "transferring";
    case DiskState::kSpinningDown: return "spinning-down";
    case DiskState::kStandby: return "standby";
    case DiskState::kSpinningUp: return "spinning-up";
    case DiskState::kChangingSpeed: return "changing-speed";
  }
  return "?";
}

Disk::Disk(Simulator& sim, DiskParams params, std::uint64_t seed)
    : sim_(sim),
      params_(params),
      power_(params),
      rng_(seed),
      rpm_(params.max_rpm),
      desired_rpm_(params.max_rpm),
      stream_idle_since_(sim.now()),
      last_accrue_(sim.now()) {}

void Disk::reset(const DiskParams& params, std::uint64_t seed) {
  params_ = params;
  power_ = PowerModel(params);
  rng_.reseed(seed);
  state_ = DiskState::kIdle;
  rpm_ = params.max_rpm;
  desired_rpm_ = params.max_rpm;
  transition_from_ = 0;
  transition_to_ = 0;
  spin_up_pending_ = false;
  spin_down_started_ = 0;
  spin_down_event_ = EventHandle();
  queue_.clear();
  background_queue_.clear();
  sweep_up_ = true;
  head_pos_ = 0;
  in_service_complete_ = EventFn();
  stream_idle_ = true;
  stream_idle_since_ = sim_.now();
  last_accrue_ = sim_.now();
  // Zero the stats in place: everything but the histogram is scalar, and
  // the histogram keeps its bucket storage across clear().  (No DiskStats{}
  // temporary — its histogram member would allocate on every reset.)
  stats_.energy_j = Joules{};
  stats_.energy_by_state_j.fill(Joules{});
  stats_.requests = 0;
  stats_.reads = 0;
  stats_.writes = 0;
  stats_.bytes_read = 0;
  stats_.bytes_written = 0;
  stats_.spin_downs = 0;
  stats_.spin_ups = 0;
  stats_.rpm_changes = 0;
  stats_.busy_time = 0;
  stats_.time_below_max_rpm = 0;
  stats_.time_in_standby = 0;
  stats_.idle_periods.clear();
}

void Disk::set_policy(PowerPolicy* policy) {
  policy_ = policy;
  if (policy_ != nullptr) policy_->attach(*this);
}

Watts Disk::current_power_w() const {
  switch (state_) {
    case DiskState::kIdle: return power_.idle_w(rpm_);
    case DiskState::kSeeking: return power_.seek_w(rpm_);
    case DiskState::kTransferring: return power_.active_w(rpm_);
    case DiskState::kSpinningDown: return power_.spin_down_w();
    case DiskState::kStandby: return power_.standby_w();
    case DiskState::kSpinningUp: return power_.spin_up_w();
    case DiskState::kChangingSpeed:
      return power_.rpm_transition_w(transition_from_, transition_to_);
  }
  return Watts{0.0};
}

void Disk::accrue() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_accrue_;
  if (dt <= 0) {
    last_accrue_ = now;
    return;
  }
  const Joules joules = current_power_w() * dt;
  observers_.notify([&](DiskObserver* o) {
    o->on_energy_accrued(*this, state_, rpm_, dt, joules);
  });
  stats_.energy_j += joules;
  stats_.energy_by_state_j[static_cast<int>(state_)] += joules;
  if (state_ == DiskState::kStandby) stats_.time_in_standby += dt;
  const bool spinning = state_ == DiskState::kIdle ||
                        state_ == DiskState::kSeeking ||
                        state_ == DiskState::kTransferring;
  if (spinning && rpm_ < params_.max_rpm) stats_.time_below_max_rpm += dt;
  last_accrue_ = now;
}

void Disk::enter_state(DiskState s) {
  accrue();
  const DiskState from = state_;
  state_ = s;
  if (from != s) {
    observers_.notify(
        [&](DiskObserver* o) { o->on_state_change(*this, from, s); });
  }
}

void Disk::end_stream_idle_if_needed() {
  if (!stream_idle_) return;
  stream_idle_ = false;
  const SimTime duration = sim_.now() - stream_idle_since_;
  // Only gaps between busy periods count as idle periods; the quiet span
  // before the first request of the run is not one.
  const bool counted = stats_.busy_time > 0;
  if (counted) stats_.idle_periods.add(duration);
  observers_.notify(
      [&](DiskObserver* o) { o->on_stream_idle_end(*this, duration, counted); });
}

void Disk::submit(DiskRequest req) {
  end_stream_idle_if_needed();
  observers_.notify(
      [&](DiskObserver* o) { o->on_request_submitted(*this, req); });
  stats_.requests += 1;
  if (req.is_write) {
    stats_.writes += 1;
    stats_.bytes_written += req.size;
  } else {
    stats_.reads += 1;
    stats_.bytes_read += req.size;
  }
  if (req.background) {
    const Bytes off = req.offset;
    background_queue_.push(off, std::move(req));
  } else {
    const Bytes off = req.offset;
    queue_.push(off, std::move(req));
  }
  if (policy_ != nullptr) policy_->on_request_arrival();
  try_progress();
}

void Disk::request_spin_down() {
  if (state_ != DiskState::kIdle || !queue_empty()) return;
  enter_state(DiskState::kSpinningDown);
  stats_.spin_downs += 1;
  spin_down_started_ = sim_.now();
  spin_down_event_ = sim_.schedule_after(params_.spin_down_time, [this] {
    enter_state(DiskState::kStandby);
    if (spin_up_pending_) {
      spin_up_pending_ = false;
      begin_spin_up(params_.spin_up_time);
    } else {
      try_progress();
    }
  });
}

void Disk::abort_spin_down() {
  assert(state_ == DiskState::kSpinningDown);
  spin_down_event_.cancel();
  spin_up_pending_ = false;
  // The platters have been decelerating for a while; re-acceleration takes a
  // proportional share of a full spin-up.
  const SimTime elapsed = sim_.now() - spin_down_started_;
  const double fraction = std::min(
      1.0, static_cast<double>(elapsed) /
               static_cast<double>(std::max<SimTime>(params_.spin_down_time, 1)));
  const auto recovery = static_cast<SimTime>(
      fraction * static_cast<double>(params_.spin_up_time));
  begin_spin_up(std::max<SimTime>(recovery, 1));
}

void Disk::request_spin_up() {
  if (state_ == DiskState::kStandby) {
    begin_spin_up(params_.spin_up_time);
  } else if (state_ == DiskState::kSpinningDown) {
    abort_spin_down();
  }
}

void Disk::begin_spin_up(SimTime duration) {
  assert(state_ == DiskState::kStandby || state_ == DiskState::kSpinningDown);
  enter_state(DiskState::kSpinningUp);
  stats_.spin_ups += 1;
  sim_.schedule_after(duration, [this] {
    rpm_ = params_.max_rpm;
    desired_rpm_ = params_.max_rpm;
    enter_state(DiskState::kIdle);
    try_progress();
  });
}

void Disk::request_rpm(Rpm rpm) {
  // Clamp to the ladder.
  if (rpm < params_.min_rpm) rpm = params_.min_rpm;
  if (rpm > params_.max_rpm) rpm = params_.max_rpm;
  const Rpm snapped =
      params_.min_rpm +
      ((rpm - params_.min_rpm + params_.rpm_step / 2) / params_.rpm_step) *
          params_.rpm_step;
  desired_rpm_ = snapped > params_.max_rpm ? params_.max_rpm : snapped;
  if (!params_.multi_speed) desired_rpm_ = params_.max_rpm;
  if (state_ == DiskState::kIdle) try_progress();
}

void Disk::begin_rpm_transition() {
  assert(state_ == DiskState::kIdle);
  if (rpm_ == desired_rpm_) return;
  transition_from_ = rpm_;
  transition_to_ = desired_rpm_;
  enter_state(DiskState::kChangingSpeed);
  stats_.rpm_changes += 1;
  sim_.schedule_after(params_.rpm_transition_time(transition_from_, transition_to_),
                      [this] {
                        rpm_ = transition_to_;
                        enter_state(DiskState::kIdle);
                        try_progress();
                      });
}

void Disk::try_progress() {
  switch (state_) {
    case DiskState::kIdle:
      if (rpm_ != desired_rpm_) {
        begin_rpm_transition();
      } else if (!queue_empty()) {
        start_service();
      }
      return;
    case DiskState::kStandby:
      if (!queue_empty()) begin_spin_up(params_.spin_up_time);
      return;
    case DiskState::kSpinningDown:
      // A request caught the disk mid-deceleration: abort and re-accelerate.
      if (!queue_empty()) abort_spin_down();
      return;
    default:
      // A completion event for the in-flight transition or service will
      // re-invoke try_progress().
      return;
  }
}

void Disk::start_service() {
  assert(state_ == DiskState::kIdle && !queue_empty());

  // Demand requests first; background prefetches fill the remaining slots.
  auto& q = queue_.empty() ? background_queue_ : queue_;

  // Elevator (SCAN): continue in the sweep direction, reverse at the end.
  std::size_t i = q.first_at_or_above(head_pos_);
  if (sweep_up_) {
    if (i == q.size()) {
      sweep_up_ = false;
      i = q.size() - 1;
    }
  } else {
    if (i == 0 && q.offset_at(0) >= head_pos_) {
      sweep_up_ = true;
    } else if (i == q.size() || q.offset_at(i) > head_pos_) {
      --i;
    }
  }
  DiskRequest req = q.take(i);
  observers_.notify([&](DiskObserver* o) { o->on_service_start(*this, req); });

  const Bytes dist = req.offset > head_pos_ ? req.offset - head_pos_
                                            : head_pos_ - req.offset;
  SimTime seek_t = 0;
  if (dist > 0) {
    const double frac =
        static_cast<double>(dist) / static_cast<double>(params_.capacity);
    seek_t = params_.seek_min +
             static_cast<SimTime>(
                 static_cast<double>(params_.seek_max - params_.seek_min) *
                 std::sqrt(frac));
  }
  const SimTime rot_t = static_cast<SimTime>(
      rng_.next_double() * static_cast<double>(params_.rotation_period(rpm_)));
  const double rate_bytes_per_sec = params_.transfer_mb_per_sec_max_rpm * 1e6 *
                                    static_cast<double>(rpm_) /
                                    static_cast<double>(params_.max_rpm);
  const SimTime xfer_t =
      params_.controller_overhead +
      static_cast<SimTime>(static_cast<double>(req.size) / rate_bytes_per_sec *
                           static_cast<double>(kUsecPerSec));
  const SimTime total = seek_t + rot_t + xfer_t;

  enter_state(DiskState::kSeeking);
  if (seek_t > 0) {
    sim_.schedule_after(seek_t, [this] {
      if (state_ == DiskState::kSeeking) enter_state(DiskState::kTransferring);
    });
  } else {
    enter_state(DiskState::kTransferring);
  }

  head_pos_ = req.offset + req.size;
  if (head_pos_ >= params_.capacity) head_pos_ = params_.capacity - 1;

  // The completion is parked in a member rather than captured: nesting an
  // EventFn inside the completion event's capture would overflow the inline
  // buffer and heap-allocate.  Safe because service is strictly one-at-a-
  // time — the member is vacant until this event fires.
  in_service_complete_ = std::move(req.on_complete);
  sim_.schedule_after(total, [this, total] {
    stats_.busy_time += total;
    observers_.notify(
        [&](DiskObserver* o) { o->on_service_complete(*this, total); });
    EventFn cb = std::move(in_service_complete_);
    if (queue_empty()) {
      enter_state(DiskState::kIdle);
      stream_idle_ = true;
      stream_idle_since_ = sim_.now();
      observers_.notify([&](DiskObserver* o) { o->on_stream_idle_begin(*this); });
      if (cb) cb();
      // The completion callback may have synchronously submitted a new
      // request, ending the idle period before it observably began.
      if (stream_idle_ && policy_ != nullptr) policy_->on_idle_begin();
      // The policy may have initiated a transition; if not, and a lower
      // desired speed is pending, start it.
      if (state_ == DiskState::kIdle) try_progress();
    } else {
      enter_state(DiskState::kIdle);
      if (cb) cb();
      try_progress();
    }
  });
}

SimTime Disk::expected_service_time(Bytes size, Rpm rpm) const {
  const SimTime avg_seek =
      params_.seek_min +
      static_cast<SimTime>(
          static_cast<double>(params_.seek_max - params_.seek_min) *
          std::sqrt(1.0 / 3.0));
  const SimTime half_rot = params_.rotation_period(rpm) / 2;
  const double rate_bytes_per_sec = params_.transfer_mb_per_sec_max_rpm * 1e6 *
                                    static_cast<double>(rpm) /
                                    static_cast<double>(params_.max_rpm);
  const SimTime xfer =
      params_.controller_overhead +
      static_cast<SimTime>(static_cast<double>(size) / rate_bytes_per_sec *
                           static_cast<double>(kUsecPerSec));
  return avg_seek + half_rot + xfer;
}

const DiskStats& Disk::finalize() {
  accrue();
  observers_.notify([&](DiskObserver* o) { o->on_finalized(*this); });
  return stats_;
}

}  // namespace dasched
