// Event-driven model of a (possibly multi-speed) server disk.
//
// The disk owns a SCAN/elevator request queue (Table II: "Disk-Arm
// Scheduling: Elevator"), a mechanical service model (seek + rotational
// latency + media transfer, the latter two scaled by the current rotation
// speed), and a state machine covering service, idleness, full spin-down /
// spin-up, and DRPM-style speed transitions.  Energy is integrated
// continuously from the piecewise-constant per-state power of `PowerModel`.
//
// A `PowerPolicy` (see power/) may be attached; it receives idle-begin and
// request-arrival callbacks and steers the disk through `request_spin_down`,
// `request_spin_up` and `request_rpm`.  Without a policy the disk never
// leaves its maximum speed — the paper's "Default Scheme".
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "disk/disk_params.h"
#include "disk/elevator_queue.h"
#include "disk/power_model.h"
#include "sim/simulator.h"
#include "util/annotations.h"
#include "util/histogram.h"
#include "util/observer_list.h"
#include "util/rng.h"
#include "util/units.h"

namespace dasched {

class Disk;

/// Classification of a power policy's control decisions, for telemetry.
enum class PolicyDecision : int {
  kSpinDown = 0,  // full spin-down committed
  kPreWake,       // ahead-of-time spin-up / speed restore before predicted end
  kSetRpm,        // transition to a reduced rotation speed
  kRestoreRpm,    // return to full speed on request arrival
  kStepDown,      // one staggered ladder step down
};

inline constexpr int kNumPolicyDecisions = 5;

[[nodiscard]] const char* to_string(PolicyDecision d);

/// Passive tap on a power policy's decisions, used by the telemetry
/// recorder (src/telemetry).  Policies call the protected `note_*` helpers
/// of `PowerPolicy` at each decision point; with nothing attached those
/// cost one empty list test.
class PolicyObserver {
 public:
  virtual ~PolicyObserver() = default;

  /// The policy took `decision` on `disk`.  `predicted_idle` is the idle
  /// estimate behind the decision (0 when the policy has none) and `rpm`
  /// the target rotation speed (0 when not a speed decision).
  virtual void on_policy_action(const Disk& disk, PolicyDecision decision,
                                SimTime predicted_idle, Rpm rpm) {
    (void)disk, (void)decision, (void)predicted_idle, (void)rpm;
  }

  /// An idle period the policy was watching ended: it had predicted
  /// `predicted` of idleness and observed `actual`.
  virtual void on_idle_observed(const Disk& disk, SimTime predicted,
                                SimTime actual) {
    (void)disk, (void)predicted, (void)actual;
  }
};

/// Hardware power-management hook.  Concrete policies live in src/power.
class PowerPolicy {
 public:
  virtual ~PowerPolicy() = default;

  /// Called once when the policy is installed on a disk.
  virtual void attach(Disk& disk) { disk_ = &disk; }

  /// The disk finished its last queued request and is now idle (spinning).
  virtual void on_idle_begin() {}

  /// A request arrived; fired before the disk decides how to progress, so
  /// the policy can request a speed change or spin-up first.
  virtual void on_request_arrival() {}

  /// Forgets every timer, prediction and cooldown so the policy behaves
  /// exactly like a freshly constructed instance on its next run.  Any
  /// `EventHandle` a policy holds is already inert after the owning
  /// simulator's reset, so dropping it is safe.  Must not allocate — the
  /// workspace reuses policies in place on the zero-allocation path.
  virtual void reset() {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.
  void set_observer(PolicyObserver* observer) { observers_.reset(observer); }
  void add_observer(PolicyObserver* observer) { observers_.add(observer); }
  void remove_observer(PolicyObserver* observer) {
    observers_.remove(observer);
  }

 protected:
  void note_action(PolicyDecision decision, SimTime predicted_idle, Rpm rpm) {
    observers_.notify([&](PolicyObserver* o) {
      o->on_policy_action(*disk_, decision, predicted_idle, rpm);
    });
  }
  void note_idle_observed(SimTime predicted, SimTime actual) {
    observers_.notify([&](PolicyObserver* o) {
      o->on_idle_observed(*disk_, predicted, actual);
    });
  }

  Disk* disk_ = nullptr;
  ObserverList<PolicyObserver> observers_;
};

struct DiskRequest {
  Bytes offset = 0;
  Bytes size = 0;
  bool is_write = false;
  /// Background transfers (cache/readahead prefetch) yield to demand
  /// requests: the arm serves the demand queue first.
  bool background = false;
  /// Invoked at the simulated completion instant.  Small-buffer `EventFn`
  /// (not `std::function`), so pooled-join completions ride inline.
  EventFn on_complete;
};

enum class DiskState : int;

/// Passive tap on the disk model, used by the invariant auditor (src/check)
/// and the telemetry recorder (src/telemetry).  All callbacks default to
/// no-ops; with nothing attached each hook site costs one empty list test,
/// so the hooks stay in release builds.  Multiple observers may be attached
/// at once (audit + telemetry compose).
class DiskObserver {
 public:
  virtual ~DiskObserver() = default;

  /// Fired on every state transition, after energy for `from` was accrued.
  virtual void on_state_change(const Disk& disk, DiskState from, DiskState to) {
    (void)disk, (void)from, (void)to;
  }

  /// `joules` were booked for `dt` spent in `state` at rotation speed `rpm`.
  virtual void on_energy_accrued(const Disk& disk, DiskState state, Rpm rpm,
                                 SimTime dt, Joules joules) {
    (void)disk, (void)state, (void)rpm, (void)dt, (void)joules;
  }

  /// The arm picked `req` and is about to start the mechanical service.
  virtual void on_service_start(const Disk& disk, const DiskRequest& req) {
    (void)disk, (void)req;
  }

  /// A request entered the disk queues.
  virtual void on_request_submitted(const Disk& disk, const DiskRequest& req) {
    (void)disk, (void)req;
  }

  /// The mechanical service of the current request finished (the completion
  /// callback has not run yet).  `service_time` covers seek + rotation +
  /// transfer; the disk serves one request at a time, so this always pairs
  /// with the latest `on_service_start`.
  virtual void on_service_complete(const Disk& disk, SimTime service_time) {
    (void)disk, (void)service_time;
  }

  /// The request stream went quiet: the queues drained and the last service
  /// completed.  Pairs with the next `on_stream_idle_end`.
  virtual void on_stream_idle_begin(const Disk& disk) { (void)disk; }

  /// A request arrival ended the current request-stream idle gap after
  /// `duration`.  `counted` mirrors DiskStats::idle_periods: the quiet span
  /// before the first request of the run is reported but not counted.
  virtual void on_stream_idle_end(const Disk& disk, SimTime duration,
                                  bool counted) {
    (void)disk, (void)duration, (void)counted;
  }

  /// `finalize()` accrued the trailing energy; stats are now complete.
  virtual void on_finalized(const Disk& disk) { (void)disk; }
};

enum class DiskState : int {
  kIdle = 0,        // spinning (at current_rpm), queue empty or about to serve
  kSeeking,
  kTransferring,    // rotational latency + media transfer
  kSpinningDown,
  kStandby,
  kSpinningUp,
  kChangingSpeed,   // DRPM transition between ladder speeds
};

inline constexpr int kNumDiskStates = 7;

[[nodiscard]] const char* to_string(DiskState s);

struct DiskStats {
  Joules energy_j{};
  std::array<Joules, kNumDiskStates> energy_by_state_j{};

  std::int64_t requests = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;

  std::int64_t spin_downs = 0;
  std::int64_t spin_ups = 0;
  std::int64_t rpm_changes = 0;

  /// Wall-clock (simulated) time the disk spent servicing requests.
  SimTime busy_time = 0;
  /// Time spinning below the maximum speed (idle or serving).
  SimTime time_below_max_rpm = 0;
  /// Time in standby (fully spun down).
  SimTime time_in_standby = 0;

  /// Request-stream idle gaps (end of busy period -> next arrival).  This is
  /// the quantity plotted in Fig. 12 and is policy-independent.
  DurationHistogram idle_periods;
};

class Disk {
 public:
  Disk(Simulator& sim, DiskParams params, std::uint64_t seed = 1);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Installs a power policy (may be null to clear).  The disk does not own
  /// the policy.
  void set_policy(PowerPolicy* policy);

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.  Legacy single-consumer entry point; see `add_observer`.
  void set_observer(DiskObserver* observer) { observers_.reset(observer); }
  /// Adds one observer to the multiplexing list (audit and telemetry attach
  /// side by side).  Not owned; duplicates and null are ignored.
  void add_observer(DiskObserver* observer) { observers_.add(observer); }
  void remove_observer(DiskObserver* observer) { observers_.remove(observer); }

  /// Enqueues a request.  `req.on_complete` fires when the data transfer
  /// finishes, however long power-mode recovery takes.
  DASCHED_HOT void submit(DiskRequest req);

  // --- Policy-facing control ------------------------------------------------
  /// Begins a spin-down if the disk is idle; no-op otherwise.
  void request_spin_down();
  /// Begins a spin-up from standby (or queues one behind an in-flight
  /// spin-down); no-op if already spinning.
  void request_spin_up();
  /// Sets the desired rotation speed.  Takes effect as soon as the disk is
  /// idle; requests arriving mid-transition wait for it to finish.
  void request_rpm(Rpm rpm);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] const DiskParams& params() const { return params_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_; }
  [[nodiscard]] DiskState state() const { return state_; }
  [[nodiscard]] Rpm current_rpm() const { return rpm_; }
  [[nodiscard]] Rpm desired_rpm() const { return desired_rpm_; }
  /// Endpoints of the in-flight speed change (valid while kChangingSpeed).
  [[nodiscard]] Rpm transition_from() const { return transition_from_; }
  [[nodiscard]] Rpm transition_to() const { return transition_to_; }
  [[nodiscard]] bool queue_empty() const {
    return queue_.empty() && background_queue_.empty();
  }
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + background_queue_.size();
  }

  /// Restores the constructor postcondition for a new run — spinning idle
  /// at `params.max_rpm`, empty elevator queues (arrival counters rewound),
  /// RNG reseeded, zeroed statistics — while keeping queue slabs and
  /// histogram buckets warm so reuse allocates nothing.  Must run after the
  /// owning simulator's reset (the idle/accrual clocks restart at
  /// `sim.now()`, which a reset simulator reads as 0); any `EventHandle`
  /// the disk held is already inert by then.  The attached policy and
  /// observers are left alone: the owning node re-wires both per run.
  void reset(const DiskParams& params, std::uint64_t seed);

  /// Accrues energy up to the current instant and returns the statistics.
  /// Call once at end of simulation (idempotent at a fixed time).
  const DiskStats& finalize();

  [[nodiscard]] const DiskStats& stats() const { return stats_; }

  /// Estimated service time for a request of `size` bytes at speed `rpm`,
  /// excluding queueing (expected rotational latency = half a revolution).
  [[nodiscard]] SimTime expected_service_time(Bytes size, Rpm rpm) const;

 private:
  void accrue();
  [[nodiscard]] Watts current_power_w() const;
  void enter_state(DiskState s);
  void try_progress();
  DASCHED_HOT void start_service();
  void begin_spin_up(SimTime duration);
  void abort_spin_down();
  void begin_rpm_transition();
  void end_stream_idle_if_needed();

  Simulator& sim_;
  DiskParams params_;
  PowerModel power_;
  Rng rng_;
  PowerPolicy* policy_ = nullptr;
  ObserverList<DiskObserver> observers_;

  DiskState state_ = DiskState::kIdle;
  Rpm rpm_;
  Rpm desired_rpm_;
  Rpm transition_from_ = 0;
  Rpm transition_to_ = 0;
  bool spin_up_pending_ = false;  // spin-up queued behind an active spin-down
  SimTime spin_down_started_ = 0;
  EventHandle spin_down_event_;

  // Elevator queues (demand first, background second): flat sorted indices
  // over pooled request slabs, keyed by disk offset, plus a sweep direction.
  ElevatorQueue<DiskRequest> queue_;
  ElevatorQueue<DiskRequest> background_queue_;
  bool sweep_up_ = true;
  Bytes head_pos_ = 0;
  /// Completion of the request currently in mechanical service (the disk
  /// serves one request at a time); parked here so the completion event's
  /// capture stays small enough for the inline `EventFn` buffer.
  EventFn in_service_complete_;

  bool stream_idle_ = true;
  SimTime stream_idle_since_ = 0;

  SimTime last_accrue_ = 0;
  DiskStats stats_;
};

}  // namespace dasched
