// Flat SCAN/elevator request queue for the disk model.
//
// Replaces the node-per-entry `std::multimap<Bytes, DiskRequest>`: a sorted
// index of 24-byte (offset, seq, slot) entries over a pooled slab of request
// records.  `seq` is a per-queue arrival counter, so requests at equal
// offsets keep multimap's FIFO iteration order and the elevator sweep in
// `Disk::start_service` picks bit-identically the same request.  Both the
// index and the slab recycle their storage — steady-state enqueue/dequeue
// never allocates.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/annotations.h"
#include "util/units.h"

namespace dasched {

template <typename Request>
class ElevatorQueue {
 public:
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Drops every queued request and rewinds the arrival counter, keeping
  /// index/slab/free-list capacity warm.  Zeroing `next_seq_` matters for
  /// cross-run bit-identity: it breaks FIFO ties among equal offsets, so a
  /// reused queue must tie-break exactly like a fresh one.
  void clear() {
    entries_.clear();
    slab_.clear();
    free_slots_.clear();
    next_seq_ = 0;
  }

  /// Enqueues a request keyed by its disk offset (FIFO among equal offsets).
  DASCHED_HOT void push(Bytes offset, Request req) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = std::move(req);
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      // dasched-lint: allow(hot-alloc): slab growth is cold-path; slots
      // recycle, so steady-state pushes reuse free_slots_.
      slab_.push_back(std::move(req));
    }
    const Entry entry{offset, next_seq_++, slot};
    const auto at = std::upper_bound(
        entries_.begin(), entries_.end(), offset,
        [](Bytes off, const Entry& e) { return off < e.offset; });
    // dasched-lint: allow(hot-alloc): vector growth amortizes away; the
    // index keeps its capacity across enqueue/dequeue cycles.
    entries_.insert(at, entry);
  }

  /// Index of the first request at or above `offset` (`size()` if none) —
  /// the flat analogue of `multimap::lower_bound`.
  [[nodiscard]] std::size_t first_at_or_above(Bytes offset) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), offset,
        [](const Entry& e, Bytes off) { return e.offset < off; });
    return static_cast<std::size_t>(it - entries_.begin());
  }

  [[nodiscard]] Bytes offset_at(std::size_t i) const {
    assert(i < entries_.size());
    return entries_[i].offset;
  }

  /// Removes and returns the request at index `i`; its slab slot is
  /// recycled.
  DASCHED_HOT Request take(std::size_t i) {
    assert(i < entries_.size());
    const std::uint32_t slot = entries_[i].slot;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    Request out = std::move(slab_[slot]);
    // dasched-lint: allow(hot-alloc): free-list growth is bounded by the
    // slab high-water mark; steady state recycles capacity.
    free_slots_.push_back(slot);
    return out;
  }

 private:
  struct Entry {
    Bytes offset;
    std::uint64_t seq;  // arrival order; unused beyond keeping sorts stable
    std::uint32_t slot;
  };

  std::vector<Entry> entries_;  // sorted by (offset, seq)
  std::vector<Request> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dasched
