// Disk configuration constants.
//
// The defaults reproduce Table II of the paper: a 100 GB server disk with a
// 12,000 RPM maximum speed, the listed per-state powers, 16 s spin-up / 10 s
// spin-down, elevator arm scheduling, and (for the multi-speed variant) a
// 3,600 RPM minimum with a 1,200 RPM step size and the quadratic power model
// of Eq. 1.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace dasched {

/// Rotational speed in revolutions per minute.
using Rpm = int;

struct DiskParams {
  // --- Geometry / service model -------------------------------------------
  Bytes capacity = gib(100);
  /// Minimum (track-to-track) seek time.
  SimTime seek_min = usec(800);
  /// Full-stroke seek time; seeks interpolate with sqrt(distance).
  SimTime seek_max = msec(14.0);
  /// Sustained media transfer rate at the maximum rotation speed.
  double transfer_mb_per_sec_max_rpm = 80.0;
  /// Fixed controller/bus overhead per request (Ultra-3 SCSI class).
  SimTime controller_overhead = usec(300);

  // --- Rotation speeds ------------------------------------------------------
  Rpm max_rpm = 12'000;
  Rpm min_rpm = 3'600;
  Rpm rpm_step = 1'200;
  /// True for multi-speed (DRPM) disks; false restricts the ladder to
  /// {max_rpm} and only spin-down is available.
  bool multi_speed = false;

  // --- Power (Table II, measured at max_rpm) -------------------------------
  Watts idle_power_w{17.1};
  Watts active_power_w{36.6};  // read/write
  Watts seek_power_w{32.1};
  Watts standby_power_w{7.2};
  Watts spin_up_power_w{44.8};
  Watts spin_down_power_w{10.0};  // decelerating spindle, mostly electronics

  /// Electronics floors: the non-motor share of each power figure.  Only the
  /// motor share scales quadratically with rotation speed (Eq. 1).
  Watts idle_floor_w{4.0};
  Watts active_floor_w{6.0};
  Watts seek_floor_w{6.0};

  // --- Mode-transition timing ----------------------------------------------
  SimTime spin_up_time = sec(16.0);
  SimTime spin_down_time = sec(10.0);
  /// Latency of one rpm_step speed change (DRPM transitions are far cheaper
  /// than a full spin-up — roughly a second for the full 3,600-12,000 swing;
  /// see DESIGN.md).
  SimTime rpm_step_time = msec(150.0);
  /// Power multiplier during an RPM transition, applied to the larger of the
  /// two endpoint idle powers.
  double rpm_transition_power_factor = 1.4;

  /// Table II defaults for a spin-down (single-speed) disk.
  [[nodiscard]] static DiskParams paper_defaults() { return DiskParams{}; }

  /// Table II defaults for a multi-speed disk.
  [[nodiscard]] static DiskParams paper_multispeed() {
    DiskParams p;
    p.multi_speed = true;
    return p;
  }

  /// Visits the available speed ladder, ascending; just `max_rpm` when
  /// !multi_speed.  Allocation-free — the per-decision path of the
  /// multi-speed policies walks the ladder on every idle boundary.
  template <typename Visitor>
  void for_each_rpm_level(Visitor&& visit) const {
    if (!multi_speed) {
      visit(max_rpm);
      return;
    }
    for (Rpm r = min_rpm; r <= max_rpm; r += rpm_step) visit(r);
  }

  /// Materialized speed ladder, for tests and tools.
  [[nodiscard]] std::vector<Rpm> rpm_levels() const {
    std::vector<Rpm> out;
    for_each_rpm_level([&out](Rpm r) { out.push_back(r); });
    return out;
  }

  /// Time for one full platter revolution at `rpm`.
  [[nodiscard]] SimTime rotation_period(Rpm rpm) const {
    return static_cast<SimTime>(60.0 * kUsecPerSec / static_cast<double>(rpm));
  }

  /// Latency of a speed change between two ladder speeds.
  [[nodiscard]] SimTime rpm_transition_time(Rpm from, Rpm to) const {
    const int steps = (from > to ? from - to : to - from) / rpm_step;
    return rpm_step_time * steps;
  }
};

}  // namespace dasched
