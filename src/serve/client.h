// Client side of the serve protocol (DESIGN.md §17).
//
// A thin synchronous request/reply wrapper: connect + hello once, then any
// number of ping / trace-upload / run / grid requests over the warm
// connection (the server keeps one warm workspace per connection, so request
// latency after the first run is dominated by the simulation itself).
// Results arrive through the bit-exact binary codec — a result obtained
// through the daemon is bit-identical to the same config run in-process,
// which tools/dasched_client.cc exposes as `--hexfloat` for CI diffing.
//
// Server-side failures surface as `ServeError` carrying the structured
// ErrorInfo (kind / field / message); transport failures are plain
// std::runtime_error.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.h"
#include "serve/socket.h"
#include "workload/trace_replay.h"

namespace dasched::serve {

/// A structured kError reply, rethrown client-side.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(ErrorInfo info);
  [[nodiscard]] const ErrorInfo& info() const noexcept { return info_; }

 private:
  ErrorInfo info_;
};

class ServeClient {
 public:
  /// One streamed result (a run reply, or one grid cell).
  struct Reply {
    CellHeader cell;
    ExperimentResult result;
    /// Out-of-band telemetry summary (kTelemetry); empty when telemetry
    /// was off for the run.
    std::string telemetry_json;
  };

  /// kTraceOk contents: the content-addressed app the upload registered.
  struct UploadReply {
    std::string app;
    int procs = 0;
    long long files = 0;
    long long records = 0;
  };

  /// Connects and performs the hello exchange.  `retries` > 0 retries a
  /// refused/missing listener every `retry_delay_ms` (daemon startup races
  /// in CI); other failures throw immediately.
  [[nodiscard]] static ServeClient connect(const std::string& address,
                                           int retries = 0,
                                           int retry_delay_ms = 200);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  /// Round-trips a kPing.
  void ping();

  /// Uploads a trace body for server-side parsing + registration.
  UploadReply upload_trace(std::string_view content, const std::string& name,
                           const ReplayOptions& opts);

  /// Runs one experiment on the server, filling `out` (reused by callers
  /// that care about allocations).
  void run(const ExperimentConfig& cfg, bool audit, Reply& out);
  [[nodiscard]] Reply run(const ExperimentConfig& cfg, bool audit = false);

  /// Streams a grid job; `on_cell` sees a reused Reply per cell, in
  /// deterministic cell order.  Returns the server's final cell count.
  std::size_t run_grid(const ExperimentGrid& grid, bool audit,
                       const std::function<void(const Reply&)>& on_cell);

  /// Asks the daemon to shut down gracefully (kShutdown, await kDone).
  void shutdown_server();

  [[nodiscard]] std::uint64_t tenant_id() const { return tenant_id_; }

 private:
  explicit ServeClient(Socket sock);
  void hello();
  /// Reads the next frame into (type, payload_); throws ServeError on a
  /// kError frame, std::runtime_error on transport loss.
  FrameType next_frame();
  void send(FrameType t, std::string_view payload);

  Socket sock_;
  std::vector<std::uint8_t> payload_;  // reused receive buffer
  std::vector<std::uint8_t> scratch_;  // reused send buffer
  std::string text_;                   // reused request text
  std::uint64_t tenant_id_ = 0;
};

}  // namespace dasched::serve
