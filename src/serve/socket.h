// Minimal blocking socket layer for the serve daemon.
//
// Unix-domain and loopback-TCP listeners and connections with poll(2)-based
// timeouts — nothing more.  Addresses are strings: `unix:/path/to.sock` or
// `tcp:PORT` (always bound to 127.0.0.1; the daemon is a local service, and
// exposing the simulator to a network is a deployment decision this layer
// refuses to make).  `tcp:0` binds an ephemeral port; `Listener::address()`
// reports the resolved one.
//
// Frame I/O (read_frame/write_frame) lives here so both the server and the
// client loop over the same code; the payload buffer is caller-owned and
// reused, keeping the steady-state receive path allocation-free once the
// buffer reaches its high-water mark.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace dasched::serve {

/// RAII file descriptor with all-or-nothing send/recv helpers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();
  /// shutdown(2) both directions: wakes a peer (or own thread) blocked in
  /// recv without racing on the fd lifetime the way close() would.
  void shutdown_both();

  enum class IoStatus { kOk, kEof, kTimeout, kError };

  /// Sends the whole buffer (retrying partial writes); kOk or kError.
  IoStatus send_all(const void* data, std::size_t n);
  /// Receives exactly `n` bytes.  kEof only when the peer closed cleanly
  /// before the first byte; a mid-message close is kError.
  /// `timeout_ms` < 0 blocks forever.
  IoStatus recv_all(void* data, std::size_t n, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Bound + listening socket for `unix:PATH` / `tcp:PORT` addresses.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;

  /// Binds and listens; throws std::runtime_error with errno context.
  static Listener open(const std::string& address);

  /// Accepts one connection; invalid Socket on timeout or after close().
  [[nodiscard]] Socket accept(int timeout_ms);

  /// Closes the listening fd (waking a blocked accept) and, for unix
  /// sockets, unlinks the path.
  void close();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Canonical address with any ephemeral TCP port resolved.
  [[nodiscard]] const std::string& address() const { return address_; }

 private:
  int fd_ = -1;
  std::string address_;
  std::string unlink_path_;
};

/// Connects to a listener address; throws std::runtime_error on failure.
[[nodiscard]] Socket connect_to(const std::string& address);

/// Reads one frame into (type, payload); payload is cleared and reused.
/// kEof = clean close at a frame boundary.  Throws ProtocolError on a
/// malformed length.
Socket::IoStatus read_frame(Socket& s, int timeout_ms, FrameType& type,
                            std::vector<std::uint8_t>& payload);

/// Writes one frame via `scratch` (reused; cleared on entry).
[[nodiscard]] bool write_frame(Socket& s, FrameType type,
                               std::span<const std::uint8_t> payload,
                               std::vector<std::uint8_t>& scratch);

}  // namespace dasched::serve
