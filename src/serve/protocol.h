// Wire protocol of the scheduling-as-a-service daemon (DESIGN.md §17).
//
// Frame layout (little-endian):
//
//   uint32  length      // bytes that follow (type + payload); 0 < length
//   uint8   type        // FrameType
//   bytes   payload     // length - 1 bytes
//
// Control payloads (hello, run/grid requests, errors) are `key=value` lines
// — auditable with strings(1), trivially extensible, and parseable without
// allocation (std::from_chars over string_views into a reused config).
// Result payloads are a bit-exact binary codec of ExperimentResult: every
// double crosses the wire as its raw 64-bit pattern, so a client-side
// hexfloat probe over a streamed result is byte-identical to an in-process
// run — the protocol cannot blur the bit-identity story the rest of the
// tree enforces.
//
// Request flow (client → server / server → client):
//   kHello          → kHelloOk           version + tenant banner
//   kTraceUpload    → kTraceOk | kError  registers a replayed trace app
//   kRun            → kResult [kTelemetry] kDone | kError
//   kGrid           → kResult* kDone | kError   (one kResult per cell)
//   kPing           → kPong
//   kShutdown       → kDone, then the server drains and exits
//
// Telemetry summaries stream as a separate JSON-text frame (kTelemetry)
// rather than being folded into the binary codec: the summary is a human
// artifact, and keeping it out-of-band keeps the result codec closed under
// bit-identity.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "driver/experiment.h"
#include "engine/experiment_grid.h"
#include "util/annotations.h"

namespace dasched::serve {

/// Protocol version, exchanged in hello.  Bump on any wire change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on one frame (type + payload); oversized frames are a protocol
/// error, closing the connection before a hostile length can balloon memory.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kTraceUpload = 3,
  kTraceOk = 4,
  kRun = 5,
  kGrid = 6,
  kResult = 7,
  kTelemetry = 8,
  kDone = 9,
  kError = 10,
  kShutdown = 11,
  kPing = 12,
  kPong = 13,
};

[[nodiscard]] const char* to_string(FrameType t);

/// Malformed frame/payload; the server answers kError, the client throws.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& message)
      : std::runtime_error(message) {}
};

// --- frame writer ----------------------------------------------------------

/// Appends one framed message to `out` (which is reused across requests by
/// both sides; append never shrinks).
void append_frame(std::vector<std::uint8_t>& out, FrameType t,
                  std::span<const std::uint8_t> payload);
void append_frame(std::vector<std::uint8_t>& out, FrameType t,
                  std::string_view payload);

// --- run requests ----------------------------------------------------------

/// One parsed kRun payload.  The embedded config is *reused* across parses —
/// strings keep their capacity — so the steady-state daemon path performs
/// zero allocations per request (tests/serve/serve_alloc_test.cc).
struct RunRequest {
  ExperimentConfig config;
  bool audit = false;
};

/// Parses `key=value` lines into `req` (resetting it to defaults first).
/// Unknown keys and malformed values throw ConfigError naming the field.
DASCHED_HOT void parse_run_request(std::string_view payload, RunRequest& req);

/// Serializes a run request; the client-side inverse of parse_run_request.
void format_run_request(const ExperimentConfig& cfg, bool audit,
                        std::string& out);

// --- grid requests ---------------------------------------------------------

/// One parsed kGrid payload.  Grid jobs reuse every kRun key for the base
/// config and add `apps=`, `policies=`, `schemes=`, `sweep=name:v1,v2,...`
/// and `derive_seeds=` list keys.  The server streams one kResult per cell
/// in deterministic ExperimentGrid::cells() order, so a client holding the
/// same grid can pair headers with locally re-derived cells.
struct GridRequest {
  ExperimentGrid grid;
  bool audit = false;
};

/// Parses `key=value` lines into `req`.  Throws ConfigError naming the field.
void parse_grid_request(std::string_view payload, GridRequest& req);

/// Serializes a grid request; the client-side inverse of parse_grid_request.
void format_grid_request(const ExperimentGrid& grid, bool audit,
                         std::string& out);

// --- result codec ----------------------------------------------------------

/// Grid-cell labeling that precedes each serialized result.
struct CellHeader {
  std::uint32_t index = 0;
  bool has_sweep = false;
  std::string sweep_name;
  double sweep_value = 0.0;
};

/// Appends the bit-exact binary encoding of (header, result) to `out`.
/// `result.telemetry` is NOT encoded (see file comment).
DASCHED_HOT void serialize_result(const CellHeader& cell,
                                  const ExperimentResult& result,
                                  std::vector<std::uint8_t>& out);

/// Decodes a kResult payload; throws ProtocolError on truncation/garbage.
void deserialize_result(std::span<const std::uint8_t> payload, CellHeader& cell,
                        ExperimentResult& result);

// --- errors ----------------------------------------------------------------

/// Structured error payload: `kind` is the exception family (config, trace,
/// protocol, runtime), `field` the offending config field or trace field
/// when known, `message` the full human diagnostic.
struct ErrorInfo {
  std::string kind;
  std::string field;
  std::string message;
};

void format_error(const ErrorInfo& info, std::string& out);
[[nodiscard]] ErrorInfo parse_error(std::string_view payload);

}  // namespace dasched::serve
