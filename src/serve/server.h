// Scheduling-as-a-service daemon (DESIGN.md §17).
//
// Two layers, deliberately separated:
//
//  * `TenantSession` — the transport-independent request handler.  One
//    session owns one warm `ExperimentWorkspace` plus reused request/result
//    buffers, so the second and later identical requests of a tenant perform
//    zero steady-state allocations (tests/serve/serve_alloc_test.cc proves
//    it with an operator-new interposer, the same way the workspace itself
//    is proven).  A request that throws mid-run answers kError and leaves
//    the session usable: the workspace's poison marker makes the next
//    prepare() rebuild from scratch instead of trusting half-mutated state.
//
//  * `ServeServer` — the socket front end: thread-per-connection accept
//    loop over a unix-domain or loopback-TCP listener, a tenant cap, and
//    graceful shutdown (stop flag + listener close + shutdown(2) on every
//    live connection, then join).  Each connection IS a tenant: its session
//    (and workspace) lives exactly as long as the socket.
//
// Per-request timeouts are poll(2) read timeouts: they bound how long the
// server waits for a client to deliver the next frame (and for mid-frame
// stalls), not how long a simulation runs — simulations are deterministic
// and finite, so wall-clock preemption would only break bit-identity.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "driver/workspace.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/annotations.h"

namespace dasched::serve {

struct ServeOptions {
  /// `unix:PATH` or `tcp:PORT` (loopback only; `tcp:0` = ephemeral).
  std::string address = "unix:dasched.sock";
  /// Concurrent-connection cap; excess connections are answered with a
  /// structured kError ("busy") and closed.
  int max_tenants = 8;
  /// Read timeout per frame in milliseconds; <= 0 waits forever.  A tenant
  /// that times out mid-request is disconnected (its workspace dies with
  /// the connection).
  int request_timeout_ms = 30'000;
  /// Log one line per connection/request to stderr.
  bool verbose = false;
};

/// Applies the DASCHED_SERVE_SOCKET / DASCHED_SERVE_TENANTS /
/// DASCHED_SERVE_TIMEOUT_MS knobs on top of `base` (strict parsing via
/// engine/env_knobs: a set-but-malformed value is fatal with a clear
/// message).  Knob table in EXPERIMENTS.md.
[[nodiscard]] ServeOptions serve_options_from_env(ServeOptions base = {});

/// One tenant's request handler; transport-independent (see file comment).
class TenantSession {
 public:
  /// Where reply frames go.  The socket server writes to the connection;
  /// tests substitute an in-memory sink.
  class Sink {
   public:
    virtual ~Sink() = default;
    /// False = transport gone; the session loop should stop.
    virtual bool write_frame(FrameType t,
                             std::span<const std::uint8_t> payload) = 0;
    bool write_frame(FrameType t, std::string_view payload) {
      return write_frame(
          t, std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(payload.data()),
                 payload.size()));
    }
  };

  explicit TenantSession(std::uint64_t tenant_id) : tenant_id_(tenant_id) {}

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  /// Handles one request frame, writing replies to `sink`.  Returns false
  /// when the connection should close (kShutdown, or an unrecoverable
  /// protocol violation).  Request-level failures (bad config, bad trace,
  /// a run that threw) answer kError and return true — the tenant and its
  /// warm workspace survive.
  bool handle(FrameType type, std::span<const std::uint8_t> payload,
              Sink& sink);

  /// True once this tenant asked the whole daemon to stop.
  [[nodiscard]] bool shutdown_requested() const { return shutdown_requested_; }
  [[nodiscard]] std::uint64_t tenant_id() const { return tenant_id_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_;
  }
  /// The warm per-tenant workspace (rebuild counters for tests/benches).
  [[nodiscard]] const ExperimentWorkspace& workspace() const { return ws_; }

 private:
  /// The steady-state path: parse → resolve app → run → serialize → reply.
  /// Allocation-free on a warm workspace (hot-alloc lint + interposer test);
  /// the telemetry/error branches opt into allocation explicitly.
  DASCHED_HOT bool handle_run(std::string_view payload, Sink& sink);
  bool handle_grid(std::string_view payload, Sink& sink);
  bool handle_trace_upload(std::string_view payload, Sink& sink);
  /// Resolves req_.config.app and reconciles procs with a replay app's
  /// fixed process count (procs=0 = "use the app's own").
  void resolve_app();
  bool send_error(Sink& sink, const char* kind, std::string field,
                  const char* message);

  std::uint64_t tenant_id_ = 0;
  ExperimentWorkspace ws_;
  RunRequest req_;                  // reused: strings keep capacity
  std::vector<std::uint8_t> out_;   // reused result-frame scratch
  std::string text_;                // reused control-frame scratch
  bool shutdown_requested_ = false;
  std::uint64_t requests_served_ = 0;
};

/// The socket front end; see file comment.
class ServeServer {
 public:
  explicit ServeServer(ServeOptions opts) : opts_(std::move(opts)) {}
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds + listens + starts the accept thread; throws on bind failure.
  void start();
  /// Canonical listener address (ephemeral TCP port resolved); valid after
  /// start().
  [[nodiscard]] const std::string& address() const { return address_; }

  /// Initiates graceful shutdown: stops accepting, wakes every connection
  /// thread via shutdown(2).  Safe to call from any thread (including a
  /// connection thread relaying a client kShutdown) and idempotent.
  void request_shutdown();
  /// Joins the accept loop and every connection thread; returns once the
  /// daemon is fully drained.  Call after request_shutdown(), or let a
  /// client kShutdown trigger it.
  void wait();

  // Counters (atomic: read from tests while threads run).
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Conn& conn, std::uint64_t tenant_id);
  /// Joins and erases finished connections; with `all`, joins live ones too
  /// (only during shutdown, after their sockets were shut down).
  void reap(bool all);

  ServeOptions opts_;
  Listener listener_;
  std::string address_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};

  std::mutex conns_mutex_;            // guards conns_ layout, not the Conns
  std::list<Conn> conns_;             // std::list: stable addresses for threads

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace dasched::serve
