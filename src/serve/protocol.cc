#include "serve/protocol.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>

#include "util/parse.h"

namespace dasched::serve {

namespace {

// --- little-endian primitives over a reused byte buffer --------------------
// The appenders are the only allocation sites on the serialize path: the
// buffer grows to its high-water mark once and is reused afterwards.

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  // dasched-lint: allow(hot-alloc): reused buffer growth to high-water mark
  out.insert(out.end(), b, b + n);
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  // dasched-lint: allow(hot-alloc): reused buffer growth to high-water mark
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(out, b, 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  put_bytes(out, b, 8);
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  // The raw bit pattern: the codec must be bit-exact, not value-exact.
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > 0xffff) throw ProtocolError("string field exceeds 64 KiB");
  put_u8(out, static_cast<std::uint8_t>(s.size() & 0xff));
  put_u8(out, static_cast<std::uint8_t>(s.size() >> 8));
  put_bytes(out, s.data(), s.size());
}

// --- bounds-checked readers ------------------------------------------------

struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t i = 0;

  void need(std::size_t n) const {
    if (buf.size() - i < n) throw ProtocolError("truncated result payload");
  }
  std::uint8_t u8() {
    need(1);
    return buf[i++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v |= static_cast<std::uint32_t>(buf[i++]) << (8 * k);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v |= static_cast<std::uint64_t>(buf[i++]) << (8 * k);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::size_t lo = u8();
    const std::size_t hi = u8();
    const std::size_t n = lo | (hi << 8);
    need(n);
    std::string out(reinterpret_cast<const char*>(buf.data() + i), n);
    i += n;
    return out;
  }
};

// --- histogram -------------------------------------------------------------

void put_histogram(std::vector<std::uint8_t>& out, const DurationHistogram& h) {
  const auto& edges = h.edges_msec();
  const auto& counts = h.counts();
  if (edges.size() > 0xffffffffu) throw ProtocolError("histogram too large");
  put_u32(out, static_cast<std::uint32_t>(edges.size()));
  for (const double e : edges) put_f64(out, e);
  for (const std::int64_t c : counts) put_i64(out, c);
  put_i64(out, h.count());
  put_f64(out, h.total_msec());
}

DurationHistogram read_histogram(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > 1u << 20) throw ProtocolError("histogram edge count implausible");
  std::vector<double> edges(n);
  for (auto& e : edges) e = r.f64();
  std::vector<std::int64_t> counts(n + 1);
  for (auto& c : counts) c = r.i64();
  const std::int64_t total_count = r.i64();
  const double total_msec = r.f64();
  return DurationHistogram::from_parts(std::move(edges), std::move(counts),
                                       total_count, total_msec);
}

// --- request field helpers -------------------------------------------------

[[noreturn]] void bad_field(std::string_view key, const char* expected,
                            std::string_view value) {
  // dasched-lint: allow(hot-alloc): error path, request is rejected anyway
  throw ConfigError(std::string(key), "request field '" + std::string(key) +
                                          "': expected " + expected +
                                          ", got '" + std::string(value) + "'");
}

std::int64_t want_i64(std::string_view key, std::string_view v) {
  const auto parsed = parse_i64(v);
  if (!parsed) bad_field(key, "an integer", v);
  return *parsed;
}

int want_int(std::string_view key, std::string_view v) {
  const std::int64_t n = want_i64(key, v);
  if (n < std::numeric_limits<int>::min() || n > std::numeric_limits<int>::max()) {
    bad_field(key, "a 32-bit integer", v);
  }
  return static_cast<int>(n);
}

double want_f64(std::string_view key, std::string_view v) {
  const auto parsed = parse_f64(v);
  if (!parsed) bad_field(key, "a number", v);
  return *parsed;
}

std::uint64_t want_u64(std::string_view key, std::string_view v) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    bad_field(key, "an unsigned integer", v);
  }
  return out;
}

bool want_bool(std::string_view key, std::string_view v) {
  if (v == "0") return false;
  if (v == "1") return true;
  bad_field(key, "0|1", v);
}

PolicyKind want_policy(std::string_view v) {
  if (v == "default" || v == "none") return PolicyKind::kNone;
  if (v == "simple") return PolicyKind::kSimple;
  if (v == "prediction") return PolicyKind::kPrediction;
  if (v == "history") return PolicyKind::kHistory;
  if (v == "staggered") return PolicyKind::kStaggered;
  bad_field("policy", "default|simple|prediction|history|staggered", v);
}

/// Dispatches one key=value pair into the config.  Returns false when the
/// key is unknown (the grid parser layers its own keys on top).
bool apply_run_field(std::string_view key, std::string_view value,
                     RunRequest& req) {
  ExperimentConfig& cfg = req.config;
  if (key == "app") {
    // dasched-lint: allow(hot-alloc): string capacity growth to high-water
    cfg.app.assign(value.data(), value.size());
  } else if (key == "policy") {
    cfg.policy = want_policy(value);
  } else if (key == "scheme") {
    cfg.use_scheme = want_bool(key, value);
  } else if (key == "procs") {
    cfg.scale.num_processes = want_int(key, value);
  } else if (key == "scale") {
    cfg.scale.factor = want_f64(key, value);
  } else if (key == "nodes") {
    cfg.storage.num_io_nodes = want_int(key, value);
  } else if (key == "delta") {
    cfg.compile.sched.delta = want_int(key, value);
  } else if (key == "theta") {
    cfg.compile.sched.theta = want_int(key, value);
  } else if (key == "buffer_mib") {
    cfg.runtime.buffer_capacity = mib(want_int(key, value));
  } else if (key == "cache_mib") {
    cfg.storage.node.cache_capacity = mib(want_int(key, value));
  } else if (key == "seed") {
    cfg.seed = want_u64(key, value);
  } else if (key == "shards") {
    cfg.shards = want_int(key, value);
  } else if (key == "lane_assign") {
    // parse_lane_assign takes a std::string; dispatch on the view instead to
    // keep the hot path allocation-free.
    if (value == "round_robin") {
      cfg.lane_assign = LaneAssign::kRoundRobin;
    } else if (value == "balanced") {
      cfg.lane_assign = LaneAssign::kBalanced;
    } else {
      bad_field(key, "round_robin|balanced", value);
    }
  } else if (key == "slack") {
    cfg.max_slack = want_int(key, value);
  } else if (key == "audit") {
    req.audit = want_bool(key, value);
  } else if (key == "trace_dir") {
    // dasched-lint: allow(hot-alloc): telemetry runs opt into allocation
    cfg.telemetry.dir.assign(value.data(), value.size());
    if (cfg.telemetry.level == TraceLevel::kOff && !cfg.telemetry.dir.empty()) {
      cfg.telemetry.level = TraceLevel::kState;
    }
  } else if (key == "trace_level") {
    if (value == "off") {
      cfg.telemetry.level = TraceLevel::kOff;
    } else if (value == "state") {
      cfg.telemetry.level = TraceLevel::kState;
    } else if (value == "request") {
      cfg.telemetry.level = TraceLevel::kRequest;
    } else if (value == "full") {
      cfg.telemetry.level = TraceLevel::kFull;
    } else {
      bad_field(key, "off|state|request|full", value);
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloOk: return "hello_ok";
    case FrameType::kTraceUpload: return "trace_upload";
    case FrameType::kTraceOk: return "trace_ok";
    case FrameType::kRun: return "run";
    case FrameType::kGrid: return "grid";
    case FrameType::kResult: return "result";
    case FrameType::kTelemetry: return "telemetry";
    case FrameType::kDone: return "done";
    case FrameType::kError: return "error";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& out, FrameType t,
                  std::span<const std::uint8_t> payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    throw ProtocolError("frame exceeds kMaxFrameBytes");
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  put_u8(out, static_cast<std::uint8_t>(t));
  put_bytes(out, payload.data(), payload.size());
}

void append_frame(std::vector<std::uint8_t>& out, FrameType t,
                  std::string_view payload) {
  append_frame(out, t,
               std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(payload.data()),
                   payload.size()));
}

void parse_run_request(std::string_view payload, RunRequest& req) {
  // Reset to defaults in place: assigning short/empty strings into the
  // reused config keeps their capacity, so a warm tenant parses without
  // touching the heap.
  req.config = ExperimentConfig{};
  req.audit = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    const std::string_view line = payload.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? payload.size() : nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      bad_field("line", "key=value", line);
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (!apply_run_field(key, value, req)) {
      bad_field(key, "a known request key", value);
    }
  }
}

void format_run_request(const ExperimentConfig& cfg, bool audit,
                        std::string& out) {
  out.clear();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "app=%s\npolicy=%s\nscheme=%d\nprocs=%d\nscale=%.17g\nnodes=%d\n"
      "delta=%d\ntheta=%d\nbuffer_mib=%lld\ncache_mib=%lld\nseed=%llu\n"
      "shards=%d\nlane_assign=%s\nslack=%lld\naudit=%d\n",
      cfg.app.c_str(), dasched::to_string(cfg.policy), cfg.use_scheme ? 1 : 0,
      cfg.scale.num_processes, cfg.scale.factor, cfg.storage.num_io_nodes,
      cfg.compile.sched.delta, cfg.compile.sched.theta,
      static_cast<long long>(cfg.runtime.buffer_capacity.count() >> 20),
      static_cast<long long>(cfg.storage.node.cache_capacity.count() >> 20),
      static_cast<unsigned long long>(cfg.seed), cfg.shards,
      dasched::to_string(cfg.lane_assign), static_cast<long long>(cfg.max_slack),
      audit ? 1 : 0);
  out += buf;
  if (cfg.telemetry.enabled()) {
    out += "trace_level=";
    switch (cfg.telemetry.level) {
      case TraceLevel::kOff: out += "off"; break;
      case TraceLevel::kState: out += "state"; break;
      case TraceLevel::kRequest: out += "request"; break;
      case TraceLevel::kFull: out += "full"; break;
    }
    out += "\n";
    if (!cfg.telemetry.dir.empty()) {
      out += "trace_dir=" + cfg.telemetry.dir + "\n";
    }
  }
}

namespace {

/// Calls fn(item) for each comma-separated piece of `list` (empty pieces are
/// rejected — a trailing comma is a client bug worth surfacing).
template <typename Fn>
void for_each_list_item(std::string_view key, std::string_view list, Fn fn) {
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = list.find(',', pos);
    const std::string_view item = list.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (item.empty()) bad_field(key, "a non-empty comma-separated list", list);
    fn(item);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
}

}  // namespace

void parse_grid_request(std::string_view payload, GridRequest& req) {
  req.grid = ExperimentGrid{};
  req.audit = false;
  RunRequest base;
  bool saw_apps = false, saw_policies = false, saw_schemes = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    const std::string_view line = payload.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? payload.size() : nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) bad_field("line", "key=value", line);
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "apps") {
      req.grid.apps.clear();
      for_each_list_item(key, value, [&](std::string_view item) {
        req.grid.apps.emplace_back(item);
      });
      saw_apps = true;
    } else if (key == "policies") {
      req.grid.policies.clear();
      for_each_list_item(key, value, [&](std::string_view item) {
        req.grid.policies.push_back(want_policy(item));
      });
      saw_policies = true;
    } else if (key == "schemes") {
      req.grid.schemes.clear();
      for_each_list_item(key, value, [&](std::string_view item) {
        req.grid.schemes.push_back(want_bool(key, item));
      });
      saw_schemes = true;
    } else if (key == "derive_seeds") {
      req.grid.derive_seeds = want_bool(key, value);
    } else if (key == "sweep") {
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        bad_field(key, "name:v1,v2,...", value);
      }
      std::vector<double> values;
      for_each_list_item(key, value.substr(colon + 1),
                         [&](std::string_view item) {
                           values.push_back(want_f64(key, item));
                         });
      try {
        req.grid.sweep = sweep_axis_by_name(
            std::string(value.substr(0, colon)), std::move(values));
      } catch (const std::invalid_argument& e) {
        throw ConfigError("sweep", e.what());
      }
    } else if (!apply_run_field(key, value, base)) {
      bad_field(key, "a known grid request key", value);
    }
  }
  if (!saw_apps || !saw_policies || !saw_schemes) {
    bad_field("grid", "apps=, policies= and schemes= lists", payload);
  }
  req.grid.base_seed = base.config.seed;
  req.grid.base = std::move(base.config);
  req.audit = base.audit;
}

void format_grid_request(const ExperimentGrid& grid, bool audit,
                         std::string& out) {
  // The base config carries the grid's base seed so parse(format(g))
  // round-trips base_seed through the shared `seed=` run key.
  ExperimentConfig base = grid.base;
  base.seed = grid.base_seed;
  format_run_request(base, audit, out);
  out += "apps=";
  for (std::size_t i = 0; i < grid.apps.size(); ++i) {
    if (i) out += ',';
    out += grid.apps[i];
  }
  out += "\npolicies=";
  for (std::size_t i = 0; i < grid.policies.size(); ++i) {
    if (i) out += ',';
    out += dasched::to_string(grid.policies[i]);
  }
  out += "\nschemes=";
  for (std::size_t i = 0; i < grid.schemes.size(); ++i) {
    if (i) out += ',';
    out += grid.schemes[i] ? '1' : '0';
  }
  out += '\n';
  if (!grid.sweep.empty()) {
    out += "sweep=" + grid.sweep.name + ":";
    char buf[64];
    for (std::size_t i = 0; i < grid.sweep.values.size(); ++i) {
      if (i) out += ',';
      std::snprintf(buf, sizeof(buf), "%.17g", grid.sweep.values[i]);
      out += buf;
    }
    out += '\n';
  }
  out += grid.derive_seeds ? "derive_seeds=1\n" : "derive_seeds=0\n";
}

void serialize_result(const CellHeader& cell, const ExperimentResult& r,
                      std::vector<std::uint8_t>& out) {
  put_u32(out, cell.index);
  put_u8(out, cell.has_sweep ? 1 : 0);
  put_str(out, cell.sweep_name);
  put_f64(out, cell.sweep_value);

  put_str(out, r.app);
  put_u8(out, static_cast<std::uint8_t>(r.policy));
  put_u8(out, r.scheme ? 1 : 0);
  put_i64(out, r.exec_time.count());
  put_f64(out, r.energy_j.value());
  put_i64(out, r.events);
  put_u8(out, r.audited ? 1 : 0);
  put_i64(out, r.audit_violations);

  const StorageStats& st = r.storage;
  put_f64(out, st.energy_j.value());
  put_i64(out, st.requests);
  put_i64(out, st.disk_requests);
  put_i64(out, st.spin_downs);
  put_i64(out, st.spin_ups);
  put_i64(out, st.rpm_changes);
  put_f64(out, st.cache_hit_rate);
  put_histogram(out, st.idle_periods);
  if (st.per_node.size() > 0xffffffffu) throw ProtocolError("per_node too large");
  put_u32(out, static_cast<std::uint32_t>(st.per_node.size()));
  for (const IoNodeStats& n : st.per_node) {
    put_f64(out, n.energy_j.value());
    put_i64(out, n.requests);
    put_i64(out, n.disk_requests);
    put_i64(out, n.spin_downs);
    put_i64(out, n.spin_ups);
    put_i64(out, n.rpm_changes);
    put_i64(out, n.cache.hits);
    put_i64(out, n.cache.misses);
    put_i64(out, n.cache.insertions);
    put_i64(out, n.cache.evictions);
    put_i64(out, n.cache.invalidations);
    put_histogram(out, n.idle_periods);
  }

  const RuntimeStats& rt = r.runtime;
  put_i64(out, rt.buffer_hits);
  put_i64(out, rt.in_flight_hits);
  put_i64(out, rt.direct_reads);
  put_i64(out, rt.writes);
  put_i64(out, rt.prefetches);
  put_i64(out, rt.skipped_min_lead);
  put_i64(out, rt.buffer.reservations);
  put_i64(out, rt.buffer.full_rejections);
  put_i64(out, rt.buffer.consumed);
  put_i64(out, rt.buffer.consumed_in_flight);
  put_i64(out, rt.buffer.wasted);
  put_i64(out, rt.buffer.peak_bytes.count());

  put_i64(out, r.sched.scheduled);
  put_i64(out, r.sched.forced);
  put_i64(out, r.sched.theta_fallbacks);
  put_f64(out, r.sched.mean_advance_slots);
}

void deserialize_result(std::span<const std::uint8_t> payload, CellHeader& cell,
                        ExperimentResult& r) {
  Reader in{payload};
  cell.index = in.u32();
  cell.has_sweep = in.u8() != 0;
  cell.sweep_name = in.str();
  cell.sweep_value = in.f64();

  r.app = in.str();
  r.policy = static_cast<PolicyKind>(in.u8());
  r.scheme = in.u8() != 0;
  r.exec_time = SimTime{in.i64()};
  r.energy_j = Joules{in.f64()};
  r.events = in.i64();
  r.audited = in.u8() != 0;
  r.audit_violations = in.i64();

  StorageStats& st = r.storage;
  st.energy_j = Joules{in.f64()};
  st.requests = in.i64();
  st.disk_requests = in.i64();
  st.spin_downs = in.i64();
  st.spin_ups = in.i64();
  st.rpm_changes = in.i64();
  st.cache_hit_rate = in.f64();
  st.idle_periods = read_histogram(in);
  const std::uint32_t nodes = in.u32();
  if (nodes > 1u << 20) throw ProtocolError("per_node count implausible");
  st.per_node.clear();
  st.per_node.reserve(nodes);
  for (std::uint32_t k = 0; k < nodes; ++k) {
    IoNodeStats n;
    n.energy_j = Joules{in.f64()};
    n.requests = in.i64();
    n.disk_requests = in.i64();
    n.spin_downs = in.i64();
    n.spin_ups = in.i64();
    n.rpm_changes = in.i64();
    n.cache.hits = in.i64();
    n.cache.misses = in.i64();
    n.cache.insertions = in.i64();
    n.cache.evictions = in.i64();
    n.cache.invalidations = in.i64();
    n.idle_periods = read_histogram(in);
    st.per_node.push_back(std::move(n));
  }

  RuntimeStats& rt = r.runtime;
  rt.buffer_hits = in.i64();
  rt.in_flight_hits = in.i64();
  rt.direct_reads = in.i64();
  rt.writes = in.i64();
  rt.prefetches = in.i64();
  rt.skipped_min_lead = in.i64();
  rt.buffer.reservations = in.i64();
  rt.buffer.full_rejections = in.i64();
  rt.buffer.consumed = in.i64();
  rt.buffer.consumed_in_flight = in.i64();
  rt.buffer.wasted = in.i64();
  rt.buffer.peak_bytes = Bytes{in.i64()};

  r.sched.scheduled = in.i64();
  r.sched.forced = in.i64();
  r.sched.theta_fallbacks = in.i64();
  r.sched.mean_advance_slots = in.f64();

  r.telemetry = nullptr;  // summaries stream out-of-band (kTelemetry)
  if (in.i != payload.size()) {
    throw ProtocolError("trailing bytes after result payload");
  }
}

void format_error(const ErrorInfo& info, std::string& out) {
  out.clear();
  out += "kind=";
  out += info.kind;
  out += "\nfield=";
  out += info.field;
  out += "\nmessage=";
  // Newlines would break the line format; the only multi-line messages are
  // audit reports, which fold into spaces.
  for (const char c : info.message) out += c == '\n' ? ' ' : c;
  out += "\n";
}

ErrorInfo parse_error(std::string_view payload) {
  ErrorInfo info;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    const std::string_view line = payload.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? payload.size() : nl + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "kind") {
      info.kind = std::string(value);
    } else if (key == "field") {
      info.field = std::string(value);
    } else if (key == "message") {
      info.message = std::string(value);
    }
  }
  return info;
}

}  // namespace dasched::serve
