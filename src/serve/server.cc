#include "serve/server.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "engine/env_knobs.h"
#include "telemetry/export.h"
#include "workload/trace_replay.h"

namespace dasched::serve {

namespace {

/// Splits a text payload's first `key=value` block from the raw body that
/// follows the first blank line (trace uploads).  Returns the header; the
/// body lands in `body`.
std::string_view split_header(std::string_view payload, std::string_view& body) {
  const std::size_t sep = payload.find("\n\n");
  if (sep == std::string_view::npos) {
    body = std::string_view{};
    return payload;
  }
  body = payload.substr(sep + 2);
  return payload.substr(0, sep + 1);
}

std::string_view as_text(std::span<const std::uint8_t> payload) {
  return {reinterpret_cast<const char*>(payload.data()), payload.size()};
}

}  // namespace

ServeOptions serve_options_from_env(ServeOptions base) {
  base.address =
      env_string("DASCHED_SERVE_SOCKET", base.address.c_str());
  base.max_tenants = env_int("DASCHED_SERVE_TENANTS", base.max_tenants);
  base.request_timeout_ms =
      env_int("DASCHED_SERVE_TIMEOUT_MS", base.request_timeout_ms);
  return base;
}

// --------------------------------------------------------------------------
// TenantSession
// --------------------------------------------------------------------------

bool TenantSession::send_error(Sink& sink, const char* kind, std::string field,
                               const char* message) {
  ErrorInfo info;
  info.kind = kind;
  info.field = std::move(field);
  info.message = message;
  format_error(info, text_);
  return sink.write_frame(FrameType::kError, text_);
}

bool TenantSession::handle(FrameType type, std::span<const std::uint8_t> payload,
                           Sink& sink) {
  try {
    switch (type) {
      case FrameType::kHello: {
        // The version is the only thing worth checking; extra lines are
        // ignored so hellos stay forward-compatible.
        const std::string_view text = as_text(payload);
        char expect[32];
        std::snprintf(expect, sizeof(expect), "version=%u",
                      kProtocolVersion);
        if (text.find(expect) == std::string_view::npos) {
          send_error(sink, "protocol", "version",
                     "unsupported protocol version in hello");
          return false;
        }
        char reply[64];
        const int n = std::snprintf(reply, sizeof(reply),
                                    "version=%u\ntenant=%llu\n",
                                    kProtocolVersion,
                                    static_cast<unsigned long long>(tenant_id_));
        return sink.write_frame(FrameType::kHelloOk,
                                std::string_view(reply, n));
      }
      case FrameType::kPing:
        return sink.write_frame(FrameType::kPong, payload);
      case FrameType::kRun: {
        const bool ok = handle_run(as_text(payload), sink);
        if (ok) ++requests_served_;
        return ok;
      }
      case FrameType::kGrid: {
        const bool ok = handle_grid(as_text(payload), sink);
        if (ok) ++requests_served_;
        return ok;
      }
      case FrameType::kTraceUpload: {
        const bool ok = handle_trace_upload(as_text(payload), sink);
        if (ok) ++requests_served_;
        return ok;
      }
      case FrameType::kShutdown:
        shutdown_requested_ = true;
        sink.write_frame(FrameType::kDone, std::string_view("shutdown=1\n"));
        return false;
      default:
        send_error(sink, "protocol", "type", "unexpected frame type");
        return false;
    }
  } catch (const ConfigError& e) {
    return send_error(sink, "config", e.field(), e.what());
  } catch (const TraceParseError& e) {
    return send_error(sink, "trace", e.field(), e.what());
  } catch (const ProtocolError& e) {
    send_error(sink, "protocol", "", e.what());
    return false;  // framing is suspect; close
  } catch (const std::out_of_range& e) {
    return send_error(sink, "config", "app", e.what());
  } catch (const std::exception& e) {
    // A run that threw mid-flight (audit violation, unwritable telemetry
    // dir, ...) poisoned the workspace; the next prepare() rebuilds it, so
    // the tenant survives.
    return send_error(sink, "runtime", "", e.what());
  }
}

void TenantSession::resolve_app() {
  ExperimentConfig& cfg = req_.config;
  const App& app = app_by_name(cfg.app);  // std::out_of_range if unknown
  if (app.fixed_processes > 0) {
    if (cfg.scale.num_processes == 0) {
      cfg.scale.num_processes = app.fixed_processes;
    } else if (cfg.scale.num_processes != app.fixed_processes) {
      char msg[192];
      std::snprintf(msg, sizeof(msg),
                    "app '%s' replays a trace with %d processes; procs must "
                    "match or be 0 (= use the trace's own count)",
                    cfg.app.c_str(), app.fixed_processes);
      // dasched-lint: allow(hot-alloc): error path, request rejected
      throw ConfigError("procs", msg);
    }
  } else if (cfg.scale.num_processes == 0) {
    // dasched-lint: allow(hot-alloc): error path, request rejected
    throw ConfigError("procs", "procs=0 (use the app's own process count) is only meaningful for replayed traces");
  }
}

bool TenantSession::handle_run(std::string_view payload, Sink& sink) {
  parse_run_request(payload, req_);
  resolve_app();
  const ExperimentResult& r = ws_.run(req_.config);
  out_.clear();
  static const CellHeader kNoCell{};
  serialize_result(kNoCell, r, out_);
  if (!sink.write_frame(FrameType::kResult, out_)) return false;
  if (r.telemetry) {
    // dasched-lint: allow(hot-alloc): telemetry runs opt into allocation
    std::ostringstream os;
    write_summary_json(os, *r.telemetry);
    text_ = os.str();
    if (!sink.write_frame(FrameType::kTelemetry, text_)) return false;
  }
  return sink.write_frame(FrameType::kDone, std::string_view("cells=1\n"));
}

bool TenantSession::handle_grid(std::string_view payload, Sink& sink) {
  GridRequest grid;
  parse_grid_request(payload, grid);
  const std::vector<GridCell> cells = grid.grid.cells();
  CellHeader header;
  for (const GridCell& cell : cells) {
    ExperimentConfig cfg = cell.config;
    cfg.audit = cfg.audit || grid.audit;
    const ExperimentResult& r = ws_.run(cfg);
    header.index = static_cast<std::uint32_t>(cell.index);
    header.has_sweep = cell.has_sweep;
    header.sweep_name = cell.sweep_name;
    header.sweep_value = cell.sweep_value;
    out_.clear();
    serialize_result(header, r, out_);
    if (!sink.write_frame(FrameType::kResult, out_)) return false;
  }
  char done[32];
  const int n = std::snprintf(done, sizeof(done), "cells=%zu\n", cells.size());
  return sink.write_frame(FrameType::kDone, std::string_view(done, n));
}

bool TenantSession::handle_trace_upload(std::string_view payload, Sink& sink) {
  std::string_view body;
  const std::string_view header = split_header(payload, body);

  ReplayOptions opts;
  std::string name = "upload";
  std::size_t pos = 0;
  while (pos < header.size()) {
    const std::size_t nl = header.find('\n', pos);
    const std::string_view line = header.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? header.size() : nl + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("line", "trace upload header line '" +
                                    std::string(line) +
                                    "' is not key=value");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string value(line.substr(eq + 1));
    const auto as_i64 = [&]() -> std::int64_t {
      const auto parsed = parse_int(value);
      if (!parsed) {
        throw ConfigError(std::string(key), "trace upload field '" +
                                                std::string(key) +
                                                "': expected an integer, "
                                                "got '" + value + "'");
      }
      return *parsed;
    };
    if (key == "name") {
      name = value;
    } else if (key == "format") {
      const auto fmt = parse_trace_format(value);
      if (!fmt) {
        throw ConfigError("format",
                          "trace upload field 'format': expected "
                          "auto|csv|jsonl|blk, got '" + value + "'");
      }
      opts.format = *fmt;
    } else if (key == "slot_us") {
      opts.slot_us = as_i64();
    } else if (key == "min_compute_us") {
      opts.min_compute_us = as_i64();
    } else if (key == "max_compute_us") {
      opts.max_compute_us = as_i64();
    } else if (key == "granularity") {
      opts.granularity = static_cast<int>(as_i64());
    } else if (key == "seed") {
      opts.seed = static_cast<std::uint64_t>(as_i64());
    } else if (key == "jitter") {
      const auto parsed = parse_double(value);
      if (!parsed) {
        throw ConfigError("jitter", "trace upload field 'jitter': expected "
                                    "a number, got '" + value + "'");
      }
      opts.jitter_frac = *parsed;
    } else {
      throw ConfigError(std::string(key), "unknown trace upload field '" +
                                              std::string(key) + "'");
    }
  }

  // Parse (throws TraceParseError before any global mutation), then
  // register under the content fingerprint.
  ReplayTrace trace = parse_replay_trace(body, name, opts);
  const std::size_t files = trace.files.size();
  const std::size_t records = trace.records.size();
  const App& app = register_replay_trace(std::move(trace), opts);
  char reply[160];
  const int n = std::snprintf(
      reply, sizeof(reply), "app=%s\nprocs=%d\nfiles=%zu\nrecords=%zu\n",
      app.name.c_str(), app.fixed_processes, files, records);
  return sink.write_frame(FrameType::kTraceOk, std::string_view(reply, n));
}

// --------------------------------------------------------------------------
// ServeServer
// --------------------------------------------------------------------------

ServeServer::~ServeServer() {
  request_shutdown();
  wait();
}

void ServeServer::start() {
  listener_ = Listener::open(opts_.address);
  address_ = listener_.address();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ServeServer::request_shutdown() {
  if (stop_.exchange(true)) return;
  listener_.close();  // wakes the accept loop
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (Conn& c : conns_) c.sock.shutdown_both();
}

void ServeServer::wait() {
  if (acceptor_.joinable()) acceptor_.join();
  reap(/*all=*/true);
}

void ServeServer::reap(bool all) {
  std::list<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || it->done.load(std::memory_order_acquire)) {
        finished.splice(finished.end(), conns_, it++);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a connection thread may be inside
  // serve_connection's epilogue, which never takes conns_mutex_.
  for (Conn& c : finished) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void ServeServer::accept_loop() {
  std::uint64_t next_tenant = 1;
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket sock = listener_.accept(/*timeout_ms=*/200);
    if (!sock.valid()) continue;
    reap(/*all=*/false);
    std::size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      active = conns_.size();
    }
    if (static_cast<int>(active) >= opts_.max_tenants) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ErrorInfo info;
      info.kind = "busy";
      info.field = "max_tenants";
      info.message = "tenant limit reached (" +
                     std::to_string(opts_.max_tenants) + "); retry later";
      std::string text;
      format_error(info, text);
      std::vector<std::uint8_t> scratch;
      (void)write_frame(
          sock, FrameType::kError,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
          scratch);
      continue;  // sock closes on scope exit
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t tenant_id = next_tenant++;
    Conn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.emplace_back();
      conn = &conns_.back();
      conn->sock = std::move(sock);
    }
    // If a shutdown raced in between the accept and the registration, make
    // sure this connection is woken like the rest.
    if (stop_.load(std::memory_order_relaxed)) conn->sock.shutdown_both();
    conn->thread = std::thread(
        [this, conn, tenant_id] { serve_connection(*conn, tenant_id); });
    if (opts_.verbose) {
      std::fprintf(stderr, "[dasched_serve] tenant %llu connected\n",
                   static_cast<unsigned long long>(tenant_id));
    }
  }
}

void ServeServer::serve_connection(Conn& conn, std::uint64_t tenant_id) {
  struct SocketSink final : TenantSession::Sink {
    explicit SocketSink(Socket& s) : sock(s) {}
    bool write_frame(FrameType t,
                     std::span<const std::uint8_t> payload) override {
      return serve::write_frame(sock, t, payload, scratch);
    }
    using TenantSession::Sink::write_frame;
    Socket& sock;
    std::vector<std::uint8_t> scratch;
  };

  TenantSession session(tenant_id);
  SocketSink sink(conn.sock);
  std::vector<std::uint8_t> payload;
  while (!stop_.load(std::memory_order_relaxed)) {
    FrameType type{};
    Socket::IoStatus status = Socket::IoStatus::kError;
    try {
      status = read_frame(conn.sock, opts_.request_timeout_ms <= 0
                                         ? -1
                                         : opts_.request_timeout_ms,
                          type, payload);
    } catch (const ProtocolError& e) {
      ErrorInfo info{"protocol", "", e.what()};
      std::string text;
      format_error(info, text);
      sink.write_frame(FrameType::kError, std::string_view(text));
      break;
    }
    if (status != Socket::IoStatus::kOk) {
      if (opts_.verbose && status == Socket::IoStatus::kTimeout) {
        std::fprintf(stderr, "[dasched_serve] tenant %llu timed out\n",
                     static_cast<unsigned long long>(tenant_id));
      }
      break;
    }
    const bool keep = session.handle(type, payload, sink);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!keep) break;
  }
  conn.sock.shutdown_both();
  if (opts_.verbose) {
    std::fprintf(stderr,
                 "[dasched_serve] tenant %llu disconnected after %llu "
                 "request(s)\n",
                 static_cast<unsigned long long>(tenant_id),
                 static_cast<unsigned long long>(session.requests_served()));
  }
  if (session.shutdown_requested()) request_shutdown();
  conn.done.store(true, std::memory_order_release);
}

}  // namespace dasched::serve
