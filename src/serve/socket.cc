#include "serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/parse.h"

namespace dasched::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix
  int port = 0;      // tcp
};

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    if (out.path.empty()) {
      throw std::runtime_error("serve address: empty unix socket path");
    }
    sockaddr_un probe{};
    if (out.path.size() >= sizeof(probe.sun_path)) {
      throw std::runtime_error("serve address: unix socket path too long");
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const auto port = parse_i64(std::string_view(address).substr(4));
    if (!port || *port < 0 || *port > 65535) {
      throw std::runtime_error("serve address: invalid tcp port in '" +
                               address + "'");
    }
    out.port = static_cast<int>(*port);
    return out;
  }
  throw std::runtime_error(
      "serve address must be unix:PATH or tcp:PORT, got '" + address + "'");
}

/// Waits for readability; 1 ready, 0 timeout, -1 error.
int wait_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket::IoStatus Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (sent == 0) return IoStatus::kError;
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return IoStatus::kOk;
}

Socket::IoStatus Socket::recv_all(void* data, std::size_t n, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(data);
  bool first = true;
  while (n > 0) {
    const int ready = wait_readable(fd_, timeout_ms);
    if (ready < 0) return IoStatus::kError;
    if (ready == 0) return IoStatus::kTimeout;
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (got == 0) return first ? IoStatus::kEof : IoStatus::kError;
    first = false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return IoStatus::kOk;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      address_(std::move(other.address_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    unlink_path_ = std::move(other.unlink_path_);
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  return *this;
}

Listener Listener::open(const std::string& address) {
  const ParsedAddress parsed = parse_address(address);
  Listener out;
  if (parsed.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.path.c_str(), sizeof(addr.sun_path) - 1);
    // A stale socket file from a crashed daemon would make bind fail;
    // removing it is safe because a live daemon holds the listen fd, not
    // the name.
    ::unlink(parsed.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("bind(" + address + ")");
    }
    out.unlink_path_ = parsed.path;
    out.fd_ = fd;
    out.address_ = address;
  } else {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(parsed.port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("bind(" + address + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("getsockname");
    }
    out.fd_ = fd;
    out.address_ = "tcp:" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(out.fd_, 64) < 0) {
    const int saved = errno;
    out.close();
    errno = saved;
    sys_fail("listen(" + address + ")");
  }
  return out;
}

Socket Listener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket{};
  const int ready = wait_readable(fd_, timeout_ms);
  if (ready <= 0) return Socket{};
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket{};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket{fd};
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

Socket connect_to(const std::string& address) {
  const ParsedAddress parsed = parse_address(address);
  int fd = -1;
  if (parsed.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("connect(" + address + ")");
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(parsed.port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("connect(" + address + ")");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket{fd};
}

Socket::IoStatus read_frame(Socket& s, int timeout_ms, FrameType& type,
                            std::vector<std::uint8_t>& payload) {
  std::uint8_t head[4];
  const Socket::IoStatus h = s.recv_all(head, sizeof(head), timeout_ms);
  if (h != Socket::IoStatus::kOk) return h;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  if (length == 0 || length > kMaxFrameBytes) {
    throw ProtocolError("invalid frame length " + std::to_string(length));
  }
  std::uint8_t t = 0;
  const Socket::IoStatus ts = s.recv_all(&t, 1, timeout_ms);
  if (ts != Socket::IoStatus::kOk) {
    return ts == Socket::IoStatus::kEof ? Socket::IoStatus::kError : ts;
  }
  type = static_cast<FrameType>(t);
  payload.clear();
  // dasched-lint: allow(hot-alloc): reused buffer growth to high-water mark
  payload.resize(length - 1);
  if (length > 1) {
    const Socket::IoStatus ps =
        s.recv_all(payload.data(), payload.size(), timeout_ms);
    if (ps != Socket::IoStatus::kOk) {
      return ps == Socket::IoStatus::kEof ? Socket::IoStatus::kError : ps;
    }
  }
  return Socket::IoStatus::kOk;
}

bool write_frame(Socket& s, FrameType type,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& scratch) {
  scratch.clear();
  append_frame(scratch, type, payload);
  return s.send_all(scratch.data(), scratch.size()) == Socket::IoStatus::kOk;
}

}  // namespace dasched::serve
