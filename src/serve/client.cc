#include "serve/client.h"

#include <cerrno>
#include <cstdio>
#include <ctime>

#include "util/parse.h"

namespace dasched::serve {

namespace {

std::string describe(const ErrorInfo& info) {
  std::string out = "server error [" + info.kind + "]";
  if (!info.field.empty()) out += " field '" + info.field + "'";
  out += ": " + info.message;
  return out;
}

void sleep_ms(int ms) {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// key=value line scan shared by the small text replies.
template <typename Fn>
void for_each_line_kv(std::string_view payload, Fn fn) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t nl = payload.find('\n', pos);
    const std::string_view line = payload.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? payload.size() : nl + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    fn(line.substr(0, eq), line.substr(eq + 1));
  }
}

}  // namespace

ServeError::ServeError(ErrorInfo info)
    : std::runtime_error(describe(info)), info_(std::move(info)) {}

ServeClient::ServeClient(Socket sock) : sock_(std::move(sock)) {}

ServeClient ServeClient::connect(const std::string& address, int retries,
                                 int retry_delay_ms) {
  for (int attempt = 0;; ++attempt) {
    try {
      ServeClient client{connect_to(address)};
      client.hello();
      return client;
    } catch (const std::runtime_error&) {
      if (attempt >= retries) throw;
      sleep_ms(retry_delay_ms);
    }
  }
}

void ServeClient::send(FrameType t, std::string_view payload) {
  scratch_.clear();
  append_frame(scratch_, t, payload);
  if (sock_.send_all(scratch_.data(), scratch_.size()) !=
      Socket::IoStatus::kOk) {
    throw std::runtime_error("serve client: connection lost while sending");
  }
}

FrameType ServeClient::next_frame() {
  FrameType type{};
  const Socket::IoStatus status =
      read_frame(sock_, /*timeout_ms=*/-1, type, payload_);
  if (status != Socket::IoStatus::kOk) {
    throw std::runtime_error(status == Socket::IoStatus::kEof
                                 ? "serve client: server closed the connection"
                                 : "serve client: connection lost");
  }
  if (type == FrameType::kError) {
    throw ServeError(parse_error(
        std::string_view(reinterpret_cast<const char*>(payload_.data()),
                         payload_.size())));
  }
  return type;
}

void ServeClient::hello() {
  char buf[32];
  const int n =
      std::snprintf(buf, sizeof(buf), "version=%u\n", kProtocolVersion);
  send(FrameType::kHello, std::string_view(buf, n));
  const FrameType t = next_frame();
  if (t != FrameType::kHelloOk) {
    throw std::runtime_error(std::string("serve client: expected hello_ok, "
                                         "got ") +
                             to_string(t));
  }
  for_each_line_kv(
      std::string_view(reinterpret_cast<const char*>(payload_.data()),
                       payload_.size()),
      [&](std::string_view key, std::string_view value) {
        if (key == "tenant") {
          if (const auto id = parse_i64(value)) {
            tenant_id_ = static_cast<std::uint64_t>(*id);
          }
        }
      });
}

void ServeClient::ping() {
  send(FrameType::kPing, std::string_view("ping\n"));
  const FrameType t = next_frame();
  if (t != FrameType::kPong) {
    throw std::runtime_error("serve client: expected pong");
  }
}

ServeClient::UploadReply ServeClient::upload_trace(std::string_view content,
                                                   const std::string& name,
                                                   const ReplayOptions& opts) {
  text_.clear();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "format=%s\nslot_us=%lld\nmin_compute_us=%lld\n"
                "max_compute_us=%lld\ngranularity=%d\nseed=%llu\n"
                "jitter=%.17g\n",
                to_string(opts.format), static_cast<long long>(opts.slot_us),
                static_cast<long long>(opts.min_compute_us),
                static_cast<long long>(opts.max_compute_us), opts.granularity,
                static_cast<unsigned long long>(opts.seed), opts.jitter_frac);
  text_ += buf;
  text_ += "name=" + name + "\n";
  text_ += "\n";  // header/body separator
  text_.append(content.data(), content.size());
  send(FrameType::kTraceUpload, text_);
  const FrameType t = next_frame();
  if (t != FrameType::kTraceOk) {
    throw std::runtime_error("serve client: expected trace_ok");
  }
  UploadReply reply;
  for_each_line_kv(
      std::string_view(reinterpret_cast<const char*>(payload_.data()),
                       payload_.size()),
      [&](std::string_view key, std::string_view value) {
        if (key == "app") {
          reply.app.assign(value.data(), value.size());
        } else if (key == "procs") {
          if (const auto v = parse_i64(value)) reply.procs = static_cast<int>(*v);
        } else if (key == "files") {
          if (const auto v = parse_i64(value)) reply.files = *v;
        } else if (key == "records") {
          if (const auto v = parse_i64(value)) reply.records = *v;
        }
      });
  if (reply.app.empty()) {
    throw ProtocolError("trace_ok reply is missing the app name");
  }
  return reply;
}

void ServeClient::run(const ExperimentConfig& cfg, bool audit, Reply& out) {
  format_run_request(cfg, audit, text_);
  send(FrameType::kRun, text_);
  bool have_result = false;
  out.telemetry_json.clear();
  while (true) {
    const FrameType t = next_frame();
    if (t == FrameType::kResult) {
      deserialize_result(payload_, out.cell, out.result);
      have_result = true;
    } else if (t == FrameType::kTelemetry) {
      out.telemetry_json.assign(
          reinterpret_cast<const char*>(payload_.data()), payload_.size());
    } else if (t == FrameType::kDone) {
      break;
    } else {
      throw std::runtime_error(
          std::string("serve client: unexpected frame in run reply: ") +
          to_string(t));
    }
  }
  if (!have_result) {
    throw ProtocolError("run reply finished without a result frame");
  }
}

ServeClient::Reply ServeClient::run(const ExperimentConfig& cfg, bool audit) {
  Reply out;
  run(cfg, audit, out);
  return out;
}

std::size_t ServeClient::run_grid(
    const ExperimentGrid& grid, bool audit,
    const std::function<void(const Reply&)>& on_cell) {
  format_grid_request(grid, audit, text_);
  send(FrameType::kGrid, text_);
  Reply reply;
  std::size_t cells = 0;
  std::size_t announced = 0;
  while (true) {
    const FrameType t = next_frame();
    if (t == FrameType::kResult) {
      reply.telemetry_json.clear();
      deserialize_result(payload_, reply.cell, reply.result);
      ++cells;
      if (on_cell) on_cell(reply);
    } else if (t == FrameType::kDone) {
      for_each_line_kv(
          std::string_view(reinterpret_cast<const char*>(payload_.data()),
                           payload_.size()),
          [&](std::string_view key, std::string_view value) {
            if (key == "cells") {
              if (const auto v = parse_i64(value)) {
                announced = static_cast<std::size_t>(*v);
              }
            }
          });
      break;
    } else {
      throw std::runtime_error(
          std::string("serve client: unexpected frame in grid reply: ") +
          to_string(t));
    }
  }
  if (announced != cells) {
    throw ProtocolError("grid reply cell count mismatch");
  }
  return cells;
}

void ServeClient::shutdown_server() {
  send(FrameType::kShutdown, std::string_view("shutdown\n"));
  // Best-effort: the daemon replies kDone before draining, but a racing
  // close is not an error worth surfacing to a caller that asked for exit.
  try {
    (void)next_frame();
  } catch (const std::runtime_error&) {
  }
}

}  // namespace dasched::serve
