// An I/O node: storage cache + RAID layout + attached disks + power policy.
//
// The node serves node-local byte-range reads and writes.  Reads consult the
// storage cache first (hits never reach the disks, which is what lets larger
// caches erode the scheme's benefit, Sec. V-D); misses fan out through the
// RAID layout to per-disk requests and trigger sequential prefetch.  Writes
// are write-through.  A power policy instance is attached to every disk; the
// paper spins all disks of a node up/down together, which emerges naturally
// here because all of a node's disks see the same request stream envelope.
#pragma once

#include <memory>
#include <vector>

#include "disk/disk.h"
#include "power/policies.h"
#include "sim/simulator.h"
#include "storage/join_pool.h"
#include "storage/raid.h"
#include "storage/storage_cache.h"
#include "util/annotations.h"
#include "util/observer_list.h"
#include "util/units.h"

namespace dasched {

struct IoNodeConfig {
  int num_disks = 1;
  RaidLevel raid = RaidLevel::kRaid0;
  /// Per-disk striping unit inside the node; defaults to the stripe size.
  Bytes chunk_size = kib(64);
  Bytes cache_capacity = mib(64);
  Bytes cache_block_size = kib(64);
  int prefetch_depth = 1;
  /// Service latency of a cache hit (no disk involved).
  SimTime cache_hit_latency = usec(50);
  DiskParams disk;
  PolicyKind policy = PolicyKind::kNone;
  PolicyConfig policy_cfg;
};

class IoNode;
struct IoNodeStats;

/// Passive tap on an I/O node, used by the invariant auditor (src/check)
/// and the telemetry recorder (src/telemetry).  All callbacks default to
/// no-ops; with nothing attached each hook site costs one empty list test,
/// so the hooks stay in release builds.  Multiple observers may be attached
/// at once (audit + telemetry compose).
class IoNodeObserver {
 public:
  virtual ~IoNodeObserver() = default;

  /// A node-local read arrived (before any cache lookups).
  virtual void on_read(const IoNode& node, Bytes offset, Bytes size,
                       bool background) {
    (void)node, (void)offset, (void)size, (void)background;
  }

  /// A node-local write arrived.
  virtual void on_write(const IoNode& node, Bytes offset, Bytes size) {
    (void)node, (void)offset, (void)size;
  }

  /// A demand block lookup hit or missed the storage cache.
  virtual void on_block_lookup(const IoNode& node, Bytes block, bool hit) {
    (void)node, (void)block, (void)hit;
  }

  /// A sequential prefetch for `block` was issued after a miss.
  virtual void on_prefetch_issued(const IoNode& node, Bytes block) {
    (void)node, (void)block;
  }

  /// `count` per-disk operations were handed to the attached disks.
  virtual void on_disk_ops_issued(const IoNode& node, std::size_t count) {
    (void)node, (void)count;
  }

  /// `finalize()` ran; `stats` is the aggregate about to be returned.
  virtual void on_finalized(const IoNode& node, const IoNodeStats& stats) {
    (void)node, (void)stats;
  }
};

struct IoNodeStats {
  Joules energy_j{};
  std::int64_t requests = 0;
  std::int64_t disk_requests = 0;
  std::int64_t spin_downs = 0;
  std::int64_t spin_ups = 0;
  std::int64_t rpm_changes = 0;
  CacheStats cache;
  DurationHistogram idle_periods;
};

class IoNode {
 public:
  IoNode(Simulator& sim, IoNodeConfig cfg, int node_id, std::uint64_t seed);

  IoNode(const IoNode&) = delete;
  IoNode& operator=(const IoNode&) = delete;

  /// Node-local read; `done` fires when every block of the range is
  /// available (cache hit or disk completion).  Background reads (runtime
  /// prefetches) yield to demand traffic at the disks.
  DASCHED_HOT void read(Bytes offset, Bytes size, EventFn done, bool background = false);

  /// Node-local write: the cache absorbs it (ack-early) and the disk writes
  /// drain in the background; `done` fires after the cache latency.
  DASCHED_HOT void write(Bytes offset, Bytes size, EventFn done);

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.  Legacy single-consumer entry point; see `add_observer`.
  void set_observer(IoNodeObserver* observer) { observers_.reset(observer); }
  /// Adds one observer to the multiplexing list (audit and telemetry attach
  /// side by side).  Not owned; duplicates and null are ignored.
  void add_observer(IoNodeObserver* observer) { observers_.add(observer); }
  void remove_observer(IoNodeObserver* observer) { observers_.remove(observer); }

  [[nodiscard]] int node_id() const { return node_id_; }
  [[nodiscard]] int num_disks() const { return static_cast<int>(disks_.size()); }
  [[nodiscard]] Disk& disk(int i) { return *disks_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Disk& disk(int i) const {
    return *disks_[static_cast<std::size_t>(i)];
  }
  /// Power policy attached to disk `i`; nullptr for PolicyKind::kNone.
  [[nodiscard]] PowerPolicy* policy(int i) {
    return policies_[static_cast<std::size_t>(i)].get();
  }
  [[nodiscard]] StorageCache& cache() { return cache_; }
  [[nodiscard]] const StorageCache& cache() const { return cache_; }
  [[nodiscard]] const IoNodeConfig& config() const { return cfg_; }

  /// Accrues trailing energy on all disks and aggregates statistics.
  IoNodeStats finalize();

  /// `finalize()` into caller-owned storage: `out`'s histogram keeps its
  /// bucket allocation, so repeated finalizes through a workspace allocate
  /// nothing.
  void finalize_into(IoNodeStats& out);

  /// Restores the node for a new run under (possibly changed) `cfg`.  The
  /// same-shape parts reset in place without allocating — cache (same
  /// geometry), RAID mapping (mirror toggle rewound), disks (same count),
  /// policies (same kind + tuning); a genuine shape change (disk count,
  /// cache geometry, policy kind/tuning) rebuilds just the changed
  /// component.  Must run after the owning simulator's reset.  Observers
  /// are not touched; the driver re-installs them per run.
  void reset(const IoNodeConfig& cfg, std::uint64_t seed);

 private:
  /// Expands [offset, offset+size) through the RAID layout into
  /// `scratch_ops_` (reused across requests; never reallocated in steady
  /// state).
  void fill_scratch_ops(Bytes offset, Bytes size, bool is_write);
  /// Submits `scratch_ops_` to the disks.  A valid `join` gets one arrival
  /// registered per op; an invalid one makes the ops fire-and-forget.
  void issue_disk_ops(JoinId join, bool background = false);
  void prefetch_after_miss(Bytes block_offset);

  Simulator& sim_;
  IoNodeConfig cfg_;
  int node_id_;
  ObserverList<IoNodeObserver> observers_;
  StorageCache cache_;
  RaidLayout raid_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<PowerPolicy>> policies_;
  JoinPool join_pool_;
  std::vector<DiskOp> scratch_ops_;
};

}  // namespace dasched
