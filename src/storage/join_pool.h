// Pooled completion barriers for the storage data path.
//
// A join fires its completion once every registered sub-operation (plus the
// issuer's guard) has arrived.  The records live in a recycled slot array
// mirroring the simulator's event pool: steady-state request fan-out costs
// zero heap allocations, and the 8-byte generation-counted `JoinId` rides
// inline inside `EventFn` captures where a `shared_ptr<Join>` used to force
// a control block per request.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/event_fn.h"

namespace dasched {

/// Generation-counted handle into a `JoinPool`.  Trivially copyable; a
/// default-constructed id is invalid (used for fire-and-forget operations).
struct JoinId {
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  static constexpr std::uint32_t kInvalidSlot = 0xffffffffU;

  [[nodiscard]] explicit operator bool() const { return slot != kInvalidSlot; }
};

class JoinPool {
 public:
  JoinPool() = default;
  JoinPool(const JoinPool&) = delete;
  JoinPool& operator=(const JoinPool&) = delete;

  /// Opens a join holding `done` with the issuer's guard as the only
  /// outstanding arrival.  Balance with a final `arrive` once all
  /// sub-operations are registered.
  JoinId open(EventFn done) {
    const std::uint32_t slot = acquire_slot();
    Record& rec = records_[slot];
    rec.done = std::move(done);
    rec.outstanding = 1;
    return JoinId{slot, rec.gen};
  }

  /// Registers one more arrival the join must wait for.
  void add(JoinId id) {
    Record& rec = live(id);
    rec.outstanding += 1;
  }

  /// One arrival happened; at zero outstanding the completion fires and the
  /// record is recycled (before the callback runs — it may re-enter the
  /// pool).
  void arrive(JoinId id) {
    Record& rec = live(id);
    if (--rec.outstanding > 0) return;
    EventFn done = std::move(rec.done);
    rec.done = EventFn();
    ++rec.gen;
    // dasched-lint: allow(hot-alloc): free-list capacity is bounded by the
    // pool high-water mark.
    free_slots_.push_back(id.slot);
    if (done) done();
  }

  /// Joins currently open (test/debug aid).
  [[nodiscard]] std::size_t live_count() const {
    return records_.size() - free_slots_.size();
  }

  /// Restores the fresh-pool state while keeping slot capacity: drops any
  /// joins left open by an interrupted run, bumps every generation so stale
  /// JoinIds captured in cancelled events can never alias a new join, and
  /// rebuilds the free list in descending order — the next run then acquires
  /// slot 0, 1, ... exactly like a freshly grown pool.
  void reset() {
    free_slots_.clear();
    for (std::size_t i = records_.size(); i-- > 0;) {
      Record& rec = records_[i];
      rec.done = EventFn();
      rec.outstanding = 0;
      ++rec.gen;
      // dasched-lint: allow(hot-alloc): free-list capacity matches the pool
      // high-water mark after the first full drain.
      free_slots_.push_back(static_cast<std::uint32_t>(i));
    }
  }

 private:
  struct Record {
    EventFn done;
    int outstanding = 0;
    std::uint32_t gen = 0;
  };

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    // dasched-lint: allow(hot-alloc): join-pool growth; slots recycle, so
    // steady state allocates nothing.
    records_.emplace_back();
    return static_cast<std::uint32_t>(records_.size() - 1);
  }

  Record& live(JoinId id) {
    assert(id && id.slot < records_.size());
    Record& rec = records_[id.slot];
    assert(rec.gen == id.gen && "stale JoinId");
    return rec;
  }

  std::vector<Record> records_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace dasched
