// File striping across I/O nodes (Fig. 1).
//
// The parallel file system divides every file into fixed-size stripes and
// distributes them round-robin over the I/O nodes, each file starting at a
// per-file base node.  `StripingMap` is a pure mapping shared by the
// compiler (to build access signatures) and the storage system (to route
// requests); it also hands out deterministic node-local disk offsets through
// a per-node bump allocator.  The router walks accesses with the zero-
// allocation `for_each_piece` visitor; the vector-returning `map` exists for
// tests and audit tooling.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/signature.h"
#include "util/units.h"

namespace dasched {

using FileId = int;

struct StripePiece {
  int io_node = 0;
  /// Node-local byte offset assigned to this stripe.
  Bytes node_offset = 0;
  /// Byte range of the original request covered by this piece.
  Bytes length = 0;
};

class StripingMap {
 public:
  StripingMap(int num_io_nodes, Bytes stripe_size);

  /// Registers a file; stripes are assigned node-local space immediately.
  FileId create_file(std::string name, Bytes size);

  /// Forgets every file and returns all node-local space, keeping the
  /// geometry (node count, stripe size).  File creation is deterministic,
  /// so re-registering the same files after a reset reproduces the exact
  /// same mapping as a fresh construction.  Only called on a workload
  /// change (never on the zero-allocation reuse path).
  void reset() {
    files_.clear();
    std::fill(next_free_.begin(), next_free_.end(), Bytes{0});
  }

  [[nodiscard]] int num_io_nodes() const { return num_nodes_; }
  [[nodiscard]] Bytes stripe_size() const { return stripe_size_; }
  [[nodiscard]] int num_files() const { return static_cast<int>(files_.size()); }
  [[nodiscard]] const std::string& file_name(FileId f) const;
  [[nodiscard]] Bytes file_size(FileId f) const;

  /// I/O node holding stripe `index` of file `f`.
  [[nodiscard]] int node_of_stripe(FileId f, std::int64_t index) const;

  /// Visits the per-stripe pieces of a byte-range access in file order,
  /// without materializing them.  The range must lie inside the file.
  template <typename Visitor>
  void for_each_piece(FileId f, Bytes offset, Bytes size, Visitor&& visit) const {
    const FileInfo& fi = info(f);
    assert(offset >= 0 && size > 0 && offset + size <= fi.size);
    Bytes pos = offset;
    const Bytes end = offset + size;
    while (pos < end) {
      const std::int64_t stripe = pos / stripe_size_;
      const Bytes in_stripe = pos % stripe_size_;
      const Bytes piece = std::min(end - pos, stripe_size_ - in_stripe);
      const int node = node_of_stripe(f, stripe);
      // Stripe k of this file is the (k / num_nodes)-th of the file's
      // stripes on its node (round-robin places exactly one stripe per node
      // per round).
      const Bytes local = fi.node_base[static_cast<std::size_t>(node)] +
                          (stripe / num_nodes_) * stripe_size_ + in_stripe;
      visit(StripePiece{node, local, piece});
      pos += piece;
    }
  }

  /// Materialized form of `for_each_piece` for tests and audit tooling; the
  /// request router never calls it.
  [[nodiscard]] std::vector<StripePiece> map(FileId f, Bytes offset,
                                             Bytes size) const;

  /// Signature of the I/O nodes a byte-range access touches — the quantity
  /// the compiler attaches to every access record.
  [[nodiscard]] Signature signature(FileId f, Bytes offset, Bytes size) const;

  /// Total node-local bytes allocated on one I/O node (for capacity checks).
  [[nodiscard]] Bytes allocated_on(int node) const;

 private:
  struct FileInfo {
    std::string name;
    Bytes size = 0;
    int base_node = 0;
    /// Node-local byte offset of this file's first stripe on each node.
    std::vector<Bytes> node_base;
  };

  [[nodiscard]] const FileInfo& info(FileId f) const;

  int num_nodes_;
  Bytes stripe_size_;
  std::vector<FileInfo> files_;
  std::vector<Bytes> next_free_;  // per-node bump allocator
};

}  // namespace dasched
