// The cluster storage system: striped files over a set of I/O nodes.
//
// Client-side layers issue file-relative reads and writes; the system maps
// them through the striping layer onto per-node pieces, charges a network
// hop each way, and joins the per-node completions.  This is the simulation
// stand-in for PVFS + the I/O node hardware.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/sharded_sim.h"
#include "sim/simulator.h"
#include "storage/io_node.h"
#include "storage/striping.h"
#include "util/annotations.h"
#include "util/observer_list.h"
#include "util/units.h"

namespace dasched {

struct StorageConfig {
  int num_io_nodes = 8;
  Bytes stripe_size = kib(64);
  IoNodeConfig node;
  /// One-way client <-> I/O node latency.
  SimTime network_latency = usec(200);
  /// Network bandwidth applied to the data transfer of each piece.
  double network_mb_per_sec = 1'000.0;
  std::uint64_t seed = 7;

  /// Table II defaults.
  [[nodiscard]] static StorageConfig paper_defaults() { return StorageConfig{}; }
};

/// Passive tap on client-level request routing, used by the invariant
/// auditor (src/check) to re-check the stripe math on every access and by
/// the telemetry recorder (src/telemetry) to log request routing.  Multiple
/// observers may be attached at once (audit + telemetry compose).
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;

  /// A client request was split into `pieces` (in file order) and dispatched.
  /// The span aliases the router's scratch buffer and is valid only for the
  /// duration of the call.
  virtual void on_request_routed(FileId f, Bytes offset, Bytes size,
                                 bool is_write,
                                 std::span<const StripePiece> pieces) {
    (void)f, (void)offset, (void)size, (void)is_write, (void)pieces;
  }
};

struct StorageStats {
  Joules energy_j{};
  std::int64_t requests = 0;
  std::int64_t disk_requests = 0;
  std::int64_t spin_downs = 0;
  std::int64_t spin_ups = 0;
  std::int64_t rpm_changes = 0;
  double cache_hit_rate = 0.0;
  DurationHistogram idle_periods;
  std::vector<IoNodeStats> per_node;
};

class StorageSystem {
 public:
  StorageSystem(Simulator& sim, StorageConfig cfg);

  /// Sharded construction: client-side routing lives on lane 0, I/O node i
  /// (with its disks and policies) on lane 1+i, and the network hops cross
  /// lanes through the sharded simulator's mailboxes.  `sharded` must have
  /// `1 + num_io_nodes` streams.
  StorageSystem(ShardedSimulator& sharded, StorageConfig cfg);

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  FileId create_file(std::string name, Bytes size) {
    return striping_.create_file(std::move(name), size);
  }

  /// File-relative read; `done` fires when every stripe piece has been
  /// served and the response has crossed the network back.  Background
  /// reads (runtime prefetches) yield to demand traffic at the disks.
  DASCHED_HOT void read(FileId f, Bytes offset, Bytes size, EventFn done,
            bool background = false);

  /// File-relative write-through.
  DASCHED_HOT void write(FileId f, Bytes offset, Bytes size, EventFn done);

  /// I/O-node signature of an access — shared with the compiler.
  [[nodiscard]] Signature signature(FileId f, Bytes offset, Bytes size) const {
    return striping_.signature(f, offset, size);
  }

  [[nodiscard]] const StripingMap& striping() const { return striping_; }
  /// Mutable access for workload builders that register files directly.
  [[nodiscard]] StripingMap& striping() { return striping_; }
  [[nodiscard]] const StorageConfig& config() const { return cfg_; }
  [[nodiscard]] int num_io_nodes() const { return cfg_.num_io_nodes; }
  [[nodiscard]] IoNode& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.  Legacy single-consumer entry point; see `add_observer`.
  void set_observer(StorageObserver* observer) { observers_.reset(observer); }
  /// Adds one observer to the multiplexing list (audit and telemetry attach
  /// side by side).  Not owned; duplicates and null are ignored.
  void add_observer(StorageObserver* observer) { observers_.add(observer); }
  void remove_observer(StorageObserver* observer) {
    observers_.remove(observer);
  }

  /// Finalizes all nodes and aggregates system-wide statistics.
  StorageStats finalize();

  /// `finalize()` into caller-owned storage: the per-node vector and every
  /// histogram keep their allocations, so repeated finalizes through a
  /// workspace allocate nothing after the first.
  void finalize_into(StorageStats& out);

  /// Restores the system for a new run under (possibly changed) `cfg`.
  /// Same-shape parts reset in place without allocating; a node-count or
  /// stripe-size change rebuilds the affected component.  The striping map
  /// (and its registered files) is deliberately left alone when its geometry
  /// is unchanged — the driver owns the decision to rebuild the workload
  /// (see StripingMap::reset).  Must run after the owning simulator's reset.
  /// Observers are not touched; the driver re-installs them per run.
  void reset(const StorageConfig& cfg);

 private:
  void build_nodes();
  void route(FileId f, Bytes offset, Bytes size, bool is_write,
             bool background, EventFn done);

  Simulator& sim_;  // the client-side lane (lane 0 when sharded)
  ShardedSimulator* sharded_ = nullptr;  // null on the classic serial path
  StorageConfig cfg_;
  StripingMap striping_;
  ObserverList<StorageObserver> observers_;
  std::vector<std::unique_ptr<IoNode>> nodes_;
  JoinPool join_pool_;
  std::vector<StripePiece> scratch_pieces_;  // reused by route()
};

}  // namespace dasched
