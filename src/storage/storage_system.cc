#include "storage/storage_system.h"

#include <cassert>

#include "util/rng.h"

namespace dasched {

StorageSystem::StorageSystem(Simulator& sim, StorageConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      striping_(cfg.num_io_nodes, cfg.stripe_size) {
  build_nodes();
}

StorageSystem::StorageSystem(ShardedSimulator& sharded, StorageConfig cfg)
    : sim_(sharded.lane(0)),
      sharded_(&sharded),
      cfg_(cfg),
      striping_(cfg.num_io_nodes, cfg.stripe_size) {
  assert(sharded.num_streams() >= 1 + cfg_.num_io_nodes &&
         "sharded simulator needs one lane per I/O node plus the client lane");
  build_nodes();
}

void StorageSystem::build_nodes() {
  // Multi-speed hardware is implied by the chosen policy.
  cfg_.node.disk.multi_speed = needs_multi_speed(cfg_.node.policy);
  cfg_.node.chunk_size = cfg_.stripe_size;
  cfg_.node.cache_block_size = cfg_.stripe_size;
  for (int i = 0; i < cfg_.num_io_nodes; ++i) {
    Simulator& node_sim = sharded_ == nullptr ? sim_ : sharded_->lane(1 + i);
    nodes_.push_back(std::make_unique<IoNode>(
        node_sim, cfg_.node, i,
        derive_seed(cfg_.seed, static_cast<std::uint64_t>(i))));
  }
}

void StorageSystem::route(FileId f, Bytes offset, Bytes size, bool is_write,
                          bool background, EventFn done) {
  const JoinId join = join_pool_.open(std::move(done));

  scratch_pieces_.clear();
  striping_.for_each_piece(f, offset, size, [this](const StripePiece& piece) {
    // dasched-lint: allow(hot-alloc): scratch vector retains capacity
    // across requests.
    scratch_pieces_.push_back(piece);
  });
  observers_.notify([&](StorageObserver* o) {
    o->on_request_routed(f, offset, size, is_write,
                         std::span<const StripePiece>(scratch_pieces_));
  });
  for (const StripePiece& piece : scratch_pieces_) {
    join_pool_.add(join);
    const SimTime wire =
        cfg_.network_latency +
        static_cast<SimTime>(static_cast<double>(piece.length) /
                             (cfg_.network_mb_per_sec * 1e6) *
                             static_cast<double>(kUsecPerSec));
    IoNode* node = nodes_[static_cast<std::size_t>(piece.io_node)].get();
    // The request hop runs on the node's lane; the response hop back to the
    // client (and the join arrival, which touches client-lane state only)
    // crosses back through the mailboxes.  On the classic path both hops are
    // plain local schedules.  All captures stay within EventFn's inline
    // buffer.
    EventFn deliver = [this, node, piece, is_write, background, join] {
      auto respond = [this, join, stream = 1 + piece.io_node] {
        if (sharded_ == nullptr) {
          sim_.schedule_after(cfg_.network_latency,
                              [this, join] { join_pool_.arrive(join); });
        } else {
          const SimTime t = sharded_->lane(stream).now() + cfg_.network_latency;
          sharded_->post(stream, 0, t,
                         [this, join] { join_pool_.arrive(join); });
        }
      };
      if (is_write) {
        node->write(piece.node_offset, piece.length, respond);
      } else {
        node->read(piece.node_offset, piece.length, respond, background);
      }
    };
    if (sharded_ == nullptr) {
      sim_.schedule_after(wire, std::move(deliver));
    } else {
      sharded_->post(0, 1 + piece.io_node, sim_.now() + wire,
                     std::move(deliver));
    }
  }
  join_pool_.arrive(join);
}

void StorageSystem::read(FileId f, Bytes offset, Bytes size, EventFn done,
                         bool background) {
  route(f, offset, size, /*is_write=*/false, background, std::move(done));
}

void StorageSystem::write(FileId f, Bytes offset, Bytes size, EventFn done) {
  route(f, offset, size, /*is_write=*/true, /*background=*/false,
        std::move(done));
}

StorageStats StorageSystem::finalize() {
  StorageStats out;
  std::int64_t hits = 0;
  std::int64_t lookups = 0;
  for (auto& n : nodes_) {
    IoNodeStats s = n->finalize();
    out.energy_j += s.energy_j;
    out.requests += s.requests;
    out.disk_requests += s.disk_requests;
    out.spin_downs += s.spin_downs;
    out.spin_ups += s.spin_ups;
    out.rpm_changes += s.rpm_changes;
    out.idle_periods.merge(s.idle_periods);
    hits += s.cache.hits;
    lookups += s.cache.hits + s.cache.misses;
    out.per_node.push_back(std::move(s));
  }
  out.cache_hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  return out;
}

}  // namespace dasched
