#include "storage/storage_system.h"

#include <cassert>

#include "util/rng.h"

namespace dasched {

StorageSystem::StorageSystem(Simulator& sim, StorageConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      striping_(cfg.num_io_nodes, cfg.stripe_size) {
  build_nodes();
}

StorageSystem::StorageSystem(ShardedSimulator& sharded, StorageConfig cfg)
    : sim_(sharded.lane(0)),
      sharded_(&sharded),
      cfg_(cfg),
      striping_(cfg.num_io_nodes, cfg.stripe_size) {
  assert(sharded.num_streams() >= 1 + cfg_.num_io_nodes &&
         "sharded simulator needs one lane per I/O node plus the client lane");
  build_nodes();
}

void StorageSystem::build_nodes() {
  // Multi-speed hardware is implied by the chosen policy.
  cfg_.node.disk.multi_speed = needs_multi_speed(cfg_.node.policy);
  cfg_.node.chunk_size = cfg_.stripe_size;
  cfg_.node.cache_block_size = cfg_.stripe_size;
  for (int i = 0; i < cfg_.num_io_nodes; ++i) {
    Simulator& node_sim = sharded_ == nullptr ? sim_ : sharded_->lane(1 + i);
    nodes_.push_back(std::make_unique<IoNode>(
        node_sim, cfg_.node, i,
        derive_seed(cfg_.seed, static_cast<std::uint64_t>(i))));
  }
}

void StorageSystem::route(FileId f, Bytes offset, Bytes size, bool is_write,
                          bool background, EventFn done) {
  const JoinId join = join_pool_.open(std::move(done));

  scratch_pieces_.clear();
  striping_.for_each_piece(f, offset, size, [this](const StripePiece& piece) {
    // dasched-lint: allow(hot-alloc): scratch vector retains capacity
    // across requests.
    scratch_pieces_.push_back(piece);
  });
  observers_.notify([&](StorageObserver* o) {
    o->on_request_routed(f, offset, size, is_write,
                         std::span<const StripePiece>(scratch_pieces_));
  });
  for (const StripePiece& piece : scratch_pieces_) {
    join_pool_.add(join);
    const SimTime wire =
        cfg_.network_latency +
        static_cast<SimTime>(static_cast<double>(piece.length) /
                             (cfg_.network_mb_per_sec * 1e6) *
                             static_cast<double>(kUsecPerSec));
    IoNode* node = nodes_[static_cast<std::size_t>(piece.io_node)].get();
    // The request hop runs on the node's lane; the response hop back to the
    // client (and the join arrival, which touches client-lane state only)
    // crosses back through the mailboxes.  On the classic path both hops are
    // plain local schedules.  All captures stay within EventFn's inline
    // buffer.
    EventFn deliver = [this, node, piece, is_write, background, join] {
      auto respond = [this, join, stream = 1 + piece.io_node] {
        if (sharded_ == nullptr) {
          sim_.schedule_after(cfg_.network_latency,
                              [this, join] { join_pool_.arrive(join); });
        } else {
          const SimTime t = sharded_->lane(stream).now() + cfg_.network_latency;
          sharded_->post(stream, 0, t,
                         [this, join] { join_pool_.arrive(join); });
        }
      };
      if (is_write) {
        node->write(piece.node_offset, piece.length, respond);
      } else {
        node->read(piece.node_offset, piece.length, respond, background);
      }
    };
    if (sharded_ == nullptr) {
      sim_.schedule_after(wire, std::move(deliver));
    } else {
      sharded_->post(0, 1 + piece.io_node, sim_.now() + wire,
                     std::move(deliver));
    }
  }
  join_pool_.arrive(join);
}

void StorageSystem::read(FileId f, Bytes offset, Bytes size, EventFn done,
                         bool background) {
  route(f, offset, size, /*is_write=*/false, background, std::move(done));
}

void StorageSystem::write(FileId f, Bytes offset, Bytes size, EventFn done) {
  route(f, offset, size, /*is_write=*/true, /*background=*/false,
        std::move(done));
}

StorageStats StorageSystem::finalize() {
  StorageStats out;
  finalize_into(out);
  return out;
}

void StorageSystem::finalize_into(StorageStats& out) {
  out.energy_j = Joules{};
  out.requests = 0;
  out.disk_requests = 0;
  out.spin_downs = 0;
  out.spin_ups = 0;
  out.rpm_changes = 0;
  out.cache_hit_rate = 0.0;
  out.idle_periods.clear();
  // Grows once on first use (or on a node-count increase), then reuses the
  // per-node slots and their histogram buckets forever after.
  if (out.per_node.size() != nodes_.size()) out.per_node.resize(nodes_.size());
  std::int64_t hits = 0;
  std::int64_t lookups = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    IoNodeStats& s = out.per_node[i];
    nodes_[i]->finalize_into(s);
    out.energy_j += s.energy_j;
    out.requests += s.requests;
    out.disk_requests += s.disk_requests;
    out.spin_downs += s.spin_downs;
    out.spin_ups += s.spin_ups;
    out.rpm_changes += s.rpm_changes;
    out.idle_periods.merge(s.idle_periods);
    hits += s.cache.hits;
    lookups += s.cache.hits + s.cache.misses;
  }
  out.cache_hit_rate =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
}

void StorageSystem::reset(const StorageConfig& cfg) {
  const bool striping_same = cfg.num_io_nodes == cfg_.num_io_nodes &&
                             cfg.stripe_size == cfg_.stripe_size;
  const bool nodes_same = cfg.num_io_nodes == static_cast<int>(nodes_.size());
  cfg_ = cfg;
  if (!striping_same) {
    striping_ = StripingMap(cfg_.num_io_nodes, cfg_.stripe_size);
  }
  join_pool_.reset();
  if (!nodes_same) {
    nodes_.clear();
    build_nodes();
    return;
  }
  // build_nodes() derives these from the policy/stripe choice; the in-place
  // path must apply the same normalization before handing cfg_.node down.
  cfg_.node.disk.multi_speed = needs_multi_speed(cfg_.node.policy);
  cfg_.node.chunk_size = cfg_.stripe_size;
  cfg_.node.cache_block_size = cfg_.stripe_size;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->reset(cfg_.node,
                     derive_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  }
}

}  // namespace dasched
