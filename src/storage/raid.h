// RAID layout inside an I/O node (Table II: "RAID Level 5, 10").
//
// An I/O node further stripes its node-local blocks across the disks
// attached to it.  `RaidLayout` converts a node-local chunk operation into
// the per-disk operations it implies:
//   * RAID 0  — plain striping, one disk op per chunk.
//   * RAID 10 — striped mirrors: writes hit both mirrors, reads alternate.
//   * RAID 5  — rotating parity: reads hit the data disk; writes hit the
//     data disk plus the row's parity disk (read-modify-write collapsed to
//     the two writes, the standard simulation shortcut).
//
// The hot path visits ops with `for_each_op` (each chunk expands into at
// most two ops, held in an `InlineVec` on the stack); the vector-returning
// `map` exists for tests.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/inline_vec.h"
#include "util/units.h"

namespace dasched {

enum class RaidLevel { kRaid0, kRaid5, kRaid10 };

[[nodiscard]] const char* to_string(RaidLevel level);

struct DiskOp {
  int disk = 0;
  Bytes offset = 0;
  Bytes size = 0;
  bool is_write = false;
};

class RaidLayout {
 public:
  /// Every chunk expands into at most this many per-disk ops (RAID 10
  /// mirror writes / RAID 5 data + parity).
  using ChunkOps = InlineVec<DiskOp, 2>;

  /// `chunk_size` is the per-disk striping unit inside the node.
  RaidLayout(RaidLevel level, int num_disks, Bytes chunk_size);

  /// Visits the per-disk operations implementing a node-local read or write
  /// of [offset, offset+size), in chunk order.  Deterministic; mirror reads
  /// alternate via an internal counter.
  template <typename Visitor>
  void for_each_op(Bytes offset, Bytes size, bool is_write, Visitor&& visit) {
    assert(offset >= 0 && size > 0);
    Bytes pos = offset;
    const Bytes end = offset + size;
    while (pos < end) {
      const std::int64_t chunk = pos / chunk_size_;
      const Bytes in_chunk = pos % chunk_size_;
      const Bytes len = std::min(end - pos, chunk_size_ - in_chunk);
      ChunkOps ops;
      map_chunk(chunk, in_chunk, len, is_write, ops);
      for (const DiskOp& op : ops) visit(op);
      pos += len;
    }
  }

  /// Materialized form of `for_each_op` for tests; the I/O node never calls
  /// it.
  [[nodiscard]] std::vector<DiskOp> map(Bytes offset, Bytes size, bool is_write);

  [[nodiscard]] RaidLevel level() const { return level_; }
  [[nodiscard]] int num_disks() const { return num_disks_; }

  /// Usable fraction of raw capacity (1 for RAID 0, (n-1)/n for RAID 5,
  /// 1/2 for RAID 10).
  [[nodiscard]] double capacity_factor() const;

 private:
  void map_chunk(std::int64_t chunk, Bytes in_chunk, Bytes len, bool is_write,
                 ChunkOps& out);

  RaidLevel level_;
  int num_disks_;
  Bytes chunk_size_;
  std::uint64_t mirror_toggle_ = 0;
};

}  // namespace dasched
