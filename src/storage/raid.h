// RAID layout inside an I/O node (Table II: "RAID Level 5, 10").
//
// An I/O node further stripes its node-local blocks across the disks
// attached to it.  `RaidLayout` converts a node-local chunk operation into
// the per-disk operations it implies:
//   * RAID 0  — plain striping, one disk op per chunk.
//   * RAID 10 — striped mirrors: writes hit both mirrors, reads alternate.
//   * RAID 5  — rotating parity: reads hit the data disk; writes hit the
//     data disk plus the row's parity disk (read-modify-write collapsed to
//     the two writes, the standard simulation shortcut).
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace dasched {

enum class RaidLevel { kRaid0, kRaid5, kRaid10 };

[[nodiscard]] const char* to_string(RaidLevel level);

struct DiskOp {
  int disk = 0;
  Bytes offset = 0;
  Bytes size = 0;
  bool is_write = false;
};

class RaidLayout {
 public:
  /// `chunk_size` is the per-disk striping unit inside the node.
  RaidLayout(RaidLevel level, int num_disks, Bytes chunk_size);

  /// Per-disk operations implementing a node-local read or write of
  /// [offset, offset+size).  Deterministic; mirror reads alternate via an
  /// internal counter.
  [[nodiscard]] std::vector<DiskOp> map(Bytes offset, Bytes size, bool is_write);

  [[nodiscard]] RaidLevel level() const { return level_; }
  [[nodiscard]] int num_disks() const { return num_disks_; }

  /// Usable fraction of raw capacity (1 for RAID 0, (n-1)/n for RAID 5,
  /// 1/2 for RAID 10).
  [[nodiscard]] double capacity_factor() const;

 private:
  void map_chunk(std::int64_t chunk, Bytes in_chunk, Bytes len, bool is_write,
                 std::vector<DiskOp>& out);

  RaidLevel level_;
  int num_disks_;
  Bytes chunk_size_;
  std::uint64_t mirror_toggle_ = 0;
};

}  // namespace dasched
