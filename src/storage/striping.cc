#include "storage/striping.h"

#include <cassert>

namespace dasched {

StripingMap::StripingMap(int num_io_nodes, Bytes stripe_size)
    : num_nodes_(num_io_nodes),
      stripe_size_(stripe_size),
      next_free_(static_cast<std::size_t>(num_io_nodes), 0) {
  assert(num_io_nodes > 0 && stripe_size > 0);
}

FileId StripingMap::create_file(std::string name, Bytes size) {
  assert(size > 0);
  FileInfo fi;
  fi.name = std::move(name);
  fi.size = size;
  fi.base_node = static_cast<int>(files_.size()) % num_nodes_;
  fi.node_base.assign(static_cast<std::size_t>(num_nodes_), 0);

  const std::int64_t num_stripes = (size + stripe_size_ - 1) / stripe_size_;
  for (int d = 0; d < num_nodes_; ++d) {
    // Count of this file's stripes living on node d.
    const int first = ((d - fi.base_node) % num_nodes_ + num_nodes_) % num_nodes_;
    const std::int64_t count =
        first >= num_stripes ? 0 : (num_stripes - first + num_nodes_ - 1) / num_nodes_;
    fi.node_base[static_cast<std::size_t>(d)] = next_free_[static_cast<std::size_t>(d)];
    next_free_[static_cast<std::size_t>(d)] += count * stripe_size_;
  }
  files_.push_back(std::move(fi));
  return static_cast<FileId>(files_.size() - 1);
}

const StripingMap::FileInfo& StripingMap::info(FileId f) const {
  assert(f >= 0 && static_cast<std::size_t>(f) < files_.size());
  return files_[static_cast<std::size_t>(f)];
}

const std::string& StripingMap::file_name(FileId f) const { return info(f).name; }

Bytes StripingMap::file_size(FileId f) const { return info(f).size; }

int StripingMap::node_of_stripe(FileId f, std::int64_t index) const {
  return (info(f).base_node + static_cast<int>(index % num_nodes_)) % num_nodes_;
}

std::vector<StripePiece> StripingMap::map(FileId f, Bytes offset,
                                          Bytes size) const {
  const FileInfo& fi = info(f);
  assert(offset >= 0 && size > 0 && offset + size <= fi.size);

  std::vector<StripePiece> out;
  Bytes pos = offset;
  const Bytes end = offset + size;
  while (pos < end) {
    const std::int64_t stripe = pos / stripe_size_;
    const Bytes in_stripe = pos % stripe_size_;
    const Bytes piece = std::min(end - pos, stripe_size_ - in_stripe);
    const int node = node_of_stripe(f, stripe);
    // Stripe k of this file is the (k / num_nodes)-th of the file's stripes
    // on its node (round-robin places exactly one stripe per node per round).
    const Bytes local =
        fi.node_base[static_cast<std::size_t>(node)] +
        (stripe / num_nodes_) * stripe_size_ + in_stripe;
    out.push_back(StripePiece{node, local, piece});
    pos += piece;
  }
  return out;
}

Signature StripingMap::signature(FileId f, Bytes offset, Bytes size) const {
  Signature sig(num_nodes_);
  const std::int64_t first = offset / stripe_size_;
  const std::int64_t last = (offset + size - 1) / stripe_size_;
  for (std::int64_t k = first; k <= last; ++k) {
    sig.set(node_of_stripe(f, k));
    if (sig.popcount() == num_nodes_) break;  // already all nodes
  }
  return sig;
}

Bytes StripingMap::allocated_on(int node) const {
  assert(node >= 0 && node < num_nodes_);
  return next_free_[static_cast<std::size_t>(node)];
}

}  // namespace dasched
