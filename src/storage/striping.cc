#include "storage/striping.h"

#include <cassert>

namespace dasched {

StripingMap::StripingMap(int num_io_nodes, Bytes stripe_size)
    : num_nodes_(num_io_nodes),
      stripe_size_(stripe_size),
      next_free_(static_cast<std::size_t>(num_io_nodes), 0) {
  assert(num_io_nodes > 0 && stripe_size > 0);
}

FileId StripingMap::create_file(std::string name, Bytes size) {
  assert(size > 0);
  FileInfo fi;
  fi.name = std::move(name);
  fi.size = size;
  fi.base_node = static_cast<int>(files_.size()) % num_nodes_;
  fi.node_base.assign(static_cast<std::size_t>(num_nodes_), 0);

  const std::int64_t num_stripes = (size + stripe_size_ - 1) / stripe_size_;
  for (int d = 0; d < num_nodes_; ++d) {
    // Count of this file's stripes living on node d.
    const int first = ((d - fi.base_node) % num_nodes_ + num_nodes_) % num_nodes_;
    const std::int64_t count =
        first >= num_stripes ? 0 : (num_stripes - first + num_nodes_ - 1) / num_nodes_;
    fi.node_base[static_cast<std::size_t>(d)] = next_free_[static_cast<std::size_t>(d)];
    next_free_[static_cast<std::size_t>(d)] += count * stripe_size_;
  }
  files_.push_back(std::move(fi));
  return static_cast<FileId>(files_.size() - 1);
}

const StripingMap::FileInfo& StripingMap::info(FileId f) const {
  assert(f >= 0 && static_cast<std::size_t>(f) < files_.size());
  return files_[static_cast<std::size_t>(f)];
}

const std::string& StripingMap::file_name(FileId f) const { return info(f).name; }

Bytes StripingMap::file_size(FileId f) const { return info(f).size; }

int StripingMap::node_of_stripe(FileId f, std::int64_t index) const {
  return (info(f).base_node + static_cast<int>(index % num_nodes_)) % num_nodes_;
}

std::vector<StripePiece> StripingMap::map(FileId f, Bytes offset,
                                          Bytes size) const {
  std::vector<StripePiece> out;
  for_each_piece(f, offset, size,
                 [&out](const StripePiece& p) { out.push_back(p); });
  return out;
}

Signature StripingMap::signature(FileId f, Bytes offset, Bytes size) const {
  Signature sig(num_nodes_);
  const std::int64_t first = offset / stripe_size_;
  const std::int64_t last = (offset + size - 1) / stripe_size_;
  // Consecutive stripes land on consecutive nodes mod num_nodes, so the
  // touched set is a cyclic run starting at the first stripe's node: walk
  // min(stripes, num_nodes) nodes instead of every stripe (a span covering
  // >= num_nodes stripes touches all nodes — the old early exit, closed
  // form).
  const std::int64_t stripes = last - first + 1;
  const int run = stripes >= num_nodes_ ? num_nodes_ : static_cast<int>(stripes);
  int node = node_of_stripe(f, first);
  for (int k = 0; k < run; ++k) {
    sig.set(node);
    node += 1;
    if (node == num_nodes_) node = 0;
  }
  return sig;
}

Bytes StripingMap::allocated_on(int node) const {
  assert(node >= 0 && node < num_nodes_);
  return next_free_[static_cast<std::size_t>(node)];
}

}  // namespace dasched
