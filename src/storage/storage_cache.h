// Per-I/O-node storage cache (Table II: 64 MB per node).
//
// A block-granular LRU cache over node-local offsets.  Pure bookkeeping —
// timing lives in `IoNode`, which consults the cache to decide whether a
// block access reaches the disks at all.  The LRU is a flat slot array
// (intrusive prev/next indices) over an open-addressing table, both sized
// once from the fixed block count, so lookups, insertions and evictions
// never allocate.  Sequential prefetch decisions are also made here
// (`prefetch_candidates`), mirroring AccuSim's server-side storage caches
// "with I/O prefetching".
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/inline_vec.h"
#include "util/units.h"

namespace dasched {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t invalidations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class StorageCache {
 public:
  /// Hard cap on the sequential prefetch depth a single miss may request.
  static constexpr int kMaxPrefetchDepth = 16;
  using PrefetchList = InlineVec<Bytes, kMaxPrefetchDepth>;

  /// `capacity` and `block_size` must make at least one block fit.
  StorageCache(Bytes capacity, Bytes block_size);

  /// Looks up the block at the (aligned) offset; counts a hit/miss and
  /// refreshes recency on hit.
  bool lookup(Bytes block_offset);

  /// True without touching statistics or recency.
  [[nodiscard]] bool contains(Bytes block_offset) const;

  /// Inserts (or refreshes) a block, evicting the least recently used block
  /// if at capacity.
  void insert(Bytes block_offset);

  /// Removes a block if present.
  void invalidate(Bytes block_offset);

  /// Appends to `out` up to `depth` block offsets following `block_offset`
  /// that are not yet cached — the sequential prefetch candidates for a
  /// miss.  `depth` beyond `kMaxPrefetchDepth` is clamped.
  void prefetch_candidates(Bytes block_offset, int depth,
                           PrefetchList& out) const;

  /// Drops every resident block and zeroes the statistics, keeping the slot
  /// array and hash table warm — observably identical to a freshly
  /// constructed cache of the same geometry, without any allocation.
  void reset() {
    count_ = 0;
    free_slots_.clear();
    next_unused_ = 0;
    head_ = tail_ = kNil;
    std::fill(table_.begin(), table_.end(), kNil);
    stats_ = CacheStats{};
  }

  [[nodiscard]] Bytes block_size() const { return block_size_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t max_blocks() const { return max_blocks_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// Resident block offsets, most recently used first (test/debug aid).
  [[nodiscard]] std::vector<Bytes> keys_mru_first() const;

  /// Aligns an arbitrary offset down to its block.
  [[nodiscard]] Bytes align(Bytes offset) const {
    return offset / block_size_ * block_size_;
  }

 private:
  static constexpr std::int32_t kNil = -1;

  /// One resident block: its offset plus intrusive LRU links (slot indices).
  struct Slot {
    Bytes key = 0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
  };

  [[nodiscard]] std::size_t hash_index(Bytes key) const;
  /// Table position holding `key`, or the position to insert it at.
  [[nodiscard]] std::size_t probe(Bytes key) const;
  void table_insert(Bytes key, std::int32_t slot);
  void table_erase(Bytes key);
  [[nodiscard]] std::int32_t find_slot(Bytes key) const;

  void unlink(std::int32_t slot);
  void link_front(std::int32_t slot);
  void touch(std::int32_t slot);

  Bytes block_size_;
  std::size_t max_blocks_;
  std::size_t count_ = 0;

  std::vector<Slot> slots_;              // fixed at max_blocks_ entries
  std::vector<std::int32_t> free_slots_; // recycled by invalidate/eviction
  std::int32_t next_unused_ = 0;         // bump allocator over slots_
  std::int32_t head_ = kNil;             // most recently used
  std::int32_t tail_ = kNil;             // least recently used

  std::vector<std::int32_t> table_;      // open addressing: slot index or kNil
  std::size_t table_mask_ = 0;

  CacheStats stats_;
};

}  // namespace dasched
