// Per-I/O-node storage cache (Table II: 64 MB per node).
//
// A block-granular LRU cache over node-local offsets.  Pure bookkeeping —
// timing lives in `IoNode`, which consults the cache to decide whether a
// block access reaches the disks at all.  Sequential prefetch decisions are
// also made here (`prefetch_candidates`), mirroring AccuSim's server-side
// storage caches "with I/O prefetching".
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace dasched {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t invalidations = 0;

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class StorageCache {
 public:
  /// `capacity` and `block_size` must make at least one block fit.
  StorageCache(Bytes capacity, Bytes block_size);

  /// Looks up the block at the (aligned) offset; counts a hit/miss and
  /// refreshes recency on hit.
  bool lookup(Bytes block_offset);

  /// True without touching statistics or recency.
  [[nodiscard]] bool contains(Bytes block_offset) const;

  /// Inserts (or refreshes) a block, evicting the least recently used block
  /// if at capacity.
  void insert(Bytes block_offset);

  /// Removes a block if present.
  void invalidate(Bytes block_offset);

  /// Up to `depth` block offsets following `block_offset` that are not yet
  /// cached — the sequential prefetch candidates for a miss.
  [[nodiscard]] std::vector<Bytes> prefetch_candidates(Bytes block_offset,
                                                       int depth) const;

  [[nodiscard]] Bytes block_size() const { return block_size_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t max_blocks() const { return max_blocks_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  /// Aligns an arbitrary offset down to its block.
  [[nodiscard]] Bytes align(Bytes offset) const {
    return offset / block_size_ * block_size_;
  }

 private:
  Bytes block_size_;
  std::size_t max_blocks_;
  std::list<Bytes> lru_;  // front = most recent
  std::unordered_map<Bytes, std::list<Bytes>::iterator> map_;
  CacheStats stats_;
};

}  // namespace dasched
