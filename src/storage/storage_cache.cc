#include "storage/storage_cache.h"

#include <cassert>

namespace dasched {

StorageCache::StorageCache(Bytes capacity, Bytes block_size)
    : block_size_(block_size),
      max_blocks_(static_cast<std::size_t>(capacity / block_size)) {
  assert(block_size > 0 && max_blocks_ >= 1);
}

bool StorageCache::lookup(Bytes block_offset) {
  const auto it = map_.find(block_offset);
  if (it == map_.end()) {
    stats_.misses += 1;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits += 1;
  return true;
}

bool StorageCache::contains(Bytes block_offset) const {
  return map_.contains(block_offset);
}

void StorageCache::insert(Bytes block_offset) {
  const auto it = map_.find(block_offset);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= max_blocks_) {
    const Bytes victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    stats_.evictions += 1;
  }
  lru_.push_front(block_offset);
  map_[block_offset] = lru_.begin();
  stats_.insertions += 1;
}

void StorageCache::invalidate(Bytes block_offset) {
  const auto it = map_.find(block_offset);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
  stats_.invalidations += 1;
}

std::vector<Bytes> StorageCache::prefetch_candidates(Bytes block_offset,
                                                     int depth) const {
  std::vector<Bytes> out;
  for (int k = 1; k <= depth; ++k) {
    const Bytes next = block_offset + k * block_size_;
    if (!map_.contains(next)) out.push_back(next);
  }
  return out;
}

}  // namespace dasched
