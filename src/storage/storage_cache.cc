#include "storage/storage_cache.h"

#include <algorithm>
#include <cassert>

namespace dasched {

namespace {
/// splitmix64 finalizer — block offsets are multiples of the block size, so
/// the low bits need scrambling before masking into the table.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

StorageCache::StorageCache(Bytes capacity, Bytes block_size)
    : block_size_(block_size),
      max_blocks_(static_cast<std::size_t>(capacity / block_size)) {
  assert(block_size > 0 && max_blocks_ >= 1);
  slots_.resize(max_blocks_);
  free_slots_.reserve(max_blocks_);
  // Open addressing at <= 50% load: the next power of two holding twice the
  // block count.  Sized once here; no rehash ever happens.
  std::size_t table_size = 16;
  while (table_size < max_blocks_ * 2) table_size *= 2;
  table_.assign(table_size, kNil);
  table_mask_ = table_size - 1;
}

std::size_t StorageCache::hash_index(Bytes key) const {
  return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key.count()))) &
         table_mask_;
}

std::size_t StorageCache::probe(Bytes key) const {
  std::size_t i = hash_index(key);
  while (table_[i] != kNil && slots_[static_cast<std::size_t>(table_[i])].key != key) {
    i = (i + 1) & table_mask_;
  }
  return i;
}

std::int32_t StorageCache::find_slot(Bytes key) const {
  return table_[probe(key)];
}

void StorageCache::table_insert(Bytes key, std::int32_t slot) {
  const std::size_t i = probe(key);
  assert(table_[i] == kNil);
  table_[i] = slot;
}

void StorageCache::table_erase(Bytes key) {
  // Backward-shift deletion keeps probe chains contiguous without
  // tombstones: after emptying position `i`, any later entry whose home
  // position lies outside (i, j] cyclically is moved back into the hole.
  std::size_t i = probe(key);
  assert(table_[i] != kNil);
  std::size_t j = i;
  for (;;) {
    table_[i] = kNil;
    for (;;) {
      j = (j + 1) & table_mask_;
      if (table_[j] == kNil) return;
      const std::size_t home =
          hash_index(slots_[static_cast<std::size_t>(table_[j])].key);
      const bool movable =
          i <= j ? (home <= i || home > j) : (home <= i && home > j);
      if (movable) break;
    }
    table_[i] = table_[j];
    i = j;
  }
}

void StorageCache::unlink(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.prev != kNil) {
    slots_[static_cast<std::size_t>(s.prev)].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  s.prev = s.next = kNil;
}

void StorageCache::link_front(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[static_cast<std::size_t>(head_)].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void StorageCache::touch(std::int32_t slot) {
  if (head_ == slot) return;
  unlink(slot);
  link_front(slot);
}

bool StorageCache::lookup(Bytes block_offset) {
  const std::int32_t slot = find_slot(block_offset);
  if (slot == kNil) {
    stats_.misses += 1;
    return false;
  }
  touch(slot);
  stats_.hits += 1;
  return true;
}

bool StorageCache::contains(Bytes block_offset) const {
  return find_slot(block_offset) != kNil;
}

void StorageCache::insert(Bytes block_offset) {
  const std::int32_t present = find_slot(block_offset);
  if (present != kNil) {
    touch(present);
    return;
  }
  std::int32_t slot;
  if (count_ >= max_blocks_) {
    // Recycle the least-recently-used slot in place.
    slot = tail_;
    table_erase(slots_[static_cast<std::size_t>(slot)].key);
    unlink(slot);
    count_ -= 1;
    stats_.evictions += 1;
  } else if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_unused_++;
  }
  slots_[static_cast<std::size_t>(slot)].key = block_offset;
  link_front(slot);
  table_insert(block_offset, slot);
  count_ += 1;
  stats_.insertions += 1;
}

void StorageCache::invalidate(Bytes block_offset) {
  const std::int32_t slot = find_slot(block_offset);
  if (slot == kNil) return;
  table_erase(block_offset);
  unlink(slot);
  free_slots_.push_back(slot);
  count_ -= 1;
  stats_.invalidations += 1;
}

void StorageCache::prefetch_candidates(Bytes block_offset, int depth,
                                       PrefetchList& out) const {
  const int capped = std::min(depth, kMaxPrefetchDepth);
  for (int k = 1; k <= capped; ++k) {
    const Bytes next = block_offset + k * block_size_;
    if (!contains(next)) out.push_back(next);
  }
}

std::vector<Bytes> StorageCache::keys_mru_first() const {
  std::vector<Bytes> out;
  out.reserve(count_);
  for (std::int32_t s = head_; s != kNil;
       s = slots_[static_cast<std::size_t>(s)].next) {
    out.push_back(slots_[static_cast<std::size_t>(s)].key);
  }
  return out;
}

}  // namespace dasched
