#include "storage/raid.h"

#include <cassert>

namespace dasched {

const char* to_string(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0: return "raid0";
    case RaidLevel::kRaid5: return "raid5";
    case RaidLevel::kRaid10: return "raid10";
  }
  return "?";
}

RaidLayout::RaidLayout(RaidLevel level, int num_disks, Bytes chunk_size)
    : level_(level), num_disks_(num_disks), chunk_size_(chunk_size) {
  assert(num_disks >= 1 && chunk_size > 0);
  if (level == RaidLevel::kRaid5) assert(num_disks >= 3);
  if (level == RaidLevel::kRaid10) assert(num_disks >= 2 && num_disks % 2 == 0);
}

double RaidLayout::capacity_factor() const {
  switch (level_) {
    case RaidLevel::kRaid0: return 1.0;
    case RaidLevel::kRaid5:
      return static_cast<double>(num_disks_ - 1) / static_cast<double>(num_disks_);
    case RaidLevel::kRaid10: return 0.5;
  }
  return 1.0;
}

void RaidLayout::map_chunk(std::int64_t chunk, Bytes in_chunk, Bytes len,
                           bool is_write, ChunkOps& out) {
  switch (level_) {
    case RaidLevel::kRaid0: {
      const int disk = static_cast<int>(chunk % num_disks_);
      const Bytes off = (chunk / num_disks_) * chunk_size_ + in_chunk;
      out.push_back(DiskOp{disk, off, len, is_write});
      return;
    }
    case RaidLevel::kRaid10: {
      const int pairs = num_disks_ / 2;
      const int pair = static_cast<int>(chunk % pairs);
      const Bytes off = (chunk / pairs) * chunk_size_ + in_chunk;
      if (is_write) {
        out.push_back(DiskOp{2 * pair, off, len, true});
        out.push_back(DiskOp{2 * pair + 1, off, len, true});
      } else {
        const int mirror = static_cast<int>(mirror_toggle_++ % 2);
        out.push_back(DiskOp{2 * pair + mirror, off, len, false});
      }
      return;
    }
    case RaidLevel::kRaid5: {
      const int data_disks = num_disks_ - 1;
      const std::int64_t row = chunk / data_disks;
      const int parity_disk = static_cast<int>(row % num_disks_);
      int data_disk = static_cast<int>(chunk % data_disks);
      if (data_disk >= parity_disk) data_disk += 1;  // skip the parity slot
      const Bytes off = row * chunk_size_ + in_chunk;
      out.push_back(DiskOp{data_disk, off, len, is_write});
      if (is_write) out.push_back(DiskOp{parity_disk, off, len, true});
      return;
    }
  }
}

std::vector<DiskOp> RaidLayout::map(Bytes offset, Bytes size, bool is_write) {
  std::vector<DiskOp> out;
  for_each_op(offset, size, is_write,
              [&out](const DiskOp& op) { out.push_back(op); });
  return out;
}

}  // namespace dasched
