#include "storage/io_node.h"

#include <cassert>
#include <memory>

namespace dasched {

namespace {
/// Completion barrier: fires `done` when all registered sub-operations and
/// the initial guard have completed.
struct Join {
  int outstanding = 1;  // guard released by the issuer
  std::function<void()> done;

  void arrive() {
    if (--outstanding == 0 && done) done();
  }
};
}  // namespace

IoNode::IoNode(Simulator& sim, IoNodeConfig cfg, int node_id, std::uint64_t seed)
    : sim_(sim),
      cfg_(cfg),
      node_id_(node_id),
      cache_(cfg.cache_capacity, cfg.cache_block_size),
      raid_(cfg.raid, cfg.num_disks, cfg.chunk_size) {
  for (int i = 0; i < cfg.num_disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        sim_, cfg_.disk, seed * 1'000 + static_cast<std::uint64_t>(i) + 1));
    policies_.push_back(make_policy(cfg_.policy, cfg_.policy_cfg));
    disks_.back()->set_policy(policies_.back().get());
  }
}

void IoNode::issue_disk_ops(const std::vector<DiskOp>& ops,
                            const std::shared_ptr<std::function<void()>>& barrier,
                            int* outstanding, bool background) {
  if (observer_ != nullptr) observer_->on_disk_ops_issued(*this, ops.size());
  for (const DiskOp& op : ops) {
    assert(op.disk >= 0 && op.disk < num_disks());
    if (outstanding != nullptr) *outstanding += 1;
    disks_[static_cast<std::size_t>(op.disk)]->submit(DiskRequest{
        op.offset, op.size, op.is_write, background,
        barrier ? [barrier] { (*barrier)(); } : std::function<void()>{}});
  }
}

void IoNode::prefetch_after_miss(Bytes block_offset) {
  if (cfg_.prefetch_depth <= 0) return;
  for (Bytes next : cache_.prefetch_candidates(block_offset, cfg_.prefetch_depth)) {
    if (observer_ != nullptr) observer_->on_prefetch_issued(*this, next);
    cache_.insert(next);
    // Fire-and-forget disk reads; nobody waits on prefetches.
    auto ops = raid_.map(next, cache_.block_size(), /*is_write=*/false);
    issue_disk_ops(ops, nullptr, nullptr, /*background=*/true);
  }
}

void IoNode::read(Bytes offset, Bytes size, std::function<void()> done,
                  bool background) {
  assert(offset >= 0 && size > 0);
  if (observer_ != nullptr) observer_->on_read(*this, offset, size, background);
  auto join = std::make_shared<Join>();
  join->done = std::move(done);
  auto barrier = std::make_shared<std::function<void()>>([join] { join->arrive(); });

  const Bytes first = cache_.align(offset);
  const Bytes last = cache_.align(offset + size - 1);
  for (Bytes b = first; b <= last; b += cache_.block_size()) {
    const bool hit = cache_.lookup(b);
    if (observer_ != nullptr) observer_->on_block_lookup(*this, b, hit);
    if (hit) {
      join->outstanding += 1;
      sim_.schedule_after(cfg_.cache_hit_latency, [barrier] { (*barrier)(); });
    } else {
      // Whole-block fill, as real storage caches do.
      cache_.insert(b);
      const auto ops = raid_.map(b, cache_.block_size(), /*is_write=*/false);
      issue_disk_ops(ops, barrier, &join->outstanding, background);
      prefetch_after_miss(b);
    }
  }
  join->arrive();  // release the guard
}

void IoNode::write(Bytes offset, Bytes size, std::function<void()> done) {
  assert(offset >= 0 && size > 0);
  if (observer_ != nullptr) observer_->on_write(*this, offset, size);
  // Ack-early write-behind: the storage cache absorbs the write and the
  // client continues after the cache latency; the disk writes drain in the
  // background.  (AccuSim's server caches behave the same way; this is what
  // keeps disks busy through write bursts instead of lock-stepping clients.)
  const auto ops = raid_.map(offset, size, /*is_write=*/true);
  issue_disk_ops(ops, nullptr, nullptr);

  const Bytes first = cache_.align(offset);
  const Bytes last = cache_.align(offset + size - 1);
  for (Bytes b = first; b <= last; b += cache_.block_size()) cache_.insert(b);

  if (done) sim_.schedule_after(cfg_.cache_hit_latency, std::move(done));
}

IoNodeStats IoNode::finalize() {
  IoNodeStats out;
  out.cache = cache_.stats();
  for (auto& d : disks_) {
    const DiskStats& s = d->finalize();
    out.energy_j += s.energy_j;
    out.disk_requests += s.requests;
    out.spin_downs += s.spin_downs;
    out.spin_ups += s.spin_ups;
    out.rpm_changes += s.rpm_changes;
    out.idle_periods.merge(s.idle_periods);
  }
  out.requests = out.cache.hits + out.cache.misses;
  if (observer_ != nullptr) observer_->on_finalized(*this, out);
  return out;
}

}  // namespace dasched
