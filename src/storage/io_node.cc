#include "storage/io_node.h"

#include <cassert>
#include <memory>
#include <utility>

#include "util/rng.h"

namespace dasched {

IoNode::IoNode(Simulator& sim, IoNodeConfig cfg, int node_id, std::uint64_t seed)
    : sim_(sim),
      cfg_(cfg),
      node_id_(node_id),
      cache_(cfg.cache_capacity, cfg.cache_block_size),
      raid_(cfg.raid, cfg.num_disks, cfg.chunk_size) {
  for (int i = 0; i < cfg.num_disks; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        sim_, cfg_.disk, derive_seed(seed, static_cast<std::uint64_t>(i))));
    policies_.push_back(make_policy(cfg_.policy, cfg_.policy_cfg));
    disks_.back()->set_policy(policies_.back().get());
  }
}

void IoNode::fill_scratch_ops(Bytes offset, Bytes size, bool is_write) {
  scratch_ops_.clear();
  raid_.for_each_op(offset, size, is_write,
                    // dasched-lint: allow(hot-alloc): scratch vector retains capacity
                    // across requests.
                    [this](const DiskOp& op) { scratch_ops_.push_back(op); });
}

void IoNode::issue_disk_ops(JoinId join, bool background) {
  observers_.notify(
      [&](IoNodeObserver* o) { o->on_disk_ops_issued(*this, scratch_ops_.size()); });
  // Disk::submit never runs completions synchronously, so `scratch_ops_`
  // cannot be clobbered by re-entry while we iterate it.
  for (const DiskOp& op : scratch_ops_) {
    assert(op.disk >= 0 && op.disk < num_disks());
    EventFn on_complete;
    if (join) {
      join_pool_.add(join);
      on_complete = EventFn([this, join] { join_pool_.arrive(join); });
    }
    disks_[static_cast<std::size_t>(op.disk)]->submit(DiskRequest{
        op.offset, op.size, op.is_write, background, std::move(on_complete)});
  }
}

void IoNode::prefetch_after_miss(Bytes block_offset) {
  if (cfg_.prefetch_depth <= 0) return;
  // Snapshot the candidates before inserting any of them: an insert can
  // evict a block that a later candidate would have found cached.
  StorageCache::PrefetchList candidates;
  cache_.prefetch_candidates(block_offset, cfg_.prefetch_depth, candidates);
  for (const Bytes next : candidates) {
    observers_.notify(
        [&](IoNodeObserver* o) { o->on_prefetch_issued(*this, next); });
    cache_.insert(next);
    // Fire-and-forget disk reads; nobody waits on prefetches.
    fill_scratch_ops(next, cache_.block_size(), /*is_write=*/false);
    issue_disk_ops(JoinId{}, /*background=*/true);
  }
}

void IoNode::read(Bytes offset, Bytes size, EventFn done, bool background) {
  assert(offset >= 0 && size > 0);
  observers_.notify(
      [&](IoNodeObserver* o) { o->on_read(*this, offset, size, background); });
  const JoinId join = join_pool_.open(std::move(done));

  const Bytes first = cache_.align(offset);
  const Bytes last = cache_.align(offset + size - 1);
  for (Bytes b = first; b <= last; b += cache_.block_size()) {
    const bool hit = cache_.lookup(b);
    observers_.notify(
        [&](IoNodeObserver* o) { o->on_block_lookup(*this, b, hit); });
    if (hit) {
      join_pool_.add(join);
      sim_.schedule_after(cfg_.cache_hit_latency,
                          [this, join] { join_pool_.arrive(join); });
    } else {
      // Whole-block fill, as real storage caches do.
      cache_.insert(b);
      fill_scratch_ops(b, cache_.block_size(), /*is_write=*/false);
      issue_disk_ops(join, background);
      prefetch_after_miss(b);
    }
  }
  join_pool_.arrive(join);  // release the guard
}

void IoNode::write(Bytes offset, Bytes size, EventFn done) {
  assert(offset >= 0 && size > 0);
  observers_.notify(
      [&](IoNodeObserver* o) { o->on_write(*this, offset, size); });
  // Ack-early write-behind: the storage cache absorbs the write and the
  // client continues after the cache latency; the disk writes drain in the
  // background.  (AccuSim's server caches behave the same way; this is what
  // keeps disks busy through write bursts instead of lock-stepping clients.)
  fill_scratch_ops(offset, size, /*is_write=*/true);
  issue_disk_ops(JoinId{});

  const Bytes first = cache_.align(offset);
  const Bytes last = cache_.align(offset + size - 1);
  for (Bytes b = first; b <= last; b += cache_.block_size()) cache_.insert(b);

  if (done) sim_.schedule_after(cfg_.cache_hit_latency, std::move(done));
}

IoNodeStats IoNode::finalize() {
  IoNodeStats out;
  finalize_into(out);
  return out;
}

void IoNode::finalize_into(IoNodeStats& out) {
  out.energy_j = Joules{};
  out.requests = 0;
  out.disk_requests = 0;
  out.spin_downs = 0;
  out.spin_ups = 0;
  out.rpm_changes = 0;
  out.idle_periods.clear();
  out.cache = cache_.stats();
  for (auto& d : disks_) {
    const DiskStats& s = d->finalize();
    out.energy_j += s.energy_j;
    out.disk_requests += s.requests;
    out.spin_downs += s.spin_downs;
    out.spin_ups += s.spin_ups;
    out.rpm_changes += s.rpm_changes;
    out.idle_periods.merge(s.idle_periods);
  }
  out.requests = out.cache.hits + out.cache.misses;
  observers_.notify([&](IoNodeObserver* o) { o->on_finalized(*this, out); });
}

void IoNode::reset(const IoNodeConfig& cfg, std::uint64_t seed) {
  const bool cache_same = cfg.cache_capacity == cfg_.cache_capacity &&
                          cfg.cache_block_size == cfg_.cache_block_size;
  const bool policy_same =
      cfg.policy == cfg_.policy && cfg.policy_cfg == cfg_.policy_cfg;
  const bool disks_same = cfg.num_disks == static_cast<int>(disks_.size());
  cfg_ = cfg;
  if (cache_same) {
    cache_.reset();
  } else {
    cache_ = StorageCache(cfg.cache_capacity, cfg.cache_block_size);
  }
  // Reassigned even when unchanged: the mirror-read toggle must rewind to
  // zero or RAID 10 read placement diverges from a fresh construction.
  raid_ = RaidLayout(cfg.raid, cfg.num_disks, cfg.chunk_size);
  join_pool_.reset();
  if (!disks_same) {
    disks_.clear();
    policies_.clear();
    for (int i = 0; i < cfg.num_disks; ++i) {
      disks_.push_back(std::make_unique<Disk>(
          sim_, cfg_.disk, derive_seed(seed, static_cast<std::uint64_t>(i))));
      policies_.push_back(make_policy(cfg_.policy, cfg_.policy_cfg));
      disks_.back()->set_policy(policies_.back().get());
    }
    return;
  }
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    disks_[i]->reset(cfg_.disk, derive_seed(seed, static_cast<std::uint64_t>(i)));
    if (policy_same) {
      if (policies_[i] != nullptr) policies_[i]->reset();
    } else {
      policies_[i] = make_policy(cfg_.policy, cfg_.policy_cfg);
    }
    disks_[i]->set_policy(policies_[i].get());
  }
}

}  // namespace dasched
