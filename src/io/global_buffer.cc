#include "io/global_buffer.h"

#include <cassert>
#include <utility>

namespace dasched {

bool GlobalBuffer::try_reserve(int access_id, Bytes size) {
  assert(!entries_.contains(access_id));
  if (used_ + size > capacity_) {
    stats_.full_rejections += 1;
    return false;
  }
  used_ += size;
  stats_.reservations += 1;
  stats_.peak_bytes = std::max(stats_.peak_bytes, used_);
  entries_[access_id] = Entry{BufferEntryState::kInFlight, size, {}};
  return true;
}

void GlobalBuffer::mark_ready(int access_id) {
  const auto it = entries_.find(access_id);
  if (it == entries_.end()) return;  // consumed-in-flight entries are gone
  if (done_.contains(access_id)) {
    // The application overtook the prefetch with its own demand read; the
    // landed data is useless — reclaim the space.
    used_ -= it->second.size;
    entries_.erase(it);
    stats_.wasted += 1;
    auto waiters = std::move(space_waiters_);
    space_waiters_.clear();
    for (auto& cb : waiters) cb();
    return;
  }
  it->second.state = BufferEntryState::kReady;
  auto waiters = std::move(it->second.ready_waiters);
  it->second.ready_waiters.clear();
  for (auto& cb : waiters) cb();
}

void GlobalBuffer::consume(int access_id) {
  const auto it = entries_.find(access_id);
  assert(it != entries_.end());
  assert(it->second.state == BufferEntryState::kReady);
  used_ -= it->second.size;
  entries_.erase(it);
  done_.insert(access_id);
  stats_.consumed += 1;
  auto waiters = std::move(space_waiters_);
  space_waiters_.clear();
  for (auto& cb : waiters) cb();
}

void GlobalBuffer::mark_done(int access_id) { done_.insert(access_id); }

BufferEntryState GlobalBuffer::state(int access_id) const {
  const auto it = entries_.find(access_id);
  if (it != entries_.end()) return it->second.state;
  return done_.contains(access_id) ? BufferEntryState::kDone
                                   : BufferEntryState::kAbsent;
}

void GlobalBuffer::wait_ready(int access_id, std::function<void()> cb) {
  const auto it = entries_.find(access_id);
  assert(it != entries_.end() && it->second.state == BufferEntryState::kInFlight);
  it->second.ready_waiters.push_back(std::move(cb));
  stats_.consumed_in_flight += 1;
}

void GlobalBuffer::wait_space(std::function<void()> cb) {
  space_waiters_.push_back(std::move(cb));
}

}  // namespace dasched
