#include "io/global_buffer.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dasched {

void GlobalBuffer::reset(Bytes capacity, std::size_t num_ids) {
  capacity_ = capacity;
  used_ = 0;
  stats_ = BufferStats{};
  if (slots_.size() < num_ids) slots_.resize(num_ids);
  std::fill(slots_.begin(), slots_.end(), Slot{});
  space_head_ = kNil;
  space_tail_ = kNil;
  // Rebuild the free list over the whole arena (descending, so node 0 is
  // handed out first — indistinguishable from a fresh buffer either way:
  // waiter order is carried by the chain links, never by node indices).
  free_head_ = kNil;
  for (std::size_t i = arena_.size(); i-- > 0;) {
    arena_[i].fn = EventFn();
    arena_[i].next = free_head_;
    free_head_ = static_cast<std::int32_t>(i);
  }
}

GlobalBuffer::Slot& GlobalBuffer::slot_for(int access_id) {
  assert(access_id >= 0);
  const auto i = static_cast<std::size_t>(access_id);
  if (i >= slots_.size()) {
    // dasched-lint: allow(hot-alloc): one-time growth; the cluster pre-sizes
    // the table via reset() so steady-state runs never land here.
    slots_.resize(i + 1);
  }
  return slots_[i];
}

std::int32_t GlobalBuffer::alloc_node(EventFn fn) {
  std::int32_t idx = free_head_;
  if (idx != kNil) {
    free_head_ = arena_[static_cast<std::size_t>(idx)].next;
  } else {
    idx = static_cast<std::int32_t>(arena_.size());
    // dasched-lint: allow(hot-alloc): arena warm-up; reset() recycles every
    // node, so repeat runs reuse this high-water-mark pool.
    arena_.emplace_back();
  }
  WaiterNode& n = arena_[static_cast<std::size_t>(idx)];
  n.fn = std::move(fn);
  n.next = kNil;
  return idx;
}

void GlobalBuffer::free_node(std::int32_t idx) {
  WaiterNode& n = arena_[static_cast<std::size_t>(idx)];
  n.fn = EventFn();
  n.next = free_head_;
  free_head_ = idx;
}

void GlobalBuffer::append(std::int32_t& head, std::int32_t& tail,
                          std::int32_t node) {
  if (head == kNil) {
    head = node;
  } else {
    arena_[static_cast<std::size_t>(tail)].next = node;
  }
  tail = node;
}

void GlobalBuffer::fire_chain(std::int32_t head) {
  while (head != kNil) {
    WaiterNode& n = arena_[static_cast<std::size_t>(head)];
    const std::int32_t next = n.next;
    EventFn fn = std::move(n.fn);
    // Free before invoking: the callback may enqueue new waiters, and they
    // may reuse this node (fn was moved out; `n` must not be touched after
    // the callback — a re-entrant wait can grow the arena).
    free_node(head);
    head = next;
    fn();
  }
}

bool GlobalBuffer::try_reserve(int access_id, Bytes size) {
  Slot& s = slot_for(access_id);
  assert(s.state == BufferEntryState::kAbsent);
  if (used_ + size > capacity_) {
    stats_.full_rejections += 1;
    return false;
  }
  used_ += size;
  stats_.reservations += 1;
  stats_.peak_bytes = std::max(stats_.peak_bytes, used_);
  s.state = BufferEntryState::kInFlight;
  s.size = size;
  return true;
}

void GlobalBuffer::mark_ready(int access_id) {
  Slot& s = slot_for(access_id);
  if (s.state == BufferEntryState::kAbsent) return;  // consumed in flight
  if (s.done) {
    // The application overtook the prefetch with its own demand read; the
    // landed data is useless — reclaim the space.
    used_ -= s.size;
    s.state = BufferEntryState::kAbsent;
    s.size = 0;
    stats_.wasted += 1;
    // No one can be waiting on an overtaken entry, but recycle defensively.
    const std::int32_t orphans = s.waiter_head;
    s.waiter_head = kNil;
    s.waiter_tail = kNil;
    for (std::int32_t i = orphans; i != kNil;) {
      const std::int32_t next = arena_[static_cast<std::size_t>(i)].next;
      free_node(i);
      i = next;
    }
    const std::int32_t head = space_head_;
    space_head_ = kNil;
    space_tail_ = kNil;
    fire_chain(head);
    return;
  }
  s.state = BufferEntryState::kReady;
  const std::int32_t head = s.waiter_head;
  s.waiter_head = kNil;
  s.waiter_tail = kNil;
  fire_chain(head);
}

void GlobalBuffer::consume(int access_id) {
  Slot& s = slot_for(access_id);
  assert(s.state == BufferEntryState::kReady);
  used_ -= s.size;
  s.state = BufferEntryState::kAbsent;
  s.size = 0;
  s.done = true;
  stats_.consumed += 1;
  const std::int32_t head = space_head_;
  space_head_ = kNil;
  space_tail_ = kNil;
  fire_chain(head);
}

void GlobalBuffer::mark_done(int access_id) { slot_for(access_id).done = true; }

BufferEntryState GlobalBuffer::state(int access_id) const {
  const auto i = static_cast<std::size_t>(access_id);
  if (i >= slots_.size()) return BufferEntryState::kAbsent;
  const Slot& s = slots_[i];
  if (s.state != BufferEntryState::kAbsent) return s.state;
  return s.done ? BufferEntryState::kDone : BufferEntryState::kAbsent;
}

void GlobalBuffer::wait_ready(int access_id, EventFn cb) {
  Slot& s = slot_for(access_id);
  assert(s.state == BufferEntryState::kInFlight);
  append(s.waiter_head, s.waiter_tail, alloc_node(std::move(cb)));
  stats_.consumed_in_flight += 1;
}

void GlobalBuffer::wait_space(EventFn cb) {
  append(space_head_, space_tail_, alloc_node(std::move(cb)));
}

}  // namespace dasched
