#include "io/cluster.h"

#include <algorithm>
#include <cassert>

namespace dasched {

namespace {
constexpr int kMaxOpsPerSlot = 4'096;

std::uint64_t site_key(int process, Slot slot, int op_index) {
  return (static_cast<std::uint64_t>(process) << 48) ^
         (static_cast<std::uint64_t>(slot) * kMaxOpsPerSlot) ^
         static_cast<std::uint64_t>(op_index);
}
}  // namespace

// ---------------------------------------------------------------------------
// ClientProcess
// ---------------------------------------------------------------------------

ClientProcess::ClientProcess(Cluster& cluster, int pid)
    : cluster_(cluster), pid_(pid) {}

void ClientProcess::start() { begin_slot(); }

void ClientProcess::reset() {
  current_ = 0;
  completed_ = 0;
  finished_ = false;
  finish_time_ = 0;
  waiters_.clear();
  ready_scratch_.clear();
}

void ClientProcess::subscribe_progress(Slot needed, std::function<void()> cb) {
  if (completed_ >= needed || finished_) {
    cb();
    return;
  }
  waiters_.emplace_back(needed, std::move(cb));
}

void ClientProcess::begin_slot() {
  const auto& slots =
      cluster_.compiled().program.processes[static_cast<std::size_t>(pid_)].slots;

  // Fast-forward through empty padding slots iteratively (no recursion).
  while (current_ < static_cast<Slot>(slots.size())) {
    const SlotPlan& plan = slots[static_cast<std::size_t>(current_)];
    if (!plan.ops.empty() || plan.compute > 0) break;
    finish_slot();
  }
  if (current_ >= static_cast<Slot>(slots.size())) {
    finished_ = true;
    finish_time_ = cluster_.sim().now();
    // Release anyone still waiting on this process's progress.  With
    // `finished_` already set, a re-entrant subscribe_progress fires its
    // callback immediately instead of appending, so iterating in place is
    // safe — and clear() keeps the vector's capacity for the next run.
    for (auto& [needed, cb] : waiters_) cb();
    waiters_.clear();
    return;
  }

  const SlotPlan& plan = slots[static_cast<std::size_t>(current_)];
  if (!plan.ops.empty()) {
    run_op(0);
  } else {
    after_ops();
  }
}

void ClientProcess::run_op(std::size_t op_index) {
  const SlotPlan& plan =
      cluster_.compiled()
          .program.processes[static_cast<std::size_t>(pid_)]
          .slots[static_cast<std::size_t>(current_)];
  const IoOp& op = plan.ops[op_index];
  RuntimeStats& stats = cluster_.mutable_stats();

  if (op.is_write) {
    stats.writes += 1;
    cluster_.storage().write(op.file, op.offset, op.size,
                             [this, op_index] { op_done(op_index); });
    return;
  }

  if (cluster_.config().use_runtime_scheduler) {
    const int id = cluster_.access_id_at(pid_, current_, static_cast<int>(op_index));
    assert(id >= 0);
    GlobalBuffer& buffer = cluster_.buffer();
    switch (buffer.state(id)) {
      case BufferEntryState::kReady: {
        buffer.consume(id);
        stats.buffer_hits += 1;
        cluster_.sim().schedule_after(cluster_.config().buffer_hit_latency,
                                      [this, op_index] { op_done(op_index); });
        return;
      }
      case BufferEntryState::kInFlight: {
        stats.in_flight_hits += 1;
        buffer.wait_ready(id, [this, id, op_index] {
          cluster_.buffer().consume(id);
          cluster_.sim().schedule_after(cluster_.config().buffer_hit_latency,
                                        [this, op_index] { op_done(op_index); });
        });
        return;
      }
      case BufferEntryState::kAbsent:
      case BufferEntryState::kDone:
        buffer.mark_done(id);  // the scheduler must not fetch it anymore
        break;
    }
  }

  stats.direct_reads += 1;
  cluster_.storage().read(op.file, op.offset, op.size,
                          [this, op_index] { op_done(op_index); });
}

void ClientProcess::op_done(std::size_t op_index) {
  const SlotPlan& plan =
      cluster_.compiled()
          .program.processes[static_cast<std::size_t>(pid_)]
          .slots[static_cast<std::size_t>(current_)];
  if (op_index + 1 < plan.ops.size()) {
    run_op(op_index + 1);
  } else {
    after_ops();
  }
}

void ClientProcess::after_ops() {
  const SlotPlan& plan =
      cluster_.compiled()
          .program.processes[static_cast<std::size_t>(pid_)]
          .slots[static_cast<std::size_t>(current_)];
  if (plan.compute > 0) {
    cluster_.sim().schedule_after(plan.compute, [this] {
      finish_slot();
      begin_slot();
    });
  } else {
    finish_slot();
    begin_slot();
  }
}

void ClientProcess::finish_slot() {
  completed_ = ++current_;
  // Fire matured progress subscriptions.  The staging vector is swapped out
  // of a member so its storage is reused run after run; taking it by value
  // keeps a (hypothetical) re-entrant finish_slot from clobbering the walk.
  std::vector<std::function<void()>> ready = std::move(ready_scratch_);
  ready.clear();
  std::erase_if(waiters_, [this, &ready](auto& w) {
    if (w.first <= completed_) {
      ready.push_back(std::move(w.second));
      return true;
    }
    return false;
  });
  for (auto& cb : ready) cb();
  ready.clear();
  ready_scratch_ = std::move(ready);
}

// ---------------------------------------------------------------------------
// SchedulerThread
// ---------------------------------------------------------------------------

SchedulerThread::SchedulerThread(Cluster& cluster, int pid)
    : cluster_(cluster), pid_(pid) {}

void SchedulerThread::kick() {
  if (fetches_in_flight_ >= cluster_.config().scheduler_fetch_depth) return;
  const auto& entries = cluster_.compiled().table.entries(pid_);
  ClientProcess& owner = cluster_.client(pid_);
  GlobalBuffer& buffer = cluster_.buffer();
  RuntimeStats& stats = cluster_.mutable_stats();

  while (cursor_ < entries.size()) {
    const TableEntry& e = entries[cursor_];
    const int id = e.rec.id;

    if (buffer.is_done(id) || buffer.state(id) != BufferEntryState::kAbsent) {
      ++cursor_;
      continue;
    }
    // Only fetch accesses hoisted far enough ahead of their original point.
    if (e.rec.original - e.slot <= cluster_.config().min_lead) {
      stats.skipped_min_lead += 1;
      ++cursor_;
      continue;
    }
    // Wait until this process reaches the scheduled slot.
    if (e.slot > owner.local_time() && !owner.finished()) {
      owner.subscribe_progress(e.slot, [this] { kick(); });
      return;
    }
    // If the application has already passed the original point there is no
    // one left to serve; skip.
    if (owner.local_time() > e.rec.original) {
      buffer.mark_done(id);
      ++cursor_;
      continue;
    }
    // Local-time protocol: never run ahead of the producing process.
    if (e.rec.writer_process >= 0 && e.rec.writer_process != pid_) {
      ClientProcess& writer = cluster_.client(e.rec.writer_process);
      if (writer.local_time() <= e.rec.writer_slot && !writer.finished()) {
        writer.subscribe_progress(e.rec.writer_slot + 1, [this] { kick(); });
        return;
      }
    }
    const IoOp& op = cluster_.op_for(id);
    if (!buffer.try_reserve(id, op.size)) {
      buffer.wait_space([this] { kick(); });
      return;
    }
    stats.prefetches += 1;
    fetches_in_flight_ += 1;
    ++cursor_;
    cluster_.storage().read(
        op.file, op.offset, op.size,
        [this, id] {
          cluster_.buffer().mark_ready(id);
          fetches_in_flight_ -= 1;
          kick();
        });
    if (fetches_in_flight_ >= cluster_.config().scheduler_fetch_depth) return;
  }
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(Simulator& sim, StorageSystem& storage, const Compiled& compiled,
                 RuntimeConfig cfg)
    : sim_(sim),
      storage_(storage),
      compiled_(&compiled),
      cfg_(cfg),
      buffer_(cfg.buffer_capacity) {
  buffer_.reset(cfg_.buffer_capacity, compiled_->program.read_sites.size());
  const int nproc = compiled_->program.num_processes();
  for (int p = 0; p < nproc; ++p) {
    clients_.push_back(std::make_unique<ClientProcess>(*this, p));
  }
  if (cfg_.use_runtime_scheduler) {
    for (int p = 0; p < nproc; ++p) {
      schedulers_.push_back(std::make_unique<SchedulerThread>(*this, p));
    }
  }
  rebuild_site_index();
}

void Cluster::rebuild_site_index() {
  site_index_.clear();
  for (std::size_t i = 0; i < compiled_->program.read_sites.size(); ++i) {
    const ReadSite& site = compiled_->program.read_sites[i];
    assert(site.op_index < kMaxOpsPerSlot);
    site_index_[site_key(site.process, site.slot, site.op_index)] =
        static_cast<int>(i);
  }
}

void Cluster::reset(const Compiled& compiled, RuntimeConfig cfg) {
  // Index rebuild (which allocates hash nodes) only happens when the driver
  // hands over a different compiled object; workspace reruns over a cached
  // compile keep the same address and skip it.
  const bool same_compiled = compiled_ == &compiled;
  compiled_ = &compiled;
  cfg_ = cfg;
  buffer_.reset(cfg_.buffer_capacity, compiled_->program.read_sites.size());
  const int nproc = compiled_->program.num_processes();
  if (static_cast<int>(clients_.size()) != nproc) {
    clients_.clear();
    for (int p = 0; p < nproc; ++p) {
      clients_.push_back(std::make_unique<ClientProcess>(*this, p));
    }
  } else {
    for (auto& c : clients_) c->reset();
  }
  const std::size_t nsched =
      cfg_.use_runtime_scheduler ? static_cast<std::size_t>(nproc) : 0;
  if (schedulers_.size() != nsched) {
    schedulers_.clear();
    for (std::size_t p = 0; p < nsched; ++p) {
      schedulers_.push_back(
          std::make_unique<SchedulerThread>(*this, static_cast<int>(p)));
    }
  } else {
    for (auto& s : schedulers_) s->reset();
  }
  if (!same_compiled) rebuild_site_index();
  stats_ = RuntimeStats{};
  started_ = false;
}

void Cluster::start() {
  started_ = true;
  for (auto& c : clients_) c->start();
  for (auto& s : schedulers_) s->kick();
}

SimTime Cluster::run_to_completion() {
  if (!started_) start();
  while (!all_finished() && sim_.step()) {
  }
  return exec_time();
}

bool Cluster::all_finished() const {
  return std::all_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->finished(); });
}

SimTime Cluster::exec_time() const {
  SimTime t = 0;
  for (const auto& c : clients_) t = std::max(t, c->finish_time());
  return t;
}

RuntimeStats Cluster::stats() const {
  RuntimeStats out = stats_;
  out.buffer = buffer_.stats();
  return out;
}

int Cluster::access_id_at(int process, Slot slot, int op_index) const {
  const auto it = site_index_.find(site_key(process, slot, op_index));
  return it == site_index_.end() ? -1 : it->second;
}

const IoOp& Cluster::op_for(int access_id) const {
  const ReadSite& site =
      compiled_->program.read_sites[static_cast<std::size_t>(access_id)];
  return compiled_->program.processes[static_cast<std::size_t>(site.process)]
      .slots[static_cast<std::size_t>(site.slot)]
      .ops[static_cast<std::size_t>(site.op_index)];
}

}  // namespace dasched
