// The client-side global prefetch buffer (Sec. III).
//
// Prefetched data are "stored in a global buffer collectively managed by all
// scheduler threads in the client side".  Entries are keyed by access id —
// each prefetch serves exactly one scheduled future read.  On an application
// hit the entry is invalidated immediately to make space for subsequent
// prefetches; when the buffer is full, scheduler threads stop fetching and
// resume when space frees up.
//
// Access ids are the dense indices of the compiled program's read sites, so
// the buffer is a flat id-indexed table rather than a hash map, and the
// waiter callbacks live in a pooled node arena (EventFn, so captures up to
// the inline budget never touch the heap).  After a warm-up run through a
// workspace the buffer performs zero allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.h"
#include "util/units.h"

namespace dasched {

enum class BufferEntryState { kAbsent, kInFlight, kReady, kDone };

struct BufferStats {
  std::int64_t reservations = 0;
  std::int64_t full_rejections = 0;
  std::int64_t consumed = 0;
  /// Application reads that arrived while the prefetch was still in flight.
  std::int64_t consumed_in_flight = 0;
  /// Prefetches that landed after the application had already fetched the
  /// data itself (wasted work).
  std::int64_t wasted = 0;
  Bytes peak_bytes = 0;
};

class GlobalBuffer {
 public:
  explicit GlobalBuffer(Bytes capacity) : capacity_(capacity) {}

  GlobalBuffer(const GlobalBuffer&) = delete;
  GlobalBuffer& operator=(const GlobalBuffer&) = delete;

  /// Restores the buffer to its fresh state for ids in [0, num_ids).  The
  /// slot table and waiter arena keep their high-water-mark capacity (the
  /// table only grows), so a workspace rerun over the same program allocates
  /// nothing here.
  void reset(Bytes capacity, std::size_t num_ids);

  /// Reserves space for a prefetch; false when the buffer is full.  In-flight
  /// data counts against capacity.
  bool try_reserve(int access_id, Bytes size);

  /// The prefetch completed; wakes any application read waiting on it.
  void mark_ready(int access_id);

  /// The application consumed the entry (hit): frees the bytes and wakes
  /// scheduler threads waiting for space.
  void consume(int access_id);

  /// The application handled this access itself (prefetch never issued or
  /// arrived too late to be useful); scheduler threads must skip it.  If a
  /// prefetch for it is still in flight, its bytes are reclaimed when it
  /// lands (see mark_ready).
  void mark_done(int access_id);

  [[nodiscard]] BufferEntryState state(int access_id) const;
  [[nodiscard]] bool is_done(int access_id) const {
    const auto i = static_cast<std::size_t>(access_id);
    return i < slots_.size() && slots_[i].done;
  }

  /// Fires `cb` once when the in-flight entry becomes ready.
  void wait_ready(int access_id, EventFn cb);

  /// Fires `cb` once at the next space release.
  void wait_space(EventFn cb);

  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] const BufferStats& stats() const { return stats_; }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Slot {
    BufferEntryState state = BufferEntryState::kAbsent;
    bool done = false;
    Bytes size = 0;
    /// FIFO chain of ready-waiters through the shared node arena.
    std::int32_t waiter_head = kNil;
    std::int32_t waiter_tail = kNil;
  };

  struct WaiterNode {
    EventFn fn;
    std::int32_t next = kNil;
  };

  /// Grows the slot table to cover `access_id` (tests drive the buffer
  /// directly with ad-hoc ids; the cluster pre-sizes via reset()).
  Slot& slot_for(int access_id);
  [[nodiscard]] std::int32_t alloc_node(EventFn fn);
  void free_node(std::int32_t idx);
  void append(std::int32_t& head, std::int32_t& tail, std::int32_t node);
  /// Detaches and fires a waiter chain in FIFO order.  Callbacks may re-enter
  /// the buffer (reserve, wait, consume); the chain is unlinked first so
  /// re-entry can never corrupt the walk.
  void fire_chain(std::int32_t head);

  Bytes capacity_;
  Bytes used_ = 0;
  std::vector<Slot> slots_;
  std::vector<WaiterNode> arena_;
  std::int32_t free_head_ = kNil;
  std::int32_t space_head_ = kNil;
  std::int32_t space_tail_ = kNil;
  BufferStats stats_;
};

}  // namespace dasched
