// The client-side global prefetch buffer (Sec. III).
//
// Prefetched data are "stored in a global buffer collectively managed by all
// scheduler threads in the client side".  Entries are keyed by access id —
// each prefetch serves exactly one scheduled future read.  On an application
// hit the entry is invalidated immediately to make space for subsequent
// prefetches; when the buffer is full, scheduler threads stop fetching and
// resume when space frees up.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace dasched {

enum class BufferEntryState { kAbsent, kInFlight, kReady, kDone };

struct BufferStats {
  std::int64_t reservations = 0;
  std::int64_t full_rejections = 0;
  std::int64_t consumed = 0;
  /// Application reads that arrived while the prefetch was still in flight.
  std::int64_t consumed_in_flight = 0;
  /// Prefetches that landed after the application had already fetched the
  /// data itself (wasted work).
  std::int64_t wasted = 0;
  Bytes peak_bytes = 0;
};

class GlobalBuffer {
 public:
  explicit GlobalBuffer(Bytes capacity) : capacity_(capacity) {}

  /// Reserves space for a prefetch; false when the buffer is full.  In-flight
  /// data counts against capacity.
  bool try_reserve(int access_id, Bytes size);

  /// The prefetch completed; wakes any application read waiting on it.
  void mark_ready(int access_id);

  /// The application consumed the entry (hit): frees the bytes and wakes
  /// scheduler threads waiting for space.
  void consume(int access_id);

  /// The application handled this access itself (prefetch never issued or
  /// arrived too late to be useful); scheduler threads must skip it.  If a
  /// prefetch for it is still in flight, its bytes are reclaimed when it
  /// lands (see mark_ready).
  void mark_done(int access_id);

  [[nodiscard]] BufferEntryState state(int access_id) const;
  [[nodiscard]] bool is_done(int access_id) const {
    return done_.contains(access_id);
  }

  /// Fires `cb` once when the in-flight entry becomes ready.
  void wait_ready(int access_id, std::function<void()> cb);

  /// Fires `cb` once at the next space release.
  void wait_space(std::function<void()> cb);

  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] const BufferStats& stats() const { return stats_; }

 private:
  struct Entry {
    BufferEntryState state = BufferEntryState::kAbsent;
    Bytes size = 0;
    std::vector<std::function<void()>> ready_waiters;
  };

  Bytes capacity_;
  Bytes used_ = 0;
  std::unordered_map<int, Entry> entries_;
  std::unordered_set<int> done_;
  std::vector<std::function<void()>> space_waiters_;
  BufferStats stats_;
};

}  // namespace dasched
