#include "io/collective.h"

#include <algorithm>
#include <memory>

namespace dasched {

std::vector<CollectiveIo::Request> CollectiveIo::coalesce(
    std::vector<Request> requests) const {
  std::sort(requests.begin(), requests.end(), [](const Request& a, const Request& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.offset < b.offset;
  });

  std::vector<Request> ranges;
  for (const Request& r : requests) {
    if (r.size <= 0) continue;
    if (!ranges.empty()) {
      Request& last = ranges.back();
      const Bytes last_end = last.offset + last.size;
      const bool same_file = last.file == r.file;
      const Bytes merged_end = std::max(last_end, r.offset + r.size);
      if (same_file && r.offset <= last_end + cfg_.sieve_hole &&
          merged_end - last.offset <= cfg_.max_range) {
        last.size = merged_end - last.offset;
        continue;
      }
    }
    ranges.push_back(r);
  }
  return ranges;
}

void CollectiveIo::read_all(const std::vector<Request>& requests,
                            std::function<void()> done) {
  stats_.collective_calls += 1;
  stats_.member_requests += static_cast<std::int64_t>(requests.size());
  Bytes requested = 0;
  for (const Request& r : requests) requested += r.size;
  stats_.requested_bytes += requested;

  const std::vector<Request> ranges = coalesce(requests);
  stats_.coalesced_ranges += static_cast<std::int64_t>(ranges.size());
  Bytes transferred = 0;
  for (const Request& r : ranges) transferred += r.size;
  stats_.transferred_bytes += transferred;
  stats_.sieved_bytes += transferred - requested;

  struct Join {
    int outstanding = 1;
    std::function<void()> done;
    void arrive() {
      if (--outstanding == 0 && done) done();
    }
  };
  auto join = std::make_shared<Join>();
  const SimTime exchange = cfg_.exchange_latency;
  Simulator& sim = sim_;
  join->done = [done = std::move(done), exchange, &sim]() mutable {
    // Phase two: redistribute the aggregated data to the requesters.
    if (done) sim.schedule_after(exchange, std::move(done));
  };

  // Ranges are handed to the aggregators round-robin; each fetch is an
  // independent storage read (aggregators work in parallel).
  const int aggs = std::max(1, cfg_.aggregators);
  (void)aggs;  // parallelism is implicit: all ranges are issued at once
  for (const Request& r : ranges) {
    join->outstanding += 1;
    storage_.read(r.file, r.offset, r.size, [join] { join->arrive(); });
  }
  join->arrive();
}

}  // namespace dasched
