// Client-side runtime (Sec. III): application processes plus the data access
// scheduler threads.
//
// A `Cluster` wires one `ClientProcess` per MPI rank to the storage system
// and — when the compiler-directed scheme is enabled — one `SchedulerThread`
// per client node that prefetches data into the shared `GlobalBuffer`
// according to the scheduling table.  Application reads first consult the
// buffer: a hit returns immediately and invalidates the entry; a miss goes
// to storage.  Scheduler threads respect the writers' "local times" so a
// prefetch never runs ahead of the producing process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "compiler/compile.h"
#include "io/global_buffer.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "util/units.h"

namespace dasched {

class Cluster;

struct RuntimeConfig {
  /// Capacity of the collectively managed client-side prefetch buffer.
  Bytes buffer_capacity = mib(128);
  /// Prefetch only accesses scheduled more than `min_lead` slots before
  /// their original point ("scheduled at much earlier iterations").
  Slot min_lead = 1;
  /// Latency of serving an application read from the buffer.
  SimTime buffer_hit_latency = usec(10);
  /// Concurrent fetches a scheduler thread keeps in flight.
  int scheduler_fetch_depth = 4;
  /// False disables the scheduler threads entirely (the Default scheme and
  /// the paper's "without our approach" runs).
  bool use_runtime_scheduler = true;
};

struct RuntimeStats {
  std::int64_t buffer_hits = 0;
  /// Application reads that found their prefetch still in flight and waited.
  std::int64_t in_flight_hits = 0;
  std::int64_t direct_reads = 0;
  std::int64_t writes = 0;
  std::int64_t prefetches = 0;
  /// Table entries skipped because the scheduled point was too close to the
  /// original point to be worth prefetching.
  std::int64_t skipped_min_lead = 0;
  BufferStats buffer;
};

/// One application process: executes its slot plan (compute + I/O calls),
/// publishing its local time for the scheduler threads.
class ClientProcess {
 public:
  ClientProcess(Cluster& cluster, int pid);

  void start();

  /// Rewinds to slot 0, un-finishes, and drops pending progress waiters.
  /// Waiter vectors keep their capacity.
  void reset();

  /// Number of fully completed slots (the paper's "local time").
  [[nodiscard]] Slot local_time() const { return completed_; }

  /// Fires `cb` (once) as soon as local_time() >= needed.
  void subscribe_progress(Slot needed, std::function<void()> cb);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] SimTime finish_time() const { return finish_time_; }
  [[nodiscard]] int pid() const { return pid_; }

 private:
  void begin_slot();
  void run_op(std::size_t op_index);
  void op_done(std::size_t op_index);
  void after_ops();
  void finish_slot();

  Cluster& cluster_;
  int pid_;
  Slot current_ = 0;
  Slot completed_ = 0;
  bool finished_ = false;
  SimTime finish_time_ = 0;
  std::vector<std::pair<Slot, std::function<void()>>> waiters_;
  /// Matured waiters staged here before firing (finish_slot); a member so
  /// the staging storage is reused instead of reallocated every slot.
  std::vector<std::function<void()>> ready_scratch_;
};

/// One runtime data-access scheduler thread (light-weight, per client node).
/// It keeps a small bounded number of fetches in flight (a blocking thread
/// with limited lookahead), so prefetch traffic can never flood the disks.
class SchedulerThread {
 public:
  SchedulerThread(Cluster& cluster, int pid);

  /// Re-evaluates the table cursor; invoked on owner progress, buffer space
  /// release, writer progress and fetch completion.
  void kick();

  /// Rewinds the table cursor for a fresh run.
  void reset() {
    cursor_ = 0;
    fetches_in_flight_ = 0;
  }

 private:
  Cluster& cluster_;
  int pid_;
  std::size_t cursor_ = 0;
  int fetches_in_flight_ = 0;
};

class Cluster {
 public:
  Cluster(Simulator& sim, StorageSystem& storage, const Compiled& compiled,
          RuntimeConfig cfg = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Restores the cluster for a new run over (possibly different) compiled
  /// output and runtime config.  Same-shape parts — clients, schedulers, the
  /// prefetch buffer — reset in place without allocating; a process-count
  /// change rebuilds the per-process objects, and a change of compiled
  /// program (by address) rebuilds the read-site index.  The compiled output
  /// must outlive the cluster, as with the constructor.
  void reset(const Compiled& compiled, RuntimeConfig cfg);

  /// Launches every client process (and scheduler thread) at the current
  /// simulated time.
  void start();

  /// Convenience driver: start() if needed, then step the simulator until
  /// every client finishes, and return the completion time.  Use this rather
  /// than Simulator::run(): power-policy watchdog timers can keep the event
  /// queue alive indefinitely after the application completes.
  SimTime run_to_completion();

  [[nodiscard]] bool all_finished() const;
  /// Completion time of the slowest process.
  [[nodiscard]] SimTime exec_time() const;

  [[nodiscard]] RuntimeStats stats() const;

  [[nodiscard]] int num_processes() const {
    return static_cast<int>(clients_.size());
  }
  [[nodiscard]] ClientProcess& client(int p) {
    return *clients_[static_cast<std::size_t>(p)];
  }

  // --- Internal plumbing shared by ClientProcess / SchedulerThread ---------
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] StorageSystem& storage() { return storage_; }
  [[nodiscard]] GlobalBuffer& buffer() { return buffer_; }
  [[nodiscard]] const Compiled& compiled() const { return *compiled_; }
  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }
  [[nodiscard]] RuntimeStats& mutable_stats() { return stats_; }

  /// Access id of the read at (process, slot, op index); -1 for writes.
  [[nodiscard]] int access_id_at(int process, Slot slot, int op_index) const;

  /// The I/O operation behind an access id.
  [[nodiscard]] const IoOp& op_for(int access_id) const;

 private:
  void rebuild_site_index();

  Simulator& sim_;
  StorageSystem& storage_;
  const Compiled* compiled_;  // rebindable on reset(); never null
  RuntimeConfig cfg_;
  GlobalBuffer buffer_;
  std::vector<std::unique_ptr<ClientProcess>> clients_;
  std::vector<std::unique_ptr<SchedulerThread>> schedulers_;
  std::unordered_map<std::uint64_t, int> site_index_;
  RuntimeStats stats_;
  bool started_ = false;
};

}  // namespace dasched
