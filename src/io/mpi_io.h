// A thin MPI-IO-flavoured facade over the simulated storage system.
//
// The paper's data access scheduler is implemented on top of the MPI-IO
// library; examples use this facade so application code reads like Fig. 5
// (MPI_File_open / MPI_File_read / MPI_File_write / MPI_File_close) while
// everything routes through the simulated PVFS + I/O nodes.
#pragma once

#include <cassert>
#include <string>
#include <unordered_map>

#include "storage/storage_system.h"

namespace dasched {

class MpiIo {
 public:
  explicit MpiIo(StorageSystem& storage) : storage_(storage) {}

  /// Opens (creating on first open) a file of the given size; returns the
  /// file handle.  Re-opening by the same name returns the same handle.
  FileId file_open(const std::string& name, Bytes size) {
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    const FileId f = storage_.create_file(name, size);
    by_name_.emplace(name, f);
    return f;
  }

  /// MPI_File_read_at: explicit-offset read; `done` fires at completion.
  void file_read_at(FileId fh, Bytes offset, Bytes size, EventFn done) {
    storage_.read(fh, offset, size, std::move(done));
  }

  /// MPI_File_write_at: explicit-offset write.
  void file_write_at(FileId fh, Bytes offset, Bytes size, EventFn done) {
    storage_.write(fh, offset, size, std::move(done));
  }

  /// MPI_File_close: a no-op in simulation (kept for source fidelity).
  void file_close([[maybe_unused]] FileId fh) { assert(fh >= 0); }

  [[nodiscard]] StorageSystem& storage() { return storage_; }

 private:
  StorageSystem& storage_;
  std::unordered_map<std::string, FileId> by_name_;
};

}  // namespace dasched
