// Collective I/O with data sieving — the ROMIO techniques of the paper's
// I/O stack (Thakur et al., the paper's [39]).
//
// In two-phase collective I/O, all processes present their (possibly small,
// interleaved) requests; aggregator processes coalesce them into few large
// contiguous file ranges — reading through small holes ("data sieving") —
// fetch those ranges, and redistribute the pieces over the network.  The
// disks see a handful of large sequential transfers instead of a swarm of
// small ones.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "util/units.h"

namespace dasched {

struct CollectiveConfig {
  /// Processes acting as aggregators (ROMIO's cb_nodes).
  int aggregators = 4;
  /// Holes up to this size are read through rather than split (data
  /// sieving); 0 disables sieving.
  Bytes sieve_hole = kib(64);
  /// Largest single coalesced transfer (ROMIO's cb_buffer_size).
  Bytes max_range = mib(4);
  /// Redistribution cost after the read phase (one exchange step).
  SimTime exchange_latency = usec(300);
};

struct CollectiveStats {
  std::int64_t collective_calls = 0;
  std::int64_t member_requests = 0;
  std::int64_t coalesced_ranges = 0;
  /// Bytes actually transferred from storage (>= requested when sieving).
  Bytes transferred_bytes = 0;
  Bytes requested_bytes = 0;
  /// Hole bytes read through by data sieving.
  Bytes sieved_bytes = 0;
};

class CollectiveIo {
 public:
  struct Request {
    FileId file = 0;
    Bytes offset = 0;
    Bytes size = 0;
  };

  CollectiveIo(Simulator& sim, StorageSystem& storage,
               CollectiveConfig cfg = {})
      : sim_(sim), storage_(storage), cfg_(cfg) {}

  /// MPI_File_read_all: every participant's request list, one call.  `done`
  /// fires when every coalesced range has been read and redistributed.
  void read_all(const std::vector<Request>& requests,
                std::function<void()> done);

  /// Pure planning step, exposed for tests: coalesces sorted requests into
  /// the ranges the aggregators will fetch.
  [[nodiscard]] std::vector<Request> coalesce(std::vector<Request> requests) const;

  [[nodiscard]] const CollectiveStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  StorageSystem& storage_;
  CollectiveConfig cfg_;
  CollectiveStats stats_;
};

}  // namespace dasched
