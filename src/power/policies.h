// The paper's four disk power-saving mechanisms (Sec. II).
//
//  * SimpleSpinDown      — spin down after a fixed idleness timeout x,
//                          spin up on the next request (Fig. 2).
//  * PredictionSpinDown  — predict the next idle length; if it clears the
//                          spin-down break-even point, spin down immediately
//                          and spin back up ahead of the predicted end.  An
//                          idle period that outlives its prediction is
//                          re-evaluated against the long-class average.
//  * HistoryMultiSpeed   — predict the idle length and transition to the
//                          most appropriate RPM, returning to full speed
//                          ahead of time (Fig. 3a); same re-evaluation.
//  * StaggeredMultiSpeed — walk down the RPM ladder one step per x1 msec of
//                          continued idleness; return to full speed when the
//                          next request arrives (Fig. 3b).
//
// All four work with or without the compiler-directed scheduling framework.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "disk/disk.h"
#include "power/idle_predictor.h"

namespace dasched {

/// Tunables for the four mechanisms (paper Sec. V-A defaults).
struct PolicyConfig {
  /// Simple: idleness timeout before spinning down.
  SimTime simple_timeout = msec(50.0);
  /// Simple: minimum time the disk stays up after a spin-up before another
  /// spin-down may trigger.  Guards against the rolling-blackout failure
  /// mode of fixed-timeout policies (cf. adaptive spin-down policies,
  /// Douglis et al.); disk firmware ships equivalent duty-cycle limits.
  SimTime simple_cooldown = sec(30.0);
  /// Staggered: wait between successive downward speed steps (x1), also used
  /// as the initial wait before the first step.
  SimTime staggered_step = msec(50.0);
  /// Staggered: minimum full-speed dwell after a restore before stepping
  /// down again (same duty-cycle guard as simple_cooldown).
  SimTime staggered_cooldown = sec(30.0);
  /// EWMA smoothing for the idle-length predictors.
  double ewma_alpha = 0.5;
  /// Idle-class boundaries (see IdlePredictor): burst / medium / long.
  SimTime medium_idle_threshold = sec(1.0);
  SimTime long_idle_threshold = sec(60.0);
  /// Prediction/History: required ratio of predicted idleness over the
  /// break-even length before committing to a transition.
  double breakeven_margin = 1.1;
  /// Prediction/History: minimum delay before re-evaluating an idle period
  /// that outlived its prediction.
  SimTime recheck_min = msec(500.0);

  friend bool operator==(const PolicyConfig&, const PolicyConfig&) = default;
};

class SimpleSpinDown final : public PowerPolicy {
 public:
  explicit SimpleSpinDown(PolicyConfig cfg = {}) : cfg_(cfg) {}

  void on_idle_begin() override;
  void on_request_arrival() override;
  void reset() override {
    timer_ = EventHandle();
    last_spin_ups_ = 0;
    cooldown_until_ = 0;
  }
  [[nodiscard]] std::string name() const override { return "simple"; }

 private:
  PolicyConfig cfg_;
  EventHandle timer_;
  std::int64_t last_spin_ups_ = 0;
  SimTime cooldown_until_ = 0;
};

class PredictionSpinDown final : public PowerPolicy {
 public:
  explicit PredictionSpinDown(PolicyConfig cfg = {})
      : cfg_(cfg),
        predictor_(cfg.ewma_alpha, cfg.medium_idle_threshold,
                   cfg.long_idle_threshold) {}

  void on_idle_begin() override;
  void on_request_arrival() override;
  void reset() override {
    predictor_ = IdlePredictor(cfg_.ewma_alpha, cfg_.medium_idle_threshold,
                               cfg_.long_idle_threshold);
    idle_since_.reset();
    last_predicted_ = 0;
    recheck_timer_ = EventHandle();
    wakeup_timer_ = EventHandle();
  }
  [[nodiscard]] std::string name() const override { return "prediction"; }

  /// Idle length above which a spin-down saves energy (computed from the
  /// disk's power/time constants).
  [[nodiscard]] SimTime break_even() const;

 private:
  void commit(SimTime expected_remaining);
  void recheck();
  [[nodiscard]] bool still_idle() const;

  PolicyConfig cfg_;
  IdlePredictor predictor_;
  std::optional<SimTime> idle_since_;
  SimTime last_predicted_ = 0;  // prediction made at idle begin (telemetry)
  EventHandle recheck_timer_;
  EventHandle wakeup_timer_;
};

class HistoryMultiSpeed final : public PowerPolicy {
 public:
  explicit HistoryMultiSpeed(PolicyConfig cfg = {})
      : cfg_(cfg),
        predictor_(cfg.ewma_alpha, cfg.medium_idle_threshold,
                   cfg.long_idle_threshold) {}

  void on_idle_begin() override;
  void on_request_arrival() override;
  void reset() override {
    predictor_ = IdlePredictor(cfg_.ewma_alpha, cfg_.medium_idle_threshold,
                               cfg_.long_idle_threshold);
    idle_since_.reset();
    last_predicted_ = 0;
    recheck_timer_ = EventHandle();
    restore_timer_ = EventHandle();
  }
  [[nodiscard]] std::string name() const override { return "history"; }

  /// Chooses the energy-optimal feasible speed for a predicted idle length;
  /// returns max RPM when no reduced speed pays off.
  [[nodiscard]] Rpm choose_rpm(SimTime predicted_idle) const;

 private:
  void commit(SimTime expected_remaining);
  void recheck();
  [[nodiscard]] bool still_idle() const;

  PolicyConfig cfg_;
  IdlePredictor predictor_;
  std::optional<SimTime> idle_since_;
  SimTime last_predicted_ = 0;  // prediction made at idle begin (telemetry)
  EventHandle recheck_timer_;
  EventHandle restore_timer_;
};

class StaggeredMultiSpeed final : public PowerPolicy {
 public:
  explicit StaggeredMultiSpeed(PolicyConfig cfg = {}) : cfg_(cfg) {}

  void on_idle_begin() override;
  void on_request_arrival() override;
  void reset() override {
    step_timer_ = EventHandle();
    cooldown_until_ = 0;
  }
  [[nodiscard]] std::string name() const override { return "staggered"; }

 private:
  void arm_step_timer();
  void step_down();

  PolicyConfig cfg_;
  EventHandle step_timer_;
  SimTime cooldown_until_ = 0;
};

/// The strategies evaluated in the paper, plus the Default (no policy).
enum class PolicyKind { kNone, kSimple, kPrediction, kHistory, kStaggered };

[[nodiscard]] const char* to_string(PolicyKind k);

/// True when the policy needs a multi-speed (DRPM) disk.
[[nodiscard]] bool needs_multi_speed(PolicyKind k);

/// Creates a policy instance (nullptr for kNone).
[[nodiscard]] std::unique_ptr<PowerPolicy> make_policy(PolicyKind kind,
                                                       const PolicyConfig& cfg = {});

}  // namespace dasched
