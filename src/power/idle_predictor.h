// Idle-period length predictor.
//
// The paper's prediction-based and history-based strategies "assume that
// successive idle periods exhibit similar behavior as far as their duration
// is concerned".  Real I/O-phase/compute-phase workloads produce
// *multi-modal* idle distributions:
//   burst gaps   (< ~1 s)   — between requests inside an I/O burst,
//   medium gaps  (1–60 s)   — per-iteration compute stretches, the
//                             multi-speed sweet spot,
//   long gaps    (>= ~60 s) — whole-program phases, the only idleness that
//                             clears the spin-down break-even point.
// The predictor keeps one exponentially weighted moving average per class.
// `predict()` follows the paper's premise (the next period resembles the
// last one's class); the per-class averages let the policies re-evaluate an
// idle period that has already outlived its initial prediction (policies.cc).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace dasched {

class IdlePredictor {
 public:
  explicit IdlePredictor(double alpha = 0.5, SimTime medium_threshold = sec(1.0),
                         SimTime long_threshold = sec(60.0))
      : alpha_(alpha),
        medium_threshold_(medium_threshold),
        long_threshold_(long_threshold) {}

  enum class Class { kBurst, kMedium, kLong };

  [[nodiscard]] Class classify(SimTime idle_length) const {
    if (idle_length >= long_threshold_) return Class::kLong;
    if (idle_length >= medium_threshold_) return Class::kMedium;
    return Class::kBurst;
  }

  /// Records a completed idle period.
  void observe(SimTime idle_length) {
    const double x = static_cast<double>(idle_length);
    const Class c = classify(idle_length);
    Bucket& b = bucket(c);
    b.ewma = b.count == 0 ? x : alpha_ * x + (1.0 - alpha_) * b.ewma;
    b.count += 1;
    consecutive_same_ = (count_ > 0 && c == last_class_) ? consecutive_same_ + 1 : 1;
    last_class_ = c;
    count_ += 1;
  }

  /// Predicted length of the next idle period: the average of the class the
  /// last period fell into; 0 until the first observation.
  [[nodiscard]] SimTime predict() const {
    if (count_ == 0) return 0;
    return static_cast<SimTime>(bucket(last_class_).ewma);
  }

  /// Average of previously seen medium gaps (0 when none).
  [[nodiscard]] SimTime medium_ewma() const {
    return static_cast<SimTime>(medium_.ewma);
  }
  /// Average of previously seen long (phase) gaps (0 when none).
  [[nodiscard]] SimTime long_ewma() const {
    return static_cast<SimTime>(long_.ewma);
  }

  [[nodiscard]] std::int64_t observations() const { return count_; }
  /// Length of the current run of same-class observations; policies commit
  /// at idle *begin* only when the run is >= 2, otherwise they wait for a
  /// re-check to confirm (avoids acting on one-off outliers).
  [[nodiscard]] std::int64_t consecutive_same_class() const {
    return consecutive_same_;
  }
  [[nodiscard]] Class last_class() const { return last_class_; }
  [[nodiscard]] SimTime medium_threshold() const { return medium_threshold_; }
  [[nodiscard]] SimTime long_threshold() const { return long_threshold_; }

 private:
  struct Bucket {
    double ewma = 0.0;
    std::int64_t count = 0;
  };

  [[nodiscard]] Bucket& bucket(Class c) {
    switch (c) {
      case Class::kBurst: return burst_;
      case Class::kMedium: return medium_;
      case Class::kLong: return long_;
    }
    return burst_;
  }
  [[nodiscard]] const Bucket& bucket(Class c) const {
    return const_cast<IdlePredictor*>(this)->bucket(c);
  }

  double alpha_;
  SimTime medium_threshold_;
  SimTime long_threshold_;
  Bucket burst_;
  Bucket medium_;
  Bucket long_;
  std::int64_t count_ = 0;
  std::int64_t consecutive_same_ = 0;
  Class last_class_ = Class::kBurst;
};

}  // namespace dasched
