#include "power/policies.h"

#include <algorithm>
#include <limits>

namespace dasched {

// --------------------------------------------------------------------------
// SimpleSpinDown
// --------------------------------------------------------------------------

void SimpleSpinDown::on_idle_begin() {
  timer_.cancel();
  const SimTime now = disk_->sim().now();
  // Duty-cycle guard: a fresh spin-up opens a cooldown window during which
  // the timeout is deferred, breaking the rolling-blackout feedback loop
  // (spin-up stalls creating the very idleness that triggers the next
  // spin-down).
  const std::int64_t ups = disk_->stats().spin_ups;
  if (ups != last_spin_ups_) {
    last_spin_ups_ = ups;
    cooldown_until_ = now + cfg_.simple_cooldown;
  }
  const SimTime delay =
      std::max(cfg_.simple_timeout, cooldown_until_ - now);
  timer_ = disk_->sim().schedule_after(delay, [this] {
    if (disk_->state() == DiskState::kIdle && disk_->queue_empty()) {
      disk_->request_spin_down();
      note_action(PolicyDecision::kSpinDown, /*predicted_idle=*/0, /*rpm=*/0);
    }
  });
}

void SimpleSpinDown::on_request_arrival() { timer_.cancel(); }

// --------------------------------------------------------------------------
// PredictionSpinDown
// --------------------------------------------------------------------------

SimTime PredictionSpinDown::break_even() const {
  const DiskParams& p = disk_->params();
  const PowerModel& pm = disk_->power_model();
  const Watts idle_w = pm.idle_w(p.max_rpm);
  const Watts saved_per_sec = idle_w - pm.standby_w();
  if (saved_per_sec.value() <= 0) return std::numeric_limits<SimTime>::max();
  // Idle length L where spinning down + staying in standby + spinning back
  // up costs exactly as much as idling through:
  //   P_dn*t_dn + P_sb*(L - t_dn - t_up) + P_up*t_up = P_idle * L.
  const Joules numerator =
      pm.spin_down_w() * p.spin_down_time +
      pm.spin_up_w() * p.spin_up_time -
      pm.standby_w() * (p.spin_down_time + p.spin_up_time);
  return sec(numerator / saved_per_sec);
}

bool PredictionSpinDown::still_idle() const {
  return disk_->state() == DiskState::kIdle && disk_->queue_empty();
}

void PredictionSpinDown::commit(SimTime expected_remaining) {
  disk_->request_spin_down();
  note_action(PolicyDecision::kSpinDown, expected_remaining, /*rpm=*/0);
  const DiskParams& p = disk_->params();
  // Fig. 2: transition back to active ahead of time to hide the spin-up.
  const SimTime wake_at =
      disk_->sim().now() + expected_remaining - p.spin_up_time;
  const SimTime earliest = disk_->sim().now() + p.spin_down_time;
  wakeup_timer_.cancel();
  wakeup_timer_ = disk_->sim().schedule_at(std::max(wake_at, earliest), [this] {
    disk_->request_spin_up();
    note_action(PolicyDecision::kPreWake, last_predicted_, /*rpm=*/0);
    // Should the idle period outlive the prediction, resume watching it.
    recheck_timer_.cancel();
    recheck_timer_ = disk_->sim().schedule_after(
        disk_->params().spin_up_time + cfg_.recheck_min, [this] { recheck(); });
  });
}

void PredictionSpinDown::on_idle_begin() {
  idle_since_ = disk_->sim().now();
  const auto threshold = static_cast<SimTime>(
      cfg_.breakeven_margin * static_cast<double>(break_even()));
  const SimTime predicted = predictor_.predict();
  last_predicted_ = predicted;
  if (predictor_.consecutive_same_class() >= 2 && predicted >= threshold) {
    commit(predicted);  // "starts to spin down the disk right away"
    return;
  }
  // Otherwise re-evaluate once the period outlives typical burst gaps.
  recheck_timer_.cancel();
  recheck_timer_ = disk_->sim().schedule_after(
      std::max(2 * predicted, cfg_.recheck_min), [this] { recheck(); });
}

void PredictionSpinDown::recheck() {
  if (!still_idle() || !idle_since_.has_value()) return;
  const SimTime elapsed = disk_->sim().now() - *idle_since_;
  const auto threshold = static_cast<SimTime>(
      cfg_.breakeven_margin * static_cast<double>(break_even()));

  // An idle period that has covered a fair share of the historical phase
  // length is very likely a phase gap; estimate the remainder from history.
  const SimTime phase_avg = predictor_.long_ewma();
  SimTime remaining_est = 0;
  if (phase_avg > 0 && elapsed >= phase_avg / 16) {
    remaining_est = std::max(phase_avg - elapsed, elapsed);
  } else if (elapsed >= threshold) {
    remaining_est = elapsed;  // already enormous: bet on continuation
  }
  if (remaining_est >= threshold) {
    commit(remaining_est);
    return;
  }
  // Keep watching; checks thin out as the idle period grows.
  recheck_timer_ = disk_->sim().schedule_after(
      std::max(elapsed / 2, cfg_.recheck_min), [this] { recheck(); });
}

void PredictionSpinDown::on_request_arrival() {
  if (idle_since_.has_value()) {
    const SimTime actual = disk_->sim().now() - *idle_since_;
    predictor_.observe(actual);
    note_idle_observed(last_predicted_, actual);
    idle_since_.reset();
  }
  recheck_timer_.cancel();
  wakeup_timer_.cancel();
}

// --------------------------------------------------------------------------
// HistoryMultiSpeed
// --------------------------------------------------------------------------

Rpm HistoryMultiSpeed::choose_rpm(SimTime predicted_idle) const {
  const DiskParams& p = disk_->params();
  const PowerModel& pm = disk_->power_model();
  const Joules idle_at_max_j = pm.idle_w(p.max_rpm) * predicted_idle;

  Rpm best = p.max_rpm;
  Joules best_j = idle_at_max_j;
  p.for_each_rpm_level([&](Rpm r) {
    if (r == p.max_rpm) return;
    const SimTime down_t = p.rpm_transition_time(p.max_rpm, r);
    const SimTime up_t = p.rpm_transition_time(r, p.max_rpm);
    // Feasible only if we can reach the speed and come back within the
    // predicted idleness (the ahead-of-time return of Fig. 3a).
    if (down_t + up_t >= predicted_idle) return;
    const Joules trans_j = pm.rpm_transition_w(p.max_rpm, r) * down_t +
                           pm.rpm_transition_w(r, p.max_rpm) * up_t;
    const Joules dwell_j = pm.idle_w(r) * (predicted_idle - down_t - up_t);
    const Joules total = cfg_.breakeven_margin * (trans_j + dwell_j);
    if (total < best_j) {
      best_j = total;
      best = r;
    }
  });
  return best;
}

bool HistoryMultiSpeed::still_idle() const {
  return (disk_->state() == DiskState::kIdle ||
          disk_->state() == DiskState::kChangingSpeed) &&
         disk_->queue_empty();
}

void HistoryMultiSpeed::commit(SimTime expected_remaining) {
  const Rpm target = choose_rpm(expected_remaining);
  if (target == disk_->params().max_rpm) return;
  disk_->request_rpm(target);
  note_action(PolicyDecision::kSetRpm, expected_remaining, target);
  const SimTime up_t =
      disk_->params().rpm_transition_time(target, disk_->params().max_rpm);
  const SimTime down_t =
      disk_->params().rpm_transition_time(disk_->params().max_rpm, target);
  const SimTime wake_at = disk_->sim().now() + expected_remaining - up_t;
  restore_timer_.cancel();
  restore_timer_ = disk_->sim().schedule_at(
      std::max(wake_at, disk_->sim().now() + down_t), [this, up_t] {
        if (!disk_->queue_empty()) return;
        disk_->request_rpm(disk_->params().max_rpm);
        note_action(PolicyDecision::kPreWake, last_predicted_,
                    disk_->params().max_rpm);
        // If the idle period outlives the prediction, keep watching it; the
        // escalating re-check may slow the disk down again.
        recheck_timer_.cancel();
        recheck_timer_ = disk_->sim().schedule_after(
            up_t + cfg_.recheck_min, [this] { recheck(); });
      });
}

void HistoryMultiSpeed::on_idle_begin() {
  idle_since_ = disk_->sim().now();
  const SimTime predicted = predictor_.predict();
  last_predicted_ = predicted;
  if (predictor_.consecutive_same_class() >= 2 &&
      choose_rpm(predicted) != disk_->params().max_rpm) {
    commit(predicted);
    return;
  }
  recheck_timer_.cancel();
  recheck_timer_ = disk_->sim().schedule_after(
      std::max(2 * predicted, cfg_.recheck_min), [this] { recheck(); });
}

void HistoryMultiSpeed::recheck() {
  if (!still_idle() || !idle_since_.has_value()) return;
  const SimTime elapsed = disk_->sim().now() - *idle_since_;

  // Estimate the remainder from the best matching idle class the period has
  // grown into: phase gaps first, then per-iteration medium gaps, then the
  // period's own momentum.
  const SimTime phase_avg = predictor_.long_ewma();
  const SimTime medium_avg = predictor_.medium_ewma();
  SimTime remaining_est;
  if (phase_avg > 0 && elapsed >= phase_avg / 16) {
    remaining_est = std::max(phase_avg - elapsed, elapsed);
  } else if (medium_avg > 0 && elapsed >= medium_avg / 4) {
    remaining_est = std::max(medium_avg - elapsed, elapsed / 2);
  } else {
    remaining_est = elapsed;
  }
  if (choose_rpm(remaining_est) != disk_->params().max_rpm) {
    commit(remaining_est);
    return;
  }
  recheck_timer_ = disk_->sim().schedule_after(
      std::max(elapsed / 2, cfg_.recheck_min), [this] { recheck(); });
}

void HistoryMultiSpeed::on_request_arrival() {
  if (idle_since_.has_value()) {
    const SimTime actual = disk_->sim().now() - *idle_since_;
    predictor_.observe(actual);
    note_idle_observed(last_predicted_, actual);
    idle_since_.reset();
  }
  recheck_timer_.cancel();
  restore_timer_.cancel();
  if (disk_->desired_rpm() != disk_->params().max_rpm ||
      disk_->current_rpm() != disk_->params().max_rpm) {
    disk_->request_rpm(disk_->params().max_rpm);
    note_action(PolicyDecision::kRestoreRpm, /*predicted_idle=*/0,
                disk_->params().max_rpm);
  }
}

// --------------------------------------------------------------------------
// StaggeredMultiSpeed
// --------------------------------------------------------------------------

void StaggeredMultiSpeed::on_idle_begin() { arm_step_timer(); }

void StaggeredMultiSpeed::arm_step_timer() {
  step_timer_.cancel();
  const SimTime now = disk_->sim().now();
  const SimTime delay =
      std::max(cfg_.staggered_step, cooldown_until_ - now);
  step_timer_ =
      disk_->sim().schedule_after(delay, [this] { step_down(); });
}

void StaggeredMultiSpeed::step_down() {
  if (!disk_->queue_empty()) return;
  const DiskParams& p = disk_->params();
  const Rpm next = std::max(p.min_rpm, disk_->desired_rpm() - p.rpm_step);
  if (next == disk_->desired_rpm()) return;  // already at the floor
  disk_->request_rpm(next);
  note_action(PolicyDecision::kStepDown, /*predicted_idle=*/0, next);
  arm_step_timer();
}

void StaggeredMultiSpeed::on_request_arrival() {
  step_timer_.cancel();
  if (disk_->desired_rpm() != disk_->params().max_rpm ||
      disk_->current_rpm() != disk_->params().max_rpm) {
    disk_->request_rpm(disk_->params().max_rpm);
    note_action(PolicyDecision::kRestoreRpm, /*predicted_idle=*/0,
                disk_->params().max_rpm);
    // Full-speed dwell before the ladder walk may begin again.
    cooldown_until_ = disk_->sim().now() + cfg_.staggered_cooldown;
  }
}

// --------------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------------

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kNone: return "default";
    case PolicyKind::kSimple: return "simple";
    case PolicyKind::kPrediction: return "prediction";
    case PolicyKind::kHistory: return "history";
    case PolicyKind::kStaggered: return "staggered";
  }
  return "?";
}

bool needs_multi_speed(PolicyKind k) {
  return k == PolicyKind::kHistory || k == PolicyKind::kStaggered;
}

std::unique_ptr<PowerPolicy> make_policy(PolicyKind kind, const PolicyConfig& cfg) {
  switch (kind) {
    case PolicyKind::kNone: return nullptr;
    case PolicyKind::kSimple: return std::make_unique<SimpleSpinDown>(cfg);
    case PolicyKind::kPrediction: return std::make_unique<PredictionSpinDown>(cfg);
    case PolicyKind::kHistory: return std::make_unique<HistoryMultiSpeed>(cfg);
    case PolicyKind::kStaggered: return std::make_unique<StaggeredMultiSpeed>(cfg);
  }
  return nullptr;
}

}  // namespace dasched
