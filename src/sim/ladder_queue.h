// Tiered timestamp event queues for the simulator hot core (DESIGN.md §15).
//
// The event engine pops 24-byte POD `QueuedEvent` entries in the strict
// total order (time, seq).  Because every key is unique, ANY correct
// priority queue pops the identical sequence — which is what lets the
// tiered `LadderQueue` below replace the binary heap bit-identically
// (proved by tests/sim/queue_differential_test.cc and the hexfloat probe).
//
// `LadderQueue` keeps three tiers, nearest-first:
//
//   bottom  — a sorted ring of the nearest events (ascending by key, popped
//             from the head).  Small queues live here entirely: pop is a
//             pointer bump and the common timer-chain insert is an O(1)
//             append at the tail, which is where the >=1.15x win over the
//             heap on BM_EventCoreTimerChains comes from.
//   rungs   — up to kMaxRungs bucket arrays, each subdividing one parent
//             bucket (or the initial top span) into kBucketsPerRung
//             equal-width time slices.  A bucket is an intrusive singly
//             linked list threaded through one shared node arena, so an
//             insert is O(1), spawning a finer rung is pure relinking, and
//             the arena's capacity — bounded by the peak number of
//             rung-resident events — is the only allocation the tier can
//             ever make.  Buckets are only sorted when they become the
//             nearest work.
//   top     — an unsorted overflow list for the far future, consumed
//             wholesale into a fresh rung when the ladder drains.
//
// Tier boundaries are *inclusive time* bounds (`bot_last_`, per-rung
// `last`), so a tie group can never straddle a boundary and the seq
// tie-break always resolves inside one tier.  `BinaryHeapQueue` is the
// classic heap kept behind the strict `DASCHED_QUEUE={heap,ladder}` knob
// for A/B benchmarking (BENCH_event_queue.json).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "util/annotations.h"
#include "util/units.h"

namespace dasched {

/// One queued event: fire time, total-order key (stream << 48 | local seq),
/// and the pooled record slot holding the callback.  24 bytes, trivially
/// copyable — the queues move these with memmove.
struct QueuedEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
};
static_assert(sizeof(QueuedEvent) == 24);
static_assert(std::is_trivially_copyable_v<QueuedEvent>);

/// The strict total order every queue implementation must realize.
[[nodiscard]] inline bool event_before(const QueuedEvent& a,
                                       const QueuedEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Event-queue implementation selector.  `kLadder` is the default hot core;
/// `kHeap` is the classic binary heap kept for A/B benchmarking and as the
/// differential-test reference.  Selected per simulator, or process-wide
/// through the strict `DASCHED_QUEUE` environment knob.
enum class QueueKind : int { kHeap, kLadder };

[[nodiscard]] const char* to_string(QueueKind kind);

/// DASCHED_QUEUE from the environment: "heap" or "ladder" (default
/// `fallback`, which is kLadder for every engine entry point).  A malformed
/// value is fatal (exit 2), matching engine/env_knobs strictness.
[[nodiscard]] QueueKind queue_kind_from_env(QueueKind fallback);

/// The classic binary heap over (time, seq), on a reservable flat vector.
class BinaryHeapQueue {
 public:
  // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
  void reserve(std::size_t n) { heap_.reserve(n); }
  /// Drops every entry, keeping the backing capacity warm.
  void clear() { heap_.clear(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const QueuedEvent& top() const { return heap_.front(); }

  DASCHED_HOT void push(const QueuedEvent& e) {
    // dasched-lint: allow(hot-alloc): growth only past the topology
    // pre-reserve (Simulator::reserve_events); steady state never grows.
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  DASCHED_HOT void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

 private:
  /// `a` fires later than `b`: the max-heap on "later" is a min-queue.
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return event_before(b, a);
    }
  };
  std::vector<QueuedEvent> heap_;
};

class LadderQueue {
 public:
  /// Buckets per rung: each spawn subdivides a time span 64-fold.
  static constexpr int kBucketsPerRung = 64;
  /// Rung recursion cap; at the cap an oversized bucket is sorted whole.
  static constexpr int kMaxRungs = 8;
  /// A bucket larger than this spawns a finer rung instead of sorting.
  static constexpr std::size_t kBucketSortMax = 16;
  /// Bottom size that triggers a spill of its far tail into the top tier.
  /// Deliberately small: a sorted ring pays O(len) memmove per mid-ring
  /// insert, so interleaved timer chains (the 64-chain microbench shape)
  /// only beat the heap when the ring stays a couple of cache lines long
  /// and the rung buckets absorb everything behind it at O(1).
  static constexpr std::size_t kBottomSpill = 48;
  /// Entries the bottom keeps (at least) when spilling.
  static constexpr std::size_t kBottomKeep = 16;

  void reserve(std::size_t n) {
    // Each tier alone can hold all n outstanding events (one giant tie
    // group in the bottom, everything far-future in the top, everything
    // mid-range in the rung arena), so size each for n.
    // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
    bot_.reserve(n + 1);
    // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
    top_.reserve(n);
    // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
    arena_.reserve(n);
  }

  /// Drops every entry and re-arms the small-queue fast path, keeping all
  /// tier capacity (ring, arena, top) warm.  The internal tier placement of
  /// subsequently pushed events never affects pop order — keys are unique
  /// and every tier realizes the same (time, seq) total order — so a
  /// cleared queue is observably identical to a fresh one.
  void clear() {
    bot_.clear();
    bot_head_ = 0;
    bot_last_ = SimTime::max();
    num_rungs_ = 0;
    arena_.clear();
    free_head_ = -1;
    top_.clear();
    top_min_ = SimTime::max();
    top_max_ = SimTime::min();
    size_ = 0;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// The minimum-key entry.  O(1) and const: the bottom tier is non-empty
  /// whenever the queue is (pop refills eagerly).  Undefined when empty.
  [[nodiscard]] const QueuedEvent& top() const { return bot_[bot_head_]; }

  DASCHED_HOT void push(const QueuedEvent& e) {
    ++size_;
    if (e.time <= bot_last_) {
      bottom_insert(e);
      return;
    }
    // Finest rung first: rung ranges tile [bot_last_+1, coarsest.last]
    // contiguously, nearest range in the highest-numbered rung.
    for (int k = num_rungs_; k-- > 0;) {
      Rung& r = rungs_[static_cast<std::size_t>(k)];
      if (e.time <= r.last) {
        const auto b = static_cast<std::size_t>((e.time - r.start) / r.width);
        assert(b < static_cast<std::size_t>(kBucketsPerRung));
        const std::int32_t node = alloc_node(e);
        arena_[static_cast<std::size_t>(node)].next = r.heads[b];
        r.heads[b] = node;
        ++r.counts[b];
        ++r.count;
        return;
      }
    }
    if (top_.empty() || e.time < top_min_) top_min_ = e.time;
    if (top_.empty() || e.time > top_max_) top_max_ = e.time;
    // dasched-lint: allow(hot-alloc): growth only past the topology
    // pre-reserve (Simulator::reserve_events); steady state never grows.
    top_.push_back(e);
  }

  DASCHED_HOT void pop() {
    assert(size_ > 0);
    --size_;
    ++bot_head_;
    if (bot_head_ == bot_.size()) {
      bot_.clear();
      bot_head_ = 0;
      if (size_ > 0) {
        refill();
      } else {
        reset_empty();
      }
    } else if (bot_head_ >= kBottomKeep && bot_head_ * 2 >= bot_.size()) {
      // Amortized-O(1) compaction: each erase moves at most as many
      // entries as pops occurred since the last one.
      bot_.erase(bot_.begin(),
                 bot_.begin() + static_cast<std::ptrdiff_t>(bot_head_));
      bot_head_ = 0;
    }
  }

  // --- introspection (tests/sim/ladder_queue_test.cc) -----------------------
  [[nodiscard]] int num_rungs() const { return num_rungs_; }
  [[nodiscard]] std::size_t bottom_size() const {
    return bot_.size() - bot_head_;
  }
  [[nodiscard]] std::size_t top_size() const { return top_.size(); }
  [[nodiscard]] std::size_t arena_capacity() const {
    return arena_.capacity();
  }

  /// Test-only validation of the tier invariants; aborts on violation.
  /// Checks unconditionally (not assert-based) so Release-built tests —
  /// the tier-1 configuration — still exercise it.
  void validate() const {
    const auto check = [](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "LadderQueue::validate: %s\n", what);
        std::abort();
      }
    };
    std::size_t total = bottom_size() + top_.size();
    for (std::size_t i = bot_head_ + 1; i < bot_.size(); ++i) {
      check(event_before(bot_[i - 1], bot_[i]), "bottom out of order");
    }
    if (num_rungs_ > 0 || !top_.empty()) {
      for (std::size_t i = bot_head_; i < bot_.size(); ++i) {
        check(bot_[i].time <= bot_last_, "bottom entry past its bound");
      }
    }
    SimTime lower = bot_last_;
    for (int k = num_rungs_; k-- > 0;) {
      const Rung& r = rungs_[static_cast<std::size_t>(k)];
      std::size_t count = 0;
      for (int b = 0; b < kBucketsPerRung; ++b) {
        std::size_t in_bucket = 0;
        for (std::int32_t i = r.heads[static_cast<std::size_t>(b)]; i >= 0;
             i = arena_[static_cast<std::size_t>(i)].next) {
          const QueuedEvent& e = arena_[static_cast<std::size_t>(i)].ev;
          check(e.time > lower && e.time <= r.last, "rung entry misfiled");
          check((e.time - r.start) / r.width == b, "wrong bucket");
          ++in_bucket;
        }
        check(in_bucket == r.counts[static_cast<std::size_t>(b)],
              "bucket count out of sync");
        count += in_bucket;
      }
      check(count == r.count, "rung count out of sync");
      total += count;
      lower = r.last;
    }
    for (const QueuedEvent& e : top_) {
      check(e.time > lower, "top entry under the ladder span");
      check(e.time >= top_min_ && e.time <= top_max_, "top bounds stale");
    }
    check(total == size_, "tier sizes out of sync");
  }

 private:
  /// Arena node: one rung-resident event threaded into its bucket's list
  /// (`next` doubles as the free-list link when the node is unused).
  struct Node {
    QueuedEvent ev;
    std::int32_t next;
  };

  struct Rung {
    SimTime start;  // time of bucket 0
    SimTime last;   // inclusive last covered time
    SimTime width;  // bucket width (>= 1)
    int cur = 0;    // first unconsumed bucket
    std::size_t count = 0;
    std::array<std::int32_t, kBucketsPerRung> heads;
    std::array<std::uint32_t, kBucketsPerRung> counts;
  };

  [[nodiscard]] std::size_t bottom_len() const {
    return bot_.size() - bot_head_;
  }

  DASCHED_HOT std::int32_t alloc_node(const QueuedEvent& e) {
    std::int32_t i = free_head_;
    if (i >= 0) {
      free_head_ = arena_[static_cast<std::size_t>(i)].next;
    } else {
      i = static_cast<std::int32_t>(arena_.size());
      // dasched-lint: allow(hot-alloc): arena growth is bounded by the peak
      // rung-resident event count, below the Simulator::reserve_events
      // pre-reserve; steady state never grows.
      arena_.push_back(Node{});
    }
    arena_[static_cast<std::size_t>(i)].ev = e;
    return i;
  }

  void free_node(std::int32_t i) {
    arena_[static_cast<std::size_t>(i)].next = free_head_;
    free_head_ = i;
  }

  void bottom_insert(const QueuedEvent& e) {
    if (bot_head_ == bot_.size() || event_before(bot_.back(), e)) {
      // dasched-lint: allow(hot-alloc): growth only past the topology
      // pre-reserve (Simulator::reserve_events); steady state never grows.
      bot_.push_back(e);  // the timer-chain common case: new maximum
      maybe_spill();
      return;
    }
    const auto first = bot_.begin() + static_cast<std::ptrdiff_t>(bot_head_);
    const auto pos = std::lower_bound(first, bot_.end(), e, event_before);
    if (bot_head_ > 0 && pos - first <= bot_.end() - pos) {
      // The head side is shorter and has slack: shift it down one slot.
      std::move(first, pos, first - 1);
      --bot_head_;
      *(pos - 1) = e;
    } else {
      // dasched-lint: allow(hot-alloc): growth only past the topology
      // pre-reserve (Simulator::reserve_events); steady state never grows.
      bot_.insert(pos, e);
    }
    maybe_spill();
  }

  /// Moves the bottom's far tail into the top tier when it outgrows the
  /// ring.  Only legal with no active rungs (the moved entries must stay
  /// above every tier boundary); with rungs active the bottom is naturally
  /// bounded by one bucket span.  The cut is advanced to a time boundary so
  /// no tie group straddles the new bound.
  void maybe_spill() {
    if (num_rungs_ != 0 || bottom_len() <= kBottomSpill) return;
    std::size_t cut = bot_head_ + kBottomKeep;
    while (cut < bot_.size() && bot_[cut].time == bot_[cut - 1].time) ++cut;
    if (cut == bot_.size()) return;  // one giant tie group: nothing to move
    if (top_.empty()) {
      top_min_ = bot_[cut].time;
      top_max_ = bot_.back().time;
    } else {
      // Existing top entries all lie above the old bottom bound, hence
      // above everything being moved.
      if (bot_[cut].time < top_min_) top_min_ = bot_[cut].time;
    }
    const auto cut_it = bot_.begin() + static_cast<std::ptrdiff_t>(cut);
    // dasched-lint: allow(hot-alloc): growth only past the topology
    // pre-reserve (Simulator::reserve_events); steady state never grows.
    top_.insert(top_.end(), cut_it, bot_.end());
    bot_.erase(cut_it, bot_.end());
    bot_last_ = bot_.back().time;
  }

  /// Bottom drained with events remaining: move the globally nearest batch
  /// into it.  Every loop iteration either fills the bottom and returns, or
  /// strictly shrinks the structure it recursed into (collapses an empty
  /// rung, spawns a finer rung from one bucket, or converts the top).
  DASCHED_HOT void refill() {
    for (;;) {
      if (num_rungs_ > 0) {
        Rung& r = rungs_[static_cast<std::size_t>(num_rungs_ - 1)];
        if (r.count == 0) {
          bot_last_ = r.last;  // boundary moves up to the collapsed span
          --num_rungs_;
          continue;
        }
        while (r.heads[static_cast<std::size_t>(r.cur)] < 0) ++r.cur;
        const auto cur = static_cast<std::size_t>(r.cur);
        const std::int32_t head = r.heads[cur];
        const std::size_t n = r.counts[cur];
        const SimTime b_first = r.start + r.width * r.cur;
        const SimTime b_last = std::min(b_first + r.width - SimTime{1}, r.last);
        r.heads[cur] = -1;
        r.counts[cur] = 0;
        r.count -= n;
        ++r.cur;
        if (n > kBucketSortMax && b_last > b_first && num_rungs_ < kMaxRungs) {
          spawn_rung_from_list(head, n, b_first, b_last);
          continue;
        }
        for (std::int32_t i = head; i >= 0;) {
          // dasched-lint: allow(hot-alloc): growth only past the topology
          // pre-reserve (Simulator::reserve_events); steady state never
          // grows.
          bot_.push_back(arena_[static_cast<std::size_t>(i)].ev);
          const std::int32_t nxt = arena_[static_cast<std::size_t>(i)].next;
          free_node(i);
          i = nxt;
        }
        std::sort(bot_.begin(), bot_.end(), event_before);
        bot_last_ = b_last;
        return;
      }
      assert(!top_.empty() && "refill with nothing left outside the bottom");
      if (top_.size() <= kBucketSortMax || top_min_ == top_max_) {
        // dasched-lint: allow(hot-alloc): growth only past the topology
        // pre-reserve (Simulator::reserve_events); steady state never grows.
        bot_.insert(bot_.end(), top_.begin(), top_.end());
        std::sort(bot_.begin(), bot_.end(), event_before);
        bot_last_ = top_max_;
        top_.clear();
        return;
      }
      spawn_rung_from_top();
    }
  }

  /// Activates the next rung over the inclusive span [first, last] with
  /// empty buckets.  Returns it for the caller to fill.
  Rung& spawn_rung(SimTime first, SimTime last) {
    assert(num_rungs_ < kMaxRungs);
    assert(last > first && "a one-time span is sorted, never subdivided");
    Rung& r = rungs_[static_cast<std::size_t>(num_rungs_++)];
    const auto span = static_cast<std::uint64_t>(last.count()) -
                      static_cast<std::uint64_t>(first.count()) + 1;
    r.start = first;
    r.last = last;
    r.width = SimTime{static_cast<std::int64_t>(
        (span + kBucketsPerRung - 1) / kBucketsPerRung)};
    r.cur = 0;
    r.count = 0;
    r.heads.fill(-1);
    r.counts.fill(0);
    return r;
  }

  /// Subdivides a parent bucket (already unlinked by the caller) into a
  /// fresh rung by relinking its nodes — no allocation, no copies.
  void spawn_rung_from_list(std::int32_t head, std::size_t n, SimTime first,
                            SimTime last) {
    Rung& r = spawn_rung(first, last);
    r.count = n;
    for (std::int32_t i = head; i >= 0;) {
      Node& node = arena_[static_cast<std::size_t>(i)];
      const std::int32_t nxt = node.next;
      const auto b =
          static_cast<std::size_t>((node.ev.time - r.start) / r.width);
      node.next = r.heads[b];
      r.heads[b] = i;
      ++r.counts[b];
      i = nxt;
    }
  }

  /// Converts the far-future top tier into the first rung.
  void spawn_rung_from_top() {
    Rung& r = spawn_rung(top_min_, top_max_);
    r.count = top_.size();
    for (const QueuedEvent& e : top_) {
      const auto b = static_cast<std::size_t>((e.time - r.start) / r.width);
      const std::int32_t node = alloc_node(e);
      arena_[static_cast<std::size_t>(node)].next = r.heads[b];
      r.heads[b] = node;
      ++r.counts[b];
    }
    top_.clear();
  }

  /// The queue just drained completely: re-arm the small-queue fast path
  /// (everything below the open bound goes straight to the sorted ring).
  /// A fully-drained rung can still be structurally active here — refill
  /// only collapses rungs when it runs — so discard any leftovers; a stale
  /// active rung would disable maybe_spill() for the rest of the queue's
  /// life.
  void reset_empty() {
    assert(top_.empty() && "drained queue with far-future entries left");
    num_rungs_ = 0;
    bot_last_ = SimTime::max();
  }

  std::vector<QueuedEvent> bot_;  // ascending; live entries at [bot_head_..)
  std::size_t bot_head_ = 0;
  /// Inclusive time bound of the bottom tier; max() = "bottom takes all".
  SimTime bot_last_ = SimTime::max();
  std::array<Rung, kMaxRungs> rungs_;  // [0..num_rungs_) active, 0 coarsest
  int num_rungs_ = 0;
  std::vector<Node> arena_;  // rung-resident nodes + intrusive free list
  std::int32_t free_head_ = -1;
  std::vector<QueuedEvent> top_;  // unsorted far future
  SimTime top_min_ = SimTime::max();
  SimTime top_max_ = SimTime::min();
  std::size_t size_ = 0;
};

}  // namespace dasched
