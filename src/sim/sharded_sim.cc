#include "sim/sharded_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "util/parse.h"

namespace dasched {

const char* to_string(LaneAssign mode) {
  switch (mode) {
    case LaneAssign::kRoundRobin:
      return "round_robin";
    case LaneAssign::kBalanced:
      return "balanced";
  }
  return "?";
}

std::optional<LaneAssign> parse_lane_assign(const std::string& s) {
  if (s == "round_robin") return LaneAssign::kRoundRobin;
  if (s == "balanced") return LaneAssign::kBalanced;
  return std::nullopt;
}

LaneAssign lane_assign_from_env(LaneAssign fallback) {
  const char* v = std::getenv("DASCHED_LANE_ASSIGN");
  if (v == nullptr) return fallback;
  const auto parsed = parse_lane_assign(v);
  if (!parsed) die_invalid_value("DASCHED_LANE_ASSIGN", v, "round_robin|balanced");
  return *parsed;
}

std::vector<std::vector<int>> assign_lanes(int num_streams, int shards,
                                           LaneAssign mode,
                                           const std::vector<double>& costs) {
  assert(num_streams >= 1 && shards >= 1);
  std::vector<std::vector<int>> owned(static_cast<std::size_t>(shards));
  owned[0].push_back(0);  // lane 0 always runs on the driving worker
  if (mode == LaneAssign::kRoundRobin) {
    for (int s = 1; s < num_streams; ++s) {
      owned[static_cast<std::size_t>((s - 1) % shards)].push_back(s);
    }
    return owned;
  }

  const auto cost_of = [&costs](int s) {
    return static_cast<std::size_t>(s) < costs.size()
               ? costs[static_cast<std::size_t>(s)]
               : 1.0;
  };
  // Greedy LPT: heaviest lane first onto the least-loaded worker, every tie
  // broken by index so the map is a pure function of (topology, costs).
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_streams - 1));
  for (int s = 1; s < num_streams; ++s) order.push_back(s);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (cost_of(a) != cost_of(b)) return cost_of(a) > cost_of(b);
    return a < b;
  });
  std::vector<double> load(static_cast<std::size_t>(shards), 0.0);
  load[0] = cost_of(0);  // lane 0's pinned weight counts toward worker 0
  for (int s : order) {
    std::size_t w = 0;
    for (std::size_t k = 1; k < load.size(); ++k) {
      if (load[k] < load[w]) w = k;
    }
    owned[w].push_back(s);
    load[w] += cost_of(s);
  }
  // Keep each worker's execution order by stream id: determinism does not
  // need it (event keys decide), but deterministic iteration is free and
  // keeps diagnostics stable.
  for (auto& lanes : owned) std::sort(lanes.begin(), lanes.end());
  return owned;
}

ShardedSimulator::ShardedSimulator(ShardedSimConfig cfg) : cfg_(std::move(cfg)) {
  assert(cfg_.num_streams >= 1 && "need at least the client stream");
  assert(cfg_.shards >= 1 && "need at least one worker");
  assert(cfg_.lookahead > SimTime{0} &&
         "conservative windows need a positive lookahead");
  lanes_.reserve(static_cast<std::size_t>(cfg_.num_streams));
  for (int s = 0; s < cfg_.num_streams; ++s) {
    lanes_.push_back(std::make_unique<Simulator>());
    lanes_.back()->set_stream(static_cast<std::uint32_t>(s));
  }
  to_node_.resize(lanes_.size());
  to_client_.resize(lanes_.size());

  // The lane→worker map is a pure wall-clock concern — any assignment
  // yields identical results (tests/driver/shard_differential_test.cc
  // proves it for both policies).
  owned_ = assign_lanes(cfg_.num_streams, cfg_.shards, cfg_.lane_assign,
                        cfg_.lane_costs);
  lane_worker_.assign(lanes_.size(), 0);
  for (std::size_t w = 0; w < owned_.size(); ++w) {
    for (int s : owned_[w]) {
      lane_worker_[static_cast<std::size_t>(s)] = static_cast<int>(w);
    }
  }

  lane_next_.assign(lanes_.size(), SimTime::max());
  lane_touched_.assign(lanes_.size(), 0);
  mail_flags_.assign(
      static_cast<std::size_t>(cfg_.shards) * static_cast<std::size_t>(cfg_.shards) * 2,
      0);
  workers_.resize(static_cast<std::size_t>(cfg_.shards));
  tournament_.reset(lanes_.size());
}

void ShardedSimulator::post(int from, int to, SimTime t, EventFn fn) {
  assert(from >= 0 && from < num_streams() && to >= 0 && to < num_streams());
  assert(from != to && (from == 0 || to == 0) &&
         "cross-shard traffic is client <-> node only");
  assert(t >= lane(from).now() + cfg_.lookahead &&
         "cross-shard send violates the lookahead bound");
  const std::uint64_t seq = lane(from).take_send_seq();
  const int sender_w = lane_worker_[static_cast<std::size_t>(from)];
  const int receiver_w = lane_worker_[static_cast<std::size_t>(to)];
  if (sender_w == receiver_w) {
    // Same-worker fast path: inject past the mailbox.  `t` is at or beyond
    // the current window end (the lookahead bound above), so the event
    // cannot run inside this window — it lands in the receiver's queue in
    // exactly the position the drain would have given it next window, and
    // the (time, seq) key keeps the merged order identical.  At shards=1
    // this is every send, which is most of the protocol tax.
    lane(to).inject(t, seq, std::move(fn));
    lane_touched_[static_cast<std::size_t>(to)] = 1;
    return;
  }
  Mailbox& box = to == 0 ? to_client_[static_cast<std::size_t>(from)]
                         : to_node_[static_cast<std::size_t>(to)];
  // dasched-lint: allow(hot-alloc): mailbox vectors retain their capacity
  // across windows (clear() on drain), so steady state allocates nothing.
  box.buf[write_parity_].push_back(MailEntry{t, seq, std::move(fn)});
  WorkerState& ws = workers_[static_cast<std::size_t>(sender_w)];
  if (t < ws.out_mail_min[write_parity_]) ws.out_mail_min[write_parity_] = t;
  set_mail_flag(sender_w, receiver_w, write_parity_, true);
}

void ShardedSimulator::init_window_state() {
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    lane_next_[s] = lanes_[s]->next_event_time();
    lane_touched_[s] = 0;
    tournament_.update(s, lane_next_[s]);
  }
  // Re-derive the mailbox bookkeeping from the actual buffer contents: an
  // early stop returns from the barrier before the pending parity drains,
  // so a rerun on the same instance must not trust the minima/flags the
  // previous run left behind.
  std::fill(mail_flags_.begin(), mail_flags_.end(), 0);
  for (WorkerState& ws : workers_) {
    ws.dirty.clear();
    ws.out_mail_min[0] = SimTime::max();
    ws.out_mail_min[1] = SimTime::max();
  }
  const auto account = [this](int from, int to, const Mailbox& box) {
    const int sender_w = lane_worker_[static_cast<std::size_t>(from)];
    const int receiver_w = lane_worker_[static_cast<std::size_t>(to)];
    WorkerState& ws = workers_[static_cast<std::size_t>(sender_w)];
    for (int p = 0; p < 2; ++p) {
      if (box.buf[p].empty()) continue;
      for (const MailEntry& e : box.buf[p]) {
        if (e.time < ws.out_mail_min[p]) ws.out_mail_min[p] = e.time;
      }
      set_mail_flag(sender_w, receiver_w, p, true);
    }
  };
  for (int s = 1; s < num_streams(); ++s) {
    account(0, s, to_node_[static_cast<std::size_t>(s)]);
    account(s, 0, to_client_[static_cast<std::size_t>(s)]);
  }
}

void ShardedSimulator::plan() noexcept {
  // Runs on exactly one thread while every worker is blocked in the
  // barrier, so it may read all per-worker state without synchronization
  // (the barrier provides the happens-before edges both ways).
  drain_parity_ = write_parity_;
  if (failed_.load(std::memory_order_relaxed)) {
    stop_ = true;
    return;
  }
  if (stop_when_ != nullptr && (*stop_when_)()) {
    stop_ = true;
    return;
  }
  // Fold the lanes whose next-event time changed last window into the
  // tournament; everything else is still current.
  for (WorkerState& ws : workers_) {
    for (int s : ws.dirty) {
      tournament_.update(static_cast<std::size_t>(s),
                         lane_next_[static_cast<std::size_t>(s)]);
    }
    ws.dirty.clear();
  }
  // The parity drained last window is about to become the write side
  // again; its buffers are empty, so its minima reset with them — and the
  // reset must precede the minimum below, or a stale min from mail that
  // already drained would key a spurious extra window.  (On the stop paths
  // above the reset is skipped; init_window_state() re-derives everything
  // from the buffers at the next run.)
  for (WorkerState& ws : workers_) {
    ws.out_mail_min[1 - write_parity_] = SimTime::max();
  }
  // Undrained mailbox entries count too: with every lane queue empty an
  // in-flight cross-shard event is still pending work, not a deadlock.
  // The senders' running minima stand in for scanning the buffers; only
  // the write parity can hold entries now, so counting both parities costs
  // nothing and keeps the plan honest against whatever init_window_state()
  // re-derived after an early-stopped previous run.
  SimTime m = tournament_.min();
  for (const WorkerState& ws : workers_) {
    m = std::min({m, ws.out_mail_min[0], ws.out_mail_min[1]});
  }
  assert(m == debug_min_pending_time() && "incremental minimum drifted");
  if (m == std::numeric_limits<SimTime>::max()) {
    // Fully drained without satisfying the stop predicate: the caller's
    // deadlock handling (run_experiment's "clients are stuck") takes over.
    deadlocked_ = true;
    stop_ = true;
    return;
  }
  window_end_ = m + cfg_.lookahead;
  write_parity_ = 1 - write_parity_;
  ++windows_run_;
}

SimTime ShardedSimulator::debug_min_pending_time() const {
  SimTime m = std::numeric_limits<SimTime>::max();
  for (const auto& l : lanes_) m = std::min(m, l->next_event_time());
  for (const auto* boxes : {&to_node_, &to_client_}) {
    for (const Mailbox& box : *boxes) {
      for (const auto& buf : box.buf) {
        for (const MailEntry& e : buf) m = std::min(m, e.time);
      }
    }
  }
  return m;
}

void ShardedSimulator::drain_worker(int worker) {
  // Skip the whole drain pass unless some sender flagged mail for this
  // worker in the drain parity; the flag bytes are single-writer per
  // window (senders set the write parity, we clear the drain parity).
  bool any = false;
  for (int s = 0; s < cfg_.shards; ++s) {
    if (mail_flag(s, worker, drain_parity_)) {
      any = true;
      set_mail_flag(s, worker, drain_parity_, false);
    }
  }
  if (!any) return;
  const auto drain_box = [this](int stream, Mailbox& box) {
    auto& buf = box.buf[drain_parity_];
    if (buf.empty()) return;
    Simulator& l = lane(stream);
    SimTime& next = lane_next_[static_cast<std::size_t>(stream)];
    for (MailEntry& e : buf) {
      // Fold the mail into the cached next-event time as it lands, so the
      // run gate below sees an exact value.  Mail can sit below window_end_
      // — precisely when it was the minimum the planner keyed the window on
      // (window_end_ = mail time + lookahead, e.g. an idle node taking its
      // first request) — and a stale cache would skip the lane, running the
      // event one window late and breaking the exact window sequence.
      if (e.time < next) next = e.time;
      l.inject(e.time, e.seq, std::move(e.fn));
    }
    buf.clear();
    lane_touched_[static_cast<std::size_t>(stream)] = 1;
  };
  for (int stream : owned_[static_cast<std::size_t>(worker)]) {
    if (stream == 0) {
      // Inbound responses, in node order — the injection order is
      // irrelevant for the queue (keys decide), but keep it deterministic
      // anyway.
      for (int s = 1; s < num_streams(); ++s) {
        drain_box(0, to_client_[static_cast<std::size_t>(s)]);
      }
    } else {
      drain_box(stream, to_node_[static_cast<std::size_t>(stream)]);
    }
  }
}

void ShardedSimulator::run_worker_window(int worker) {
  const std::vector<int>& mine = owned_[static_cast<std::size_t>(worker)];
  drain_worker(worker);
  for (int stream : mine) {
    // The cached next-event time is exact — the owner refreshed it at the
    // end of the last window and drain_worker just folded in any injected
    // mail — so lanes with nothing inside the window are skipped without
    // touching their queue memory.
    if (lane_next_[static_cast<std::size_t>(stream)] < window_end_) {
      lane_touched_[static_cast<std::size_t>(stream)] = 1;
      lane(stream).run_window(window_end_);
    }
  }
  // Refresh the cache for every lane that ran, drained mail, or took a
  // same-worker inject, and queue the change for the planner's tournament.
  WorkerState& ws = workers_[static_cast<std::size_t>(worker)];
  for (int stream : mine) {
    const auto s = static_cast<std::size_t>(stream);
    if (lane_touched_[s] != 0) {
      lane_touched_[s] = 0;
      lane_next_[s] = lanes_[s]->next_event_time();
      // dasched-lint: allow(hot-alloc): dirty-list capacity is bounded by
      // the worker's lane count.
      ws.dirty.push_back(stream);
    }
  }
}

void ShardedSimulator::worker_main(int worker, WindowBarrier& barrier) {
  for (;;) {
    barrier.arrive_and_wait();  // plan() ran; the window is published
    if (stop_) return;
    if (failed_.load(std::memory_order_relaxed)) continue;
    try {
      run_worker_window(worker);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (error_ == nullptr) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ShardedSimulator::run_single(const std::function<bool()>& stop_when) {
  // shards=1: every lane lives on worker 0 and every send is a direct
  // inject, so there is no mail, no parity, no barrier — just the window
  // loop over the cached lane times.  The window sequence is identical to
  // the threaded path's because the minimum is computed over the same
  // exact values.
  for (;;) {
    if (stop_when()) return;
    const SimTime m = tournament_.min();
    if (m == std::numeric_limits<SimTime>::max()) {
      deadlocked_ = true;
      return;
    }
    window_end_ = m + cfg_.lookahead;
    ++windows_run_;
    run_worker_window(0);
    WorkerState& ws = workers_[0];
    for (int s : ws.dirty) {
      tournament_.update(static_cast<std::size_t>(s),
                         lane_next_[static_cast<std::size_t>(s)]);
    }
    ws.dirty.clear();
  }
}

SimTime ShardedSimulator::run(const std::function<bool()>& stop_when) {
  stop_when_ = &stop_when;
  stop_ = false;
  deadlocked_ = false;
  windows_run_ = 0;
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;
  init_window_state();

  if (cfg_.shards == 1) {
    try {
      run_single(stop_when);
    } catch (...) {
      error_ = std::current_exception();
    }
  } else {
    WindowBarrier barrier(cfg_.shards, PlanCompletion{this});
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg_.shards - 1));
    for (int w = 1; w < cfg_.shards; ++w) {
      threads.emplace_back([this, w, &barrier] { worker_main(w, barrier); });
    }
    worker_main(0, barrier);
    for (std::thread& t : threads) t.join();
  }
  stop_when_ = nullptr;
  if (error_ != nullptr) std::rethrow_exception(error_);

  // Stamp every lane to the end of the last executed window so trailing
  // idle accrual at finalize is deterministic for every shard count.  When
  // the run stopped before any window, the lanes keep their clocks.
  for (auto& l : lanes_) {
    if (window_end_ > l->now()) l->set_now(window_end_);
  }
  return lane(0).now();
}

void ShardedSimulator::reset() {
  for (auto& l : lanes_) l->reset();
  for (auto* boxes : {&to_node_, &to_client_}) {
    for (Mailbox& box : *boxes) {
      box.buf[0].clear();
      box.buf[1].clear();
    }
  }
  write_parity_ = 1;
  drain_parity_ = 0;
  window_end_ = 0;
  stop_ = false;
  deadlocked_ = false;
  windows_run_ = 0;
  // lane_next_/lane_touched_/tournament_/mail minima/flags are re-derived
  // from the (now empty) buffers by init_window_state() at the next run().
}

std::int64_t ShardedSimulator::events_executed() const {
  std::int64_t total = 0;
  for (const auto& l : lanes_) total += l->events_executed();
  return total;
}

}  // namespace dasched
