#include "sim/sharded_sim.h"

#include <limits>
#include <thread>
#include <utility>

namespace dasched {

ShardedSimulator::ShardedSimulator(ShardedSimConfig cfg) : cfg_(cfg) {
  assert(cfg_.num_streams >= 1 && "need at least the client stream");
  assert(cfg_.shards >= 1 && "need at least one worker");
  assert(cfg_.lookahead > SimTime{0} &&
         "conservative windows need a positive lookahead");
  lanes_.reserve(static_cast<std::size_t>(cfg_.num_streams));
  for (int s = 0; s < cfg_.num_streams; ++s) {
    lanes_.push_back(std::make_unique<Simulator>());
    lanes_.back()->set_stream(static_cast<std::uint32_t>(s));
  }
  to_node_.resize(lanes_.size());
  to_client_.resize(lanes_.size());

  // Lane 0 always runs on worker 0 (it is the heaviest stream: all clients
  // plus routing); node lane j goes to worker (j - 1) % shards.  The map is
  // a pure wall-clock concern — any assignment yields identical results.
  owned_.resize(static_cast<std::size_t>(cfg_.shards));
  owned_[0].push_back(0);
  for (int s = 1; s < cfg_.num_streams; ++s) {
    owned_[static_cast<std::size_t>((s - 1) % cfg_.shards)].push_back(s);
  }
}

void ShardedSimulator::post(int from, int to, SimTime t, EventFn fn) {
  assert(from >= 0 && from < num_streams() && to >= 0 && to < num_streams());
  assert(from != to && (from == 0 || to == 0) &&
         "cross-shard traffic is client <-> node only");
  assert(t >= lane(from).now() + cfg_.lookahead &&
         "cross-shard send violates the lookahead bound");
  const std::uint64_t seq = lane(from).take_send_seq();
  Mailbox& box = to == 0 ? to_client_[static_cast<std::size_t>(from)]
                         : to_node_[static_cast<std::size_t>(to)];
  // dasched-lint: allow(hot-alloc): mailbox vectors retain their capacity
  // across windows (clear() on drain), so steady state allocates nothing.
  box.buf[write_parity_].push_back(MailEntry{t, seq, std::move(fn)});
}

SimTime ShardedSimulator::min_pending_time() const {
  SimTime m = std::numeric_limits<SimTime>::max();
  for (const auto& l : lanes_) {
    const SimTime t = l->next_event_time();
    if (t < m) m = t;
  }
  // Undrained mailbox entries count too: with every lane queue empty an
  // in-flight cross-shard event is still pending work, not a deadlock.
  // Scanning both parities is safe — drained buffers are empty.
  for (const auto* boxes : {&to_node_, &to_client_}) {
    for (const Mailbox& box : *boxes) {
      for (const auto& buf : box.buf) {
        for (const MailEntry& e : buf) {
          if (e.time < m) m = e.time;
        }
      }
    }
  }
  return m;
}

void ShardedSimulator::plan() noexcept {
  // Runs on exactly one thread while every worker is blocked in the
  // barrier, so it may read all lanes and mailboxes without synchronization.
  drain_parity_ = write_parity_;
  if (failed_.load(std::memory_order_relaxed)) {
    stop_ = true;
    return;
  }
  if (stop_when_ != nullptr && (*stop_when_)()) {
    stop_ = true;
    return;
  }
  const SimTime m = min_pending_time();
  if (m == std::numeric_limits<SimTime>::max()) {
    // Fully drained without satisfying the stop predicate: the caller's
    // deadlock handling (run_experiment's "clients are stuck") takes over.
    deadlocked_ = true;
    stop_ = true;
    return;
  }
  window_end_ = m + cfg_.lookahead;
  write_parity_ = 1 - write_parity_;
  ++windows_run_;
}

void ShardedSimulator::drain_lane(int stream) {
  Simulator& l = lane(stream);
  auto drain_box = [&](Mailbox& box) {
    auto& buf = box.buf[drain_parity_];
    for (MailEntry& e : buf) l.inject(e.time, e.seq, std::move(e.fn));
    buf.clear();
  };
  if (stream == 0) {
    // Inbound responses, in node order — the injection order is irrelevant
    // for the queue (keys decide), but keep it deterministic anyway.
    for (int s = 1; s < num_streams(); ++s) {
      drain_box(to_client_[static_cast<std::size_t>(s)]);
    }
  } else {
    drain_box(to_node_[static_cast<std::size_t>(stream)]);
  }
}

void ShardedSimulator::worker_main(int worker, WindowBarrier& barrier) {
  const std::vector<int>& mine = owned_[static_cast<std::size_t>(worker)];
  for (;;) {
    barrier.arrive_and_wait();  // plan() ran; the window is published
    if (stop_) return;
    if (failed_.load(std::memory_order_relaxed)) continue;
    try {
      for (int stream : mine) drain_lane(stream);
      for (int stream : mine) lane(stream).run_window(window_end_);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (error_ == nullptr) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

SimTime ShardedSimulator::run(const std::function<bool()>& stop_when) {
  stop_when_ = &stop_when;
  stop_ = false;
  deadlocked_ = false;
  windows_run_ = 0;
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;

  WindowBarrier barrier(cfg_.shards, PlanCompletion{this});
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg_.shards - 1));
  for (int w = 1; w < cfg_.shards; ++w) {
    threads.emplace_back([this, w, &barrier] { worker_main(w, barrier); });
  }
  worker_main(0, barrier);
  for (std::thread& t : threads) t.join();
  stop_when_ = nullptr;
  if (error_ != nullptr) std::rethrow_exception(error_);

  // Stamp every lane to the end of the last executed window so trailing
  // idle accrual at finalize is deterministic for every shard count.  When
  // the run stopped before any window, the lanes keep their clocks.
  for (auto& l : lanes_) {
    if (window_end_ > l->now()) l->set_now(window_end_);
  }
  return lane(0).now();
}

std::int64_t ShardedSimulator::events_executed() const {
  std::int64_t total = 0;
  for (const auto& l : lanes_) total += l->events_executed();
  return total;
}

}  // namespace dasched
