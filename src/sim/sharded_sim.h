// Intra-run sharded discrete-event execution (DESIGN.md §14).
//
// A `ShardedSimulator` partitions one simulation into logical streams, each
// backed by its own `Simulator` lane: stream 0 is the client layer (cluster,
// scheduler threads, global buffer, storage routing), stream 1+i is I/O node
// i with its disks and power policies.  Lanes are mapped onto `shards`
// worker threads and driven in conservative lookahead windows: every worker
// executes its lanes' events inside the window [M, M+L), where M is the
// global minimum pending time and L is the minimum cross-shard latency (one
// network hop).  The only cross-shard traffic — request routing hops and
// join-completion responses — always lands at least L in the future, so a
// window can never miss an incoming event.
//
// Determinism is by construction, not by luck: every event carries the key
// (time, stream, local_seq) — encoded as `(stream << 48) | seq` so the
// existing (time, seq) comparator realizes it — and cross-shard sends
// travel through per-pair single-writer mailboxes that are drained only at
// window barriers.  The per-lane event sequences therefore depend only on
// the topology, never on the worker count: `shards=1` and `shards=N`
// produce bit-identical results (tests/driver/shard_differential_test.cc).
//
// The mailboxes are double-buffered by window parity and their vectors are
// recycled, so the steady-state cross-shard path performs zero heap
// allocations (tests/sim/shard_mailbox_alloc_test.cc).
#pragma once

#include <atomic>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/simulator.h"
#include "util/annotations.h"
#include "util/units.h"

namespace dasched {

struct ShardedSimConfig {
  /// Logical streams: 1 (client layer) + number of I/O nodes.
  int num_streams = 1;
  /// Worker threads the node lanes are distributed over (>= 1).  Any value
  /// yields the same results; it only changes wall-clock parallelism.
  int shards = 1;
  /// Conservative window length: the minimum latency of any cross-shard
  /// event (one network hop).  Must be positive.
  SimTime lookahead = 0;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedSimConfig cfg);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int num_streams() const {
    return static_cast<int>(lanes_.size());
  }
  [[nodiscard]] int shards() const { return cfg_.shards; }
  [[nodiscard]] SimTime lookahead() const { return cfg_.lookahead; }

  /// The lane backing logical stream `stream` (0 = client layer).
  [[nodiscard]] Simulator& lane(int stream) {
    return *lanes_[static_cast<std::size_t>(stream)];
  }

  /// Schedules `fn` at absolute time `t` on lane `to`, from lane `from`.
  /// Cross traffic is client <-> node only, and `t` must respect the
  /// lookahead bound (`t >= sender now + lookahead`).  Called only by the
  /// worker that owns lane `from` (single writer per mailbox buffer).
  DASCHED_HOT void post(int from, int to, SimTime t, EventFn fn);

  /// Drives every lane until `stop_when` returns true at a window barrier,
  /// or the whole simulation drains.  `stop_when` runs single-threaded
  /// inside the barrier and must not throw.  After the run every lane's
  /// clock is stamped to the end of the last executed window, so trailing
  /// idle accrual is deterministic and shard-count invariant.  Returns the
  /// final common time.
  SimTime run(const std::function<bool()>& stop_when);

  /// True when the last `run` stopped because every lane drained before
  /// `stop_when` was satisfied.
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }

  /// Total events executed across all lanes.
  [[nodiscard]] std::int64_t events_executed() const;

  /// Lookahead windows executed by the last `run` (diagnostics).
  [[nodiscard]] std::int64_t windows_run() const { return windows_run_; }

 private:
  struct MailEntry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  /// One directed channel; double-buffered by window parity so the sender
  /// appends to one buffer while the receiver drains the other.
  struct Mailbox {
    std::vector<MailEntry> buf[2];
  };

  /// Barrier completion hook; std::barrier requires a nothrow callable.
  struct PlanCompletion {
    ShardedSimulator* self;
    void operator()() const noexcept { self->plan(); }
  };
  using WindowBarrier = std::barrier<PlanCompletion>;

  void plan() noexcept;  // barrier completion: computes the next window
  void worker_main(int worker, WindowBarrier& barrier);
  void drain_lane(int stream);
  [[nodiscard]] SimTime min_pending_time() const;

  ShardedSimConfig cfg_;
  std::vector<std::unique_ptr<Simulator>> lanes_;
  /// Inbound mailboxes: client -> node j is `to_node_[j]`, node j -> client
  /// is `to_client_[j]` (index 0 of each is unused padding).
  std::vector<Mailbox> to_node_;
  std::vector<Mailbox> to_client_;
  std::vector<std::vector<int>> owned_;  // worker -> lanes it executes

  // Window plan; written by plan() inside the barrier, read by workers
  // during the window (the barrier provides the ordering).
  int write_parity_ = 1;  // pre-run posts land in parity 1 (window 0 drains it)
  int drain_parity_ = 0;
  SimTime window_end_ = 0;
  bool stop_ = false;
  bool deadlocked_ = false;
  std::int64_t windows_run_ = 0;

  const std::function<bool()>* stop_when_ = nullptr;
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace dasched
