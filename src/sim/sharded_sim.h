// Intra-run sharded discrete-event execution (DESIGN.md §14, §15.3).
//
// A `ShardedSimulator` partitions one simulation into logical streams, each
// backed by its own `Simulator` lane: stream 0 is the client layer (cluster,
// scheduler threads, global buffer, storage routing), stream 1+i is I/O node
// i with its disks and power policies.  Lanes are mapped onto `shards`
// worker threads and driven in conservative lookahead windows: every worker
// executes its lanes' events inside the window [M, M+L), where M is the
// global minimum pending time and L is the minimum cross-shard latency (one
// network hop).  The only cross-shard traffic — request routing hops and
// join-completion responses — always lands at least L in the future, so a
// window can never miss an incoming event.
//
// Determinism is by construction, not by luck: every event carries the key
// (time, stream, local_seq) — encoded as `(stream << 48) | seq` so the
// existing (time, seq) comparator realizes it — and cross-shard sends
// travel through per-pair single-writer mailboxes that are drained only at
// window barriers.  The per-lane event sequences therefore depend only on
// the topology, never on the worker count or the lane→worker map:
// `shards=1` and `shards=N`, round_robin and balanced, all produce
// bit-identical results (tests/driver/shard_differential_test.cc).
//
// Window planning is O(changed lanes · log lanes), not O(lanes + mail):
// each worker caches its lanes' next-event times and appends only *changed*
// lanes to a single-writer dirty list; the planner folds those into a
// min-time tournament tree and takes the global minimum in O(1).  Pending
// cross-shard mail is covered by per-worker outbound minima, so mailbox
// contents are never scanned.  Sends whose receiver lane lives on the same
// worker bypass the mailbox entirely and inject directly — at shards=1
// that is *all* traffic, and the whole run degenerates to a barrier-free
// single-thread loop over the cached lane times.  Every shortcut preserves
// the exact window sequence of the naive scan, because each replaces a scan
// with an incrementally maintained copy of the same minimum.
//
// The mailboxes are double-buffered by window parity and their vectors are
// recycled, so the steady-state cross-shard path performs zero heap
// allocations (tests/sim/shard_mailbox_alloc_test.cc).
#pragma once

#include <atomic>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/annotations.h"
#include "util/units.h"

namespace dasched {

/// Lane→worker placement policy.  A pure wall-clock concern: every
/// assignment yields bit-identical results (event keys decide all ordering),
/// so the policy is free to chase balance.
enum class LaneAssign : int {
  /// Lane 0 on worker 0; node lane j on worker (j-1) % shards.  The PR 7
  /// mapping, kept as the reference and for A/B runs.
  kRoundRobin,
  /// Greedy LPT (longest-processing-time-first) over a per-lane cost model:
  /// heaviest lane first onto the least-loaded worker.  Lane 0 stays pinned
  /// to worker 0 (the driver thread), but its cost counts toward worker 0's
  /// load, so node lanes flow to the other workers first.
  kBalanced,
};

[[nodiscard]] const char* to_string(LaneAssign mode);
[[nodiscard]] std::optional<LaneAssign> parse_lane_assign(
    const std::string& s);
/// DASCHED_LANE_ASSIGN from the environment: "round_robin" or "balanced"
/// (default `fallback`).  A malformed value is fatal (exit 2).
[[nodiscard]] LaneAssign lane_assign_from_env(LaneAssign fallback);

/// Deterministic lane→worker map: returns worker → lanes it executes, every
/// lane exactly once, lane 0 always on worker 0.  `costs` holds one
/// relative weight per stream (empty = uniform); kRoundRobin ignores it.
/// A pure function of (num_streams, shards, mode, costs) — no measurement
/// feedback — so the map, like everything else, is reproducible.
[[nodiscard]] std::vector<std::vector<int>> assign_lanes(
    int num_streams, int shards, LaneAssign mode,
    const std::vector<double>& costs);

/// Incremental minimum over per-lane next-event times: a flat segment tree
/// ("tournament") with O(log n) point update and O(1) global min.  Only
/// ever touched single-threaded (the window planner, or the shards=1 loop).
class MinTimeTournament {
 public:
  void reset(std::size_t n) {
    leaves_ = 1;
    while (leaves_ < n) leaves_ <<= 1;
    tree_.assign(2 * leaves_, SimTime::max());
  }

  DASCHED_HOT void update(std::size_t i, SimTime t) {
    std::size_t k = leaves_ + i;
    tree_[k] = t;
    for (k >>= 1; k >= 1; k >>= 1) {
      tree_[k] = std::min(tree_[2 * k], tree_[2 * k + 1]);
    }
  }

  /// Minimum over all slots; SimTime::max() when nothing is pending.
  [[nodiscard]] SimTime min() const { return tree_[1]; }

 private:
  std::size_t leaves_ = 1;
  std::vector<SimTime> tree_ = std::vector<SimTime>(2, SimTime::max());
};

struct ShardedSimConfig {
  /// Logical streams: 1 (client layer) + number of I/O nodes.
  int num_streams = 1;
  /// Worker threads the node lanes are distributed over (>= 1).  Any value
  /// yields the same results; it only changes wall-clock parallelism.
  int shards = 1;
  /// Conservative window length: the minimum latency of any cross-shard
  /// event (one network hop).  Must be positive.
  SimTime lookahead = 0;
  /// Lane→worker placement (wall-clock only; results are identical).
  LaneAssign lane_assign = LaneAssign::kRoundRobin;
  /// Relative per-stream weights for kBalanced (empty = uniform).
  std::vector<double> lane_costs;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedSimConfig cfg);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int num_streams() const {
    return static_cast<int>(lanes_.size());
  }
  [[nodiscard]] int shards() const { return cfg_.shards; }
  [[nodiscard]] SimTime lookahead() const { return cfg_.lookahead; }

  /// The lane backing logical stream `stream` (0 = client layer).
  [[nodiscard]] Simulator& lane(int stream) {
    return *lanes_[static_cast<std::size_t>(stream)];
  }

  /// The worker that executes lane `stream` (tests/sim/sharded_sim_test.cc).
  [[nodiscard]] int lane_worker(int stream) const {
    return lane_worker_[static_cast<std::size_t>(stream)];
  }

  /// Schedules `fn` at absolute time `t` on lane `to`, from lane `from`.
  /// Cross traffic is client <-> node only, and `t` must respect the
  /// lookahead bound (`t >= sender now + lookahead`).  Called only by the
  /// worker that owns lane `from` (single writer per mailbox buffer).
  /// When `to` lives on the same worker the send injects directly — `t` is
  /// at or past the current window end either way, so the event cannot run
  /// early and lands in the identical queue position.
  DASCHED_HOT void post(int from, int to, SimTime t, EventFn fn);

  /// Drives every lane until `stop_when` returns true at a window barrier,
  /// or the whole simulation drains.  `stop_when` runs single-threaded
  /// inside the barrier and must not throw.  After the run every lane's
  /// clock is stamped to the end of the last executed window, so trailing
  /// idle accrual is deterministic and shard-count invariant.  Returns the
  /// final common time.  May be called again on the same instance: mail an
  /// early stop left undrained is re-accounted from the buffers at the
  /// start of the next run.
  SimTime run(const std::function<bool()>& stop_when);

  /// Restores every lane and mailbox to the constructor postcondition while
  /// keeping all capacity warm (lane event pools, mailbox buffers, dirty
  /// lists): lanes are `Simulator::reset()` (stream ids survive), both
  /// parities of every mailbox are cleared, and the window plan state is
  /// re-zeroed.  `run()` re-derives everything else via
  /// `init_window_state()`.  Lane addresses are stable across the reset, so
  /// layer objects holding `Simulator&` stay valid.
  void reset();

  /// True when the last `run` stopped because every lane drained before
  /// `stop_when` was satisfied.
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }

  /// Total events executed across all lanes.
  [[nodiscard]] std::int64_t events_executed() const;

  /// Lookahead windows executed by the last `run` (diagnostics).
  [[nodiscard]] std::int64_t windows_run() const { return windows_run_; }

 private:
  struct MailEntry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  /// One directed channel; double-buffered by window parity so the sender
  /// appends to one buffer while the receiver drains the other.
  struct Mailbox {
    std::vector<MailEntry> buf[2];
  };
  /// Per-worker window-local state, cache-line padded (each cell has
  /// exactly one writer: `worker` during a window, the planner inside the
  /// barrier).
  struct alignas(64) WorkerState {
    /// Minimum time of mail this worker posted into each parity; read by
    /// the planner in place of scanning mailbox contents.
    SimTime out_mail_min[2] = {SimTime::max(), SimTime::max()};
    /// Lanes whose cached next-event time changed this window; folded into
    /// the tournament by the planner, then cleared.
    std::vector<int> dirty;
  };

  /// Barrier completion hook; std::barrier requires a nothrow callable.
  struct PlanCompletion {
    ShardedSimulator* self;
    void operator()() const noexcept { self->plan(); }
  };
  using WindowBarrier = std::barrier<PlanCompletion>;

  void plan() noexcept;  // barrier completion: computes the next window
  void worker_main(int worker, WindowBarrier& barrier);
  void run_single(const std::function<bool()>& stop_when);
  DASCHED_HOT void run_worker_window(int worker);
  void drain_worker(int worker);
  void init_window_state();
  /// Reference O(lanes + mail) scan the incremental minimum is asserted
  /// against in debug builds.
  [[nodiscard]] SimTime debug_min_pending_time() const;
  [[nodiscard]] bool mail_flag(int sender, int receiver, int parity) const {
    return mail_flags_[static_cast<std::size_t>(
               (sender * cfg_.shards + receiver) * 2 + parity)] != 0;
  }
  void set_mail_flag(int sender, int receiver, int parity, bool v) {
    mail_flags_[static_cast<std::size_t>(
        (sender * cfg_.shards + receiver) * 2 + parity)] =
        static_cast<std::uint8_t>(v);
  }

  ShardedSimConfig cfg_;
  std::vector<std::unique_ptr<Simulator>> lanes_;
  /// Inbound mailboxes: client -> node j is `to_node_[j]`, node j -> client
  /// is `to_client_[j]` (index 0 of each is unused padding).
  std::vector<Mailbox> to_node_;
  std::vector<Mailbox> to_client_;
  std::vector<std::vector<int>> owned_;  // worker -> lanes it executes
  std::vector<int> lane_worker_;         // lane -> owning worker

  // --- incremental window-planning state (DESIGN.md §15.3) ----------------
  /// Cached Simulator::next_event_time per lane.  Written only by the
  /// lane's owner (after running / injecting), read by the planner; the
  /// window barrier provides the happens-before edge.
  std::vector<SimTime> lane_next_;
  /// Lane touched this window (ran, drained mail, or took a direct
  /// inject); owner-worker local.
  std::vector<std::uint8_t> lane_touched_;
  /// "Sender worker posted mail for receiver worker in parity p" bytes,
  /// laid out [sender][receiver][parity].  Each byte has one writer per
  /// window (senders set their write-parity byte, receivers clear their
  /// drain-parity byte; the parities never collide within a window).
  std::vector<std::uint8_t> mail_flags_;
  std::vector<WorkerState> workers_;
  MinTimeTournament tournament_;

  // Window plan; written by plan() inside the barrier, read by workers
  // during the window (the barrier provides the ordering).
  int write_parity_ = 1;  // pre-run posts land in parity 1 (window 0 drains it)
  int drain_parity_ = 0;
  SimTime window_end_ = 0;
  bool stop_ = false;
  bool deadlocked_ = false;
  std::int64_t windows_run_ = 0;

  const std::function<bool()>* stop_when_ = nullptr;
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace dasched
