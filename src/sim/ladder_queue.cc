#include "sim/ladder_queue.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/parse.h"

namespace dasched {

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kLadder:
      return "ladder";
  }
  return "?";
}

QueueKind queue_kind_from_env(QueueKind fallback) {
  const char* v = std::getenv("DASCHED_QUEUE");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "heap") == 0) return QueueKind::kHeap;
  if (std::strcmp(v, "ladder") == 0) return QueueKind::kLadder;
  die_invalid_value("DASCHED_QUEUE", v, "heap|ladder");
}

}  // namespace dasched
