#include "sim/ladder_queue.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dasched {

const char* to_string(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kLadder:
      return "ladder";
  }
  return "?";
}

QueueKind queue_kind_from_env(QueueKind fallback) {
  // Strict parse in the engine/env_knobs mold; implemented here because the
  // sim library sits below the engine library in the link order.
  const char* v = std::getenv("DASCHED_QUEUE");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "heap") == 0) return QueueKind::kHeap;
  if (std::strcmp(v, "ladder") == 0) return QueueKind::kLadder;
  std::fprintf(stderr, "DASCHED_QUEUE: invalid value '%s' (expected %s)\n", v,
               "heap|ladder");
  std::exit(2);
}

}  // namespace dasched
