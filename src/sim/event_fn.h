// Small-buffer callable wrapper for simulator events.
//
// The event queue is the simulation's hottest path: every disk transfer,
// network hop, policy timer and client step allocates one callback.  A
// `std::function` puts most of those captures on the heap; `EventFn` keeps
// any nothrow-movable callable up to `kInlineSize` bytes inline and only
// falls back to one heap allocation for oversized captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dasched {

/// Move-only `void()` callable.  Invoking an empty EventFn is undefined;
/// test with `operator bool` first (the simulator never stores empty ones).
class EventFn {
 public:
  /// Sized for the largest in-tree capture (storage fan-out: this + node +
  /// stripe piece + completion join) so the event hot path never allocates.
  static constexpr std::size_t kInlineSize = 80;

  EventFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function.
  EventFn(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = heap_ops<D>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(target()); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs `dst` from the inline object at `src` and destroys
    /// `src`; null for heap-stored callables (the pointer is stolen instead).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* src, void* dst) {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* p) { static_cast<D*>(p)->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<D*>(p))(); },
        nullptr,
        [](void* p) { delete static_cast<D*>(p); },
    };
    return &ops;
  }

  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->relocate != nullptr;
  }
  void* target() noexcept {
    return is_inline() ? static_cast<void*>(storage_) : heap_;
  }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(other.storage_, storage_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    ops_->destroy(target());
    ops_ = nullptr;
    heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
  void* heap_ = nullptr;
};

}  // namespace dasched
