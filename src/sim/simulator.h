// Discrete-event simulation engine.
//
// A `Simulator` owns a priority queue of (time, sequence) events.  Events
// scheduled for the same instant fire in scheduling order, so the whole
// simulation is deterministic.  Events can be cancelled through the
// `EventHandle` returned by `schedule_at`/`schedule_after`.
//
// The hot path is allocation-lean: callbacks are stored in small-buffer
// `EventFn`s inside a pooled record array (recycled through a free list),
// and the event queue holds 24-byte POD entries.  The queue itself is the
// tiered `LadderQueue` (sim/ladder_queue.h) by default, with the classic
// binary heap selectable through `DASCHED_QUEUE=heap` for A/B runs — both
// realize the same strict (time, seq) total order, so the choice is
// bit-invisible.  With `reserve_events()` sized from the topology, nothing
// is heap allocated per event once the pool has warmed up.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event_fn.h"
#include "sim/ladder_queue.h"
#include "util/annotations.h"
#include "util/observer_list.h"
#include "util/units.h"

namespace dasched {

class Simulator;

/// Passive tap on the event engine, used by the invariant auditor
/// (src/check) and the telemetry recorder (src/telemetry).  All callbacks
/// default to no-ops; with nothing attached each hook site costs one empty
/// list test, so the hooks stay in release builds.  Multiple observers may
/// be attached at once (audit + telemetry compose).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// An event was scheduled for absolute time `t` while the clock read `now`.
  /// `t < now` is a contract violation (the engine clamps it to `now`).
  virtual void on_event_scheduled(std::uint64_t seq, SimTime t, SimTime now) {
    (void)seq, (void)t, (void)now;
  }

  /// An event is about to run.  `cancelled` is true only if the engine is
  /// violating its contract by running a cancelled event.
  virtual void on_event_fired(std::uint64_t seq, SimTime t, bool cancelled) {
    (void)seq, (void)t, (void)cancelled;
  }

  /// A cancelled event was popped and discarded without running.
  virtual void on_event_discarded(std::uint64_t seq) { (void)seq; }
};

/// Cancellation token for a scheduled event.  Copyable; all copies refer to
/// the same underlying event.  Cancelling an already-fired event is a no-op.
/// A handle refers into its simulator's event pool, so it must not be used
/// after the simulator is destroyed (every in-tree holder lives inside the
/// simulation stack, which is torn down before the simulator).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing.  Safe to call repeatedly.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  using Callback = EventFn;

  /// Bit position of the logical-stream id inside an event sequence key.
  /// The key is `(stream << kStreamShift) | local_seq`, so the (time, seq)
  /// comparator realizes the lexicographic order (time, stream, local_seq).
  /// A classic standalone simulator keeps stream 0, where the key equals
  /// the plain scheduling counter and nothing changes bit-wise.
  static constexpr int kStreamShift = 48;

  /// Default construction reads `DASCHED_QUEUE` (default: ladder); the
  /// explicit overload pins the queue kind for in-process A/B tests.
  Simulator() : Simulator(queue_kind_from_env(QueueKind::kLadder)) {}
  explicit Simulator(QueueKind kind) : queue_kind_(kind) {}
  // Event handles and layer objects hold pointers/references to the
  // simulator, so it is pinned in place.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The queue implementation this simulator runs on.
  [[nodiscard]] QueueKind queue_kind() const { return queue_kind_; }

  /// Pre-sizes the event queue, record pool and free list for `n`
  /// concurrently outstanding events.  Called by the driver with a
  /// topology-derived bound so the steady state performs zero queue/pool
  /// allocations (tests/sim/event_queue_alloc_test.cc).
  void reserve_events(std::size_t n) {
    if (queue_kind_ == QueueKind::kLadder) {
      // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
      ladder_.reserve(n);
    } else {
      // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
      heap_.reserve(n);
    }
    // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
    records_.reserve(n);
    // dasched-lint: allow(hot-alloc): grow-only warm-up (high-water-mark)
    free_slots_.reserve(n);
  }

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now()).
  DASCHED_HOT EventHandle schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  DASCHED_HOT EventHandle schedule_after(SimTime delay, Callback cb);

  /// Runs until the event queue drains or `until` is reached (events at
  /// exactly `until` still run).  Returns the final simulated time.
  SimTime run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Runs a single event; returns false if the queue is empty.
  DASCHED_HOT bool step();

  // --- Sharded-execution seam (sim/sharded_sim.h) ---------------------------
  // A `ShardedSimulator` owns one `Simulator` per logical stream and drives
  // the lanes in conservative lookahead windows.  Events keep their sender's
  // (time, stream, local_seq) key when they cross lanes, which is what makes
  // the merged execution order independent of the shard count.

  /// Assigns this simulator's logical stream id.  Must be called before any
  /// event is scheduled; stream 0 (the default) leaves keys bit-identical to
  /// a standalone simulator.
  void set_stream(std::uint32_t stream) {
    assert(next_seq_ == 0 && "stream id must be set before any event");
    seq_base_ = static_cast<std::uint64_t>(stream) << kStreamShift;
  }

  /// Consumes one sequence key from this lane's counter for an event that
  /// will be injected into another lane (cross-shard send).  Consuming from
  /// the sender keeps keys unique and the total order shard-invariant.
  [[nodiscard]] std::uint64_t take_send_seq() { return seq_base_ | next_seq_++; }

  /// Enqueues an event that already carries a sequence key from another
  /// lane's `take_send_seq`.  `t` must be at or after this lane's current
  /// window start (the lookahead protocol guarantees it is at or after the
  /// window *end*).
  DASCHED_HOT void inject(SimTime t, std::uint64_t seq, Callback cb);

  /// Runs every event with time strictly below `end` (the conservative
  /// window bound), leaving later events queued.  Does not advance `now()`
  /// past the last executed event.
  DASCHED_HOT void run_window(SimTime end);

  /// Time of the earliest queued entry, or SimTime::max() when the queue is
  /// empty.  Cancelled entries still count — their time is a lower bound, so
  /// including them is conservative and keeps the answer deterministic.
  [[nodiscard]] SimTime next_event_time() const {
    if (queue_kind_ == QueueKind::kLadder) {
      return ladder_.empty() ? std::numeric_limits<SimTime>::max()
                             : ladder_.top().time;
    }
    return heap_.empty() ? std::numeric_limits<SimTime>::max()
                         : heap_.top().time;
  }

  /// Advances the clock to `t` (>= now()) without running anything; the
  /// sharded driver stamps every lane to the final window end so trailing
  /// idle accrual is deterministic.
  void set_now(SimTime t) {
    assert(t >= now_ && "set_now cannot move the clock backwards");
    now_ = t;
  }

  /// Restores the constructor postcondition — empty queue, zero clock, zero
  /// sequence counter — while keeping every capacity warm (queue tiers,
  /// record pool, free list) so the next run allocates nothing
  /// (tests/driver/workspace_alloc_test.cc).  Every pooled record's
  /// generation is bumped, so `EventHandle`s held across the reset by
  /// long-lived layers become inert instead of dangling.  The stream id
  /// (`set_stream`) and attached observers are preserved; pop order of the
  /// next run is unaffected by the recycled slot/generation values because
  /// event ordering depends only on (time, seq) keys.
  void reset();

  /// Number of events executed so far.
  [[nodiscard]] std::int64_t events_executed() const { return executed_; }

  /// True when no runnable events remain.
  [[nodiscard]] bool idle() const;

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.  Legacy single-consumer entry point; see `add_observer`.
  void set_observer(SimObserver* observer) { observers_.reset(observer); }
  /// Adds one observer to the multiplexing list (audit and telemetry attach
  /// side by side).  Not owned; duplicates and null are ignored.
  void add_observer(SimObserver* observer) { observers_.add(observer); }
  void remove_observer(SimObserver* observer) { observers_.remove(observer); }
  [[nodiscard]] bool has_observers() const { return !observers_.empty(); }

 private:
  friend class EventHandle;

  /// Pooled per-event storage; `gen` distinguishes a live event from stale
  /// handles after the slot has been recycled.
  struct Record {
    EventFn cb;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  // Queue dispatch: one predictable branch per operation.  Both
  // implementations pop the identical (time, seq) order, so `queue_kind_`
  // only moves wall-clock time, never results.
  [[nodiscard]] bool queue_empty() const {
    return queue_kind_ == QueueKind::kLadder ? ladder_.empty() : heap_.empty();
  }
  [[nodiscard]] const QueuedEvent& queue_top() const {
    return queue_kind_ == QueueKind::kLadder ? ladder_.top() : heap_.top();
  }
  DASCHED_HOT void queue_push(const QueuedEvent& e) {
    if (queue_kind_ == QueueKind::kLadder) {
      ladder_.push(e);
    } else {
      heap_.push(e);
    }
  }
  DASCHED_HOT void queue_pop() {
    if (queue_kind_ == QueueKind::kLadder) {
      ladder_.pop();
    } else {
      heap_.pop();
    }
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const;
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);

  SimTime now_ = 0;
  std::uint64_t seq_base_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  QueueKind queue_kind_;
  ObserverList<SimObserver> observers_;
  std::vector<Record> records_;
  std::vector<std::uint32_t> free_slots_;
  LadderQueue ladder_;
  BinaryHeapQueue heap_;
};

}  // namespace dasched
