// Discrete-event simulation engine.
//
// A `Simulator` owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same instant fire in scheduling order, so the
// whole simulation is deterministic.  Events can be cancelled through the
// `EventHandle` returned by `schedule_at`/`schedule_after`.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "util/units.h"

namespace dasched {

class Simulator;

/// Cancellation token for a scheduled event.  Copyable; all copies refer to
/// the same underlying event.  Cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing.  Safe to call repeatedly.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now()).
  EventHandle schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, Callback cb);

  /// Runs until the event queue drains or `until` is reached (events at
  /// exactly `until` still run).  Returns the final simulated time.
  SimTime run(SimTime until = std::numeric_limits<SimTime>::max());

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  /// Number of events executed so far.
  [[nodiscard]] std::int64_t events_executed() const { return executed_; }

  /// True when no runnable events remain.
  [[nodiscard]] bool idle() const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dasched
