#include "sim/simulator.h"

#include <cassert>
#include <limits>
#include <utility>

namespace dasched {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Simulator::schedule_at(SimTime t, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  if (observer_ != nullptr) observer_->on_event_scheduled(seq, t, now_);
  // Under audit the violation is recorded instead of aborting; either way the
  // clock must never be dragged backwards by a past-dated event.
  assert((t >= now_ || observer_ != nullptr) &&
         "cannot schedule an event in the past");
  if (t < now_) t = now_;
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{t, seq, std::move(cb), state});
  return EventHandle{std::move(state)};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) {
      if (observer_ != nullptr) observer_->on_event_discarded(ev.seq);
      continue;
    }
    if (observer_ != nullptr) observer_->on_event_fired(ev.seq, ev.time, false);
    now_ = ev.time;
    ev.state->fired = true;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

SimTime Simulator::run(SimTime until) {
  while (!queue_.empty()) {
    if (queue_.top().time > until) {
      now_ = until;
      return now_;
    }
    step();
  }
  return now_;
}

bool Simulator::idle() const {
  // Cancelled events may still sit in the queue; they do not count as work,
  // but scanning the queue would be O(n).  A conservative "false" when only
  // cancelled events remain is acceptable for all callers (run() skips them).
  return queue_.empty();
}

}  // namespace dasched
