#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace dasched {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(slot_, gen_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_pending(slot_, gen_);
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // dasched-lint: allow(hot-alloc): event-pool growth; slots recycle
  // through free_slots_, so steady state allocates nothing.
  records_.emplace_back();
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Record& rec = records_[slot];
  rec.cb = EventFn();
  rec.cancelled = false;
  // The generation bump turns every outstanding handle to this slot stale,
  // which is exactly the fired/cancelled = "no longer pending" semantics.
  ++rec.gen;
  // dasched-lint: allow(hot-alloc): free-list capacity is bounded by the
  // pool high-water mark.
  free_slots_.push_back(slot);
}

bool Simulator::slot_pending(std::uint32_t slot, std::uint32_t gen) const {
  const Record& rec = records_[slot];
  return rec.gen == gen && !rec.cancelled;
}

void Simulator::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  Record& rec = records_[slot];
  if (rec.gen == gen) rec.cancelled = true;
}

EventHandle Simulator::schedule_at(SimTime t, Callback cb) {
  const std::uint64_t seq = seq_base_ | next_seq_++;
  observers_.notify(
      [&](SimObserver* o) { o->on_event_scheduled(seq, t, now_); });
  // Under audit the violation is recorded instead of aborting; either way the
  // clock must never be dragged backwards by a past-dated event.
  assert((t >= now_ || !observers_.empty()) &&
         "cannot schedule an event in the past");
  if (t < now_) t = now_;
  const std::uint32_t slot = acquire_slot();
  Record& rec = records_[slot];
  rec.cb = std::move(cb);
  queue_push(QueuedEvent{t, seq, slot});
  return EventHandle{this, slot, rec.gen};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Simulator::inject(SimTime t, std::uint64_t seq, Callback cb) {
  observers_.notify(
      [&](SimObserver* o) { o->on_event_scheduled(seq, t, now_); });
  assert(t >= now_ && "injected event must be ahead of the receiving lane");
  const std::uint32_t slot = acquire_slot();
  Record& rec = records_[slot];
  rec.cb = std::move(cb);
  queue_push(QueuedEvent{t, seq, slot});
}

void Simulator::run_window(SimTime end) {
  // Same body as step(), with the window bound folded into the pop loop:
  // step() would run the first live event even when it lies at or past
  // `end`, which breaks the conservative-lookahead contract.
  while (!queue_empty() && queue_top().time < end) {
    const QueuedEvent ev = queue_top();
    queue_pop();
    Record& rec = records_[ev.slot];
    if (rec.cancelled) {
      observers_.notify([&](SimObserver* o) { o->on_event_discarded(ev.seq); });
      release_slot(ev.slot);
      continue;
    }
    observers_.notify(
        [&](SimObserver* o) { o->on_event_fired(ev.seq, ev.time, false); });
    now_ = ev.time;
    EventFn cb = std::move(rec.cb);
    release_slot(ev.slot);
    ++executed_;
    cb();
  }
}

bool Simulator::step() {
  while (!queue_empty()) {
    const QueuedEvent ev = queue_top();
    queue_pop();
    Record& rec = records_[ev.slot];
    if (rec.cancelled) {
      observers_.notify([&](SimObserver* o) { o->on_event_discarded(ev.seq); });
      release_slot(ev.slot);
      continue;
    }
    observers_.notify(
        [&](SimObserver* o) { o->on_event_fired(ev.seq, ev.time, false); });
    now_ = ev.time;
    // Move the callback out and recycle the slot before invoking: the
    // callback may schedule new events (reusing this slot) or cancel others,
    // and records_ may grow, so no reference into the pool survives the call.
    EventFn cb = std::move(rec.cb);
    release_slot(ev.slot);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

SimTime Simulator::run(SimTime until) {
  while (!queue_empty()) {
    if (queue_top().time > until) {
      now_ = until;
      return now_;
    }
    step();
  }
  return now_;
}

void Simulator::reset() {
  if (queue_kind_ == QueueKind::kLadder) {
    ladder_.clear();
  } else {
    heap_.clear();
  }
  // Rebuild the free list over the whole pool.  Descending order so the
  // next run acquires slot 0 first — not required for correctness (slot
  // indices never affect event ordering), but it keeps reuse maximally
  // fresh-like for debugging.  Bumping every generation neutralizes any
  // EventHandle a layer object kept across the reset.
  free_slots_.clear();
  for (std::size_t i = records_.size(); i-- > 0;) {
    Record& rec = records_[i];
    rec.cb = EventFn();
    rec.cancelled = false;
    ++rec.gen;
    // dasched-lint: allow(hot-alloc): free_slots_ capacity already matches
    // records_ (release_slot keeps them in lock step), so this never grows.
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
}

bool Simulator::idle() const {
  // Cancelled events may still sit in the queue; they do not count as work,
  // but scanning the queue would be O(n).  A conservative "false" when only
  // cancelled events remain is acceptable for all callers (run() skips them).
  return queue_empty();
}

}  // namespace dasched
