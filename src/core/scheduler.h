// The data access scheduling algorithms of Sec. IV-B.
//
// `AccessScheduler` implements the paper's extended algorithm (Sec. IV-B2),
// of which the basic algorithm (Sec. IV-B1) is the length-1 special case,
// plus the θ performance constraint of Sec. IV-B3:
//
//   1. Sort accesses in nondecreasing order of slack length (most
//      constrained first).
//   2. For each access, walk every start slot inside its slack; skip slots
//      where the same process already has a scheduled access ("unavailable").
//   3. Compute the reuse factor R_t = Σ_k σ(k) / d(t+k) over the vertical
//      reuse range [t-δ, t+l-1+δ], where d is the signature distance to the
//      group active signature of slot t+k (unit decomposition of already
//      scheduled accesses) and σ decays linearly away from the occupied
//      window (σ_j = 1 - j/(δ+1)); 1/d is taken as 2 when d = 0.
//   4. Pick the slot with the highest reuse factor (first best wins, as in
//      the pseudo-code of Fig. 11; an optional randomized tie-break matches
//      the prose).  With θ > 0, slots are examined in non-increasing reuse
//      order and the first one where every occupied slot keeps at most θ
//      accesses per I/O node wins; if none qualifies, the slot minimizing
//      the average excess E_t is selected.
//   5. OR the access's signature into the group active signature of every
//      slot it occupies.
//
// Fast path (DESIGN.md §11): `group_[s]` only changes in `place()`, so per
// access the reciprocal distances 1/d(s) are computed once into a scratch
// array over the reachable span, a precomputed σ table replaces the
// per-term `weight()` division, and candidates whose whole σ window falls
// inside one constant run of 1/d reuse the previous result in O(1).  Every
// per-candidate sum keeps the exact operation order of the straightforward
// loop, so schedules are bit-identical to the reference implementation
// (tests/core/scheduler_differential_test.cc).  After a warm-up run,
// `reset()` + `schedule_into()` perform zero heap allocations
// (tests/core/scheduler_alloc_test.cc).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/access.h"
#include "core/signature.h"
#include "util/annotations.h"
#include "util/observer_list.h"
#include "util/rng.h"

namespace dasched {

/// Passive tap on scheduling decisions, used by the telemetry recorder
/// (src/telemetry).  With nothing attached each placement costs one empty
/// list test.
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;

  /// `rec` was committed to start at `slot`.  `forced` marks an access
  /// pinned to its original point because its whole slack was occupied;
  /// `theta_fallback` marks a placement that violates θ via the E_t rule.
  virtual void on_access_placed(const AccessRecord& rec, Slot slot,
                                bool forced, bool theta_fallback) {
    (void)rec, (void)slot, (void)forced, (void)theta_fallback;
  }
};

struct ScheduleOptions {
  /// Vertical reuse range δ (slots), Table II default 20.
  int delta = 20;
  /// Per-I/O-node, per-slot access cap θ; 0 disables the constraint.
  /// Table II default 4.
  int theta = 4;
  /// Resolve reuse-factor ties randomly (paper prose) instead of keeping the
  /// first maximum (paper pseudo-code).
  bool random_tie_break = false;
  /// Upper bound on candidate start slots examined per access.  Slacks wider
  /// than this are sampled at an even stride (the original point is always
  /// examined) — the scheduling-cost analogue of the paper's d-coarsening.
  /// 0 examines every slot.
  int max_candidates = 128;
  std::uint64_t seed = 42;

  friend bool operator==(const ScheduleOptions&, const ScheduleOptions&) =
      default;
};

/// Aggregate statistics of one scheduling run.
struct ScheduleStats {
  std::int64_t scheduled = 0;
  /// Accesses pinned to their original point because their whole slack was
  /// occupied by same-process accesses.
  std::int64_t forced = 0;
  /// Accesses placed at a slot violating θ via the E_t fallback.
  std::int64_t theta_fallbacks = 0;
  /// Mean displacement (original - chosen slot) over all accesses.
  double mean_advance_slots = 0.0;
};

class AccessScheduler {
 public:
  /// `num_io_nodes` sizes the signatures; `num_slots` bounds slot indices.
  AccessScheduler(int num_io_nodes, Slot num_slots, ScheduleOptions opts = {});

  /// Schedules all accesses; the result vector is ordered by access id.
  std::vector<ScheduledAccess> schedule(std::vector<AccessRecord> accesses);

  /// Same, into a caller-provided result vector (cleared first).  With a
  /// warmed `out` capacity this performs zero heap allocations.
  DASCHED_HOT void schedule_into(std::span<const AccessRecord> accesses,
                     std::vector<ScheduledAccess>& out);

  /// Clears the timeline (group signatures, θ counts, process occupancy,
  /// stats) and re-seeds the tie-break RNG, keeping every buffer's capacity
  /// — the allocation-free way to reuse one scheduler across runs.
  DASCHED_HOT void reset();

  // --- Introspection (also used by unit tests and incremental callers) -----

  /// Reuse factor of starting `rec` at `slot`, given the current timeline.
  [[nodiscard]] double reuse_factor(const AccessRecord& rec, Slot slot) const;

  /// Same, with explicit outside-window weights: sigma[j] is the weight of a
  /// slot j positions outside the occupied window (sigma[0] applies inside).
  /// Lets tests reproduce the paper's rounded worked examples verbatim.
  [[nodiscard]] double reuse_factor_with_weights(
      const AccessRecord& rec, Slot slot, std::span<const double> sigma) const;

  /// Commits `rec` to start at `slot` (updates group signatures, θ counts
  /// and process occupancy).
  void place(const AccessRecord& rec, Slot slot);

  /// True when no same-process access occupies any of [slot, slot+len-1].
  [[nodiscard]] bool available(int process, Slot slot, int length) const;

  /// True when placing `rec` at `slot` keeps every I/O node at or below θ
  /// in every occupied slot.  Always true when θ == 0.  O(l) signature-AND
  /// probes against the per-slot saturated-node masks — no per-node scan.
  [[nodiscard]] bool theta_ok(const AccessRecord& rec, Slot slot) const;

  /// Average number of accesses beyond θ per over-subscribed node across the
  /// slots `rec` would occupy starting at `slot` (the paper's E_t), with the
  /// candidate access hypothetically placed.
  [[nodiscard]] double average_excess(const AccessRecord& rec, Slot slot) const;

  /// Group active signature of one slot.
  [[nodiscard]] const Signature& group_signature(Slot slot) const;

  /// Linear decay weight σ_j = 1 - j/(δ+1) (j = 0 inside the window).
  [[nodiscard]] static double weight(int outside_distance, int delta);

  [[nodiscard]] const ScheduleStats& stats() const { return stats_; }
  [[nodiscard]] int num_io_nodes() const { return num_nodes_; }
  [[nodiscard]] Slot num_slots() const { return num_slots_; }
  [[nodiscard]] const ScheduleOptions& options() const { return opts_; }

  /// Detaches every observer, then attaches `observer` (null = detach all).
  /// Not owned.
  void set_observer(SchedulerObserver* observer) { observers_.reset(observer); }
  void add_observer(SchedulerObserver* observer) { observers_.add(observer); }
  void remove_observer(SchedulerObserver* observer) {
    observers_.remove(observer);
  }

 private:
  [[nodiscard]] double reciprocal_distance(const AccessRecord& rec, Slot s) const;
  void ensure_process(int process);

  /// Fills `inv_d_` with 1/d(rec.sig, group_[s]) over [span_lo, span_hi]
  /// and rebuilds `run_end_` (furthest index of the constant run starting
  /// at each slot) over the same span.
  void fill_distance_cache(const AccessRecord& rec, Slot span_lo, Slot span_hi);

  /// Reuse factor of `rec` at `slot` from the cached reciprocal distances.
  /// Same term order as `reuse_factor`, so the result is bit-identical.
  [[nodiscard]] double cached_reuse_factor(const AccessRecord& rec,
                                           Slot slot) const;

  int num_nodes_;
  Slot num_slots_;
  ScheduleOptions opts_;
  Rng rng_;

  /// Per-slot OR of the unit signatures of already-scheduled accesses.
  std::vector<Signature> group_;
  /// Per-slot, per-node scheduled-access counts (only kept when θ > 0).
  std::vector<std::uint16_t> node_counts_;  // [slot * num_nodes_ + node]
  /// Per-slot mask of nodes whose count has reached θ (only kept when
  /// θ > 0): placing another access on any of them would violate the cap.
  std::vector<Signature> saturated_;
  /// Per-process slot occupancy.
  std::vector<std::vector<char>> occupied_;

  /// σ table: sigma_[j] = weight(j, δ), precomputed once.
  std::vector<double> sigma_;
  /// Per-access scratch: reciprocal distance to each slot's group signature.
  std::vector<double> inv_d_;
  /// run_end_[s] = largest slot r with inv_d_ constant over [s, r], valid
  /// inside the span of the current access.
  std::vector<Slot> run_end_;

  struct Candidate {
    Slot slot;
    double reuse;
  };
  // Reused per-call scratch (see schedule_into).
  std::vector<Candidate> candidates_;
  std::vector<std::uint32_t> order_;

  ObserverList<SchedulerObserver> observers_;
  ScheduleStats stats_;
};

}  // namespace dasched
