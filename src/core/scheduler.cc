#include "core/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <utility>

namespace dasched {

AccessScheduler::AccessScheduler(int num_io_nodes, Slot num_slots,
                                 ScheduleOptions opts)
    : num_nodes_(num_io_nodes),
      num_slots_(num_slots),
      opts_(opts),
      rng_(opts.seed),
      group_(static_cast<std::size_t>(num_slots), Signature(num_io_nodes)),
      sigma_(static_cast<std::size_t>(opts.delta) + 1),
      inv_d_(static_cast<std::size_t>(num_slots), 0.0),
      run_end_(static_cast<std::size_t>(num_slots), 0) {
  assert(num_io_nodes > 0 && num_slots > 0);
  if (opts_.theta > 0) {
    node_counts_.assign(
        static_cast<std::size_t>(num_slots) * static_cast<std::size_t>(num_nodes_),
        0);
    saturated_.assign(static_cast<std::size_t>(num_slots),
                      Signature(num_io_nodes));
  }
  // σ table: the exact `weight()` values, computed once instead of one
  // division per window term.
  for (int j = 0; j <= opts_.delta; ++j) {
    sigma_[static_cast<std::size_t>(j)] = weight(j, opts_.delta);
  }
}

void AccessScheduler::reset() {
  for (Signature& g : group_) g.clear();
  std::fill(node_counts_.begin(), node_counts_.end(), 0);
  for (Signature& s : saturated_) s.clear();
  for (auto& rows : occupied_) std::fill(rows.begin(), rows.end(), 0);
  stats_ = ScheduleStats{};
  rng_.reseed(opts_.seed);
}

double AccessScheduler::weight(int outside_distance, int delta) {
  return 1.0 - static_cast<double>(outside_distance) /
                   static_cast<double>(delta + 1);
}

double AccessScheduler::reciprocal_distance(const AccessRecord& rec,
                                            Slot s) const {
  const int d = distance(rec.sig, group_[static_cast<std::size_t>(s)]);
  // The paper sets 1/d to 2 when the distance is 0 (a perfect reuse of an
  // identical active set).
  return d == 0 ? 2.0 : 1.0 / static_cast<double>(d);
}

double AccessScheduler::reuse_factor(const AccessRecord& rec, Slot slot) const {
  double total = 0.0;
  const int l = rec.length;
  for (int k = -opts_.delta; k <= l - 1 + opts_.delta; ++k) {
    const Slot s = slot + k;
    if (s < 0 || s >= num_slots_) continue;
    const int j = k < 0 ? -k : (k > l - 1 ? k - (l - 1) : 0);
    total += weight(j, opts_.delta) * reciprocal_distance(rec, s);
  }
  return total;
}

double AccessScheduler::reuse_factor_with_weights(
    const AccessRecord& rec, Slot slot, std::span<const double> sigma) const {
  double total = 0.0;
  const int l = rec.length;
  const int range = static_cast<int>(sigma.size()) - 1;
  for (int k = -range; k <= l - 1 + range; ++k) {
    const Slot s = slot + k;
    if (s < 0 || s >= num_slots_) continue;
    const int j = k < 0 ? -k : (k > l - 1 ? k - (l - 1) : 0);
    total += sigma[static_cast<std::size_t>(j)] * reciprocal_distance(rec, s);
  }
  return total;
}

void AccessScheduler::fill_distance_cache(const AccessRecord& rec,
                                          Slot span_lo, Slot span_hi) {
  assert(span_lo >= 0 && span_hi < num_slots_ && span_lo <= span_hi);
  for (Slot s = span_lo; s <= span_hi; ++s) {
    inv_d_[static_cast<std::size_t>(s)] = reciprocal_distance(rec, s);
  }
  run_end_[static_cast<std::size_t>(span_hi)] = span_hi;
  for (Slot s = span_hi - 1; s >= span_lo; --s) {
    run_end_[static_cast<std::size_t>(s)] =
        inv_d_[static_cast<std::size_t>(s)] ==
                inv_d_[static_cast<std::size_t>(s + 1)]
            ? run_end_[static_cast<std::size_t>(s + 1)]
            : s;
  }
}

double AccessScheduler::cached_reuse_factor(const AccessRecord& rec,
                                            Slot slot) const {
  // Same term order and arithmetic as `reuse_factor`, with the distance
  // already cached per slot and σ read from the table — the sum is
  // bit-identical, only cheaper.
  double total = 0.0;
  const int l = rec.length;
  const Slot k_lo = std::max<Slot>(-opts_.delta, -slot);
  const Slot k_hi = std::min<Slot>(l - 1 + opts_.delta, num_slots_ - 1 - slot);
  for (Slot k = k_lo; k <= k_hi; ++k) {
    const int j = k < 0 ? static_cast<int>(-k)
                        : (k > l - 1 ? static_cast<int>(k) - (l - 1) : 0);
    total += sigma_[static_cast<std::size_t>(j)] *
             inv_d_[static_cast<std::size_t>(slot + k)];
  }
  return total;
}

void AccessScheduler::ensure_process(int process) {
  if (static_cast<std::size_t>(process) >= occupied_.size()) {
    // dasched-lint: allow(hot-alloc): warm-up growth; rows persist and are
    // reused across schedule calls.
    occupied_.resize(static_cast<std::size_t>(process) + 1);
  }
  auto& rows = occupied_[static_cast<std::size_t>(process)];
  if (rows.empty()) rows.assign(static_cast<std::size_t>(num_slots_), 0);
}

bool AccessScheduler::available(int process, Slot slot, int length) const {
  if (slot < 0 || slot + length > num_slots_) return false;
  if (static_cast<std::size_t>(process) >= occupied_.size()) return true;
  const auto& rows = occupied_[static_cast<std::size_t>(process)];
  if (rows.empty()) return true;
  for (int k = 0; k < length; ++k) {
    if (rows[static_cast<std::size_t>(slot + k)]) return false;
  }
  return true;
}

bool AccessScheduler::theta_ok(const AccessRecord& rec, Slot slot) const {
  if (opts_.theta <= 0) return true;
  // A node violates the cap iff its count has already reached θ, i.e. iff
  // its bit is set in the slot's saturated mask: one signature-AND per
  // occupied slot replaces the per-node counter rescan.
  for (int k = 0; k < rec.length; ++k) {
    const Slot s = slot + k;
    if (s < 0 || s >= num_slots_) continue;
    if (intersects(rec.sig, saturated_[static_cast<std::size_t>(s)])) {
      return false;
    }
  }
  return true;
}

double AccessScheduler::average_excess(const AccessRecord& rec, Slot slot) const {
  if (opts_.theta <= 0) return 0.0;
  std::int64_t excess = 0;
  std::int64_t oversubscribed = 0;
  for (int k = 0; k < rec.length; ++k) {
    const Slot s = slot + k;
    if (s < 0 || s >= num_slots_) continue;
    const std::size_t base =
        static_cast<std::size_t>(s) * static_cast<std::size_t>(num_nodes_);
    rec.sig.for_each_node([&](int node) {
      const int m = node_counts_[base + static_cast<std::size_t>(node)] + 1;
      if (m > opts_.theta) {
        excess += m - opts_.theta;
        oversubscribed += 1;
      }
    });
  }
  if (oversubscribed == 0) return 0.0;
  return static_cast<double>(excess) / static_cast<double>(oversubscribed);
}

void AccessScheduler::place(const AccessRecord& rec, Slot slot) {
  assert(slot >= 0 && slot + rec.length <= num_slots_);
  ensure_process(rec.process);
  auto& rows = occupied_[static_cast<std::size_t>(rec.process)];
  for (int k = 0; k < rec.length; ++k) {
    const auto s = static_cast<std::size_t>(slot + k);
    group_[s] |= rec.sig;
    rows[s] = 1;
    if (opts_.theta > 0) {
      const std::size_t base = s * static_cast<std::size_t>(num_nodes_);
      rec.sig.for_each_node([&](int node) {
        std::uint16_t& count = node_counts_[base + static_cast<std::size_t>(node)];
        count += 1;
        if (count >= opts_.theta) saturated_[s].set(node);
      });
    }
  }
}

const Signature& AccessScheduler::group_signature(Slot slot) const {
  return group_[static_cast<std::size_t>(slot)];
}

std::vector<ScheduledAccess> AccessScheduler::schedule(
    std::vector<AccessRecord> accesses) {
  std::vector<ScheduledAccess> out;
  schedule_into(accesses, out);
  return out;
}

void AccessScheduler::schedule_into(std::span<const AccessRecord> accesses,
                                    std::vector<ScheduledAccess>& out) {
  // Most-constrained-first: nondecreasing slack length, access id as the
  // deterministic tie-break.
  // dasched-lint: allow(hot-alloc): scratch vectors keep their capacity
  // across calls; growth only happens on the first, largest batch.
  order_.resize(accesses.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(),
            [&accesses](std::uint32_t a, std::uint32_t b) {
              const Slot la = accesses[a].slack_length();
              const Slot lb = accesses[b].slack_length();
              if (la != lb) return la < lb;
              return accesses[a].id < accesses[b].id;
            });

  out.clear();
  // dasched-lint: allow(hot-alloc): one up-front reserve per batch keeps
  // the placement loop below allocation-free.
  out.reserve(accesses.size());
  double total_advance = 0.0;

  for (std::uint32_t idx : order_) {
    const AccessRecord& rec = accesses[idx];
    assert(rec.begin <= rec.end && rec.length >= 1);

    candidates_.clear();
    const Slot lo = rec.begin;
    const Slot hi = rec.latest_start();
    Slot stride = 1;
    if (opts_.max_candidates > 0 && hi - lo + 1 > opts_.max_candidates) {
      stride = (hi - lo + opts_.max_candidates) / opts_.max_candidates;
    }

    // Hoisted distance cache: `group_` only changes in place(), so 1/d(s)
    // over every slot any candidate's window can reach is computed once per
    // access instead of once per (candidate, window slot) pair.
    const Slot span_lo = std::max<Slot>(0, lo - opts_.delta);
    const Slot span_hi =
        std::min<Slot>(num_slots_ - 1, hi + rec.length - 1 + opts_.delta);
    if (span_lo <= span_hi && lo <= hi) {
      fill_distance_cache(rec, span_lo, span_hi);
    }

    // Constant-run memo: when a candidate's whole σ window is interior and
    // falls inside one constant run of 1/d, its sum is the exact same
    // float-operation sequence as the previous such candidate's — reuse the
    // result in O(1).  (A general prefix-sum slide would reassociate the
    // sum and break bit-identical tie behavior; see DESIGN.md §11.)
    bool have_const = false;
    double const_val = 0.0;
    double const_reuse = 0.0;
    const auto evaluate = [&](Slot s) {
      const Slot wlo = s - opts_.delta;
      const Slot whi = s + rec.length - 1 + opts_.delta;
      if (wlo >= 0 && whi < num_slots_ &&
          run_end_[static_cast<std::size_t>(wlo)] >= whi) {
        const double c = inv_d_[static_cast<std::size_t>(wlo)];
        if (!have_const || c != const_val) {
          const_val = c;
          const_reuse = cached_reuse_factor(rec, s);
          have_const = true;
        }
        return const_reuse;
      }
      return cached_reuse_factor(rec, s);
    };

    for (Slot s = lo; s <= hi; s += stride) {
      if (!available(rec.process, s, rec.length)) continue;
      // dasched-lint: allow(hot-alloc): candidate scratch retains capacity
      // across placements.
      candidates_.push_back({s, evaluate(s)});
    }
    if (stride > 1 && (hi - lo) % stride != 0 &&
        available(rec.process, hi, rec.length)) {
      // dasched-lint: allow(hot-alloc): candidate scratch retains capacity
      // across placements.
      candidates_.push_back({hi, evaluate(hi)});
    }

    ScheduledAccess result{rec, rec.original, false};
    bool theta_fallback = false;
    if (candidates_.empty()) {
      // The whole slack is occupied by this process's other accesses; pin to
      // the original point (the read must still happen there).
      result.forced = true;
      stats_.forced += 1;
      // Do not mark occupancy: the slot genuinely holds two accesses now and
      // blocking it further would only cascade more forced placements.
      for (int k = 0; k < rec.length; ++k) {
        const Slot s = result.slot + k;
        if (s >= 0 && s < num_slots_) {
          group_[static_cast<std::size_t>(s)] |= rec.sig;
        }
      }
    } else if (opts_.theta <= 0) {
      // Plain max-reuse selection (Fig. 11): first best wins unless the
      // randomized tie-break is enabled.
      std::size_t best = 0;
      int ties = 1;
      for (std::size_t i = 1; i < candidates_.size(); ++i) {
        if (candidates_[i].reuse > candidates_[best].reuse) {
          best = i;
          ties = 1;
        } else if (opts_.random_tie_break &&
                   candidates_[i].reuse == candidates_[best].reuse) {
          // Reservoir-style uniform choice among ties.
          ties += 1;
          if (rng_.next_below(static_cast<std::uint64_t>(ties)) == 0) best = i;
        }
      }
      result.slot = candidates_[best].slot;
      place(rec, result.slot);
    } else {
      // θ-constrained selection (Sec. IV-B3): visit candidates in
      // non-increasing reuse order, take the first that satisfies θ at every
      // occupied slot; otherwise minimize the average excess E_t.  Slots are
      // generated in strictly increasing order, so sorting by (reuse desc,
      // slot asc) reproduces the stable sort of the reference without its
      // temp-buffer allocation.
      std::sort(candidates_.begin(), candidates_.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.reuse != b.reuse) return a.reuse > b.reuse;
                  return a.slot < b.slot;
                });
      bool placed = false;
      for (const Candidate& c : candidates_) {
        if (theta_ok(rec, c.slot)) {
          result.slot = c.slot;
          placed = true;
          break;
        }
      }
      if (!placed) {
        double best_excess = std::numeric_limits<double>::infinity();
        Slot best_slot = candidates_.front().slot;
        for (const Candidate& c : candidates_) {
          const double e = average_excess(rec, c.slot);
          if (e < best_excess) {
            best_excess = e;
            best_slot = c.slot;
          }
        }
        result.slot = best_slot;
        stats_.theta_fallbacks += 1;
        theta_fallback = true;
      }
      place(rec, result.slot);
    }

    observers_.notify([&](SchedulerObserver* o) {
      o->on_access_placed(rec, result.slot, result.forced, theta_fallback);
    });
    total_advance += static_cast<double>(rec.original - result.slot);
    // dasched-lint: allow(hot-alloc): the caller pre-reserves `out` (see
    // Cluster::compile); growth here is first-run only.
    out.push_back(std::move(result));
  }

  stats_.scheduled = static_cast<std::int64_t>(out.size());
  stats_.mean_advance_slots =
      out.empty() ? 0.0 : total_advance / static_cast<double>(out.size());

  std::sort(out.begin(), out.end(),
            [](const ScheduledAccess& a, const ScheduledAccess& b) {
              return a.rec.id < b.rec.id;
            });
}

}  // namespace dasched
