// Scheduling tables — the artifact the compiler hands to the runtime.
//
// After the scheduling algorithms pick a point for every access, the results
// are organized per process: for each client process, an ordered list of
// (slot, access) entries the runtime scheduler thread walks as its process
// advances through its iterations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/access.h"

namespace dasched {

struct TableEntry {
  /// Slot at which the runtime should issue this access.
  Slot slot = 0;
  /// The scheduled access (original point, signature, etc.).
  AccessRecord rec;
  /// True when the entry was force-pinned to its original point.
  bool forced = false;
};

class SchedulingTable {
 public:
  SchedulingTable() = default;

  /// Builds a table from scheduler output.
  explicit SchedulingTable(const std::vector<ScheduledAccess>& scheduled);

  /// Entries of one process, ordered by (slot, access id).  Empty for
  /// processes with no scheduled accesses.
  [[nodiscard]] const std::vector<TableEntry>& entries(int process) const;

  [[nodiscard]] int num_processes() const {
    return static_cast<int>(per_process_.size());
  }

  [[nodiscard]] std::int64_t total_entries() const { return total_; }

  /// Human-readable dump (used by the quickstart example).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<TableEntry>> per_process_;
  std::int64_t total_ = 0;
  static const std::vector<TableEntry> kEmpty;
};

}  // namespace dasched
