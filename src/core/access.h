// Access records: the unit of work the scheduling algorithms operate on.
//
// The compiler front end (src/compiler) lowers each read I/O call into one
// `AccessRecord` carrying its slack window (in scheduling slots), its length
// (slots the access takes to complete; 1 for the basic algorithm) and its
// I/O-node signature.
#pragma once

#include <cstdint>
#include <vector>

#include "core/signature.h"

namespace dasched {

/// A scheduling slot index ("iteration" in the paper's terminology).
using Slot = std::int64_t;

struct AccessRecord {
  /// Unique id; also used as the deterministic tie-break in sorting.
  int id = 0;
  /// Issuing process (client node).  Only one access per process may occupy
  /// a slot.
  int process = 0;
  /// Slack window [begin, end], inclusive.  Negative slacks are clamped by
  /// the compiler before records are created, so begin <= end always holds.
  Slot begin = 0;
  Slot end = 0;
  /// Number of slots the access occupies (>= 1).
  int length = 1;
  /// I/O nodes the access touches.
  Signature sig;
  /// The slot where the unmodified program issues this access (its read
  /// point) — used by the runtime to decide whether a prefetch is worthwhile.
  Slot original = 0;
  /// Producer of the data, when it is written during the program: the
  /// process and slot of the last preceding write.  The runtime scheduler
  /// checks the writer's local time before prefetching (Sec. III).  -1 when
  /// the data is program input (never written).
  int writer_process = -1;
  Slot writer_slot = -1;

  [[nodiscard]] Slot slack_length() const { return end - begin + 1; }
  /// Latest slot the access may start at and still finish inside its slack.
  [[nodiscard]] Slot latest_start() const { return end - (length - 1); }
};

/// The outcome of scheduling one access.
struct ScheduledAccess {
  AccessRecord rec;
  /// Chosen scheduling point (start slot).
  Slot slot = 0;
  /// True when the slack was so congested that no same-process-free slot
  /// existed and the access was pinned to its original point.
  bool forced = false;
};

}  // namespace dasched
