#include "core/signature.h"

#include <stdexcept>

namespace dasched {

Signature::Signature(int num_nodes) : n_(num_nodes) {
  assert(num_nodes >= 0);
  if (num_nodes > kWordBits) {
    rest_.assign(
        static_cast<std::size_t>((num_nodes - 1) / kWordBits), 0);
  }
}

Signature Signature::from_bits(std::string_view bits) {
  Signature s(static_cast<int>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      s.set(static_cast<int>(i));
    } else if (bits[i] != '0') {
      throw std::invalid_argument("Signature::from_bits: invalid character");
    }
  }
  return s;
}

Signature Signature::from_nodes(int num_nodes, std::initializer_list<int> nodes) {
  Signature s(num_nodes);
  for (int node : nodes) s.set(node);
  return s;
}

std::vector<int> Signature::nodes() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(popcount()));
  for_each_node([&out](int node) { out.push_back(node); });
  return out;
}

std::string Signature::to_string() const {
  std::string out(static_cast<std::size_t>(n_), '0');
  for_each_node([&out](int node) { out[static_cast<std::size_t>(node)] = '1'; });
  return out;
}

}  // namespace dasched
