#include "core/signature.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace dasched {

namespace {
constexpr int kWordBits = 64;
constexpr std::size_t words_for(int n) {
  return static_cast<std::size_t>((n + kWordBits - 1) / kWordBits);
}
}  // namespace

Signature::Signature(int num_nodes)
    : n_(num_nodes), words_(words_for(num_nodes), 0) {
  assert(num_nodes >= 0);
}

Signature Signature::from_bits(std::string_view bits) {
  Signature s(static_cast<int>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      s.set(static_cast<int>(i));
    } else if (bits[i] != '0') {
      throw std::invalid_argument("Signature::from_bits: invalid character");
    }
  }
  return s;
}

Signature Signature::from_nodes(int num_nodes, std::initializer_list<int> nodes) {
  Signature s(num_nodes);
  for (int node : nodes) s.set(node);
  return s;
}

void Signature::set(int node) {
  assert(node >= 0 && node < n_);
  words_[static_cast<std::size_t>(node / kWordBits)] |= 1ULL << (node % kWordBits);
}

void Signature::reset(int node) {
  assert(node >= 0 && node < n_);
  words_[static_cast<std::size_t>(node / kWordBits)] &= ~(1ULL << (node % kWordBits));
}

bool Signature::test(int node) const {
  assert(node >= 0 && node < n_);
  return (words_[static_cast<std::size_t>(node / kWordBits)] >>
          (node % kWordBits)) & 1ULL;
}

int Signature::popcount() const {
  int total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

Signature& Signature::operator|=(const Signature& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

std::vector<int> Signature::nodes() const {
  std::vector<int> out;
  for (int i = 0; i < n_; ++i) {
    if (test(i)) out.push_back(i);
  }
  return out;
}

std::string Signature::to_string() const {
  std::string out(static_cast<std::size_t>(n_), '0');
  for (int i = 0; i < n_; ++i) {
    if (test(i)) out[static_cast<std::size_t>(i)] = '1';
  }
  return out;
}

int similarity(const Signature& a, const Signature& b) {
  assert(a.n_ == b.n_);
  int total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i)
    total += std::popcount(a.words_[i] & b.words_[i]);
  return total;
}

int difference(const Signature& a, const Signature& b) {
  assert(a.n_ == b.n_);
  int total = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i)
    total += std::popcount(a.words_[i] ^ b.words_[i]);
  return total;
}

int distance(const Signature& a, const Signature& b) {
  return a.size() - similarity(a, b) + difference(a, b);
}

}  // namespace dasched
