#include "core/scheduling_table.h"

#include <algorithm>
#include <sstream>

namespace dasched {

const std::vector<TableEntry> SchedulingTable::kEmpty;

SchedulingTable::SchedulingTable(const std::vector<ScheduledAccess>& scheduled) {
  int max_process = -1;
  for (const auto& s : scheduled) max_process = std::max(max_process, s.rec.process);
  per_process_.resize(static_cast<std::size_t>(max_process + 1));
  for (const auto& s : scheduled) {
    per_process_[static_cast<std::size_t>(s.rec.process)].push_back(
        TableEntry{s.slot, s.rec, s.forced});
    ++total_;
  }
  for (auto& entries : per_process_) {
    std::sort(entries.begin(), entries.end(),
              [](const TableEntry& a, const TableEntry& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                return a.rec.id < b.rec.id;
              });
  }
}

const std::vector<TableEntry>& SchedulingTable::entries(int process) const {
  if (process < 0 || static_cast<std::size_t>(process) >= per_process_.size()) {
    return kEmpty;
  }
  return per_process_[static_cast<std::size_t>(process)];
}

std::string SchedulingTable::to_string() const {
  std::ostringstream os;
  for (std::size_t p = 0; p < per_process_.size(); ++p) {
    os << "process " << p << ":\n";
    for (const auto& e : per_process_[p]) {
      os << "  slot " << e.slot << "  access#" << e.rec.id << "  sig "
         << e.rec.sig.to_string() << "  slack [" << e.rec.begin << ", "
         << e.rec.end << "]"
         << "  original " << e.rec.original << (e.forced ? "  (forced)" : "")
         << "\n";
    }
  }
  return os.str();
}

}  // namespace dasched
