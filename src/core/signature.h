// I/O-node signatures and the distance metric (Sec. IV-B).
//
// Each data access carries a signature: one bit per I/O node, set when the
// access touches that node.  For two signatures over n nodes the paper
// defines
//
//   distance(g1, g2) = n - similarity(g1, g2) + difference(g1, g2)
//
// where `similarity` counts positions where both are 1 (active nodes that
// would be reused) and `difference` counts positions where they differ
// (additional nodes that would have to be turned on).  Smaller distance =
// better I/O-node reuse.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace dasched {

class Signature {
 public:
  Signature() = default;

  /// An all-zero signature over `num_nodes` I/O nodes.
  explicit Signature(int num_nodes);

  /// Parses "0110"-style bit strings (index 0 first, as in the paper's
  /// tables); characters other than '0'/'1' are rejected.
  [[nodiscard]] static Signature from_bits(std::string_view bits);

  /// A signature over `num_nodes` nodes with the given node indices set.
  [[nodiscard]] static Signature from_nodes(int num_nodes,
                                            std::initializer_list<int> nodes);

  void set(int node);
  void reset(int node);
  [[nodiscard]] bool test(int node) const;

  /// Number of I/O nodes this signature ranges over (n).
  [[nodiscard]] int size() const { return n_; }

  /// Number of set bits.
  [[nodiscard]] int popcount() const;

  [[nodiscard]] bool any() const { return popcount() > 0; }

  Signature& operator|=(const Signature& other);
  [[nodiscard]] friend Signature operator|(Signature a, const Signature& b) {
    a |= b;
    return a;
  }

  bool operator==(const Signature&) const = default;

  /// Indices of the set bits, ascending.
  [[nodiscard]] std::vector<int> nodes() const;

  [[nodiscard]] std::string to_string() const;

 private:
  friend int similarity(const Signature&, const Signature&);
  friend int difference(const Signature&, const Signature&);

  int n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Count of positions where both signatures have a 1.
[[nodiscard]] int similarity(const Signature& a, const Signature& b);

/// Count of positions where the signatures differ.
[[nodiscard]] int difference(const Signature& a, const Signature& b);

/// The paper's distance: n - similarity + difference.  Both signatures must
/// range over the same number of nodes.
[[nodiscard]] int distance(const Signature& a, const Signature& b);

}  // namespace dasched
