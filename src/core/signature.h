// I/O-node signatures and the distance metric (Sec. IV-B).
//
// Each data access carries a signature: one bit per I/O node, set when the
// access touches that node.  For two signatures over n nodes the paper
// defines
//
//   distance(g1, g2) = n - similarity(g1, g2) + difference(g1, g2)
//
// where `similarity` counts positions where both are 1 (active nodes that
// would be reused) and `difference` counts positions where they differ
// (additional nodes that would have to be turned on).  Smaller distance =
// better I/O-node reuse.
//
// Representation: the first 64 bits live inline in a single word, so the
// common configurations (Table II uses 8 I/O nodes) never touch the heap —
// constructing, copying and OR-ing signatures is allocation-free, and
// `similarity`/`difference`/`distance` are a couple of intrinsic popcounts.
// Signatures over more than 64 nodes spill the remaining words into a
// vector sized once at construction.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace dasched {

// dasched-lint: allow(hot-alloc): the copy constructor copies `rest_`,
// which is empty (never allocates) for clusters of <= 64 I/O nodes.
class Signature {
 public:
  Signature() = default;

  /// An all-zero signature over `num_nodes` I/O nodes.
  explicit Signature(int num_nodes);

  /// Parses "0110"-style bit strings (index 0 first, as in the paper's
  /// tables); characters other than '0'/'1' are rejected.
  [[nodiscard]] static Signature from_bits(std::string_view bits);

  /// A signature over `num_nodes` nodes with the given node indices set.
  [[nodiscard]] static Signature from_nodes(int num_nodes,
                                            std::initializer_list<int> nodes);

  void set(int node) {
    assert(node >= 0 && node < n_);
    if (node < kWordBits) {
      word0_ |= 1ULL << node;
    } else {
      rest_[static_cast<std::size_t>(node / kWordBits) - 1] |=
          1ULL << (node % kWordBits);
    }
  }

  void reset(int node) {
    assert(node >= 0 && node < n_);
    if (node < kWordBits) {
      word0_ &= ~(1ULL << node);
    } else {
      rest_[static_cast<std::size_t>(node / kWordBits) - 1] &=
          ~(1ULL << (node % kWordBits));
    }
  }

  [[nodiscard]] bool test(int node) const {
    assert(node >= 0 && node < n_);
    if (node < kWordBits) return (word0_ >> node) & 1ULL;
    return (rest_[static_cast<std::size_t>(node / kWordBits) - 1] >>
            (node % kWordBits)) &
           1ULL;
  }

  /// Zeroes every bit; keeps the node count and any spill storage.
  void clear() {
    word0_ = 0;
    for (std::uint64_t& w : rest_) w = 0;
  }

  /// Number of I/O nodes this signature ranges over (n).
  [[nodiscard]] int size() const { return n_; }

  /// Number of set bits.
  [[nodiscard]] int popcount() const {
    int total = std::popcount(word0_);
    for (std::uint64_t w : rest_) total += std::popcount(w);
    return total;
  }

  /// True when any bit is set — early-exits on the first nonzero word.
  [[nodiscard]] bool any() const {
    if (word0_ != 0) return true;
    for (std::uint64_t w : rest_) {
      if (w != 0) return true;
    }
    return false;
  }

  Signature& operator|=(const Signature& other) {
    assert(n_ == other.n_);
    word0_ |= other.word0_;
    for (std::size_t i = 0; i < rest_.size(); ++i) rest_[i] |= other.rest_[i];
    return *this;
  }

  [[nodiscard]] friend Signature operator|(Signature a, const Signature& b) {
    a |= b;
    return a;
  }

  bool operator==(const Signature&) const = default;

  /// Visits the index of every set bit in ascending order — the
  /// allocation-free replacement for `nodes()` on hot paths.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (std::uint64_t w = word0_; w != 0; w &= w - 1) {
      fn(std::countr_zero(w));
    }
    for (std::size_t i = 0; i < rest_.size(); ++i) {
      const int base = (static_cast<int>(i) + 1) * kWordBits;
      for (std::uint64_t w = rest_[i]; w != 0; w &= w - 1) {
        fn(base + std::countr_zero(w));
      }
    }
  }

  /// Indices of the set bits, ascending.  Allocates; tests and cold paths
  /// only — hot paths use `for_each_node`.
  [[nodiscard]] std::vector<int> nodes() const;

  [[nodiscard]] std::string to_string() const;

  /// True when the two signatures share at least one set bit.
  [[nodiscard]] friend bool intersects(const Signature& a, const Signature& b) {
    assert(a.n_ == b.n_);
    if ((a.word0_ & b.word0_) != 0) return true;
    for (std::size_t i = 0; i < a.rest_.size(); ++i) {
      if ((a.rest_[i] & b.rest_[i]) != 0) return true;
    }
    return false;
  }

  /// Count of positions where both signatures have a 1.
  [[nodiscard]] friend int similarity(const Signature& a, const Signature& b) {
    assert(a.n_ == b.n_);
    int total = std::popcount(a.word0_ & b.word0_);
    for (std::size_t i = 0; i < a.rest_.size(); ++i)
      total += std::popcount(a.rest_[i] & b.rest_[i]);
    return total;
  }

  /// Count of positions where the signatures differ.
  [[nodiscard]] friend int difference(const Signature& a, const Signature& b) {
    assert(a.n_ == b.n_);
    int total = std::popcount(a.word0_ ^ b.word0_);
    for (std::size_t i = 0; i < a.rest_.size(); ++i)
      total += std::popcount(a.rest_[i] ^ b.rest_[i]);
    return total;
  }

  /// The paper's distance: n - similarity + difference.  Both signatures
  /// must range over the same number of nodes.  One fused pass: n ≤ 64
  /// costs two popcounts on a pair of inline words.
  [[nodiscard]] friend int distance(const Signature& a, const Signature& b) {
    assert(a.n_ == b.n_);
    int total = a.n_ - std::popcount(a.word0_ & b.word0_) +
                std::popcount(a.word0_ ^ b.word0_);
    for (std::size_t i = 0; i < a.rest_.size(); ++i) {
      total += std::popcount(a.rest_[i] ^ b.rest_[i]) -
               std::popcount(a.rest_[i] & b.rest_[i]);
    }
    return total;
  }

 private:
  static constexpr int kWordBits = 64;

  int n_ = 0;
  /// Bits 0..63 — the whole signature when n ≤ 64.
  std::uint64_t word0_ = 0;
  /// Bits 64.. in 64-bit words; empty (never allocated) when n ≤ 64.
  std::vector<std::uint64_t> rest_;
};

}  // namespace dasched
