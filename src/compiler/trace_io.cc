#include "compiler/trace_io.h"

#include <sstream>
#include <stdexcept>

namespace dasched {

namespace {
constexpr const char* kMagic = "dasched-trace";
constexpr int kVersion = 1;

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("trace parse error at line " + std::to_string(line) +
                           ": " + what);
}
}  // namespace

void save_trace(const CompiledProgram& program, std::ostream& out) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "processes " << program.num_processes() << '\n';
  for (int p = 0; p < program.num_processes(); ++p) {
    out << "process " << p << '\n';
    for (const SlotPlan& slot : program.processes[static_cast<std::size_t>(p)].slots) {
      out << "slot " << slot.compute << '\n';
      for (const IoOp& op : slot.ops) {
        out << (op.is_write ? 'w' : 'r') << ' ' << op.file << ' ' << op.offset
            << ' ' << op.size << '\n';
      }
    }
  }
}

std::string trace_to_string(const CompiledProgram& program) {
  std::ostringstream os;
  save_trace(program, os);
  return os.str();
}

CompiledProgram load_trace(std::istream& in) {
  CompiledProgram out;
  std::string line;
  int lineno = 0;
  int current = -1;
  bool have_header = false;

  auto current_slots = [&]() -> std::vector<SlotPlan>& {
    if (current < 0) fail(lineno, "op before any 'process' line");
    return out.processes[static_cast<std::size_t>(current)].slots;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;

    if (!have_header) {
      int version = 0;
      if (tok != kMagic || !(ls >> version) || version != kVersion) {
        fail(lineno, "bad header (expected '" + std::string(kMagic) + " 1')");
      }
      have_header = true;
      continue;
    }

    if (tok == "processes") {
      int n = 0;
      if (!(ls >> n) || n <= 0) fail(lineno, "bad process count");
      out.processes.resize(static_cast<std::size_t>(n));
    } else if (tok == "process") {
      int p = -1;
      if (!(ls >> p) || p < 0 ||
          static_cast<std::size_t>(p) >= out.processes.size()) {
        fail(lineno, "bad process id");
      }
      current = p;
    } else if (tok == "slot") {
      SimTime compute = 0;
      if (!(ls >> compute) || compute < 0) fail(lineno, "bad slot compute");
      current_slots().push_back(SlotPlan{compute, {}});
    } else if (tok == "r" || tok == "w") {
      IoOp op;
      op.is_write = tok == "w";
      if (!(ls >> op.file >> op.offset >> op.size) || op.size <= 0 ||
          op.offset < 0 || op.file < 0) {
        fail(lineno, "bad I/O op");
      }
      auto& slots = current_slots();
      if (slots.empty()) fail(lineno, "op before any 'slot' line");
      slots.back().ops.push_back(op);
    } else {
      fail(lineno, "unknown directive '" + tok + "'");
    }
  }
  if (!have_header) fail(lineno, "empty trace");
  out.align_slots();
  return out;
}

CompiledProgram trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_trace(is);
}

}  // namespace dasched
