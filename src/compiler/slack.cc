#include "compiler/slack.h"

#include <algorithm>
#include <cassert>

namespace dasched {

void LastWriteMap::record_write(FileId file, Bytes offset, Bytes size,
                                Slot slot, int process) {
  assert(size > 0);
  auto& intervals = files_[file];
  const Bytes begin = offset;
  const Bytes end = offset + size;

  // Trim or split every interval overlapping [begin, end).
  auto it = intervals.lower_bound(begin);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) {
      // prev straddles `begin`: keep its left part, and if it extends past
      // `end`, re-insert its right part.
      const Interval old = prev->second;
      prev->second.end = begin;
      if (old.end > end) {
        intervals[end] = Interval{old.end, old.slot, old.process};
      }
    }
  }
  it = intervals.lower_bound(begin);
  while (it != intervals.end() && it->first < end) {
    if (it->second.end > end) {
      // Straddles `end`: keep the right part.
      Interval right = it->second;
      intervals.erase(it);
      intervals[end] = right;
      break;
    }
    it = intervals.erase(it);
  }
  intervals[begin] = Interval{end, slot, process};
}

std::optional<LastWriteMap::Writer> LastWriteMap::last_write(FileId file,
                                                             Bytes offset,
                                                             Bytes size) const {
  const auto fit = files_.find(file);
  if (fit == files_.end()) return std::nullopt;
  const auto& intervals = fit->second;
  const Bytes begin = offset;
  const Bytes end = offset + size;

  std::optional<Writer> best;
  auto consider = [&best](const Interval& iv) {
    if (!best.has_value() || iv.slot > best->slot) {
      best = Writer{iv.slot, iv.process};
    }
  };
  auto it = intervals.lower_bound(begin);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) consider(prev->second);
  }
  for (; it != intervals.end() && it->first < end; ++it) consider(it->second);
  return best;
}

namespace {

struct PendingWrite {
  IoOp op;
  int process = 0;
};

[[nodiscard]] bool ranges_overlap(const IoOp& a, const IoOp& b) {
  return a.file == b.file && a.offset < b.offset + b.size &&
         b.offset < a.offset + a.size;
}

[[nodiscard]] int access_length(const IoOp& op, const SlackOptions& opts) {
  if (opts.length_unit <= 0) return 1;
  const Bytes units = (op.size + opts.length_unit - 1) / opts.length_unit;
  return static_cast<int>(std::max<Bytes>(1, units));
}

}  // namespace

void analyze_slacks(CompiledProgram& program, const StripingMap& striping,
                    const SlackOptions& opts) {
  program.reads.clear();
  program.read_sites.clear();

  LastWriteMap writes;
  std::vector<PendingWrite> pending_writes;  // writes of the slot in progress

  for (Slot t = 0; t < program.num_slots; ++t) {
    // Gather this slot's writes first: a read racing a same-slot write (from
    // any process; processes are not lock-stepped) must not be hoisted.
    pending_writes.clear();
    for (int p = 0; p < program.num_processes(); ++p) {
      const auto& slot =
          program.processes[static_cast<std::size_t>(p)].slots[static_cast<std::size_t>(t)];
      for (const IoOp& op : slot.ops) {
        if (op.is_write) pending_writes.push_back(PendingWrite{op, p});
      }
    }

    for (int p = 0; p < program.num_processes(); ++p) {
      const auto& ops =
          program.processes[static_cast<std::size_t>(p)].slots[static_cast<std::size_t>(t)].ops;
      for (int oi = 0; oi < static_cast<int>(ops.size()); ++oi) {
        const IoOp& op = ops[static_cast<std::size_t>(oi)];
        if (op.is_write) continue;

        AccessRecord rec;
        Slot begin = 0;
        const auto writer = writes.last_write(op.file, op.offset, op.size);
        if (writer.has_value()) {
          begin = writer->slot + 1;
          rec.writer_process = writer->process;
          rec.writer_slot = writer->slot;
        }
        for (const PendingWrite& w : pending_writes) {
          if (ranges_overlap(op, w.op)) {
            begin = t;  // produced in this very slot: no flexibility
            rec.writer_process = w.process;
            rec.writer_slot = t;
            break;
          }
        }
        if (begin > t) begin = t;  // negative slack -> length-1 window
        if (opts.max_slack > 0 && t - begin + 1 > opts.max_slack) {
          begin = t - opts.max_slack + 1;
        }

        rec.id = static_cast<int>(program.reads.size());
        rec.process = p;
        rec.begin = begin;
        rec.end = t;
        rec.original = t;
        rec.sig = striping.signature(op.file, op.offset, op.size);
        rec.length =
            std::min<int>(access_length(op, opts),
                          static_cast<int>(rec.end - rec.begin + 1));
        program.reads.push_back(std::move(rec));
        program.read_sites.push_back(ReadSite{p, t, oi});
      }
    }

    for (const PendingWrite& w : pending_writes) {
      writes.record_write(w.op.file, w.op.offset, w.op.size, t, w.process);
    }
  }
}

}  // namespace dasched
