#include "compiler/slack.h"

#include <algorithm>
#include <cassert>

namespace dasched {

namespace {

/// First interval whose begin is >= `b` (the flat analogue of
/// map::lower_bound on the start-offset key).
template <typename Vec>
[[nodiscard]] auto interval_lower_bound(Vec& intervals, Bytes b) {
  return std::lower_bound(
      intervals.begin(), intervals.end(), b,
      [](const auto& iv, Bytes key) { return iv.begin < key; });
}

}  // namespace

void LastWriteMap::record_write(FileId file, Bytes offset, Bytes size,
                                Slot slot, int process) {
  assert(size > 0 && file >= 0);
  if (static_cast<std::size_t>(file) >= files_.size()) {
    files_.resize(static_cast<std::size_t>(file) + 1);
  }
  auto& intervals = files_[static_cast<std::size_t>(file)];
  const Bytes begin = offset;
  const Bytes end = offset + size;

  // Trim or split every interval overlapping [begin, end).
  auto it = interval_lower_bound(intervals, begin);
  Interval right{};  // surviving right part of a straddling interval
  bool have_right = false;
  if (it != intervals.begin()) {
    Interval& prev = *std::prev(it);
    if (prev.end > begin) {
      // prev straddles `begin`: keep its left part, and if it extends past
      // `end`, keep its right part too (intervals are disjoint, so nothing
      // else can overlap [begin, end) in that case).
      if (prev.end > end) {
        right = Interval{end, prev.end, prev.slot, prev.process};
        have_right = true;
      }
      prev.end = begin;
    }
  }
  auto last = it;
  while (last != intervals.end() && last->begin < end) {
    if (last->end > end) {
      // Straddles `end`: keep the right part in place.
      last->begin = end;
      break;
    }
    ++last;
  }
  // Replace the swallowed run [it, last) with the new interval (and the
  // split-off right part, which sorts directly after it).
  it = intervals.erase(it, last);
  it = intervals.insert(it, Interval{begin, end, slot, process});
  if (have_right) intervals.insert(std::next(it), right);
}

std::optional<LastWriteMap::Writer> LastWriteMap::last_write(FileId file,
                                                             Bytes offset,
                                                             Bytes size) const {
  if (file < 0 || static_cast<std::size_t>(file) >= files_.size()) {
    return std::nullopt;
  }
  const auto& intervals = files_[static_cast<std::size_t>(file)];
  const Bytes begin = offset;
  const Bytes end = offset + size;

  std::optional<Writer> best;
  auto consider = [&best](const Interval& iv) {
    if (!best.has_value() || iv.slot > best->slot) {
      best = Writer{iv.slot, iv.process};
    }
  };
  auto it = interval_lower_bound(intervals, begin);
  if (it != intervals.begin()) {
    const Interval& prev = *std::prev(it);
    if (prev.end > begin) consider(prev);
  }
  for (; it != intervals.end() && it->begin < end; ++it) consider(*it);
  return best;
}

namespace {

struct PendingWrite {
  IoOp op;
  int process = 0;
};

[[nodiscard]] bool ranges_overlap(const IoOp& a, const IoOp& b) {
  return a.file == b.file && a.offset < b.offset + b.size &&
         b.offset < a.offset + a.size;
}

[[nodiscard]] int access_length(const IoOp& op, const SlackOptions& opts) {
  if (opts.length_unit <= 0) return 1;
  const Bytes units = (op.size + opts.length_unit - 1) / opts.length_unit;
  return static_cast<int>(std::max<Bytes>(1, units).count());
}

}  // namespace

void analyze_slacks(CompiledProgram& program, const StripingMap& striping,
                    const SlackOptions& opts) {
  program.reads.clear();
  program.read_sites.clear();

  LastWriteMap writes;
  std::vector<PendingWrite> pending_writes;  // writes of the slot in progress

  for (Slot t = 0; t < program.num_slots; ++t) {
    // Gather this slot's writes first: a read racing a same-slot write (from
    // any process; processes are not lock-stepped) must not be hoisted.
    pending_writes.clear();
    for (int p = 0; p < program.num_processes(); ++p) {
      const auto& slot =
          program.processes[static_cast<std::size_t>(p)].slots[static_cast<std::size_t>(t)];
      for (const IoOp& op : slot.ops) {
        if (op.is_write) pending_writes.push_back(PendingWrite{op, p});
      }
    }

    for (int p = 0; p < program.num_processes(); ++p) {
      const auto& ops =
          program.processes[static_cast<std::size_t>(p)].slots[static_cast<std::size_t>(t)].ops;
      for (int oi = 0; oi < static_cast<int>(ops.size()); ++oi) {
        const IoOp& op = ops[static_cast<std::size_t>(oi)];
        if (op.is_write) continue;

        AccessRecord rec;
        Slot begin = 0;
        const auto writer = writes.last_write(op.file, op.offset, op.size);
        if (writer.has_value()) {
          begin = writer->slot + 1;
          rec.writer_process = writer->process;
          rec.writer_slot = writer->slot;
        }
        for (const PendingWrite& w : pending_writes) {
          if (ranges_overlap(op, w.op)) {
            begin = t;  // produced in this very slot: no flexibility
            rec.writer_process = w.process;
            rec.writer_slot = t;
            break;
          }
        }
        if (begin > t) begin = t;  // negative slack -> length-1 window
        if (opts.max_slack > 0 && t - begin + 1 > opts.max_slack) {
          begin = t - opts.max_slack + 1;
        }

        rec.id = static_cast<int>(program.reads.size());
        rec.process = p;
        rec.begin = begin;
        rec.end = t;
        rec.original = t;
        rec.sig = striping.signature(op.file, op.offset, op.size);
        rec.length =
            std::min<int>(access_length(op, opts),
                          static_cast<int>(rec.end - rec.begin + 1));
        program.reads.push_back(std::move(rec));
        program.read_sites.push_back(ReadSite{p, t, oi});
      }
    }

    for (const PendingWrite& w : pending_writes) {
      writes.record_write(w.op.file, w.op.offset, w.op.size, t, w.process);
    }
  }
}

}  // namespace dasched
