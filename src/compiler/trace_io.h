// Text serialization of lowered programs (recorded traces).
//
// The profiling front end records real runs; persisting those recordings
// lets a trace be analyzed and scheduled offline, shipped alongside a bug
// report, or replayed under different storage configurations.  The format
// is a line-oriented, diff-friendly text file:
//
//   dasched-trace 1
//   processes <N>
//   process <p>
//   slot <compute_usec>
//   r <file> <offset> <size>
//   w <file> <offset> <size>
//
// Every `slot` line opens a new slot of the current process; `r`/`w` lines
// append operations to it.  Blank lines and `#` comments are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "compiler/program.h"

namespace dasched {

/// Writes the slot plans of `program` (analysis results are not persisted —
/// they are recomputed on load).
void save_trace(const CompiledProgram& program, std::ostream& out);
[[nodiscard]] std::string trace_to_string(const CompiledProgram& program);

/// Parses a trace; throws std::runtime_error with a line number on malformed
/// input.  The result is aligned and ready for compile_trace().
[[nodiscard]] CompiledProgram load_trace(std::istream& in);
[[nodiscard]] CompiledProgram trace_from_string(const std::string& text);

}  // namespace dasched
