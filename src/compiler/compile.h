// The full compiler pipeline (Fig. 4, left half).
//
//   loop-nest IR (or recorded trace)
//     -> lowering / coarsening          (lower.h)
//     -> access slack determination     (slack.h)
//     -> data access scheduling         (core/scheduler.h)
//     -> scheduling table               (core/scheduling_table.h)
//
// The result bundles everything the runtime needs: the lowered program the
// client processes execute, and the per-process scheduling tables the
// runtime scheduler threads follow.
#pragma once

#include "compiler/dependence.h"
#include "compiler/loop_program.h"
#include "compiler/lower.h"
#include "compiler/program.h"
#include "compiler/slack.h"
#include "core/scheduler.h"
#include "core/scheduling_table.h"

namespace dasched {

struct CompileOptions {
  ScheduleOptions sched;
  LowerOptions lowering;
  SlackOptions slack;
  /// When false the pipeline stops after slack analysis and every access is
  /// "scheduled" at its original point — the paper's baseline runs.
  bool enable_scheduling = true;
  /// Optional passive tap on per-access placements (telemetry).  Not owned;
  /// attached to the AccessScheduler for the duration of the compile.
  SchedulerObserver* sched_observer = nullptr;

  /// Member-wise (the observer compares by address); lets compile caches
  /// key on "would this produce the same output".
  friend bool operator==(const CompileOptions&, const CompileOptions&) =
      default;
};

struct Compiled {
  CompiledProgram program;
  /// Per-access decisions, indexed by AccessRecord::id.
  std::vector<ScheduledAccess> scheduled;
  SchedulingTable table;
  ScheduleStats sched_stats;
  /// Affine path only: statement-pair independence statistics from the
  /// Omega-lite screen (GCD + Banerjee); zero-initialized on the trace path.
  DependenceSummary dependence;
};

/// Affine path: IR -> lowered program -> slacks -> schedule.
[[nodiscard]] Compiled compile(const LoopProgram& program, int num_processes,
                               const StripingMap& striping,
                               const CompileOptions& opts = {});

/// Profiling path: an already-lowered (recorded) program -> slacks ->
/// schedule.  Coarsening should have been applied by the recorder.
[[nodiscard]] Compiled compile_trace(CompiledProgram lowered,
                                     const StripingMap& striping,
                                     const CompileOptions& opts = {});

}  // namespace dasched
