// Access slack determination (Sec. IV-A).
//
// For every read I/O call the compiler finds the *last preceding write* to
// any byte it touches — across all processes — and opens the slack window
// [iw + 1, ir].  Reads of never-written (input) data get the maximal window
// starting at slot 0.  Writes in the *same* slot as the read (including
// unsynchronized cross-process races after iteration-space normalization)
// clamp the window to the single slot [ir, ir], the paper's "negative slack
// becomes a slack of length 1".
//
// The analysis also assigns each access its length in slots (extended
// algorithm, Sec. IV-B2), estimated from the requested byte count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "compiler/program.h"
#include "storage/striping.h"
#include "util/units.h"

namespace dasched {

struct SlackOptions {
  /// Bytes of requested data per slot of access length (the extended
  /// algorithm's "length"); an access of <= length_unit bytes has length 1.
  Bytes length_unit = mib(1);
  /// Upper bound on slack window size, mirroring the bounded lookahead a
  /// real runtime buffer affords.  0 = unbounded.
  Slot max_slack = 0;

  friend bool operator==(const SlackOptions&, const SlackOptions&) = default;
};

/// Tracks, per file, which byte ranges were last written at which slot.
/// This is the data-flow core of the slack analysis.
///
/// Storage: one flat sorted vector of disjoint intervals per file (files are
/// dense small ids), replacing the former map-of-maps.  The slot sweep of
/// `analyze_slacks` queries and records in nondecreasing slot order over a
/// handful of files, so binary search + vector splice beats the node-based
/// map on both locality and allocation count.
class LastWriteMap {
 public:
  struct Writer {
    Slot slot = 0;
    int process = 0;
  };

  void record_write(FileId file, Bytes offset, Bytes size, Slot slot,
                    int process);

  /// Latest write overlapping [offset, offset+size), if any part of the
  /// range has been written.
  [[nodiscard]] std::optional<Writer> last_write(FileId file, Bytes offset,
                                                 Bytes size) const;

 private:
  struct Interval {
    Bytes begin = 0;
    Bytes end = 0;  // exclusive
    Slot slot = 0;
    int process = 0;
  };
  // Per file (vector index = FileId): disjoint intervals sorted by begin.
  std::vector<std::vector<Interval>> files_;
};

/// Populates `program.reads` / `program.read_sites` with one AccessRecord
/// per read op, slack windows computed as above, signatures taken from
/// `striping`.
void analyze_slacks(CompiledProgram& program, const StripingMap& striping,
                    const SlackOptions& opts = {});

}  // namespace dasched
