// Affine dependence tests — the "Omega-lite" layer.
//
// The paper's compiler uses the Omega library to reason about affine
// accesses.  This module provides the two classic conservative dependence
// tests for the same class of subscripts:
//
//  * GCD test       — f(i..) = g(j..) has integer solutions only if
//                     gcd(coefficients) divides the constant difference.
//  * Banerjee test  — with rectangular loop bounds, a solution requires the
//                     constant difference to fall within [min, max] of the
//                     variable part.
//
// Both are *disproof* tests: `may_alias` returning false is a guarantee of
// independence; returning true is inconclusive.  The slack analysis uses the
// exact byte-interval dataflow as its authority (DESIGN.md), and this layer
// serves as the statement-pair independence screen reported by the compile
// pipeline (and as a standalone utility for building new analyses).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compiler/affine.h"
#include "compiler/loop_program.h"
#include "util/units.h"

namespace dasched {

/// Rectangular bounds of one loop variable (inclusive).
struct VarBound {
  std::string var;
  std::int64_t lower = 0;
  std::int64_t upper = 0;
};

/// Renames every variable of `e` by appending `suffix` — used to keep the
/// iteration vectors of two statement instances distinct.
[[nodiscard]] AffineExpr rename_vars(const AffineExpr& e,
                                     const std::string& suffix);

/// GCD test on h(vars) = c having an integer solution: true iff
/// gcd(coefficients of h) divides c.  An expression with no variables
/// requires c == 0.  (h is the variable part; c the target constant.)
[[nodiscard]] bool gcd_admits_solution(const AffineExpr& h, std::int64_t c);

/// Minimum and maximum of an affine expression over rectangular bounds.
/// Variables without bounds are treated as fixed at 0 (callers bind `p`/`P`
/// style parameters by substitution before calling).
struct ValueRange {
  std::int64_t min = 0;
  std::int64_t max = 0;
};
[[nodiscard]] ValueRange value_range(const AffineExpr& e,
                                     std::span<const VarBound> bounds);

/// Conservative byte-range overlap test between two affine accesses:
///   [f(i..), f(i..)+size_f)  vs  [g(j..), g(j..)+size_g)
/// over independent iteration vectors with the given rectangular bounds.
/// Returns false only when the GCD and Banerjee tests *prove* the ranges can
/// never overlap.
[[nodiscard]] bool may_alias(const AffineExpr& f, Bytes size_f,
                             std::span<const VarBound> f_bounds,
                             const AffineExpr& g, Bytes size_g,
                             std::span<const VarBound> g_bounds);

/// Statement-pair screen over a whole loop program: counts, for every
/// (write statement, read statement) pair of the nest, whether the pair is
/// provably independent.  `p`/`P` are bound to concrete values per process
/// pair; a pair is independent only if it is independent for all process
/// combinations (conservatively sampled: all pairs when few processes,
/// corners otherwise).
struct DependenceSummary {
  std::int64_t pairs = 0;
  std::int64_t proven_independent = 0;

  [[nodiscard]] double pruned_fraction() const {
    return pairs == 0 ? 0.0
                      : static_cast<double>(proven_independent) /
                            static_cast<double>(pairs);
  }
};

[[nodiscard]] DependenceSummary screen_dependences(const LoopProgram& program,
                                                   int num_processes);

}  // namespace dasched
