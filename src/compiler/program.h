// The lowered (per-process, per-slot) form of a parallel I/O program.
//
// Both compiler front ends — the affine loop-nest interpreter and the
// profiling trace recorder — lower to this representation: for every process,
// an ordered list of scheduling slots ("iterations"), each with a compute
// duration and the I/O operations the original program issues there.  The
// slack analysis, the scheduling algorithms and the runtime all consume this
// form.
#pragma once

#include <cstdint>
#include <vector>

#include "core/access.h"
#include "storage/striping.h"
#include "util/units.h"

namespace dasched {

/// One I/O call as issued by the program.
struct IoOp {
  FileId file = 0;
  Bytes offset = 0;
  Bytes size = 0;
  bool is_write = false;
};

/// One scheduling slot of one process.
struct SlotPlan {
  /// CPU time the process spends in this slot (excluding I/O waits).
  SimTime compute = 0;
  /// I/O calls issued in this slot, in program order.
  std::vector<IoOp> ops;
};

struct ProcessPlan {
  std::vector<SlotPlan> slots;
};

/// Location of a read site in the lowered program: (process, slot, op index).
struct ReadSite {
  int process = 0;
  Slot slot = 0;
  int op_index = 0;
};

struct CompiledProgram {
  std::vector<ProcessPlan> processes;
  /// Aligned slot count: every process is padded to this length.
  Slot num_slots = 0;

  /// Schedulable read accesses (output of the slack analysis), indexed by
  /// AccessRecord::id.
  std::vector<AccessRecord> reads;
  /// reads[i] corresponds to read_sites[i] in the lowered program.
  std::vector<ReadSite> read_sites;

  [[nodiscard]] int num_processes() const {
    return static_cast<int>(processes.size());
  }

  /// Pads every process to the length of the longest one and records it.
  void align_slots() {
    std::size_t max_len = 0;
    for (const auto& p : processes) max_len = std::max(max_len, p.slots.size());
    for (auto& p : processes) p.slots.resize(max_len);
    num_slots = static_cast<Slot>(max_len);
  }

  /// Totals, mostly for reports and tests.
  [[nodiscard]] std::int64_t total_ops() const {
    std::int64_t n = 0;
    for (const auto& p : processes)
      for (const auto& s : p.slots) n += static_cast<std::int64_t>(s.ops.size());
    return n;
  }
  [[nodiscard]] Bytes total_bytes(bool writes) const {
    Bytes n = 0;
    for (const auto& p : processes)
      for (const auto& s : p.slots)
        for (const auto& op : s.ops)
          if (op.is_write == writes) n += op.size;
    return n;
  }
};

}  // namespace dasched
