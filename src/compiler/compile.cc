#include "compiler/compile.h"

namespace dasched {

namespace {

Compiled finish(CompiledProgram lowered, const StripingMap& striping,
                const CompileOptions& opts) {
  analyze_slacks(lowered, striping, opts.slack);

  Compiled out;
  if (opts.enable_scheduling && !lowered.reads.empty()) {
    AccessScheduler scheduler(striping.num_io_nodes(),
                              std::max<Slot>(lowered.num_slots, 1), opts.sched);
    scheduler.add_observer(opts.sched_observer);
    out.scheduled = scheduler.schedule(lowered.reads);
    out.sched_stats = scheduler.stats();
  } else {
    out.scheduled.reserve(lowered.reads.size());
    for (const AccessRecord& rec : lowered.reads) {
      out.scheduled.push_back(ScheduledAccess{rec, rec.original, false});
    }
    out.sched_stats.scheduled = static_cast<std::int64_t>(out.scheduled.size());
  }
  out.table = SchedulingTable(out.scheduled);
  out.program = std::move(lowered);
  return out;
}

}  // namespace

Compiled compile(const LoopProgram& program, int num_processes,
                 const StripingMap& striping, const CompileOptions& opts) {
  Compiled out =
      finish(lower(program, num_processes, opts.lowering), striping, opts);
  out.dependence = screen_dependences(program, num_processes);
  return out;
}

Compiled compile_trace(CompiledProgram lowered, const StripingMap& striping,
                       const CompileOptions& opts) {
  return finish(std::move(lowered), striping, opts);
}

}  // namespace dasched
