// Lowering: affine loop-nest IR -> per-process slot plans.
//
// This is the replacement for the paper's Phoenix/Omega front end: because
// every bound and subscript is affine and the iteration spaces we simulate
// are bounded, exact enumeration produces the same per-iteration facts the
// polyhedral tooling would.  The interpreter also applies the paper's slot
// coarsening: when a loop is large, `granularity` (the paper's d > 1)
// consecutive fine slots are merged into one scheduling slot.
#pragma once

#include <cstdint>

#include "compiler/loop_program.h"
#include "compiler/program.h"

namespace dasched {

struct LowerOptions {
  /// The paper's d: fine slots merged per scheduling slot.
  int granularity = 1;
  /// Safety valve against runaway iteration spaces.
  std::int64_t max_slots_per_process = 2'000'000;

  friend bool operator==(const LowerOptions&, const LowerOptions&) = default;
};

/// Unrolls `program` for each of `num_processes` processes (binding p and P)
/// and returns the aligned slot plans.  Throws std::runtime_error when a
/// process exceeds max_slots_per_process.
[[nodiscard]] CompiledProgram lower(const LoopProgram& program, int num_processes,
                                    const LowerOptions& opts = {});

/// Merges groups of `granularity` consecutive slots (per process); exposed
/// separately so the profiling front end can coarsen recorded traces too.
void coarsen(CompiledProgram& program, int granularity);

}  // namespace dasched
