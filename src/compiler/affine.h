// Affine expressions over named integer variables.
//
// The compiler front end expresses loop bounds, I/O offsets and compute
// costs as affine functions of enclosing loop indices, the process id `p`
// and the process count `P` — the class of programs the paper's polyhedral
// path handles.  `AffineExpr` supports the arithmetic needed to build them
// and exact evaluation under an environment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dasched {

/// Variable bindings for evaluation.
using AffineEnv = std::map<std::string, std::int64_t>;

class AffineExpr {
 public:
  /// The zero expression.
  AffineExpr() = default;

  /// A constant.
  AffineExpr(std::int64_t c) : constant_(c) {}  // NOLINT(google-explicit-constructor)

  /// The variable `name` (coefficient 1).
  [[nodiscard]] static AffineExpr var(std::string name);

  [[nodiscard]] std::int64_t eval(const AffineEnv& env) const;

  /// True when no variables appear (after dropping zero coefficients).
  [[nodiscard]] bool is_constant() const { return terms_.empty(); }

  /// The constant part.
  [[nodiscard]] std::int64_t constant() const { return constant_; }

  /// Coefficient of `name` (0 if absent).
  [[nodiscard]] std::int64_t coefficient(const std::string& name) const;

  /// Names of variables with nonzero coefficients, sorted.
  [[nodiscard]] std::vector<std::string> variables() const;

  AffineExpr& operator+=(const AffineExpr& o);
  AffineExpr& operator-=(const AffineExpr& o);
  /// Scaling by a constant keeps the expression affine.
  AffineExpr& operator*=(std::int64_t k);

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) { return a += b; }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) { return a -= b; }
  friend AffineExpr operator*(AffineExpr a, std::int64_t k) { return a *= k; }
  friend AffineExpr operator*(std::int64_t k, AffineExpr a) { return a *= k; }

  bool operator==(const AffineExpr&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  void prune();

  std::int64_t constant_ = 0;
  std::map<std::string, std::int64_t> terms_;
};

}  // namespace dasched
