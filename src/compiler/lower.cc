#include "compiler/lower.h"

#include <optional>
#include <stdexcept>

namespace dasched {

namespace {

class Interpreter {
 public:
  Interpreter(const LowerOptions& opts) : opts_(opts) {}

  ProcessPlan run(const LoopProgram& program, int process, int num_processes) {
    env_.clear();
    env_[kProcessVar] = process;
    env_[kProcessCountVar] = num_processes;
    plan_ = ProcessPlan{};
    open_ = SlotPlan{};
    exec_list(program.body);
    close_slot(/*force=*/false);
    return std::move(plan_);
  }

 private:
  void exec_list(const StmtList& list) {
    for (const Stmt& s : list) exec(s);
  }

  void exec(const Stmt& s) {
    std::visit([this](const auto& node) { this->exec_node(node); }, s.node);
  }

  void exec_node(const IoCallStmt& io) {
    open_.ops.push_back(IoOp{io.file, io.offset.eval(env_), io.size.eval(env_),
                             io.is_write});
  }

  void exec_node(const ComputeStmt& c) { open_.compute += c.usec.eval(env_); }

  void exec_node(const LoopStmt& loop) {
    const std::int64_t lo = loop.lower.eval(env_);
    const std::int64_t hi = loop.upper.eval(env_);
    if (loop.step <= 0) throw std::runtime_error("lower: loop step must be > 0");
    const auto saved = env_.find(loop.var) != env_.end()
                           ? std::optional<std::int64_t>(env_[loop.var])
                           : std::nullopt;
    for (std::int64_t v = lo; v <= hi; v += loop.step) {
      env_[loop.var] = v;
      exec_list(loop.body);
      if (loop.slot_loop) close_slot(/*force=*/false);
    }
    if (saved.has_value()) {
      env_[loop.var] = *saved;
    } else {
      env_.erase(loop.var);
    }
  }

  void close_slot(bool force) {
    if (!force && open_.compute == 0 && open_.ops.empty()) return;
    plan_.slots.push_back(std::move(open_));
    open_ = SlotPlan{};
    if (static_cast<std::int64_t>(plan_.slots.size()) >
        opts_.max_slots_per_process) {
      throw std::runtime_error("lower: iteration space exceeds max_slots_per_process");
    }
  }

  LowerOptions opts_;
  AffineEnv env_;
  ProcessPlan plan_;
  SlotPlan open_;
};

}  // namespace

void coarsen(CompiledProgram& program, int granularity) {
  if (granularity <= 1) return;
  for (ProcessPlan& p : program.processes) {
    std::vector<SlotPlan> merged;
    merged.reserve(p.slots.size() / static_cast<std::size_t>(granularity) + 1);
    for (std::size_t i = 0; i < p.slots.size(); ++i) {
      if (i % static_cast<std::size_t>(granularity) == 0) merged.emplace_back();
      SlotPlan& dst = merged.back();
      SlotPlan& src = p.slots[i];
      dst.compute += src.compute;
      dst.ops.insert(dst.ops.end(), src.ops.begin(), src.ops.end());
    }
    p.slots = std::move(merged);
  }
  program.align_slots();
}

CompiledProgram lower(const LoopProgram& program, int num_processes,
                      const LowerOptions& opts) {
  CompiledProgram out;
  out.processes.reserve(static_cast<std::size_t>(num_processes));
  for (int p = 0; p < num_processes; ++p) {
    Interpreter interp(opts);
    out.processes.push_back(interp.run(program, p, num_processes));
  }
  out.align_slots();
  coarsen(out, opts.granularity);
  return out;
}

}  // namespace dasched
