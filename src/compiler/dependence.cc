#include "compiler/dependence.h"

#include <algorithm>
#include <numeric>

namespace dasched {

AffineExpr rename_vars(const AffineExpr& e, const std::string& suffix) {
  AffineExpr out(e.constant());
  for (const std::string& var : e.variables()) {
    out += e.coefficient(var) * AffineExpr::var(var + suffix);
  }
  return out;
}

bool gcd_admits_solution(const AffineExpr& h, std::int64_t c) {
  std::int64_t g = 0;
  for (const std::string& var : h.variables()) {
    g = std::gcd(g, std::abs(h.coefficient(var)));
  }
  if (g == 0) return c == 0;  // no variables: only the trivial equation
  return c % g == 0;
}

ValueRange value_range(const AffineExpr& e, std::span<const VarBound> bounds) {
  ValueRange r{e.constant(), e.constant()};
  for (const std::string& var : e.variables()) {
    const std::int64_t coeff = e.coefficient(var);
    const auto it = std::find_if(bounds.begin(), bounds.end(),
                                 [&var](const VarBound& b) { return b.var == var; });
    if (it == bounds.end()) continue;  // unbound vars are substituted earlier
    const std::int64_t lo = coeff * it->lower;
    const std::int64_t hi = coeff * it->upper;
    r.min += std::min(lo, hi);
    r.max += std::max(lo, hi);
  }
  return r;
}

bool may_alias(const AffineExpr& f, Bytes size_f,
               std::span<const VarBound> f_bounds, const AffineExpr& g,
               Bytes size_g, std::span<const VarBound> g_bounds) {
  // Keep the two iteration vectors distinct.
  const AffineExpr fr = rename_vars(f, "#w");
  const AffineExpr gr = rename_vars(g, "#r");
  std::vector<VarBound> bounds;
  bounds.reserve(f_bounds.size() + g_bounds.size());
  for (const VarBound& b : f_bounds) bounds.push_back({b.var + "#w", b.lower, b.upper});
  for (const VarBound& b : g_bounds) bounds.push_back({b.var + "#r", b.lower, b.upper});

  // Overlap of [f, f+size_f) and [g, g+size_g) means
  //   -(size_f - 1) <= f - g <= size_g - 1
  // (d = f - g must satisfy d > -size_f and d < size_g).
  const AffineExpr h = fr - gr;

  // Banerjee: the interval of h over the bounds must intersect the window.
  const ValueRange range = value_range(h, bounds);
  const std::int64_t window_lo = -(size_f.count() - 1);
  const std::int64_t window_hi = size_g.count() - 1;
  if (range.max < window_lo || range.min > window_hi) return false;

  // GCD: some constant c in the window must be attainable by the variable
  // part of h.  With variable part hv = h - h0, attainability of c requires
  // gcd | (c - h0); check whether any c in [window_lo, window_hi] passes.
  std::int64_t gcd = 0;
  for (const std::string& var : h.variables()) {
    gcd = std::gcd(gcd, std::abs(h.coefficient(var)));
  }
  if (gcd == 0) {
    return h.constant() >= window_lo && h.constant() <= window_hi;
  }
  if (static_cast<Bytes>(gcd) <= size_f + size_g - 1) {
    return true;  // the window is wider than the lattice spacing
  }
  // Is there a multiple of gcd in [window_lo - h0, window_hi - h0]?
  const std::int64_t lo = window_lo - h.constant();
  const std::int64_t hi = window_hi - h.constant();
  const std::int64_t first =
      (lo % gcd == 0) ? lo : lo + (lo > 0 ? gcd - lo % gcd : -(lo % gcd));
  return first <= hi;
}

namespace {

struct AccessSite {
  IoCallStmt call;
  std::vector<VarBound> bounds;  // enclosing loop bounds (constant-evaluable)
  bool bounds_exact = true;      // false when a bound depends on outer vars
};

/// Collects every I/O statement with its rectangular bound context, binding
/// `p` and `P` from `env`.  Bounds depending on loop variables are widened
/// using the outer bounds already gathered (keeping the test conservative).
void collect(const StmtList& body, const AffineEnv& env,
             std::vector<VarBound>& stack, std::vector<AccessSite>& out) {
  for (const Stmt& s : body) {
    if (const auto* io = std::get_if<IoCallStmt>(&s.node)) {
      out.push_back(AccessSite{*io, stack, true});
    } else if (const auto* loop = std::get_if<LoopStmt>(&s.node)) {
      // Evaluate bounds; widen expressions over enclosing loop variables to
      // their extreme values.
      auto widen = [&](const AffineExpr& e, bool low) {
        AffineEnv full = env;
        for (const VarBound& b : stack) full[b.var] = low ? b.lower : b.upper;
        // Choose the direction per coefficient sign for a sound bound.
        std::int64_t v = e.constant();
        for (const std::string& var : e.variables()) {
          const std::int64_t coeff = e.coefficient(var);
          const auto it = full.find(var);
          std::int64_t lo_v = 0;
          std::int64_t hi_v = 0;
          if (it != full.end()) {
            lo_v = hi_v = it->second;
          }
          for (const VarBound& b : stack) {
            if (b.var == var) {
              lo_v = b.lower;
              hi_v = b.upper;
            }
          }
          const std::int64_t a = coeff * lo_v;
          const std::int64_t b2 = coeff * hi_v;
          v += low ? std::min(a, b2) : std::max(a, b2);
        }
        return v;
      };
      VarBound bound{loop->var, widen(loop->lower, true), widen(loop->upper, false)};
      if (bound.lower > bound.upper) continue;  // empty loop
      stack.push_back(bound);
      collect(loop->body, env, stack, out);
      stack.pop_back();
    }
  }
}

}  // namespace

DependenceSummary screen_dependences(const LoopProgram& program,
                                     int num_processes) {
  DependenceSummary summary;

  // Sample process pairs: exhaustive when small, corners otherwise.
  std::vector<std::pair<int, int>> samples;
  if (num_processes <= 4) {
    for (int a = 0; a < num_processes; ++a) {
      for (int b = 0; b < num_processes; ++b) samples.emplace_back(a, b);
    }
  } else {
    const int ids[] = {0, 1, num_processes / 2, num_processes - 1};
    for (int a : ids) {
      for (int b : ids) samples.emplace_back(a, b);
    }
  }

  for (const auto& [pw, pr] : samples) {
    AffineEnv wenv{{kProcessVar, pw}, {kProcessCountVar, num_processes}};
    AffineEnv renv{{kProcessVar, pr}, {kProcessCountVar, num_processes}};
    std::vector<AccessSite> writes_sites;
    std::vector<AccessSite> read_sites;
    {
      std::vector<VarBound> stack;
      std::vector<AccessSite> all;
      collect(program.body, wenv, stack, all);
      for (auto& site : all) {
        if (site.call.is_write) writes_sites.push_back(site);
      }
    }
    {
      std::vector<VarBound> stack;
      std::vector<AccessSite> all;
      collect(program.body, renv, stack, all);
      for (auto& site : all) {
        if (!site.call.is_write) read_sites.push_back(site);
      }
    }

    for (const AccessSite& w : writes_sites) {
      for (const AccessSite& r : read_sites) {
        summary.pairs += 1;
        if (w.call.file != r.call.file) {
          summary.proven_independent += 1;
          continue;
        }
        // Bind p/P into the subscripts, then run the tests.
        auto bind = [](const AffineExpr& e, const AffineEnv& env) {
          AffineExpr out(e.constant());
          for (const std::string& var : e.variables()) {
            const auto it = env.find(var);
            if (it != env.end()) {
              out += AffineExpr(e.coefficient(var) * it->second);
            } else {
              out += e.coefficient(var) * AffineExpr::var(var);
            }
          }
          return out;
        };
        const AffineExpr wf = bind(w.call.offset, wenv);
        const AffineExpr rf = bind(r.call.offset, renv);
        const Bytes ws = w.call.size.is_constant()
                             ? w.call.size.constant()
                             : value_range(w.call.size, w.bounds).max;
        const Bytes rs = r.call.size.is_constant()
                             ? r.call.size.constant()
                             : value_range(r.call.size, r.bounds).max;
        if (!may_alias(wf, ws, w.bounds, rf, rs, r.bounds)) {
          summary.proven_independent += 1;
        }
      }
    }
  }

  return summary;
}

}  // namespace dasched
