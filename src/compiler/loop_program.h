// Affine loop-nest IR — the "source form" of a parallel I/O program.
//
// Workloads in the paper's target domain are series of loop nests over
// multidimensional disk-resident arrays (Fig. 5).  The IR below captures
// exactly that class: loops with affine bounds, I/O calls with affine byte
// offsets, and per-iteration compute costs, all parameterized by the process
// id `p` and the process count `P` (SPMD after parallelization).
//
// Loops marked `slot_loop` define the scheduling granularity: one iteration
// of a slot loop is one scheduling slot ("iteration" in the paper).  The
// interpreter in lower.h unrolls the nest per process into a
// `CompiledProgram`.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "compiler/affine.h"
#include "storage/striping.h"
#include "util/units.h"

namespace dasched {

struct LoopStmt;

/// An I/O call: read/write of `size` bytes at `offset` within `file`, both
/// affine in the enclosing loop variables.
struct IoCallStmt {
  FileId file = 0;
  AffineExpr offset;
  AffineExpr size;
  bool is_write = false;
};

/// CPU work, in microseconds (affine so cost can depend on loop position).
struct ComputeStmt {
  AffineExpr usec;
};

struct Stmt;
using StmtList = std::vector<Stmt>;

struct LoopStmt {
  std::string var;
  AffineExpr lower;  // inclusive
  AffineExpr upper;  // inclusive
  std::int64_t step = 1;
  /// One iteration of a slot loop = one scheduling slot.
  bool slot_loop = false;
  StmtList body;
};

struct Stmt {
  std::variant<LoopStmt, IoCallStmt, ComputeStmt> node;
};

/// An SPMD program: the same statement list runs on every process with
/// `p` = process id and `P` = process count bound in the environment.
struct LoopProgram {
  StmtList body;
};

// --- Builder helpers --------------------------------------------------------

/// The canonical variable names bound by the interpreter.
inline const std::string kProcessVar = "p";
inline const std::string kProcessCountVar = "P";

[[nodiscard]] inline Stmt make_loop(std::string var, AffineExpr lower,
                                    AffineExpr upper, StmtList body,
                                    bool slot_loop = true,
                                    std::int64_t step = 1) {
  return Stmt{LoopStmt{std::move(var), std::move(lower), std::move(upper), step,
                       slot_loop, std::move(body)}};
}

[[nodiscard]] inline Stmt make_read(FileId file, AffineExpr offset,
                                    AffineExpr size) {
  return Stmt{IoCallStmt{file, std::move(offset), std::move(size), false}};
}

[[nodiscard]] inline Stmt make_write(FileId file, AffineExpr offset,
                                     AffineExpr size) {
  return Stmt{IoCallStmt{file, std::move(offset), std::move(size), true}};
}

[[nodiscard]] inline Stmt make_compute(AffineExpr usec) {
  return Stmt{ComputeStmt{std::move(usec)}};
}

}  // namespace dasched
