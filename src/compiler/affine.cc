#include "compiler/affine.h"

#include <sstream>
#include <stdexcept>

namespace dasched {

AffineExpr AffineExpr::var(std::string name) {
  AffineExpr e;
  e.terms_[std::move(name)] = 1;
  return e;
}

std::int64_t AffineExpr::eval(const AffineEnv& env) const {
  std::int64_t v = constant_;
  for (const auto& [name, coeff] : terms_) {
    const auto it = env.find(name);
    if (it == env.end()) {
      throw std::out_of_range("AffineExpr::eval: unbound variable '" + name + "'");
    }
    v += coeff * it->second;
  }
  return v;
}

std::int64_t AffineExpr::coefficient(const std::string& name) const {
  const auto it = terms_.find(name);
  return it == terms_.end() ? 0 : it->second;
}

std::vector<std::string> AffineExpr::variables() const {
  std::vector<std::string> out;
  out.reserve(terms_.size());
  for (const auto& [name, coeff] : terms_) {
    (void)coeff;
    out.push_back(name);
  }
  return out;
}

void AffineExpr::prune() {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (it->second == 0) {
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& o) {
  constant_ += o.constant_;
  for (const auto& [name, coeff] : o.terms_) terms_[name] += coeff;
  prune();
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& o) {
  constant_ -= o.constant_;
  for (const auto& [name, coeff] : o.terms_) terms_[name] -= coeff;
  prune();
  return *this;
}

AffineExpr& AffineExpr::operator*=(std::int64_t k) {
  constant_ *= k;
  for (auto& [name, coeff] : terms_) {
    (void)name;
    coeff *= k;
  }
  prune();
  return *this;
}

std::string AffineExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : terms_) {
    if (!first) os << " + ";
    first = false;
    if (coeff == 1) {
      os << name;
    } else {
      os << coeff << "*" << name;
    }
  }
  if (constant_ != 0 || first) {
    if (!first) os << " + ";
    os << constant_;
  }
  return os.str();
}

}  // namespace dasched
