// Profiling front end (Sec. IV-A).
//
// When loop nests are non-affine or have symbolic bounds, the paper falls
// back to a profiling tool: run (or replay) the program once and record the
// per-iteration I/O behaviour.  `TraceBuilder` is that recorder — workloads
// drive it imperatively and the result lowers to the same `CompiledProgram`
// the affine path produces, so slack analysis and scheduling are shared.
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "compiler/lower.h"
#include "compiler/program.h"

namespace dasched {

class TraceBuilder {
 public:
  explicit TraceBuilder(int num_processes) {
    assert(num_processes > 0);
    processes_.resize(static_cast<std::size_t>(num_processes));
    open_.resize(static_cast<std::size_t>(num_processes));
  }

  /// Records CPU time in the current slot of process `p`.
  void compute(int p, SimTime usec) { slot(p).compute += usec; }

  void read(int p, FileId file, Bytes offset, Bytes size) {
    slot(p).ops.push_back(IoOp{file, offset, size, false});
  }

  void write(int p, FileId file, Bytes offset, Bytes size) {
    slot(p).ops.push_back(IoOp{file, offset, size, true});
  }

  /// Ends the current slot ("iteration") of process `p`.
  void end_slot(int p) {
    auto& s = slot(p);
    processes_[static_cast<std::size_t>(p)].slots.push_back(std::move(s));
    s = SlotPlan{};
  }

  /// Ends the current slot of every process (a full parallel iteration).
  void end_iteration() {
    for (int p = 0; p < static_cast<int>(processes_.size()); ++p) end_slot(p);
  }

  /// Finishes recording: flushes non-empty open slots, aligns processes and
  /// optionally applies slot coarsening (the paper's d).
  [[nodiscard]] CompiledProgram build(int granularity = 1) {
    CompiledProgram out;
    for (std::size_t p = 0; p < processes_.size(); ++p) {
      auto& open = open_[p];
      if (open.compute != 0 || !open.ops.empty()) {
        processes_[p].slots.push_back(std::move(open));
        open = SlotPlan{};
      }
      out.processes.push_back(std::move(processes_[p]));
    }
    out.align_slots();
    coarsen(out, granularity);
    return out;
  }

 private:
  SlotPlan& slot(int p) {
    assert(p >= 0 && static_cast<std::size_t>(p) < open_.size());
    return open_[static_cast<std::size_t>(p)];
  }

  std::vector<ProcessPlan> processes_;
  std::vector<SlotPlan> open_;
};

}  // namespace dasched
