// Declarative experiment grids.
//
// Every figure/table in the paper is a cross product — applications × power
// policies × scheme on/off, sometimes crossed with one numeric sweep axis
// (δ, θ, #I/O nodes, cache/buffer capacity, slack bound).  `ExperimentGrid`
// states that product once; `cells()` expands it into fully derived
// `ExperimentConfig`s that `run_grid` (grid_runner.h) can execute serially
// or on a worker pool with bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace dasched {

/// One optional numeric axis.  `apply` writes `value` into the config; the
/// name doubles as the CLI/result-sink label (e.g. "nodes=16").
struct SweepAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(ExperimentConfig&, double)> apply;

  [[nodiscard]] bool empty() const { return values.empty(); }
};

/// Builds one of the known sweep axes: nodes, delta, theta, cache_mib,
/// buffer_mib, slack.  Throws std::invalid_argument for unknown names.
[[nodiscard]] SweepAxis sweep_axis_by_name(const std::string& name,
                                           std::vector<double> values);

/// One fully expanded grid point.  `config` carries the derived per-cell
/// seed; the remaining fields label the cell for tables and result sinks.
struct GridCell {
  std::size_t index = 0;
  std::string app;
  PolicyKind policy = PolicyKind::kNone;
  bool scheme = false;
  bool has_sweep = false;
  std::string sweep_name;
  double sweep_value = 0.0;
  ExperimentConfig config;
};

struct ExperimentGrid {
  /// Template for every cell; app/policy/use_scheme/seed are overwritten
  /// per cell, everything else (scale, storage, compile, runtime…) is
  /// copied as-is before the sweep axis is applied.
  ExperimentConfig base;

  std::vector<std::string> apps{"sar"};
  std::vector<PolicyKind> policies{PolicyKind::kNone};
  /// Scheme axis; {false}, {true} or {false, true}.
  std::vector<bool> schemes{false};
  /// Optional numeric axis (empty = none).
  SweepAxis sweep;

  /// Per-cell seeds are derived from (base_seed, cell index) so cells are
  /// decorrelated yet independent of execution order; set
  /// `derive_seeds = false` to give every cell exactly `base_seed`.
  std::uint64_t base_seed = 1;
  bool derive_seeds = true;

  [[nodiscard]] std::size_t size() const;

  /// Expands the product in deterministic order:
  /// app-major, then policy, scheme, sweep value.
  [[nodiscard]] std::vector<GridCell> cells() const;

  /// splitmix64 of (base, index) — the per-cell seed derivation.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base,
                                                 std::size_t index);
};

}  // namespace dasched
