// Strict environment-knob parsing.
//
// Scale/thread knobs steer every bench and grid run, so a typo like
// `DASCHED_BENCH_PROCS=abc` must stop the process with a clear message
// instead of silently becoming 0 (atoi) and producing a nonsense run.
#pragma once

#include <optional>
#include <string>

namespace dasched {

/// Parses the entire string as a floating-point number; nullopt on any
/// trailing garbage, empty input, or range error.
[[nodiscard]] std::optional<double> parse_double(const std::string& s);

/// Parses the entire string as a (base-10) integer; nullopt on garbage.
[[nodiscard]] std::optional<long long> parse_int(const std::string& s);

/// Environment lookups with a fallback.  A set-but-malformed value is fatal:
/// prints `<name>: invalid value '<v>'` to stderr and exits with status 2.
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] int env_int(const char* name, int fallback);

}  // namespace dasched
