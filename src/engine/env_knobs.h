// Strict environment-knob parsing.
//
// Scale/thread knobs steer every bench and grid run, so a typo like
// `DASCHED_BENCH_PROCS=abc` must stop the process with a clear message
// instead of silently becoming 0 (atoi) and producing a nonsense run.
#pragma once

#include <optional>
#include <string>

#include "telemetry/events.h"

namespace dasched {

/// Parses the entire string as a floating-point number; nullopt on any
/// trailing garbage, empty input, or range error.
[[nodiscard]] std::optional<double> parse_double(const std::string& s);

/// Parses the entire string as a (base-10) integer; nullopt on garbage.
[[nodiscard]] std::optional<long long> parse_int(const std::string& s);

/// Environment lookups with a fallback.  A set-but-malformed value is fatal:
/// prints `<name>: invalid value '<v>'` to stderr and exits with status 2.
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] int env_int(const char* name, int fallback);

/// Raw environment lookup; `fallback` when unset (any set value is valid).
[[nodiscard]] std::string env_string(const char* name, const char* fallback);

/// Shard count from DASCHED_SHARDS (`fallback` when unset).  The strict
/// integer parse of env_int applies; range validation (0 = classic serial,
/// 1..num_io_nodes = sharded) is validate_experiment_topology's job, so a
/// bad count still names the topology it conflicts with.
[[nodiscard]] int shards_from_env(int fallback);

/// Workspace reuse from DASCHED_WORKSPACE: "on" (the default — grid workers
/// reuse a warm per-worker ExperimentWorkspace across cells), "off" (legacy
/// fresh-per-cell construction; the A/B baseline for bench/grid_throughput).
/// Any other set value is fatal, matching the other knobs.  Results are
/// bit-identical either way (DESIGN.md §16); this knob trades only speed.
[[nodiscard]] bool workspace_from_env(bool fallback);

/// Telemetry capture from the environment: DASCHED_TRACE names the output
/// directory and enables tracing; DASCHED_TRACE_LEVEL selects
/// {state,request,full} (default "state", "off" disables).  A malformed
/// level is fatal, matching the other knobs.
[[nodiscard]] TelemetryConfig telemetry_from_env();

}  // namespace dasched
