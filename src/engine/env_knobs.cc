#include "engine/env_knobs.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "util/parse.h"

namespace dasched {

namespace {

// The fatal path is shared with every other strict knob in the tree
// (util/parse.h), including the ones below this library's link level.
[[noreturn]] void die(const char* name, const char* value, const char* kind) {
  die_invalid_value(name, value, kind);
}

}  // namespace

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  return v;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_double(v);
  if (!parsed) die(name, v, "a number");
  return *parsed;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_int(v);
  if (!parsed || *parsed < std::numeric_limits<int>::min() ||
      *parsed > std::numeric_limits<int>::max()) {
    die(name, v, "an integer");
  }
  return static_cast<int>(*parsed);
}

std::string env_string(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : v;
}

int shards_from_env(int fallback) { return env_int("DASCHED_SHARDS", fallback); }

bool workspace_from_env(bool fallback) {
  const char* v = std::getenv("DASCHED_WORKSPACE");
  if (v == nullptr) return fallback;
  const std::string s = v;
  if (s == "on") return true;
  if (s == "off") return false;
  die("DASCHED_WORKSPACE", v, "on|off");
}

TelemetryConfig telemetry_from_env() {
  TelemetryConfig cfg;
  cfg.dir = env_string("DASCHED_TRACE", "");
  if (cfg.dir.empty()) return cfg;  // level stays kOff: capture disabled
  const std::string level = env_string("DASCHED_TRACE_LEVEL", "state");
  const auto parsed = parse_trace_level(level);
  if (!parsed) {
    die("DASCHED_TRACE_LEVEL", level.c_str(), "off|state|request|full");
  }
  cfg.level = *parsed;
  if (cfg.level == TraceLevel::kOff) cfg.dir.clear();
  return cfg;
}

}  // namespace dasched
