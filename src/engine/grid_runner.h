// Grid execution: serial or on a std::thread worker pool.
//
// Each grid cell is one `run_experiment` call.  By default every worker
// thread owns one warm ExperimentWorkspace reused across all its cells
// (bit-identical to fresh construction — DESIGN.md §16); with the
// workspace knob off, each cell builds a fresh Simulator + StorageSystem.
// Either way cells share no mutable state and the parallel schedule cannot
// change any cell's result — `run_grid` with N threads is bit-identical to
// the serial run (tests/engine/grid_runner_test proves it).  Results come
// back indexed in cell-enumeration order.
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "engine/experiment_grid.h"
#include "telemetry/events.h"

namespace dasched {

struct GridRunOptions {
  /// Worker threads; <= 0 resolves DASCHED_GRID_THREADS, then
  /// std::thread::hardware_concurrency().  1 runs serially on the caller's
  /// thread.  The pool never exceeds the number of cells.
  int threads = 0;
  /// Runs every cell under the invariant auditor; a violation throws from
  /// `run_grid` with the audit report (same contract as ExperimentConfig::
  /// audit, which this OR-combines with).
  bool audit = false;
  /// Traces every cell at `telemetry.level`.  When `telemetry.dir` is set
  /// each cell writes its artifacts under `<dir>/cell_<index>`; either way
  /// the per-cell summary lands in ExperimentResult::telemetry for the
  /// telemetry result sinks.
  TelemetryConfig telemetry;
  /// Progress tap, called after each finished cell.  Serialized by the
  /// runner's mutex, so it may print without interleaving.
  std::function<void(const GridCell&)> on_cell_done;
  /// Per-worker workspace reuse (DESIGN.md §16): each worker thread keeps
  /// one warm ExperimentWorkspace across all its cells, so a W-worker run
  /// over N cells constructs O(W) simulation stacks instead of O(N).
  /// Bit-identical to fresh-per-cell either way.  -1 resolves
  /// DASCHED_WORKSPACE (default on); 0 forces the legacy fresh-per-cell
  /// path; 1 forces reuse.
  int workspace = -1;
};

struct GridCellResult {
  GridCell cell;
  ExperimentResult result;
};

/// Results of one grid run, in cell-enumeration order, with lookups keyed
/// the way bench tables read them.
class GridResultSet {
 public:
  GridResultSet() = default;
  explicit GridResultSet(std::vector<GridCellResult> rows)
      : rows_(std::move(rows)) {}

  [[nodiscard]] const std::vector<GridCellResult>& rows() const {
    return rows_;
  }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Concatenates another run's rows (e.g. a separately declared baseline
  /// grid); lookups then span both.
  void append(GridResultSet other) {
    rows_.insert(rows_.end(), std::make_move_iterator(other.rows_.begin()),
                 std::make_move_iterator(other.rows_.end()));
  }

  /// Cell lookup for non-sweep grids; throws std::out_of_range if absent.
  [[nodiscard]] const ExperimentResult& find(const std::string& app,
                                             PolicyKind policy,
                                             bool scheme) const;

  /// Cell lookup within a sweep grid (value compared exactly).
  [[nodiscard]] const ExperimentResult& find(const std::string& app,
                                             PolicyKind policy, bool scheme,
                                             double sweep_value) const;

 private:
  [[nodiscard]] const ExperimentResult* lookup(const std::string& app,
                                               PolicyKind policy, bool scheme,
                                               bool match_sweep,
                                               double sweep_value) const;

  std::vector<GridCellResult> rows_;
};

/// Resolves the effective worker-thread count `run_grid` would use.
[[nodiscard]] int resolve_grid_threads(int requested);

/// Executes every cell of `grid`.  Exceptions from any cell (including
/// audit violations) are rethrown on the calling thread after the pool
/// drains; remaining unstarted cells are abandoned.
[[nodiscard]] GridResultSet run_grid(const ExperimentGrid& grid,
                                     const GridRunOptions& opts = {});

}  // namespace dasched
