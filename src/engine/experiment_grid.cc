#include "engine/experiment_grid.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace dasched {

SweepAxis sweep_axis_by_name(const std::string& name,
                             std::vector<double> values) {
  SweepAxis axis;
  axis.name = name;
  axis.values = std::move(values);
  if (name == "nodes") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.storage.num_io_nodes = static_cast<int>(v);
    };
  } else if (name == "delta") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.compile.sched.delta = static_cast<int>(v);
    };
  } else if (name == "theta") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.compile.sched.theta = static_cast<int>(v);
    };
  } else if (name == "cache_mib") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.storage.node.cache_capacity = mib(static_cast<std::int64_t>(v));
    };
  } else if (name == "buffer_mib") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.runtime.buffer_capacity = mib(static_cast<std::int64_t>(v));
    };
  } else if (name == "slack") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.max_slack = static_cast<Slot>(v);
    };
  } else if (name == "shards") {
    axis.apply = [](ExperimentConfig& cfg, double v) {
      cfg.shards = static_cast<int>(v);
    };
  } else {
    throw std::invalid_argument("unknown sweep axis '" + name +
                                "' (known: nodes, delta, theta, cache_mib, "
                                "buffer_mib, slack, shards)");
  }
  return axis;
}

std::size_t ExperimentGrid::size() const {
  const std::size_t sweep_points = sweep.empty() ? 1 : sweep.values.size();
  return apps.size() * policies.size() * schemes.size() * sweep_points;
}

std::uint64_t ExperimentGrid::derive_seed(std::uint64_t base,
                                          std::size_t index) {
  return dasched::derive_seed(base, index);
}

std::vector<GridCell> ExperimentGrid::cells() const {
  if (apps.empty() || policies.empty() || schemes.empty()) {
    throw std::invalid_argument("ExperimentGrid: every axis needs >= 1 value");
  }
  if (!sweep.empty() && !sweep.apply) {
    throw std::invalid_argument("ExperimentGrid: sweep axis without apply fn");
  }
  std::vector<GridCell> out;
  out.reserve(size());
  const std::size_t sweep_points = sweep.empty() ? 1 : sweep.values.size();
  for (const std::string& app : apps) {
    for (const PolicyKind policy : policies) {
      for (const bool scheme : schemes) {
        for (std::size_t s = 0; s < sweep_points; ++s) {
          GridCell cell;
          cell.index = out.size();
          cell.app = app;
          cell.policy = policy;
          cell.scheme = scheme;
          cell.config = base;
          cell.config.app = app;
          cell.config.policy = policy;
          cell.config.use_scheme = scheme;
          cell.config.seed =
              derive_seeds ? derive_seed(base_seed, cell.index) : base_seed;
          if (!sweep.empty()) {
            cell.has_sweep = true;
            cell.sweep_name = sweep.name;
            cell.sweep_value = sweep.values[s];
            sweep.apply(cell.config, cell.sweep_value);
          }
          out.push_back(std::move(cell));
        }
      }
    }
  }
  return out;
}

}  // namespace dasched
