#include "engine/grid_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "driver/workspace.h"
#include "engine/env_knobs.h"

namespace dasched {

const ExperimentResult* GridResultSet::lookup(const std::string& app,
                                              PolicyKind policy, bool scheme,
                                              bool match_sweep,
                                              double sweep_value) const {
  for (const GridCellResult& row : rows_) {
    if (row.cell.app != app || row.cell.policy != policy ||
        row.cell.scheme != scheme) {
      continue;
    }
    if (match_sweep &&
        (!row.cell.has_sweep || row.cell.sweep_value != sweep_value)) {
      continue;
    }
    return &row.result;
  }
  return nullptr;
}

const ExperimentResult& GridResultSet::find(const std::string& app,
                                            PolicyKind policy,
                                            bool scheme) const {
  const ExperimentResult* r = lookup(app, policy, scheme, false, 0.0);
  if (r == nullptr) {
    throw std::out_of_range("GridResultSet: no cell " + app + "/" +
                            to_string(policy) + "/" + (scheme ? "s" : "b"));
  }
  return *r;
}

const ExperimentResult& GridResultSet::find(const std::string& app,
                                            PolicyKind policy, bool scheme,
                                            double sweep_value) const {
  const ExperimentResult* r = lookup(app, policy, scheme, true, sweep_value);
  if (r == nullptr) {
    throw std::out_of_range("GridResultSet: no cell " + app + "/" +
                            to_string(policy) + "/" + (scheme ? "s" : "b") +
                            " at sweep value " + std::to_string(sweep_value));
  }
  return *r;
}

int resolve_grid_threads(int requested) {
  int threads = requested;
  if (threads <= 0) threads = env_int("DASCHED_GRID_THREADS", 0);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return threads < 1 ? 1 : threads;
}

namespace {

ExperimentResult run_cell(const GridCell& cell, const GridRunOptions& opts,
                          ExperimentWorkspace* ws) {
  ExperimentConfig cfg = cell.config;
  cfg.audit = cfg.audit || opts.audit;
  if (opts.telemetry.enabled()) {
    cfg.telemetry = opts.telemetry;
    if (!cfg.telemetry.dir.empty()) {
      cfg.telemetry.dir += "/cell_" + std::to_string(cell.index);
    }
  }
  return ws != nullptr ? run_experiment(cfg, *ws) : run_experiment(cfg);
}

}  // namespace

GridResultSet run_grid(const ExperimentGrid& grid,
                       const GridRunOptions& opts) {
  const std::vector<GridCell> cells = grid.cells();
  std::vector<GridCellResult> results(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) results[i].cell = cells[i];

  int threads = resolve_grid_threads(opts.threads);
  if (static_cast<std::size_t>(threads) > cells.size()) {
    threads = static_cast<int>(cells.size());
  }
  const bool use_workspace =
      opts.workspace < 0 ? workspace_from_env(true) : opts.workspace != 0;

  if (threads <= 1) {
    ExperimentWorkspace ws;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i].result =
          run_cell(cells[i], opts, use_workspace ? &ws : nullptr);
      if (opts.on_cell_done) opts.on_cell_done(cells[i]);
    }
    return GridResultSet{std::move(results)};
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::mutex mu;  // guards first_error and serializes on_cell_done
  std::exception_ptr first_error;

  auto worker = [&] {
    // One warm workspace per worker thread: O(threads) stack constructions
    // for the whole grid instead of O(cells).
    ExperimentWorkspace ws;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) break;
      try {
        results[i].result =
            run_cell(cells[i], opts, use_workspace ? &ws : nullptr);
        if (opts.on_cell_done) {
          const std::lock_guard<std::mutex> lock(mu);
          opts.on_cell_done(cells[i]);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return GridResultSet{std::move(results)};
}

}  // namespace dasched
