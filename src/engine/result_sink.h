// Structured result emission shared by every bench binary and tool.
//
// One schema, two encodings: a CSV table (spreadsheet-friendly) and JSON
// lines (one object per grid cell — the `BENCH_*.json` trajectory format).
// Benches emit mechanically via `emit_env_sinks`, which honours the
// DASCHED_BENCH_CSV / DASCHED_BENCH_JSONL environment knobs, so every
// figure reproduction can feed plotting scripts without bespoke printers.
#pragma once

#include <iosfwd>
#include <string>

#include "engine/grid_runner.h"

namespace dasched {

/// CSV column header matching `write_csv_row`.
void write_csv_header(std::ostream& os);
void write_csv_row(std::ostream& os, const GridCellResult& row);
/// Header plus one row per cell.
void write_csv(std::ostream& os, const GridResultSet& results);

/// One JSON object per line per cell (JSONL).  Keys mirror the CSV columns.
void write_jsonl_row(std::ostream& os, const GridCellResult& row);
void write_jsonl(std::ostream& os, const GridResultSet& results);

/// Writes the encodings to files ("" skips one, "-" means stdout).
/// Throws std::runtime_error if a path cannot be opened.
void write_result_files(const GridResultSet& results,
                        const std::string& csv_path,
                        const std::string& jsonl_path);

/// Bench-binary hook: writes to $DASCHED_BENCH_CSV / $DASCHED_BENCH_JSONL
/// when set (appending per binary would interleave schemas, so each binary
/// should be pointed at its own file).  No-op when neither is set.
void emit_env_sinks(const GridResultSet& results);

// ---- Telemetry aggregates -------------------------------------------------
//
// Separate files with their own schema: the grid CSV/JSONL above is a frozen
// trajectory format, so per-cell telemetry (energy by state, residency,
// idle-period quantiles, prediction accuracy, policy-action counts) gets its
// own table.  Cells that ran without telemetry are skipped.

void write_telemetry_csv(std::ostream& os, const GridResultSet& results);
void write_telemetry_jsonl(std::ostream& os, const GridResultSet& results);

/// Same path conventions as `write_result_files` ("" skips, "-" = stdout).
void write_telemetry_files(const GridResultSet& results,
                           const std::string& csv_path,
                           const std::string& jsonl_path);

}  // namespace dasched
