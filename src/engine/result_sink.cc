#include "engine/result_sink.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

namespace dasched {

namespace {

/// Minimal JSON string escaping (the emitted strings are app/axis names).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_csv_header(std::ostream& os) {
  os << "app,policy,scheme,sweep,sweep_value,seed,procs,scale,nodes,delta,"
        "theta,max_slack,exec_s,energy_j,requests,disk_requests,spin_downs,"
        "spin_ups,rpm_changes,cache_hit_rate,prefetches,buffer_hits,"
        "in_flight_hits,direct_reads,scheduled,mean_advance_slots,events,"
        "audited,audit_violations\n";
}

void write_csv_row(std::ostream& os, const GridCellResult& row) {
  const GridCell& c = row.cell;
  const ExperimentResult& r = row.result;
  os << c.app << ',' << to_string(c.policy) << ',' << (c.scheme ? 1 : 0)
     << ',' << (c.has_sweep ? c.sweep_name : "") << ','
     << (c.has_sweep ? c.sweep_value : 0.0) << ',' << c.config.seed << ','
     << c.config.scale.num_processes << ',' << c.config.scale.factor << ','
     << c.config.storage.num_io_nodes << ',' << c.config.compile.sched.delta
     << ',' << c.config.compile.sched.theta << ',' << c.config.max_slack
     << ',' << to_sec(r.exec_time) << ',' << r.energy_j << ','
     << r.storage.requests << ',' << r.storage.disk_requests << ','
     << r.storage.spin_downs << ',' << r.storage.spin_ups << ','
     << r.storage.rpm_changes << ',' << r.storage.cache_hit_rate << ','
     << r.runtime.prefetches << ',' << r.runtime.buffer_hits << ','
     << r.runtime.in_flight_hits << ',' << r.runtime.direct_reads << ','
     << r.sched.scheduled << ',' << r.sched.mean_advance_slots << ','
     << r.events << ',' << (r.audited ? 1 : 0) << ',' << r.audit_violations
     << '\n';
}

void write_csv(std::ostream& os, const GridResultSet& results) {
  write_csv_header(os);
  for (const GridCellResult& row : results.rows()) write_csv_row(os, row);
}

void write_jsonl_row(std::ostream& os, const GridCellResult& row) {
  const GridCell& c = row.cell;
  const ExperimentResult& r = row.result;
  os << "{\"app\":\"" << json_escape(c.app) << "\",\"policy\":\""
     << to_string(c.policy) << "\",\"scheme\":" << (c.scheme ? "true" : "false");
  if (c.has_sweep) {
    os << ",\"sweep\":\"" << json_escape(c.sweep_name)
       << "\",\"sweep_value\":" << c.sweep_value;
  }
  os << ",\"seed\":" << c.config.seed
     << ",\"procs\":" << c.config.scale.num_processes
     << ",\"scale\":" << c.config.scale.factor
     << ",\"nodes\":" << c.config.storage.num_io_nodes
     << ",\"delta\":" << c.config.compile.sched.delta
     << ",\"theta\":" << c.config.compile.sched.theta
     << ",\"max_slack\":" << c.config.max_slack
     << ",\"exec_s\":" << to_sec(r.exec_time)
     << ",\"energy_j\":" << r.energy_j
     << ",\"requests\":" << r.storage.requests
     << ",\"disk_requests\":" << r.storage.disk_requests
     << ",\"spin_downs\":" << r.storage.spin_downs
     << ",\"spin_ups\":" << r.storage.spin_ups
     << ",\"rpm_changes\":" << r.storage.rpm_changes
     << ",\"cache_hit_rate\":" << r.storage.cache_hit_rate
     << ",\"prefetches\":" << r.runtime.prefetches
     << ",\"buffer_hits\":" << r.runtime.buffer_hits
     << ",\"in_flight_hits\":" << r.runtime.in_flight_hits
     << ",\"direct_reads\":" << r.runtime.direct_reads
     << ",\"scheduled\":" << r.sched.scheduled
     << ",\"mean_advance_slots\":" << r.sched.mean_advance_slots
     << ",\"events\":" << r.events
     << ",\"audited\":" << (r.audited ? "true" : "false")
     << ",\"audit_violations\":" << r.audit_violations << "}\n";
}

void write_jsonl(std::ostream& os, const GridResultSet& results) {
  for (const GridCellResult& row : results.rows()) write_jsonl_row(os, row);
}

namespace {

void write_encoding(const GridResultSet& results, const std::string& path,
                    void (*writer)(std::ostream&, const GridResultSet&)) {
  if (path.empty()) return;
  if (path == "-") {
    writer(std::cout, results);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open result file '" + path + "'");
  writer(out, results);
}

}  // namespace

void write_result_files(const GridResultSet& results,
                        const std::string& csv_path,
                        const std::string& jsonl_path) {
  write_encoding(results, csv_path, &write_csv);
  write_encoding(results, jsonl_path, &write_jsonl);
}

void emit_env_sinks(const GridResultSet& results) {
  const char* csv = std::getenv("DASCHED_BENCH_CSV");
  const char* jsonl = std::getenv("DASCHED_BENCH_JSONL");
  write_result_files(results, csv == nullptr ? "" : csv,
                     jsonl == nullptr ? "" : jsonl);
}

}  // namespace dasched
