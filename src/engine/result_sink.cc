#include "engine/result_sink.h"

#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "engine/env_knobs.h"
#include "telemetry/analytics.h"

namespace dasched {

namespace {

/// Minimal JSON string escaping (the emitted strings are app/axis names).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Display names use hyphens; column names want identifiers.
std::string column_name(const char* display) {
  std::string out = display;
  for (char& c : out) {
    if (c == '-') c = '_';
  }
  return out;
}

}  // namespace

void write_csv_header(std::ostream& os) {
  os << "app,policy,scheme,sweep,sweep_value,seed,procs,scale,nodes,delta,"
        "theta,max_slack,exec_s,energy_j,requests,disk_requests,spin_downs,"
        "spin_ups,rpm_changes,cache_hit_rate,prefetches,buffer_hits,"
        "in_flight_hits,direct_reads,scheduled,mean_advance_slots,events,"
        "audited,audit_violations\n";
}

void write_csv_row(std::ostream& os, const GridCellResult& row) {
  const GridCell& c = row.cell;
  const ExperimentResult& r = row.result;
  os << c.app << ',' << to_string(c.policy) << ',' << (c.scheme ? 1 : 0)
     << ',' << (c.has_sweep ? c.sweep_name : "") << ','
     << (c.has_sweep ? c.sweep_value : 0.0) << ',' << c.config.seed << ','
     << c.config.scale.num_processes << ',' << c.config.scale.factor << ','
     << c.config.storage.num_io_nodes << ',' << c.config.compile.sched.delta
     << ',' << c.config.compile.sched.theta << ',' << c.config.max_slack
     << ',' << to_sec(r.exec_time) << ',' << r.energy_j << ','
     << r.storage.requests << ',' << r.storage.disk_requests << ','
     << r.storage.spin_downs << ',' << r.storage.spin_ups << ','
     << r.storage.rpm_changes << ',' << r.storage.cache_hit_rate << ','
     << r.runtime.prefetches << ',' << r.runtime.buffer_hits << ','
     << r.runtime.in_flight_hits << ',' << r.runtime.direct_reads << ','
     << r.sched.scheduled << ',' << r.sched.mean_advance_slots << ','
     << r.events << ',' << (r.audited ? 1 : 0) << ',' << r.audit_violations
     << '\n';
}

void write_csv(std::ostream& os, const GridResultSet& results) {
  write_csv_header(os);
  for (const GridCellResult& row : results.rows()) write_csv_row(os, row);
}

void write_jsonl_row(std::ostream& os, const GridCellResult& row) {
  const GridCell& c = row.cell;
  const ExperimentResult& r = row.result;
  os << "{\"app\":\"" << json_escape(c.app) << "\",\"policy\":\""
     << to_string(c.policy) << "\",\"scheme\":" << (c.scheme ? "true" : "false");
  if (c.has_sweep) {
    os << ",\"sweep\":\"" << json_escape(c.sweep_name)
       << "\",\"sweep_value\":" << c.sweep_value;
  }
  os << ",\"seed\":" << c.config.seed
     << ",\"procs\":" << c.config.scale.num_processes
     << ",\"scale\":" << c.config.scale.factor
     << ",\"nodes\":" << c.config.storage.num_io_nodes
     << ",\"delta\":" << c.config.compile.sched.delta
     << ",\"theta\":" << c.config.compile.sched.theta
     << ",\"max_slack\":" << c.config.max_slack
     << ",\"exec_s\":" << to_sec(r.exec_time)
     << ",\"energy_j\":" << r.energy_j
     << ",\"requests\":" << r.storage.requests
     << ",\"disk_requests\":" << r.storage.disk_requests
     << ",\"spin_downs\":" << r.storage.spin_downs
     << ",\"spin_ups\":" << r.storage.spin_ups
     << ",\"rpm_changes\":" << r.storage.rpm_changes
     << ",\"cache_hit_rate\":" << r.storage.cache_hit_rate
     << ",\"prefetches\":" << r.runtime.prefetches
     << ",\"buffer_hits\":" << r.runtime.buffer_hits
     << ",\"in_flight_hits\":" << r.runtime.in_flight_hits
     << ",\"direct_reads\":" << r.runtime.direct_reads
     << ",\"scheduled\":" << r.sched.scheduled
     << ",\"mean_advance_slots\":" << r.sched.mean_advance_slots
     << ",\"events\":" << r.events
     << ",\"audited\":" << (r.audited ? "true" : "false")
     << ",\"audit_violations\":" << r.audit_violations << "}\n";
}

void write_jsonl(std::ostream& os, const GridResultSet& results) {
  for (const GridCellResult& row : results.rows()) write_jsonl_row(os, row);
}

namespace {

void write_encoding(const GridResultSet& results, const std::string& path,
                    void (*writer)(std::ostream&, const GridResultSet&)) {
  if (path.empty()) return;
  if (path == "-") {
    writer(std::cout, results);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open result file '" + path + "'");
  writer(out, results);
}

}  // namespace

void write_result_files(const GridResultSet& results,
                        const std::string& csv_path,
                        const std::string& jsonl_path) {
  write_encoding(results, csv_path, &write_csv);
  write_encoding(results, jsonl_path, &write_jsonl);
}

void write_telemetry_csv(std::ostream& os, const GridResultSet& results) {
  os << "app,policy,scheme,sweep,sweep_value,trace_level,energy_total_j";
  for (int st = 0; st < kNumDiskStates; ++st) {
    os << ",energy_" << column_name(to_string(static_cast<DiskState>(st)))
       << "_j";
  }
  for (int st = 0; st < kNumDiskStates; ++st) {
    os << ",residency_" << column_name(to_string(static_cast<DiskState>(st)))
       << "_us";
  }
  os << ",idle_periods,idle_mean_us,idle_p50_us,idle_p95_us,idle_max_us,"
        "idle_tw_mean_us,pred_observations,pred_mean_abs_error_us,"
        "pred_mean_signed_error_us";
  for (int d = 0; d < kNumPolicyDecisions; ++d) {
    os << ",actions_"
       << column_name(to_string(static_cast<PolicyDecision>(d)));
  }
  os << ",cache_hits,cache_misses,trace_events\n";

  for (const GridCellResult& row : results.rows()) {
    if (row.result.telemetry == nullptr) continue;
    const TelemetrySummary& t = *row.result.telemetry;
    const GridCell& c = row.cell;
    os << c.app << ',' << to_string(c.policy) << ',' << (c.scheme ? 1 : 0)
       << ',' << (c.has_sweep ? c.sweep_name : "") << ','
       << (c.has_sweep ? c.sweep_value : 0.0) << ',' << to_string(t.meta.level)
       << ',' << t.energy_total_j;
    for (int st = 0; st < kNumDiskStates; ++st) {
      os << ',' << t.energy_by_state_j[static_cast<std::size_t>(st)];
    }
    for (int st = 0; st < kNumDiskStates; ++st) {
      os << ',' << t.residency[static_cast<std::size_t>(st)];
    }
    os << ',' << t.idle.total << ',' << t.idle.mean_us() << ','
       << t.idle.percentile_us(0.50) << ',' << t.idle.percentile_us(0.95)
       << ',' << t.idle.max_us << ',' << t.idle.time_weighted_mean_us() << ','
       << t.prediction.observations << ',' << t.prediction.mean_abs_error_us()
       << ',' << t.prediction.mean_signed_error_us();
    for (int d = 0; d < kNumPolicyDecisions; ++d) {
      os << ',' << t.policy_actions[static_cast<std::size_t>(d)];
    }
    os << ',' << t.cache_hits << ',' << t.cache_misses << ',' << t.trace_events
       << '\n';
  }
}

void write_telemetry_jsonl(std::ostream& os, const GridResultSet& results) {
  for (const GridCellResult& row : results.rows()) {
    if (row.result.telemetry == nullptr) continue;
    const TelemetrySummary& t = *row.result.telemetry;
    const GridCell& c = row.cell;
    os << "{\"app\":\"" << json_escape(c.app) << "\",\"policy\":\""
       << to_string(c.policy)
       << "\",\"scheme\":" << (c.scheme ? "true" : "false");
    if (c.has_sweep) {
      os << ",\"sweep\":\"" << json_escape(c.sweep_name)
         << "\",\"sweep_value\":" << c.sweep_value;
    }
    os << ",\"trace_level\":\"" << to_string(t.meta.level)
       << "\",\"energy_total_j\":" << t.energy_total_j
       << ",\"energy_by_state_j\":{";
    for (int st = 0; st < kNumDiskStates; ++st) {
      os << (st == 0 ? "" : ",") << '"'
         << to_string(static_cast<DiskState>(st))
         << "\":" << t.energy_by_state_j[static_cast<std::size_t>(st)];
    }
    os << "},\"residency_us\":{";
    for (int st = 0; st < kNumDiskStates; ++st) {
      os << (st == 0 ? "" : ",") << '"'
         << to_string(static_cast<DiskState>(st))
         << "\":" << t.residency[static_cast<std::size_t>(st)];
    }
    os << "},\"idle\":{\"periods\":" << t.idle.total
       << ",\"mean_us\":" << t.idle.mean_us()
       << ",\"p50_us\":" << t.idle.percentile_us(0.50)
       << ",\"p95_us\":" << t.idle.percentile_us(0.95)
       << ",\"max_us\":" << t.idle.max_us
       << ",\"time_weighted_mean_us\":" << t.idle.time_weighted_mean_us()
       << "},\"prediction\":{\"observations\":" << t.prediction.observations
       << ",\"mean_abs_error_us\":" << t.prediction.mean_abs_error_us()
       << ",\"mean_signed_error_us\":" << t.prediction.mean_signed_error_us()
       << "},\"policy_actions\":{";
    for (int d = 0; d < kNumPolicyDecisions; ++d) {
      os << (d == 0 ? "" : ",") << '"'
         << to_string(static_cast<PolicyDecision>(d))
         << "\":" << t.policy_actions[static_cast<std::size_t>(d)];
    }
    os << "},\"cache_hits\":" << t.cache_hits
       << ",\"cache_misses\":" << t.cache_misses
       << ",\"trace_events\":" << t.trace_events << "}\n";
  }
}

void write_telemetry_files(const GridResultSet& results,
                           const std::string& csv_path,
                           const std::string& jsonl_path) {
  write_encoding(results, csv_path, &write_telemetry_csv);
  write_encoding(results, jsonl_path, &write_telemetry_jsonl);
}

void emit_env_sinks(const GridResultSet& results) {
  write_result_files(results, env_string("DASCHED_BENCH_CSV", ""),
                     env_string("DASCHED_BENCH_JSONL", ""));
}

}  // namespace dasched
