// trace_dump — inspect and convert binary telemetry traces.
//
// Default mode pretty-prints a trace.bin (one line per event, decoded per
// kind); the conversion modes re-derive the other artifacts offline so a
// captured trace.bin is self-sufficient:
//
//   trace_dump runs/cell_0/trace.bin             # pretty-print
//   trace_dump --head 50 trace.bin               # first 50 events only
//   trace_dump --chrome trace.bin > trace.json   # Chrome trace_event JSON
//   trace_dump --summary trace.bin               # analytics summary JSON
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "disk/disk.h"
#include "telemetry/analytics.h"
#include "telemetry/events.h"
#include "telemetry/export.h"
#include "telemetry/trace_io.h"
#include "util/parse.h"

using namespace dasched;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--chrome | --summary] [--head N] TRACE.BIN\n"
               "  --chrome   convert to Chrome trace_event JSON (stdout)\n"
               "  --summary  fold into the analytics summary JSON (stdout)\n"
               "  --head N   pretty-print only the first N events\n",
               argv0);
  std::exit(code);
}

const char* decision_name(std::uint32_t aux) {
  return aux < static_cast<std::uint32_t>(kNumPolicyDecisions)
             ? to_string(static_cast<PolicyDecision>(aux))
             : "?";
}

const char* state_name(std::uint32_t s) {
  return s < static_cast<std::uint32_t>(kNumDiskStates)
             ? to_string(static_cast<DiskState>(s))
             : "?";
}

void print_event(const TraceEvent& ev) {
  std::printf("%12lld  %-18s", static_cast<long long>(ev.time.count()),
              to_string(ev.event_kind()));
  switch (ev.event_kind()) {
    case TraceEventKind::kStateChange:
      std::printf("  disk=%u  %s -> %s  rpm=%llu", ev.subject,
                  state_name(ev.aux & 0xffu), state_name(ev.aux >> 8),
                  static_cast<unsigned long long>(ev.arg0));
      break;
    case TraceEventKind::kEnergyAccrued:
      std::printf("  disk=%u  state=%s  %.9g J over %llu us", ev.subject,
                  state_name(ev.aux), ev.arg0_double(),
                  static_cast<unsigned long long>(ev.arg1));
      break;
    case TraceEventKind::kStreamIdleBegin:
      std::printf("  disk=%u", ev.subject);
      break;
    case TraceEventKind::kStreamIdleEnd:
      std::printf("  disk=%u  duration=%llu us%s", ev.subject,
                  static_cast<unsigned long long>(ev.arg0),
                  ev.aux != 0 ? "" : "  (not counted)");
      break;
    case TraceEventKind::kPolicyAction:
      std::printf("  disk=%u  %s  predicted=%llu us  rpm=%llu", ev.subject,
                  decision_name(ev.aux),
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1));
      break;
    case TraceEventKind::kIdleObserved:
      std::printf("  disk=%u  predicted=%llu us  actual=%llu us", ev.subject,
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1));
      break;
    case TraceEventKind::kDiskFinalized:
      std::printf("  disk=%u  energy=%.9g J", ev.subject, ev.arg0_double());
      break;
    case TraceEventKind::kRequestSubmitted:
    case TraceEventKind::kServiceStart:
      std::printf("  disk=%u  %s%s  offset=%llu  size=%llu", ev.subject,
                  (ev.aux & 1u) != 0 ? "write" : "read",
                  (ev.aux & 2u) != 0 ? " (background)" : "",
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1));
      break;
    case TraceEventKind::kServiceComplete:
      std::printf("  disk=%u  service=%llu us", ev.subject,
                  static_cast<unsigned long long>(ev.arg0));
      break;
    case TraceEventKind::kQueueDepth:
      std::printf("  disk=%u  depth=%llu", ev.subject,
                  static_cast<unsigned long long>(ev.arg0));
      break;
    case TraceEventKind::kNodeRead:
      std::printf("  node=%u  offset=%llu  size=%llu%s", ev.subject,
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1),
                  ev.aux != 0 ? "  (background)" : "");
      break;
    case TraceEventKind::kNodeWrite:
      std::printf("  node=%u  offset=%llu  size=%llu", ev.subject,
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1));
      break;
    case TraceEventKind::kBlockLookup:
      std::printf("  node=%u  block=%llu  %s", ev.subject,
                  static_cast<unsigned long long>(ev.arg0),
                  ev.aux != 0 ? "hit" : "miss");
      break;
    case TraceEventKind::kPrefetchIssued:
      std::printf("  node=%u  block=%llu", ev.subject,
                  static_cast<unsigned long long>(ev.arg0));
      break;
    case TraceEventKind::kDiskOpsIssued:
      std::printf("  node=%u  ops=%llu", ev.subject,
                  static_cast<unsigned long long>(ev.arg0));
      break;
    case TraceEventKind::kRequestRouted:
      std::printf("  file=%u  %s  offset=%llu  size=%llu  pieces=%u",
                  ev.subject, (ev.aux & 1u) != 0 ? "write" : "read",
                  static_cast<unsigned long long>(ev.arg0),
                  static_cast<unsigned long long>(ev.arg1), ev.aux >> 1);
      break;
    case TraceEventKind::kAccessPlaced:
      std::printf("  process=%u  id=%llu  slot=%u  original=%u%s%s",
                  ev.subject, static_cast<unsigned long long>(ev.arg1),
                  static_cast<std::uint32_t>(ev.arg0 & 0xffffffffu),
                  static_cast<std::uint32_t>(ev.arg0 >> 32),
                  (ev.aux & 1u) != 0 ? "  forced" : "",
                  (ev.aux & 2u) != 0 ? "  theta-fallback" : "");
      break;
    case TraceEventKind::kEventDispatched:
      std::printf("  seq=%llu", static_cast<unsigned long long>(ev.arg0));
      break;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome = false;
  bool summary = false;
  long long head = -1;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chrome") {
      chrome = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--head") {
      if (i + 1 >= argc) usage(argv[0], 2);
      const auto v = parse_i64(argv[++i]);
      if (!v) die_invalid_value("--head", argv[i], "integer");
      head = *v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0], 2);
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0], 2);
    }
  }
  if (path.empty() || (chrome && summary)) usage(argv[0], 2);

  const auto trace = load_trace(path);
  if (!trace) {
    std::fprintf(stderr, "%s: not a readable dasched trace\n", path.c_str());
    return 1;
  }

  if (chrome) {
    write_chrome_trace(std::cout, trace->events, trace->meta);
    return 0;
  }
  if (summary) {
    write_summary_json(std::cout,
                       analyze_trace(trace->events, trace->meta));
    return 0;
  }

  const TraceMeta& m = trace->meta;
  std::printf(
      "# app=%s policy=%d scheme=%d seed=%" PRIu64
      " nodes=%d disks/node=%d level=%s end=%lld us events=%zu\n",
      m.app.c_str(), m.policy, m.scheme ? 1 : 0, m.seed, m.num_nodes,
      m.disks_per_node, to_string(m.level), static_cast<long long>(m.end_time.count()),
      trace->events.size());
  long long printed = 0;
  for (const TraceEvent& ev : trace->events) {
    if (head >= 0 && printed >= head) {
      std::printf("... (%zu more events)\n",
                  trace->events.size() - static_cast<std::size_t>(printed));
      break;
    }
    print_event(ev);
    printed += 1;
  }
  return 0;
}
