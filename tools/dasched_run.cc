// dasched_run — command-line driver for single experiments.
//
// Runs one (application, policy, scheme) configuration on the simulated
// Table II cluster and prints a human-readable report, or a single CSV row
// for scripting (`--csv` prints the header with `--csv-header`).
//
//   dasched_run --app sar --policy history --scheme
//   dasched_run --app hf --policy simple --nodes 16 --scale 0.25
//   dasched_run --csv-header; for p in simple history; do
//     dasched_run --app sar --policy $p --csv; done
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "check/audit.h"
#include "compiler/trace_io.h"
#include "driver/experiment.h"
#include "util/table.h"

using namespace dasched;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --app NAME        hf|sar|astro|apsi|madbench2|wupwise (default sar)\n"
      "  --policy NAME     default|simple|prediction|history|staggered\n"
      "  --scheme          enable the compiler-directed scheduling framework\n"
      "  --procs N         client processes (default 32)\n"
      "  --scale F         workload scale factor (default 1.0)\n"
      "  --nodes N         I/O nodes (default 8)\n"
      "  --delta N         vertical reuse range (default 20)\n"
      "  --theta N         per-node access cap, 0 = off (default 4)\n"
      "  --buffer MB       client prefetch buffer capacity (default 128)\n"
      "  --cache MB        per-node storage cache (default 64)\n"
      "  --seed N          RNG seed (default 1)\n"
      "  --audit           run the invariant auditor and print its report;\n"
      "                    exits 1 when any invariant is violated\n"
      "  --csv             print one CSV row instead of the report\n"
      "  --csv-header      print the CSV header and exit\n"
      "  --dump-trace F    write the workload's lowered trace to F and exit\n"
      "  --help            this text\n",
      argv0);
  std::exit(code);
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "default" || name == "none") return PolicyKind::kNone;
  if (name == "simple") return PolicyKind::kSimple;
  if (name == "prediction") return PolicyKind::kPrediction;
  if (name == "history") return PolicyKind::kHistory;
  if (name == "staggered") return PolicyKind::kStaggered;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

constexpr const char* kCsvHeader =
    "app,policy,scheme,procs,scale,nodes,exec_s,energy_j,spin_downs,"
    "spin_ups,rpm_changes,cache_hit_rate,prefetches,buffer_hits,"
    "direct_reads,events";

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  bool csv = false;
  bool audit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--app") {
      cfg.app = value();
    } else if (arg == "--policy") {
      cfg.policy = parse_policy(value());
    } else if (arg == "--scheme") {
      cfg.use_scheme = true;
    } else if (arg == "--procs") {
      cfg.scale.num_processes = std::atoi(value());
    } else if (arg == "--scale") {
      cfg.scale.factor = std::atof(value());
    } else if (arg == "--nodes") {
      cfg.storage.num_io_nodes = std::atoi(value());
    } else if (arg == "--delta") {
      cfg.compile.sched.delta = std::atoi(value());
    } else if (arg == "--theta") {
      cfg.compile.sched.theta = std::atoi(value());
    } else if (arg == "--buffer") {
      cfg.runtime.buffer_capacity = mib(std::atoi(value()));
    } else if (arg == "--cache") {
      cfg.storage.node.cache_capacity = mib(std::atoi(value()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--dump-trace") {
      const std::string path = value();
      StripingMap striping(cfg.storage.num_io_nodes, cfg.storage.stripe_size);
      const CompiledProgram trace =
          app_by_name(cfg.app).build(striping, cfg.scale);
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      save_trace(trace, out);
      std::printf("wrote %lld slots x %d processes to %s\n",
                  static_cast<long long>(trace.num_slots),
                  trace.num_processes(), path.c_str());
      return 0;
    } else if (arg == "--csv-header") {
      std::puts(kCsvHeader);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }

  SimAuditor auditor;
  const ExperimentResult r =
      audit ? run_experiment(cfg, &auditor) : run_experiment(cfg);
  if (audit) std::fputs(auditor.report().c_str(), csv ? stderr : stdout);

  if (csv) {
    std::printf("%s,%s,%d,%d,%.3f,%d,%.3f,%.1f,%lld,%lld,%lld,%.4f,%lld,%lld,%lld,%lld\n",
                r.app.c_str(), to_string(r.policy), r.scheme ? 1 : 0,
                cfg.scale.num_processes, cfg.scale.factor,
                cfg.storage.num_io_nodes, to_sec(r.exec_time), r.energy_j,
                static_cast<long long>(r.storage.spin_downs),
                static_cast<long long>(r.storage.spin_ups),
                static_cast<long long>(r.storage.rpm_changes),
                r.storage.cache_hit_rate,
                static_cast<long long>(r.runtime.prefetches),
                static_cast<long long>(r.runtime.buffer_hits),
                static_cast<long long>(r.runtime.direct_reads),
                static_cast<long long>(r.events));
    return audit && !auditor.clean() ? 1 : 0;
  }

  std::printf("== %s  (%s%s) ==\n", r.app.c_str(), to_string(r.policy),
              r.scheme ? " + scheduling" : "");
  TextTable table({"metric", "value"});
  table.add_row({"simulated execution", TextTable::fmt(r.exec_minutes(), 2) + " min"});
  table.add_row({"disk energy", TextTable::fmt(r.energy_j / 1'000.0, 2) + " kJ"});
  table.add_row({"idle periods", std::to_string(r.storage.idle_periods.count())});
  table.add_row({"spin-downs / spin-ups",
                 std::to_string(r.storage.spin_downs) + " / " +
                     std::to_string(r.storage.spin_ups)});
  table.add_row({"RPM transitions", std::to_string(r.storage.rpm_changes)});
  table.add_row({"storage cache hit rate", TextTable::pct(r.storage.cache_hit_rate)});
  if (r.scheme) {
    table.add_row({"scheduled accesses", std::to_string(r.sched.scheduled)});
    table.add_row({"mean hoist distance",
                   TextTable::fmt(r.sched.mean_advance_slots, 1) + " slots"});
    table.add_row({"prefetches", std::to_string(r.runtime.prefetches)});
    table.add_row({"buffer hits", std::to_string(r.runtime.buffer_hits)});
  }
  if (r.audited) {
    table.add_row({"audit violations", std::to_string(r.audit_violations)});
  }
  table.add_row({"simulator events", std::to_string(r.events)});
  table.print();
  return audit && !auditor.clean() ? 1 : 0;
}
