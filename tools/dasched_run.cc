// dasched_run — command-line driver for single experiments and grids.
//
// Single mode runs one (application, policy, scheme) configuration on the
// simulated Table II cluster and prints a human-readable report, or a single
// CSV row for scripting (`--csv` prints the header with `--csv-header`).
//
//   dasched_run --app sar --policy history --scheme
//   dasched_run --app hf --policy simple --nodes 16 --scale 0.25
//   dasched_run --csv-header; for p in simple history; do
//     dasched_run --app sar --policy $p --csv; done
//
// Grid mode (`--grid`) declares the paper's cross product once and executes
// it on the thread-parallel grid runner, emitting structured results:
//
//   dasched_run --grid --apps sar,apsi --policies default,history
//     --schemes both --threads 8 --out-csv grid.csv --out-jsonl grid.jsonl
//   dasched_run --grid --apps sar --policies history --schemes both
//     --sweep nodes=2,4,8,16,32 --audit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>

#include "check/audit.h"
#include "compiler/trace_io.h"
#include "driver/experiment.h"
#include "engine/env_knobs.h"
#include "engine/experiment_grid.h"
#include "engine/grid_runner.h"
#include "engine/result_sink.h"
#include "telemetry/analytics.h"
#include "util/table.h"
#include "workload/trace_replay.h"

using namespace dasched;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "single-experiment mode:\n"
      "  --app NAME        hf|sar|astro|apsi|madbench2|wupwise (default sar)\n"
      "  --policy NAME     default|simple|prediction|history|staggered\n"
      "  --scheme          enable the compiler-directed scheduling framework\n"
      "  --csv             print one CSV row instead of the report\n"
      "  --csv-header      print the CSV header and exit\n"
      "  --hexfloat        print one bit-exact hexfloat line (the\n"
      "                    hexfloat_probe format) instead of the report\n"
      "  --dump-trace F    write the workload's lowered trace to F and exit\n"
      "trace replay (EXPERIMENTS.md \"Trace replay\"):\n"
      "  --replay F        replay an external I/O trace as the workload;\n"
      "                    registers it as app replay:<fingerprint> with the\n"
      "                    trace's own process count (override with --procs)\n"
      "  --replay-format X auto|csv|jsonl|blk (default auto: extension, then\n"
      "                    first-data-line sniff)\n"
      "  --replay-slot-us N  timestamp quantum per scheduling slot\n"
      "                    (default 10000)\n"
      "  --replay-seed N   tie-break/jitter seed; part of the trace's\n"
      "                    fingerprint identity (default 1)\n"
      "grid mode:\n"
      "  --grid            run a declarative experiment grid (see below)\n"
      "  --apps A,B,..     application axis (default: all six)\n"
      "  --policies P,..   policy axis (default: default,simple,prediction,\n"
      "                    history,staggered)\n"
      "  --schemes S       scheme axis: off|on|both (default off)\n"
      "  --sweep AXIS=V,.. numeric axis: nodes|delta|theta|cache_mib|\n"
      "                    buffer_mib|slack (e.g. --sweep nodes=2,4,8)\n"
      "  --threads N       grid worker threads (default: DASCHED_GRID_THREADS,\n"
      "                    then hardware concurrency)\n"
      "  --workspace M     on|off: reuse one warm ExperimentWorkspace per\n"
      "                    worker across cells (default: DASCHED_WORKSPACE,\n"
      "                    then on); off = legacy fresh-per-cell; results are\n"
      "                    bit-identical either way\n"
      "  --out-csv F       write per-cell CSV to F ('-' = stdout)\n"
      "  --out-jsonl F     write per-cell JSON lines to F ('-' = stdout)\n"
      "telemetry:\n"
      "  --trace DIR       record a trace; writes trace.bin / summary.json /\n"
      "                    trace.json under DIR (grid mode: DIR/cell_N);\n"
      "                    implies --trace-level state unless given\n"
      "  --trace-level L   off|state|request|full (off disables capture)\n"
      "  --out-telemetry-csv F    grid mode: per-cell telemetry CSV\n"
      "                    (default DIR/telemetry.csv when --trace is set)\n"
      "  --out-telemetry-jsonl F  grid mode: per-cell telemetry JSONL\n"
      "                    (default DIR/telemetry.jsonl when --trace is set)\n"
      "                    env fallback: DASCHED_TRACE, DASCHED_TRACE_LEVEL\n"
      "shared knobs:\n"
      "  --procs N         client processes (default 32)\n"
      "  --scale F         workload scale factor (default 1.0)\n"
      "  --nodes N         I/O nodes (default 8)\n"
      "  --delta N         vertical reuse range (default 20)\n"
      "  --theta N         per-node access cap, 0 = off (default 4)\n"
      "  --buffer MB       client prefetch buffer capacity (default 128)\n"
      "  --cache MB        per-node storage cache (default 64)\n"
      "  --seed N          RNG seed; grid cells derive per-cell seeds\n"
      "  --shards N        sharded event engine with N worker threads over\n"
      "                    per-I/O-node lanes; 0 = classic serial engine\n"
      "                    (default: DASCHED_SHARDS, then 0); results are\n"
      "                    bit-identical for every N >= 1\n"
      "  --lane-assign M   round_robin|balanced: lane->worker placement for\n"
      "                    sharded runs (default: DASCHED_LANE_ASSIGN, then\n"
      "                    balanced); wall-clock only, results identical\n"
      "  --audit           run the invariant auditor; exits 1 on violations\n"
      "  --help            this text\n",
      argv0);
  std::exit(code);
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "default" || name == "none") return PolicyKind::kNone;
  if (name == "simple") return PolicyKind::kSimple;
  if (name == "prediction") return PolicyKind::kPrediction;
  if (name == "history") return PolicyKind::kHistory;
  if (name == "staggered") return PolicyKind::kStaggered;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

double parse_number_or_die(const std::string& s, const char* what) {
  const auto v = parse_double(s);
  if (!v) {
    std::fprintf(stderr, "%s: invalid number '%s'\n", what, s.c_str());
    std::exit(2);
  }
  return *v;
}

int parse_int_or_die(const std::string& s, const char* what) {
  const auto v = parse_int(s);
  if (!v) {
    std::fprintf(stderr, "%s: invalid integer '%s'\n", what, s.c_str());
    std::exit(2);
  }
  return static_cast<int>(*v);
}

constexpr const char* kCsvHeader =
    "app,policy,scheme,procs,scale,nodes,exec_s,energy_j,spin_downs,"
    "spin_ups,rpm_changes,cache_hit_rate,prefetches,buffer_hits,"
    "direct_reads,events";

int run_grid_mode(ExperimentGrid grid, const GridRunOptions& opts,
                  const std::string& out_csv, const std::string& out_jsonl,
                  const std::string& out_telemetry_csv,
                  const std::string& out_telemetry_jsonl) {
  const std::size_t total = grid.size();
  std::fprintf(stderr, "[grid] %zu cells on %d threads\n", total,
               resolve_grid_threads(opts.threads));
  const GridResultSet results = run_grid(grid, opts);

  TextTable table({"app", "policy", "scheme", "sweep", "exec (min)",
                   "energy (kJ)", "events"});
  for (const GridCellResult& row : results.rows()) {
    table.add_row(
        {row.cell.app, to_string(row.cell.policy),
         row.cell.scheme ? "on" : "off",
         row.cell.has_sweep
             ? row.cell.sweep_name + "=" +
                   TextTable::fmt(row.cell.sweep_value, 0)
             : "-",
         TextTable::fmt(row.result.exec_minutes(), 2),
         TextTable::fmt(row.result.energy_j.value() / 1'000.0, 2),
         std::to_string(row.result.events)});
  }
  table.print();
  write_result_files(results, out_csv, out_jsonl);
  write_telemetry_files(results, out_telemetry_csv, out_telemetry_jsonl);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.app = "sar";
  cfg.telemetry = telemetry_from_env();  // CLI flags below override
  cfg.shards = shards_from_env(0);
  cfg.lane_assign = lane_assign_from_env(cfg.lane_assign);
  bool csv = false;
  bool hexfloat = false;
  bool audit = false;
  bool grid_mode = false;
  bool procs_set = false;
  std::string replay_path;
  ReplayOptions replay_opts;
  std::vector<std::string> grid_apps;
  std::vector<PolicyKind> grid_policies;
  std::vector<bool> grid_schemes{false};
  SweepAxis grid_sweep;
  int grid_threads = 0;
  int grid_workspace = -1;  // -1 = resolve DASCHED_WORKSPACE (default on)
  std::string out_csv;
  std::string out_jsonl;
  std::string out_telemetry_csv;
  std::string out_telemetry_jsonl;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--app") {
      cfg.app = value();
    } else if (arg == "--policy") {
      cfg.policy = parse_policy(value());
    } else if (arg == "--scheme") {
      cfg.use_scheme = true;
    } else if (arg == "--procs") {
      cfg.scale.num_processes = parse_int_or_die(value(), "--procs");
      procs_set = true;
    } else if (arg == "--scale") {
      cfg.scale.factor = parse_number_or_die(value(), "--scale");
    } else if (arg == "--nodes") {
      cfg.storage.num_io_nodes = parse_int_or_die(value(), "--nodes");
    } else if (arg == "--delta") {
      cfg.compile.sched.delta = parse_int_or_die(value(), "--delta");
    } else if (arg == "--theta") {
      cfg.compile.sched.theta = parse_int_or_die(value(), "--theta");
    } else if (arg == "--buffer") {
      cfg.runtime.buffer_capacity = mib(parse_int_or_die(value(), "--buffer"));
    } else if (arg == "--cache") {
      cfg.storage.node.cache_capacity =
          mib(parse_int_or_die(value(), "--cache"));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(
          parse_int_or_die(value(), "--seed"));
    } else if (arg == "--shards") {
      cfg.shards = parse_int_or_die(value(), "--shards");
    } else if (arg == "--lane-assign") {
      const std::string v = value();
      const auto mode = parse_lane_assign(v);
      if (!mode) {
        std::fprintf(stderr,
                     "--lane-assign: expected round_robin|balanced, got '%s'\n",
                     v.c_str());
        return 2;
      }
      cfg.lane_assign = *mode;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--hexfloat") {
      hexfloat = true;
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--replay-format") {
      const std::string v = value();
      const auto fmt = parse_trace_format(v);
      if (!fmt) {
        std::fprintf(stderr,
                     "--replay-format: expected auto|csv|jsonl|blk, got "
                     "'%s'\n",
                     v.c_str());
        return 2;
      }
      replay_opts.format = *fmt;
    } else if (arg == "--replay-slot-us") {
      replay_opts.slot_us = parse_int_or_die(value(), "--replay-slot-us");
    } else if (arg == "--replay-seed") {
      replay_opts.seed = static_cast<std::uint64_t>(
          parse_int_or_die(value(), "--replay-seed"));
    } else if (arg == "--grid") {
      grid_mode = true;
    } else if (arg == "--apps") {
      grid_apps = split_list(value());
    } else if (arg == "--policies") {
      grid_policies.clear();
      for (const std::string& p : split_list(value())) {
        grid_policies.push_back(parse_policy(p));
      }
    } else if (arg == "--schemes") {
      const std::string v = value();
      if (v == "off") {
        grid_schemes = {false};
      } else if (v == "on") {
        grid_schemes = {true};
      } else if (v == "both") {
        grid_schemes = {false, true};
      } else {
        std::fprintf(stderr, "--schemes: expected off|on|both, got '%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (arg == "--sweep") {
      const std::string v = value();
      const std::size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        std::fprintf(stderr, "--sweep: expected AXIS=V1,V2,...; got '%s'\n",
                     v.c_str());
        return 2;
      }
      std::vector<double> values;
      for (const std::string& s : split_list(v.substr(eq + 1))) {
        values.push_back(parse_number_or_die(s, "--sweep"));
      }
      try {
        grid_sweep = sweep_axis_by_name(v.substr(0, eq), std::move(values));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--sweep: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--threads") {
      grid_threads = parse_int_or_die(value(), "--threads");
    } else if (arg == "--workspace") {
      const std::string v = value();
      if (v == "on") {
        grid_workspace = 1;
      } else if (v == "off") {
        grid_workspace = 0;
      } else {
        std::fprintf(stderr, "--workspace: expected on|off, got '%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (arg == "--out-csv") {
      out_csv = value();
    } else if (arg == "--out-jsonl") {
      out_jsonl = value();
    } else if (arg == "--trace") {
      cfg.telemetry.dir = value();
      if (cfg.telemetry.level == TraceLevel::kOff) {
        cfg.telemetry.level = TraceLevel::kState;
      }
    } else if (arg == "--trace-level") {
      const std::string v = value();
      const auto level = parse_trace_level(v);
      if (!level) {
        std::fprintf(stderr,
                     "--trace-level: expected off|state|request|full, got "
                     "'%s'\n",
                     v.c_str());
        return 2;
      }
      cfg.telemetry.level = *level;
    } else if (arg == "--out-telemetry-csv") {
      out_telemetry_csv = value();
    } else if (arg == "--out-telemetry-jsonl") {
      out_telemetry_jsonl = value();
    } else if (arg == "--dump-trace") {
      const std::string path = value();
      StripingMap striping(cfg.storage.num_io_nodes, cfg.storage.stripe_size);
      const CompiledProgram trace =
          app_by_name(cfg.app).build(striping, cfg.scale);
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
      }
      save_trace(trace, out);
      std::printf("wrote %lld slots x %d processes to %s\n",
                  static_cast<long long>(trace.num_slots),
                  trace.num_processes(), path.c_str());
      return 0;
    } else if (arg == "--csv-header") {
      std::puts(kCsvHeader);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }

  if (!replay_path.empty()) {
    try {
      const App& app = register_replay_file(replay_path, replay_opts);
      cfg.app = app.name;
      if (!procs_set) {
        cfg.scale.num_processes = app.fixed_processes;
      } else if (cfg.scale.num_processes != app.fixed_processes) {
        std::fprintf(stderr,
                     "--procs %d conflicts with the trace's own process "
                     "count %d (omit --procs to use the trace's)\n",
                     cfg.scale.num_processes, app.fixed_processes);
        return 2;
      }
    } catch (const TraceParseError& e) {
      std::fprintf(stderr, "--replay: %s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--replay: %s\n", e.what());
      return 2;
    }
  }

  if (grid_mode) {
    ExperimentGrid grid;
    grid.base = cfg;
    grid.base_seed = cfg.seed;
    grid.apps = grid_apps.empty()
                    ? (replay_path.empty()
                           ? std::vector<std::string>{"hf", "sar", "astro",
                                                      "apsi", "madbench2",
                                                      "wupwise"}
                           : std::vector<std::string>{cfg.app})
                    : grid_apps;
    grid.policies = grid_policies.empty()
                        ? std::vector<PolicyKind>{PolicyKind::kNone,
                                                  PolicyKind::kSimple,
                                                  PolicyKind::kPrediction,
                                                  PolicyKind::kHistory,
                                                  PolicyKind::kStaggered}
                        : grid_policies;
    grid.schemes = grid_schemes;
    grid.sweep = std::move(grid_sweep);
    GridRunOptions opts;
    opts.threads = grid_threads;
    opts.workspace = grid_workspace;
    opts.audit = audit;
    opts.telemetry = cfg.telemetry;
    cfg.telemetry = {};  // cells get it via opts with per-cell directories
    grid.base = cfg;
    if (opts.telemetry.enabled() && !opts.telemetry.dir.empty()) {
      if (out_telemetry_csv.empty()) {
        out_telemetry_csv = opts.telemetry.dir + "/telemetry.csv";
      }
      if (out_telemetry_jsonl.empty()) {
        out_telemetry_jsonl = opts.telemetry.dir + "/telemetry.jsonl";
      }
    }
    try {
      return run_grid_mode(std::move(grid), opts, out_csv, out_jsonl,
                           out_telemetry_csv, out_telemetry_jsonl);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grid run failed: %s\n", e.what());
      return 1;
    }
  }

  SimAuditor auditor;
  const ExperimentResult r =
      audit ? run_experiment(cfg, &auditor) : run_experiment(cfg);
  if (audit) {
    std::fputs(auditor.report().c_str(), (csv || hexfloat) ? stderr : stdout);
  }

  if (hexfloat) {
    // The hexfloat_probe line format: bit-exact, diffable across processes
    // and across the daemon (dasched_client --hexfloat).
    std::printf(
        "%s %s scheme=%d exec=%lld energy=%a events=%lld "
        "hit_rate=%a disk_reqs=%lld spin_downs=%lld rpm_changes=%lld "
        "sched=%lld forced=%lld fallbacks=%lld mean_advance=%a "
        "buffer_hits=%lld prefetches=%lld\n",
        r.app.c_str(), to_string(r.policy), r.scheme ? 1 : 0,
        static_cast<long long>(r.exec_time.count()), r.energy_j.value(),
        static_cast<long long>(r.events), r.storage.cache_hit_rate,
        static_cast<long long>(r.storage.disk_requests),
        static_cast<long long>(r.storage.spin_downs),
        static_cast<long long>(r.storage.rpm_changes),
        static_cast<long long>(r.sched.scheduled),
        static_cast<long long>(r.sched.forced),
        static_cast<long long>(r.sched.theta_fallbacks),
        r.sched.mean_advance_slots,
        static_cast<long long>(r.runtime.buffer_hits),
        static_cast<long long>(r.runtime.prefetches));
    return audit && !auditor.clean() ? 1 : 0;
  }

  if (csv) {
    std::printf("%s,%s,%d,%d,%.3f,%d,%.3f,%.1f,%lld,%lld,%lld,%.4f,%lld,%lld,%lld,%lld\n",
                r.app.c_str(), to_string(r.policy), r.scheme ? 1 : 0,
                cfg.scale.num_processes, cfg.scale.factor,
                cfg.storage.num_io_nodes, to_sec(r.exec_time), r.energy_j.value(),
                static_cast<long long>(r.storage.spin_downs),
                static_cast<long long>(r.storage.spin_ups),
                static_cast<long long>(r.storage.rpm_changes),
                r.storage.cache_hit_rate,
                static_cast<long long>(r.runtime.prefetches),
                static_cast<long long>(r.runtime.buffer_hits),
                static_cast<long long>(r.runtime.direct_reads),
                static_cast<long long>(r.events));
    return audit && !auditor.clean() ? 1 : 0;
  }

  std::printf("== %s  (%s%s) ==\n", r.app.c_str(), to_string(r.policy),
              r.scheme ? " + scheduling" : "");
  TextTable table({"metric", "value"});
  table.add_row({"simulated execution", TextTable::fmt(r.exec_minutes(), 2) + " min"});
  table.add_row({"disk energy", TextTable::fmt(r.energy_j.value() / 1'000.0, 2) + " kJ"});
  table.add_row({"idle periods", std::to_string(r.storage.idle_periods.count())});
  table.add_row({"spin-downs / spin-ups",
                 std::to_string(r.storage.spin_downs) + " / " +
                     std::to_string(r.storage.spin_ups)});
  table.add_row({"RPM transitions", std::to_string(r.storage.rpm_changes)});
  table.add_row({"storage cache hit rate", TextTable::pct(r.storage.cache_hit_rate)});
  if (r.scheme) {
    table.add_row({"scheduled accesses", std::to_string(r.sched.scheduled)});
    table.add_row({"mean hoist distance",
                   TextTable::fmt(r.sched.mean_advance_slots, 1) + " slots"});
    table.add_row({"prefetches", std::to_string(r.runtime.prefetches)});
    table.add_row({"buffer hits", std::to_string(r.runtime.buffer_hits)});
  }
  if (r.audited) {
    table.add_row({"audit violations", std::to_string(r.audit_violations)});
  }
  table.add_row({"simulator events", std::to_string(r.events)});
  if (r.telemetry != nullptr) {
    const TelemetrySummary& t = *r.telemetry;
    table.add_row({"trace events (" + std::string(to_string(t.meta.level)) +
                       ")",
                   std::to_string(t.trace_events)});
    table.add_row({"idle p50 / p95",
                   TextTable::fmt(t.idle.percentile_us(0.50) / 1e6, 2) +
                       " s / " +
                       TextTable::fmt(t.idle.percentile_us(0.95) / 1e6, 2) +
                       " s"});
    if (t.prediction.observations > 0) {
      table.add_row({"prediction mean |err|",
                     TextTable::fmt(t.prediction.mean_abs_error_us() / 1e6, 2) +
                         " s"});
    }
  }
  table.print();
  if (r.telemetry != nullptr && !cfg.telemetry.dir.empty()) {
    std::printf("telemetry artifacts written to %s\n",
                cfg.telemetry.dir.c_str());
  }
  return audit && !auditor.clean() ? 1 : 0;
}
