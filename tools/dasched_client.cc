// dasched_client — command-line client for the dasched_serve daemon.
//
// Mirrors dasched_run's single/grid interface, but every simulation runs
// on the daemon over the bit-exact serve protocol, so output produced here
// diffs clean against dasched_run on the same configuration:
//
//   dasched_serve --socket tcp:0          # prints e.g. tcp:43617
//   dasched_client --connect tcp:43617 --ping
//   dasched_client --connect tcp:43617 --app sar --policy history \
//       --scheme --csv            # == dasched_run ... --csv
//   dasched_client --connect tcp:43617 --replay trace.csv --hexfloat
//   dasched_client --connect tcp:43617 --grid --apps sar,hf \
//       --policies default,history --schemes both --out-csv grid.csv
//   dasched_client --connect tcp:43617 --shutdown
//
// Grid jobs stream one result per cell; the client re-derives the same
// deterministic cell list locally (the grid codec round-trips the full
// request), pairs each streamed result with its cell by index, and writes
// byte-identical CSV/JSONL through the same result sinks dasched_run uses.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/result_sink.h"
#include "serve/client.h"
#include "util/parse.h"

using namespace dasched;
using namespace dasched::serve;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s --connect ADDR [options]\n"
      "connection:\n"
      "  --connect ADDR  unix:PATH or tcp:PORT of a dasched_serve daemon\n"
      "  --retry N       retry a refused connection N times (200ms apart)\n"
      "actions (combinable; run/grid is the default action):\n"
      "  --ping          round-trip a ping frame\n"
      "  --shutdown      ask the daemon to drain and exit (after any run)\n"
      "trace replay (uploaded to the daemon; see EXPERIMENTS.md):\n"
      "  --replay F      upload trace file F, run the registered replay app\n"
      "  --replay-format X   auto|csv|jsonl|blk (default auto)\n"
      "  --replay-slot-us N  timestamp quantum (default 10000)\n"
      "  --replay-seed N     tie-break/jitter seed (default 1)\n"
      "single-run output:\n"
      "  --csv           one CSV row (the dasched_run --csv format)\n"
      "  --csv-header    print the CSV header and exit (no connection)\n"
      "  --hexfloat      one bit-exact hexfloat line (the hexfloat_probe\n"
      "                  format) — diffs clean against dasched_run --hexfloat\n"
      "grid mode:\n"
      "  --grid          run a grid job on the daemon\n"
      "  --apps A,B,..   --policies P,..   --schemes off|on|both\n"
      "  --sweep AXIS=V1,V2,..   (as dasched_run)\n"
      "  --out-csv F     per-cell CSV ('-' = stdout), byte-identical to\n"
      "                  dasched_run --grid --out-csv on the same grid\n"
      "  --out-jsonl F   per-cell JSON lines\n"
      "config knobs (as dasched_run):\n"
      "  --app --policy --scheme --procs --scale --nodes --delta --theta\n"
      "  --buffer --cache --seed --shards --lane-assign --audit\n"
      "  --trace DIR --trace-level L   (telemetry runs server-side; the\n"
      "                  summary JSON streams back; artifacts land under the\n"
      "                  daemon's working directory)\n"
      "  --help          this text\n",
      argv0);
  std::exit(code);
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "default" || name == "none") return PolicyKind::kNone;
  if (name == "simple") return PolicyKind::kSimple;
  if (name == "prediction") return PolicyKind::kPrediction;
  if (name == "history") return PolicyKind::kHistory;
  if (name == "staggered") return PolicyKind::kStaggered;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int int_or_die(const char* s, const char* what) {
  const auto v = parse_i64(s);
  if (!v) die_invalid_value(what, s, "an integer");
  return static_cast<int>(*v);
}

double num_or_die(const char* s, const char* what) {
  const auto v = parse_f64(s);
  if (!v) die_invalid_value(what, s, "a number");
  return *v;
}

// dasched_run's single-run CSV schema, byte-for-byte.
constexpr const char* kCsvHeader =
    "app,policy,scheme,procs,scale,nodes,exec_s,energy_j,spin_downs,"
    "spin_ups,rpm_changes,cache_hit_rate,prefetches,buffer_hits,"
    "direct_reads,events";

void print_csv_row(const ExperimentConfig& cfg, const ExperimentResult& r) {
  std::printf(
      "%s,%s,%d,%d,%.3f,%d,%.3f,%.1f,%lld,%lld,%lld,%.4f,%lld,%lld,%lld,"
      "%lld\n",
      r.app.c_str(), to_string(r.policy), r.scheme ? 1 : 0,
      cfg.scale.num_processes, cfg.scale.factor, cfg.storage.num_io_nodes,
      to_sec(r.exec_time), r.energy_j.value(),
      static_cast<long long>(r.storage.spin_downs),
      static_cast<long long>(r.storage.spin_ups),
      static_cast<long long>(r.storage.rpm_changes), r.storage.cache_hit_rate,
      static_cast<long long>(r.runtime.prefetches),
      static_cast<long long>(r.runtime.buffer_hits),
      static_cast<long long>(r.runtime.direct_reads),
      static_cast<long long>(r.events));
}

void print_hexfloat_line(const ExperimentResult& r) {
  std::printf(
      "%s %s scheme=%d exec=%lld energy=%a events=%lld "
      "hit_rate=%a disk_reqs=%lld spin_downs=%lld rpm_changes=%lld "
      "sched=%lld forced=%lld fallbacks=%lld mean_advance=%a "
      "buffer_hits=%lld prefetches=%lld\n",
      r.app.c_str(), to_string(r.policy), r.scheme ? 1 : 0,
      static_cast<long long>(r.exec_time.count()), r.energy_j.value(),
      static_cast<long long>(r.events), r.storage.cache_hit_rate,
      static_cast<long long>(r.storage.disk_requests),
      static_cast<long long>(r.storage.spin_downs),
      static_cast<long long>(r.storage.rpm_changes),
      static_cast<long long>(r.sched.scheduled),
      static_cast<long long>(r.sched.forced),
      static_cast<long long>(r.sched.theta_fallbacks),
      r.sched.mean_advance_slots,
      static_cast<long long>(r.runtime.buffer_hits),
      static_cast<long long>(r.runtime.prefetches));
}

}  // namespace

int main(int argc, char** argv) {
  std::string address;
  int retry = 0;
  bool do_ping = false;
  bool do_shutdown = false;
  bool do_run = false;  // any config/replay/grid flag turns this on
  bool csv = false;
  bool hexfloat = false;
  bool audit = false;
  bool grid_mode = false;
  bool procs_set = false;
  std::string replay_path;
  ReplayOptions replay_opts;
  ExperimentConfig cfg;
  cfg.app = "sar";
  std::vector<std::string> grid_apps;
  std::vector<PolicyKind> grid_policies;
  std::vector<bool> grid_schemes{false};
  SweepAxis grid_sweep;
  std::string out_csv;
  std::string out_jsonl;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--connect") {
      address = value();
    } else if (arg == "--retry") {
      retry = int_or_die(value(), "--retry");
    } else if (arg == "--ping") {
      do_ping = true;
    } else if (arg == "--shutdown") {
      do_shutdown = true;
    } else if (arg == "--replay") {
      replay_path = value();
      do_run = true;
    } else if (arg == "--replay-format") {
      const char* v = value();
      const auto fmt = parse_trace_format(v);
      if (!fmt) die_invalid_value("--replay-format", v, "auto|csv|jsonl|blk");
      replay_opts.format = *fmt;
    } else if (arg == "--replay-slot-us") {
      replay_opts.slot_us = int_or_die(value(), "--replay-slot-us");
    } else if (arg == "--replay-seed") {
      replay_opts.seed =
          static_cast<std::uint64_t>(int_or_die(value(), "--replay-seed"));
    } else if (arg == "--app") {
      cfg.app = value();
      do_run = true;
    } else if (arg == "--policy") {
      cfg.policy = parse_policy(value());
      do_run = true;
    } else if (arg == "--scheme") {
      cfg.use_scheme = true;
      do_run = true;
    } else if (arg == "--procs") {
      cfg.scale.num_processes = int_or_die(value(), "--procs");
      procs_set = true;
      do_run = true;
    } else if (arg == "--scale") {
      cfg.scale.factor = num_or_die(value(), "--scale");
      do_run = true;
    } else if (arg == "--nodes") {
      cfg.storage.num_io_nodes = int_or_die(value(), "--nodes");
      do_run = true;
    } else if (arg == "--delta") {
      cfg.compile.sched.delta = int_or_die(value(), "--delta");
      do_run = true;
    } else if (arg == "--theta") {
      cfg.compile.sched.theta = int_or_die(value(), "--theta");
      do_run = true;
    } else if (arg == "--buffer") {
      cfg.runtime.buffer_capacity = mib(int_or_die(value(), "--buffer"));
      do_run = true;
    } else if (arg == "--cache") {
      cfg.storage.node.cache_capacity = mib(int_or_die(value(), "--cache"));
      do_run = true;
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(int_or_die(value(), "--seed"));
      do_run = true;
    } else if (arg == "--shards") {
      cfg.shards = int_or_die(value(), "--shards");
      do_run = true;
    } else if (arg == "--lane-assign") {
      const char* v = value();
      const auto mode = parse_lane_assign(v);
      if (!mode) die_invalid_value("--lane-assign", v, "round_robin|balanced");
      cfg.lane_assign = *mode;
      do_run = true;
    } else if (arg == "--audit") {
      audit = true;
      do_run = true;
    } else if (arg == "--trace") {
      cfg.telemetry.dir = value();
      if (cfg.telemetry.level == TraceLevel::kOff) {
        cfg.telemetry.level = TraceLevel::kState;
      }
      do_run = true;
    } else if (arg == "--trace-level") {
      const char* v = value();
      const auto level = parse_trace_level(v);
      if (!level) die_invalid_value("--trace-level", v, "off|state|request|full");
      cfg.telemetry.level = *level;
      do_run = true;
    } else if (arg == "--csv") {
      csv = true;
      do_run = true;
    } else if (arg == "--csv-header") {
      std::puts(kCsvHeader);
      return 0;
    } else if (arg == "--hexfloat") {
      hexfloat = true;
      do_run = true;
    } else if (arg == "--grid") {
      grid_mode = true;
      do_run = true;
    } else if (arg == "--apps") {
      grid_apps = split_list(value());
    } else if (arg == "--policies") {
      grid_policies.clear();
      for (const std::string& p : split_list(value())) {
        grid_policies.push_back(parse_policy(p));
      }
    } else if (arg == "--schemes") {
      const std::string v = value();
      if (v == "off") {
        grid_schemes = {false};
      } else if (v == "on") {
        grid_schemes = {true};
      } else if (v == "both") {
        grid_schemes = {false, true};
      } else {
        die_invalid_value("--schemes", v.c_str(), "off|on|both");
      }
    } else if (arg == "--sweep") {
      const std::string v = value();
      const std::size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= v.size()) {
        die_invalid_value("--sweep", v.c_str(), "AXIS=V1,V2,...");
      }
      std::vector<double> values;
      for (const std::string& s : split_list(v.substr(eq + 1))) {
        values.push_back(num_or_die(s.c_str(), "--sweep"));
      }
      try {
        grid_sweep = sweep_axis_by_name(v.substr(0, eq), std::move(values));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--sweep: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--out-csv") {
      out_csv = value();
    } else if (arg == "--out-jsonl") {
      out_jsonl = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }

  if (address.empty()) {
    std::fprintf(stderr, "--connect ADDR is required\n");
    return 2;
  }
  if (!do_ping && !do_shutdown && !do_run) do_run = true;

  try {
    ServeClient client = ServeClient::connect(address, retry);

    if (do_ping) {
      client.ping();
      std::printf("pong (tenant %llu)\n",
                  static_cast<unsigned long long>(client.tenant_id()));
    }

    if (do_run) {
      if (!replay_path.empty()) {
        std::ifstream in(replay_path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "cannot read '%s'\n", replay_path.c_str());
          return 1;
        }
        std::ostringstream content;
        content << in.rdbuf();
        const ServeClient::UploadReply upload =
            client.upload_trace(content.str(), replay_path, replay_opts);
        cfg.app = upload.app;
        if (!procs_set) {
          cfg.scale.num_processes = upload.procs;
        } else if (cfg.scale.num_processes != upload.procs) {
          std::fprintf(stderr,
                       "--procs %d conflicts with the trace's own process "
                       "count %d\n",
                       cfg.scale.num_processes, upload.procs);
          return 2;
        }
        std::fprintf(stderr, "[replay] %s: %lld records, %lld files -> %s\n",
                     replay_path.c_str(), upload.records, upload.files,
                     upload.app.c_str());
      }

      if (grid_mode) {
        ExperimentGrid grid;
        grid.base = cfg;
        grid.base_seed = cfg.seed;
        grid.apps = grid_apps.empty()
                        ? std::vector<std::string>{cfg.app}
                        : grid_apps;
        if (!grid_policies.empty()) grid.policies = grid_policies;
        grid.schemes = grid_schemes;
        grid.sweep = std::move(grid_sweep);

        // The daemon streams results in the same deterministic cell order
        // this local expansion produces (the grid request round-trips).
        const std::vector<GridCell> cells = grid.cells();
        std::vector<GridCellResult> rows;
        rows.reserve(cells.size());
        const std::size_t streamed = client.run_grid(
            grid, audit, [&](const ServeClient::Reply& reply) {
              if (reply.cell.index >= cells.size()) {
                throw ProtocolError("grid cell index out of range");
              }
              rows.push_back(GridCellResult{cells[reply.cell.index],
                                            reply.result});
            });
        std::fprintf(stderr, "[grid] %zu cells via %s\n", streamed,
                     address.c_str());
        GridResultSet results(std::move(rows));
        write_result_files(results, out_csv, out_jsonl);
      } else {
        ServeClient::Reply reply;
        client.run(cfg, audit, reply);
        const ExperimentResult& r = reply.result;
        if (hexfloat) {
          print_hexfloat_line(r);
        } else if (csv) {
          print_csv_row(cfg, r);
        } else {
          std::printf("%s %s%s: exec %.2f min, energy %.2f kJ, events %lld\n",
                      r.app.c_str(), to_string(r.policy),
                      r.scheme ? " +scheme" : "", r.exec_minutes(),
                      r.energy_j.value() / 1'000.0,
                      static_cast<long long>(r.events));
        }
        if (!reply.telemetry_json.empty() && !csv && !hexfloat) {
          std::printf("telemetry: %s\n", reply.telemetry_json.c_str());
        }
      }
    }

    if (do_shutdown) client.shutdown_server();
  } catch (const ServeError& e) {
    std::fprintf(stderr, "dasched_client: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dasched_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
