#!/usr/bin/env python3
"""dasched_lint: project-specific static analysis for the dasched contracts.

The simulator's correctness story rests on three contracts that the type
system cannot express and that ordinary warnings do not cover:

  1. Hot paths are allocation-free in steady state (`DASCHED_HOT`).
  2. Results are bit-deterministic: no wall-clock / rand calls, no iteration
     over unordered containers on result-affecting paths, no pointer-valued
     sort keys.
  3. Observers (telemetry + invariant checks) are passive: they may only
     make const calls into simulation state (`DASCHED_OBSERVER_PASSIVE`).
  4. `TraceEvent` stays a 32-byte trivially-copyable POD (the trace.bin
     format is a raw memcpy of it).

This tool enforces all four over every translation unit in
`compile_commands.json`.  The front-end is GCC itself: each TU is compiled
with `-fdump-tree-gimple-lineno`, which emits every function body the TU
instantiates (including inlined template code from headers) in a flat
three-address form with demangled qualified names and `[file:line:col]`
statement prefixes.  That gives us a real intra-TU call graph without
needing a clang toolchain in the build image.

Annotations are discovered textually from the sources (`DASCHED_HOT`,
`DASCHED_OBSERVER_PASSIVE` from src/util/annotations.h); observer classes
are additionally discovered structurally (anything deriving from a
`*Observer` interface).  Known-good sites are suppressed inline with

    // dasched-lint: allow(<rule>): <reason>

on the flagged line or the line above it; everything else goes through the
checked-in baseline (tools/lint/baseline.txt), which makes the CI gate
"no *new* violations".

Rules
-----
  hot-alloc            allocation reachable intra-TU from a DASCHED_HOT root
  nondet-source        rand()/time()/clock_gettime()/random_device/... call
  nondet-unordered-iter  iteration over std::unordered_{map,set,...}
  nondet-ptr-sort-key  std::sort / std::stable_sort over pointer keys
  observer-nonconst    observer method calls a non-const method of sim state
  observer-const-cast  const_cast in an observer implementation file
  trace-pod            TraceEvent layout probe failed (size/POD-ness)

Exit status: 0 when every finding is baselined or suppressed, 1 otherwise.
With --expect RULE the polarity flips: 0 iff at least one finding of RULE
was produced (used by the seeded-violation fixtures under tests/lint/).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

ALL_RULES = (
    "hot-alloc",
    "nondet-source",
    "nondet-unordered-iter",
    "nondet-ptr-sort-key",
    "observer-nonconst",
    "observer-const-cast",
    "trace-pod",
)

# Allocating entry points.  The two-argument `operator new (size, ptr)` form
# is placement new and does not allocate; it is filtered by argument count.
ALLOC_CALLEES = {
    "operator new",
    "operator new []",
    "malloc",
    "calloc",
    "realloc",
    "aligned_alloc",
    "strdup",
}

# Wall-clock and PRNG entry points that break run-to-run determinism.
NONDET_CALLEES = {
    "rand",
    "srand",
    "random",
    "drand48",
    "lrand48",
    "rand_r",
    "time",
    "clock",
    "gettimeofday",
    "clock_gettime",
    "getrandom",
}
NONDET_CALLEE_PATTERNS = [
    re.compile(r"std::chrono::_V2::(system|steady|high_resolution)_clock::now"),
    re.compile(r"std::chrono::(system|steady|high_resolution)_clock::now"),
    re.compile(r"std::random_device::"),
]

# Only begin()/cbegin() mark iteration: `find() != end()` is a pure
# membership test and must not fire the rule.
UNORDERED_ITER_RE = re.compile(
    r"std::unordered_(?:multi)?(?:map|set)<.*>::c?begin\b"
)

PTR_SORT_RE = re.compile(r"std::(?:stable_)?sort<")

# Simulation-state classes observers receive (directly or transitively).
# Callbacks hand these out as const&; the rule catches mutation smuggled in
# through stored non-const pointers or const_cast.
SIM_STATE_CLASSES = {
    "Disk",
    "Simulator",
    "IoNode",
    "StorageSystem",
    "StorageCache",
    "AccessScheduler",
    "Cluster",
    "ElevatorQueue",
    "GlobalBufferManager",
    "MpiIo",
    "PowerPolicy",
}

SUPPRESS_RE = re.compile(r"//\s*dasched-lint:\s*allow\(([a-z0-9-]+)\)")

# --------------------------------------------------------------------------
# Small data carriers
# --------------------------------------------------------------------------


class Finding:
    __slots__ = ("rule", "file", "line", "symbol", "message")

    def __init__(self, rule, file, line, symbol, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.symbol = symbol
        self.message = message

    def key(self):
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.file, self.symbol)

    def render(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class GimpleFunction:
    __slots__ = ("name", "calls", "file")

    def __init__(self, name):
        self.name = name          # demangled pre-paren signature name
        self.calls = []           # list of (callee_name, nargs, file, line)
        self.file = None          # first project file seen in the body


# --------------------------------------------------------------------------
# GIMPLE dump parsing
# --------------------------------------------------------------------------

LOC_RE = re.compile(r"\[([^\[\]:]+):(\d+):\d+\]")
LHS_RE = re.compile(r"^\s*[\w.$]+\s*=\s*")


def split_callee(text):
    """Finds the parameter-list ``" ("`` in a cleaned GIMPLE statement.

    GIMPLE prints no space before '(' except ahead of a parameter list, so
    the first " (" at angle-bracket depth 0 separates callee from args.
    Returns (callee, args) or None.
    """
    depth = 0
    prev = ""
    for i, ch in enumerate(text):
        if ch == "<" and prev not in "-<":  # skip "->"; "<<" is shift
            depth += 1
        elif ch == ">" and prev not in "->":
            if depth > 0:
                depth -= 1
        elif ch == "(" and prev == " " and depth == 0:
            callee = text[: i - 1].strip()
            args = text[i + 1 :]
            end = args.rfind(")")
            if end >= 0:
                args = args[:end]
            return callee, args
        prev = ch
    return None


def count_args(args):
    """Top-level comma count + 1 (0 for an empty argument list)."""
    args = args.strip()
    if not args:
        return 0
    depth = 0
    n = 1
    for i, ch in enumerate(args):
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        elif ch == "," and depth == 0:
            n += 1
    return n


def strip_return_type(sig):
    """Drops the return type from a col-0 GIMPLE signature prefix.

    The name is the last space-separated token outside <>/() — except that
    "operator new"/"operator delete" span two tokens.
    """
    depth = 0
    last_space = -1
    prev = ""
    for i, ch in enumerate(sig):
        if ch in "<(" and prev not in "-<":
            depth += 1
        elif ch in ">)" and prev not in "->":
            if depth > 0:
                depth -= 1
        elif ch == " " and depth == 0:
            last_space = i
        prev = ch
    name = sig[last_space + 1 :]
    head = sig[:last_space].rstrip() if last_space >= 0 else ""
    if head.endswith("operator"):
        name = "operator " + name
    return name


SIG_RE = re.compile(r"^[^\s{}].* \(.*\)$")


def parse_gimple(path):
    """Parses one -fdump-tree-gimple-lineno dump into GimpleFunctions."""
    functions = {}
    current = None
    pending_sig = None
    with open(path, "r", errors="replace") as f:
        for raw in f:
            line = raw.rstrip("\n")
            if not line:
                continue
            if current is None:
                if line.startswith("__attribute__"):
                    continue
                if pending_sig is not None:
                    stripped = line.strip()
                    if stripped == "{" or stripped.endswith("{"):
                        current = GimpleFunction(strip_return_type(pending_sig))
                        pending_sig = None
                        continue
                    # Not a body open: the candidate was a stray declaration.
                    pending_sig = None
                if not line[0].isspace() and SIG_RE.match(line):
                    parsed = split_callee(line)
                    pending_sig = parsed[0] if parsed else None
                continue
            # Inside a function body.
            if line == "}":
                functions.setdefault(current.name, current)
                current = None
                continue
            locs = LOC_RE.findall(line)
            file = locs[0][0] if locs else None
            lineno = int(locs[0][1]) if locs else 0
            if current.file is None and file and not file.startswith("/usr/"):
                current.file = file
            cleaned = LOC_RE.sub("", line).strip()
            cleaned = LHS_RE.sub("", cleaned)
            if " (" not in cleaned:
                continue
            parsed = split_callee(cleaned)
            if not parsed:
                continue
            callee, args = parsed
            if (
                not callee
                or callee.startswith(("OBJ_TYPE_REF", "D.", "_", "(", "&", "*"))
                or callee in ("if", "while", "switch", "return", "goto", "try")
                or "=" in callee
            ):
                continue
            current.calls.append((callee, count_args(args), file, lineno))
    return functions


def run_gimple_dump(gxx, src, flags, workdir):
    """Compiles `src` to GIMPLE, returning the parsed functions (or None)."""
    fd, dump = tempfile.mkstemp(suffix=".gimple")
    os.close(fd)
    cmd = (
        [gxx]
        + flags
        + ["-O0", "-S", "-o", os.devnull,
           f"-fdump-tree-gimple-lineno={dump}", src]
    )
    try:
        proc = subprocess.run(
            cmd, cwd=workdir, capture_output=True, text=True, timeout=300
        )
        if proc.returncode != 0:
            sys.stderr.write(
                f"dasched_lint: failed to compile {src}:\n{proc.stderr}\n"
            )
            return None
        return parse_gimple(dump)
    finally:
        try:
            os.unlink(dump)
        except OSError:
            pass


def flags_from_command(entry):
    """Extracts reusable compiler flags from a compile_commands entry."""
    argv = (
        shlex.split(entry["command"])
        if "command" in entry
        else list(entry["arguments"])
    )
    flags = []
    skip = False
    for arg in argv[1:]:
        if skip:
            skip = False
            continue
        if arg in ("-o", "-c"):
            skip = arg == "-o"
            continue
        if arg == entry["file"] or arg.endswith((".cc", ".cpp", ".o")):
            continue
        if arg.startswith("-O"):
            continue  # the dump pass re-adds -O0 itself
        flags.append(arg)
    return flags


# --------------------------------------------------------------------------
# Source-side discovery: annotations, class scopes, constness, suppressions
# --------------------------------------------------------------------------


def strip_comments(text):
    """Blanks out comments/strings, preserving offsets and newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch in "\"'":
            q = ch
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(q + " " * (j - i - 2) + (q if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:DASCHED_\w+\s+)?(\w+)(\s+final)?\s*(?::[^;{]*)?\{",
    re.S,
)


class SourceModel:
    """Textual model of the project sources: scopes, constness, annotations."""

    def __init__(self):
        self.hot_methods = set()        # {"Class::method", "::function"}
        self.passive_classes = set()    # annotated observer classes
        self.structural_observers = set()
        self.const_methods = set()      # {(Class, method)}
        self.declared_methods = set()   # {(Class, method)}
        self.class_files = {}           # class -> file it is declared in
        self.suppressions = {}          # file -> {line -> {rules}}
        self.const_cast_sites = {}      # file -> [(line, class)]

    def scan_file(self, path):
        try:
            with open(path, "r", errors="replace") as f:
                text = f.read()
        except OSError:
            return
        self._scan_suppressions(path, text)
        clean = strip_comments(text)
        self._scan_classes(path, clean)
        self._scan_hot(clean)

    def _scan_suppressions(self, path, text):
        table = {}
        lines = text.splitlines()
        for lineno, line in enumerate(lines, 1):
            for m in SUPPRESS_RE.finditer(line):
                rule = m.group(1)
                # An allow-comment covers its own line; a standalone one
                # also covers the rest of its comment block and the first
                # code line after it.
                table.setdefault(lineno, set()).add(rule)
                if line.lstrip().startswith("//"):
                    nxt = lineno + 1
                    while nxt <= len(lines) and \
                            lines[nxt - 1].lstrip().startswith("//"):
                        table.setdefault(nxt, set()).add(rule)
                        nxt += 1
                    table.setdefault(nxt, set()).add(rule)
        if table:
            self.suppressions[path] = table

    def _class_spans(self, clean):
        """Yields (name, body_start, body_end) for each class/struct."""
        for m in CLASS_HEAD_RE.finditer(clean):
            name = m.group(2)
            start = m.end() - 1  # at '{'
            depth = 0
            for i in range(start, len(clean)):
                if clean[i] == "{":
                    depth += 1
                elif clean[i] == "}":
                    depth -= 1
                    if depth == 0:
                        yield name, start + 1, i, m.group(0)
                        break

    METHOD_RE = re.compile(r"(~?\w+)\s*\(")
    CONST_TAIL_RE = re.compile(
        r"(~?\w+)\s*\(([^()]|\([^()]*\))*\)\s*const\b"
    )

    def _scan_classes(self, path, clean):
        for name, start, end, head in self._class_spans(clean):
            body = clean[start:end]
            self.class_files.setdefault(name, path)
            if "DASCHED_OBSERVER_PASSIVE" in head:
                self.passive_classes.add(name)
            if re.search(r"public\s+\w*Observer\b", head) or re.search(
                r"public\s+InvariantCheck\b", head
            ):
                self.structural_observers.add(name)
            for m in self.METHOD_RE.finditer(body):
                method = m.group(1)
                if method in ("if", "for", "while", "switch", "return",
                              "sizeof", "static_assert", "catch", "operator"):
                    continue
                self.declared_methods.add((name, method))
            for m in self.CONST_TAIL_RE.finditer(body):
                self.const_methods.add((name, m.group(1)))

    HOT_RE = re.compile(r"DASCHED_HOT\s+[\w:<>&,*\s]*?(\w+)\s*\(")

    def _scan_hot(self, clean):
        for name, start, end, _head in self._class_spans(clean):
            body = clean[start:end]
            for m in self.HOT_RE.finditer(body):
                self.hot_methods.add(f"{name}::{m.group(1)}")
        # Free functions: DASCHED_HOT outside any class span.
        spans = [(s, e) for _n, s, e, _h in self._class_spans(clean)]
        for m in self.HOT_RE.finditer(clean):
            if not any(s <= m.start() < e for s, e in spans):
                self.hot_methods.add(f"::{m.group(1)}")

    def scan_const_casts(self, path, observer_files):
        if path not in observer_files:
            return
        try:
            with open(path, "r", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError:
            return
        for lineno, line in enumerate(lines, 1):
            code = line.split("//", 1)[0]
            if "const_cast" in code:
                self.const_cast_sites.setdefault(path, []).append(lineno)

    def is_suppressed(self, path, line, rule):
        table = self.suppressions.get(path)
        return bool(table) and rule in table.get(line, ())

    def observer_classes(self):
        # Pure interfaces (DiskObserver itself, etc.) never enter
        # structural_observers: their class heads derive from nothing.
        return self.passive_classes | self.structural_observers


# --------------------------------------------------------------------------
# Rule evaluation over one parsed TU
# --------------------------------------------------------------------------


def method_key_of(gimple_name):
    """Maps 'dasched::Foo::bar' -> ('Foo', 'bar'); None for free functions."""
    # Drop template argument lists so A<B>::f splits cleanly.
    depth = 0
    flat = []
    prev = ""
    for ch in gimple_name:
        if ch == "<" and prev not in "-<":
            depth += 1
        elif ch == ">" and prev not in "->" and depth > 0:
            depth -= 1
        elif depth == 0:
            flat.append(ch)
        prev = ch
    parts = "".join(flat).split("::")
    if len(parts) >= 2:
        return parts[-2], parts[-1]
    return None


def is_project_path(path, roots):
    return path is not None and any(
        os.path.abspath(path).startswith(r) for r in roots
    )


def in_hot_set(func_name, hot_methods):
    key = method_key_of(func_name)
    if key and f"{key[0]}::{key[1]}" in hot_methods:
        return True
    tail = func_name.rsplit("::", 1)[-1]
    return f"::{tail}" in hot_methods and "::" not in func_name.replace(
        "::" + tail, ""
    )


def check_tu(functions, model, roots, relpath):
    findings = []
    by_name = functions

    # ---- hot-alloc: BFS from every hot root ----------------------------
    for root_name, root in by_name.items():
        if not in_hot_set(root_name, model.hot_methods):
            continue
        seen = {root_name}
        # queue holds (function, attribution site): the project call site
        # whose edge led here, so findings point at code the user can edit.
        queue = [(root, None)]
        reported = set()
        while queue:
            fn, attrib = queue.pop()
            for callee, nargs, file, line in fn.calls:
                site = (
                    (file, line)
                    if is_project_path(file, roots)
                    else attrib
                )
                if site and model.is_suppressed(site[0], site[1], "hot-alloc"):
                    continue
                base = callee.split("<", 1)[0]
                if callee in ALLOC_CALLEES or base in ALLOC_CALLEES:
                    if callee.startswith("operator new") and nargs >= 2:
                        continue  # placement form: no allocation
                    loc = site or (file, line)
                    if loc in reported:
                        continue
                    reported.add(loc)
                    findings.append(
                        Finding(
                            "hot-alloc",
                            relpath(loc[0]),
                            loc[1],
                            root_name,
                            f"allocation ({callee}) reachable from "
                            f"DASCHED_HOT {root_name}",
                        )
                    )
                    continue
                if callee not in seen and callee in by_name:
                    seen.add(callee)
                    queue.append((by_name[callee], site or attrib))

    # ---- per-call rules ------------------------------------------------
    for fn_name, fn in by_name.items():
        fn_is_project = is_project_path(fn.file, roots)
        key = method_key_of(fn_name)
        fn_in_observer = bool(key) and key[0] in model.observer_classes()
        for callee, nargs, file, line in fn.calls:
            if not is_project_path(file, roots):
                continue
            site_file, site_line = file, line

            def emit(rule, message):
                if not model.is_suppressed(site_file, site_line, rule):
                    findings.append(
                        Finding(rule, relpath(site_file), site_line,
                                fn_name, message)
                    )

            base = callee.split("<", 1)[0].strip()
            if base in NONDET_CALLEES or any(
                p.search(callee) for p in NONDET_CALLEE_PATTERNS
            ):
                emit(
                    "nondet-source",
                    f"nondeterminism source {base or callee}() called "
                    f"from {fn_name}",
                )
            if UNORDERED_ITER_RE.search(callee):
                emit(
                    "nondet-unordered-iter",
                    f"iteration over unordered container in {fn_name} "
                    "(iteration order is not deterministic across "
                    "libstdc++ versions)",
                )
            if PTR_SORT_RE.search(callee) and (
                "**" in callee or re.search(r"std::less<[^>]*\*\s*>", callee)
            ):
                emit(
                    "nondet-ptr-sort-key",
                    f"sort over pointer keys in {fn_name} (pointer order "
                    "depends on allocation addresses)",
                )
            if fn_is_project and fn_in_observer:
                ckey = method_key_of(callee)
                if (
                    ckey
                    and ckey[0] in SIM_STATE_CLASSES
                    and ckey in model.declared_methods
                    and ckey not in model.const_methods
                    and ckey[1] != ckey[0]  # constructors are fine
                    and not ckey[1].startswith("~")
                ):
                    emit(
                        "observer-nonconst",
                        f"observer {key[0]}::{key[1]} calls non-const "
                        f"{ckey[0]}::{ckey[1]} on simulation state",
                    )
    return findings


# --------------------------------------------------------------------------
# trace-pod probe
# --------------------------------------------------------------------------


def check_trace_pod(gxx, include_dirs, header, type_name, relpath):
    probe = (
        f'#include "{header}"\n'
        "#include <cstddef>\n"
        "#include <type_traits>\n"
        f"static_assert(sizeof({type_name}) == 32,\n"
        f'              "{type_name} must stay exactly 32 bytes");\n'
        f"static_assert(std::is_trivially_copyable_v<{type_name}>,\n"
        f'              "{type_name} must stay trivially copyable");\n'
        f"static_assert(std::is_standard_layout_v<{type_name}>,\n"
        f'              "{type_name} must stay standard-layout");\n'
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cc", delete=False
    ) as f:
        f.write(probe)
        probe_path = f.name
    try:
        cmd = [gxx, "-std=c++20", "-fsyntax-only"] + [
            f"-I{d}" for d in include_dirs
        ] + [probe_path]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            detail = next(
                (
                    l.split("error:", 1)[1].strip()
                    for l in proc.stderr.splitlines()
                    if "error:" in l
                ),
                "probe failed to compile",
            )
            return [
                Finding(
                    "trace-pod",
                    relpath(header),
                    1,
                    type_name,
                    f"POD layout contract violated: {detail}",
                )
            ]
        return []
    finally:
        os.unlink(probe_path)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def load_baseline(path):
    keys = set()
    if path and os.path.exists(path):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) == 3:
                    keys.add(tuple(parts))
    return keys


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="dasched_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--compile-commands",
                    help="path to compile_commands.json")
    ap.add_argument("--tu", action="append", default=[],
                    help="analyze this standalone TU (repeatable)")
    ap.add_argument("--flags", default="",
                    help="compiler flags for --tu files")
    ap.add_argument("--filter", default=r"/(src|tools)/",
                    help="regex selecting TUs from the compile db")
    ap.add_argument("--baseline",
                    help="accepted-findings file (rule<TAB>file<TAB>symbol)")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write current findings as the new baseline")
    ap.add_argument("--expect", choices=ALL_RULES,
                    help="fixture mode: succeed iff RULE fires")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--gxx", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--root", default=None,
                    help="project root (default: cwd or git toplevel)")
    ap.add_argument("--pod-header", default="telemetry/events.h")
    ap.add_argument("--pod-type", default="dasched::TraceEvent")
    ap.add_argument("--no-pod-check", action="store_true")
    ap.add_argument("--report", help="also write findings to this file")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root or os.getcwd())
    src_root = os.path.join(root, "src")
    roots = [root]

    def relpath(p):
        p = os.path.abspath(p)
        return os.path.relpath(p, root) if p.startswith(root) else p

    # ---- gather TUs ----------------------------------------------------
    tus = []  # (source_path, flags, workdir)
    if args.compile_commands:
        with open(args.compile_commands) as f:
            db = json.load(f)
        pat = re.compile(args.filter)
        for entry in db:
            src = entry["file"]
            if not pat.search(src):
                continue
            tus.append((src, flags_from_command(entry),
                        entry.get("directory", root)))
    extra_flags = shlex.split(args.flags)
    for tu in args.tu:
        tus.append((os.path.abspath(tu), extra_flags, root))
    if not tus and not args.expect == "trace-pod":
        if not args.compile_commands and not args.tu:
            ap.error("need --compile-commands or --tu")

    # ---- source model --------------------------------------------------
    model = SourceModel()
    scan_files = []
    for base in (src_root, os.path.join(root, "tools")):
        for dirpath, _dirs, files in os.walk(base):
            for name in files:
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    scan_files.append(os.path.join(dirpath, name))
    for tu, _f, _d in tus:
        if tu not in scan_files:
            scan_files.append(tu)
    for path in scan_files:
        model.scan_file(path)
    observer_files = {
        model.class_files[c]
        for c in model.observer_classes()
        if c in model.class_files
    }
    # Implementation files of observer headers (foo.h -> foo.cc).
    observer_files |= {
        f[:-2] + ".cc" for f in list(observer_files) if f.endswith(".h")
    }
    for path in scan_files:
        model.scan_const_casts(path, observer_files)

    # ---- run the TUs ---------------------------------------------------
    findings = []

    def analyze(tu):
        src, flags, workdir = tu
        functions = run_gimple_dump(args.gxx, src, flags, workdir)
        if functions is None:
            return [
                Finding("hot-alloc", relpath(src), 0, "<compile>",
                        "TU failed to compile under the lint front-end")
            ]
        return check_tu(functions, model, roots, relpath)

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for result in ex.map(analyze, tus):
            findings.extend(result)

    # ---- textual + probe rules ----------------------------------------
    for path, lines in model.const_cast_sites.items():
        for line in lines:
            if not model.is_suppressed(path, line, "observer-const-cast"):
                findings.append(
                    Finding(
                        "observer-const-cast", relpath(path), line,
                        os.path.basename(path),
                        "const_cast in an observer implementation "
                        "(observers must stay passive)",
                    )
                )

    if not args.no_pod_check:
        include_dirs = [src_root]
        for tu in args.tu:
            include_dirs.append(os.path.dirname(os.path.abspath(tu)))
        findings.extend(
            check_trace_pod(args.gxx, include_dirs, args.pod_header,
                            args.pod_type, relpath)
        )

    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    # ---- fixture mode --------------------------------------------------
    if args.expect:
        hits = [f for f in findings if f.rule == args.expect]
        for f in hits:
            print(f.render())
        if hits:
            print(f"dasched_lint: --expect {args.expect}: "
                  f"{len(hits)} finding(s), as expected")
            return 0
        print(f"dasched_lint: --expect {args.expect}: rule did not fire",
              file=sys.stderr)
        return 1

    # ---- baseline ------------------------------------------------------
    if args.write_baseline:
        with open(args.write_baseline, "w") as f:
            f.write("# dasched_lint baseline: rule<TAB>file<TAB>symbol\n")
            f.write("# Regenerate with --write-baseline; entries here are\n")
            f.write("# accepted pre-existing findings, not an allow-list\n")
            f.write("# for new code.  Prefer inline allow() comments.\n")
            for key in sorted({f.key() for f in findings}):
                f.write("\t".join(key) + "\n")
        print(f"dasched_lint: wrote {len({f.key() for f in findings})} "
              f"baseline entries to {args.write_baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    fresh = [f for f in findings if f.key() not in baseline]
    suppressed = len(findings) - len(fresh)

    out_lines = [f.render() for f in fresh]
    for line in out_lines:
        print(line)
    if args.report:
        with open(args.report, "w") as f:
            f.write("\n".join(out_lines) + ("\n" if out_lines else ""))
    print(
        f"dasched_lint: {len(tus)} TU(s), {len(fresh)} finding(s)"
        + (f", {suppressed} baselined" if suppressed else "")
    )
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
