// Bit-identity probe: runs a fixed grid of app × policy × scheme cells and
// prints every floating-point result as hexfloat (%a) plus the integer
// counters, one line per cell.  Diffing the output across a refactor proves
// (or disproves) bit-identical simulation down to the last ulp — the
// verification harness used by the storage-path and scheduler fast-path
// rewrites (see EXPERIMENTS.md "Bit-identity probes").
//
// Usage: hexfloat_probe [--procs N] [--scale F] [--shards N]
//                       [--lane-assign round_robin|balanced] [--workspace]
// (defaults: 8, 0.2, 0 = classic serial engine, balanced, fresh-per-cell).
// Diffing `--shards 1` against `--shards N` output is the tentpole check for
// the sharded engine: the conservative-lookahead protocol promises
// bit-identity across worker counts (DESIGN.md §14), and this probe is how
// CI enforces it.  The same holds for the event-queue kind (run under
// DASCHED_QUEUE=heap vs =ladder), the lane→worker map (--lane-assign), and
// cross-run workspace reuse (--workspace routes all 32 cells through ONE
// reused ExperimentWorkspace — warm pools, compile cache and all — instead
// of a fresh stack per cell; DESIGN.md §16): every axis must diff clean.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/workspace.h"
#include "util/parse.h"

namespace dasched {
namespace {

int run_probe(int procs, double scale, int shards, LaneAssign lane_assign,
              bool use_workspace) {
  const std::vector<std::string> apps = {"sar", "madbench2", "hf", "apsi"};
  const std::vector<PolicyKind> policies = {
      PolicyKind::kNone, PolicyKind::kSimple, PolicyKind::kHistory,
      PolicyKind::kStaggered};
  ExperimentWorkspace ws;  // shared across every cell under --workspace
  for (const std::string& app : apps) {
    for (PolicyKind policy : policies) {
      for (int scheme = 0; scheme <= 1; ++scheme) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.scale.num_processes = procs;
        cfg.scale.factor = scale;
        cfg.policy = policy;
        cfg.use_scheme = scheme != 0;
        cfg.shards = shards;
        cfg.lane_assign = lane_assign;
        const ExperimentResult r =
            use_workspace ? run_experiment(cfg, ws) : run_experiment(cfg);
        std::printf(
            "%s %s scheme=%d exec=%lld energy=%a events=%lld "
            "hit_rate=%a disk_reqs=%lld spin_downs=%lld rpm_changes=%lld "
            "sched=%lld forced=%lld fallbacks=%lld mean_advance=%a "
            "buffer_hits=%lld prefetches=%lld\n",
            app.c_str(), to_string(policy), scheme,
            static_cast<long long>(r.exec_time.count()), r.energy_j.value(),
            static_cast<long long>(r.events), r.storage.cache_hit_rate,
            static_cast<long long>(r.storage.disk_requests),
            static_cast<long long>(r.storage.spin_downs),
            static_cast<long long>(r.storage.rpm_changes),
            static_cast<long long>(r.sched.scheduled),
            static_cast<long long>(r.sched.forced),
            static_cast<long long>(r.sched.theta_fallbacks),
            r.sched.mean_advance_slots,
            static_cast<long long>(r.runtime.buffer_hits),
            static_cast<long long>(r.runtime.prefetches));
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace dasched

int main(int argc, char** argv) {
  int procs = 8;
  double scale = 0.2;
  int shards = 0;
  dasched::LaneAssign lane_assign = dasched::LaneAssign::kBalanced;
  bool use_workspace = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--procs" && i + 1 < argc) {
      const auto v = dasched::parse_i64(argv[++i]);
      if (!v) dasched::die_invalid_value("--procs", argv[i], "an integer");
      procs = static_cast<int>(*v);
    } else if (arg == "--scale" && i + 1 < argc) {
      const auto v = dasched::parse_f64(argv[++i]);
      if (!v) dasched::die_invalid_value("--scale", argv[i], "a number");
      scale = *v;
    } else if (arg == "--shards" && i + 1 < argc) {
      const auto v = dasched::parse_i64(argv[++i]);
      if (!v) dasched::die_invalid_value("--shards", argv[i], "an integer");
      shards = static_cast<int>(*v);
    } else if (arg == "--lane-assign" && i + 1 < argc) {
      const auto mode = dasched::parse_lane_assign(argv[++i]);
      if (!mode) {
        std::fprintf(stderr,
                     "--lane-assign: expected round_robin|balanced\n");
        return 2;
      }
      lane_assign = *mode;
    } else if (arg == "--workspace") {
      use_workspace = true;
    } else {
      std::fprintf(stderr,
                   "usage: hexfloat_probe [--procs N] [--scale F] "
                   "[--shards N] [--lane-assign round_robin|balanced] "
                   "[--workspace]\n");
      return 2;
    }
  }
  return dasched::run_probe(procs, scale, shards, lane_assign, use_workspace);
}
