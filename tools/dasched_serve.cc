// dasched_serve — the scheduling-as-a-service daemon (DESIGN.md §17).
//
// Listens on a unix-domain or loopback-TCP socket and serves
// compile-and-schedule requests: single runs, grid jobs, and trace-replay
// uploads (tools/dasched_client.cc is the matching client).  One connection
// = one tenant = one warm ExperimentWorkspace, so a tenant's second and
// later requests reuse the full simulation stack allocation-free.
//
//   dasched_serve --socket unix:/tmp/dasched.sock
//   dasched_serve --socket tcp:0        # ephemeral port, printed on stdout
//
// The resolved address is printed to stdout (flushed) once the daemon is
// accepting, so scripts can `read` it.  SIGINT/SIGTERM or a client
// --shutdown drain gracefully.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "serve/server.h"
#include "util/parse.h"

using namespace dasched;
using namespace dasched::serve;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --socket ADDR   unix:PATH or tcp:PORT (tcp binds 127.0.0.1 only;\n"
      "                  tcp:0 = ephemeral, resolved address printed)\n"
      "                  default: DASCHED_SERVE_SOCKET, then unix:dasched.sock\n"
      "  --tenants N     concurrent-connection cap (default:\n"
      "                  DASCHED_SERVE_TENANTS, then 8)\n"
      "  --timeout-ms N  per-frame read timeout; 0 = wait forever (default:\n"
      "                  DASCHED_SERVE_TIMEOUT_MS, then 30000)\n"
      "  --verbose       log connections/requests to stderr\n"
      "  --help          this text\n",
      argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts = serve_options_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--socket") {
      opts.address = value();
    } else if (arg == "--tenants") {
      const auto v = parse_i64(value());
      if (!v || *v < 1) die_invalid_value("--tenants", argv[i], "an integer >= 1");
      opts.max_tenants = static_cast<int>(*v);
    } else if (arg == "--timeout-ms") {
      const auto v = parse_i64(value());
      if (!v || *v < 0) die_invalid_value("--timeout-ms", argv[i], "an integer >= 0");
      opts.request_timeout_ms = static_cast<int>(*v);
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0], 2);
    }
  }

  // Block SIGINT/SIGTERM in every thread; a dedicated watcher turns them
  // into a graceful request_shutdown() (signal handlers cannot take locks).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  ServeServer server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dasched_serve: %s\n", e.what());
    return 1;
  }
  std::printf("%s\n", server.address().c_str());
  std::fflush(stdout);

  std::thread([&server, set] {
    int sig = 0;
    sigwait(&set, &sig);
    server.request_shutdown();
  }).detach();

  server.wait();
  if (opts.verbose) {
    std::fprintf(stderr,
                 "[dasched_serve] drained: %llu accepted, %llu rejected, "
                 "%llu requests\n",
                 static_cast<unsigned long long>(server.connections_accepted()),
                 static_cast<unsigned long long>(server.connections_rejected()),
                 static_cast<unsigned long long>(server.requests_served()));
  }
  return 0;
}
