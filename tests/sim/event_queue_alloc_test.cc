// Zero-allocation regression test for the classic event engine.
//
// Mirrors tests/storage/alloc_count_test.cc: global operator new/delete are
// replaced with counting versions gated by a flag.  `reserve_events` is
// given a bound on concurrently outstanding events — exactly what the
// driver derives from the topology (driver/experiment.cc
// default_event_reserve) — after which EVERY schedule/run cycle must be
// allocation-free, for both queue kinds: the pooled records, the free list,
// the heap vector, the ladder's bottom ring, node arena, and top tier are
// all pre-sized.  There is no warm-up phase: the reserve itself is the
// warm-up, so a single allocation from the very first event fails here.
//
// The workload deliberately crosses every ladder tier: timer chains (bottom
// ring), a mid-range band (rungs via spill + top conversion), and far-future
// spikes (top tier), plus cancellations to exercise slot recycling.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>

#include "sim/simulator.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* counted_alloc(std::size_t n) {
  note_allocation();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  note_allocation();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n == 0 ? align : n) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replaceable global allocation functions — every variant the runtime may
// pick, so no allocation slips past the counter.
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_allocation();
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_allocation();
  return std::malloc(n == 0 ? 1 : n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dasched {
namespace {

/// Deterministic LCG; <random> engines may allocate nothing, but a plain
/// multiply keeps the measured region trivially allocation-free.
struct Lcg {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
};

void run_engine_workload(QueueKind kind) {
  SCOPED_TRACE(testing::Message() << "queue=" << to_string(kind));
  Simulator sim(kind);
  constexpr std::size_t kReserve = 4'096;
  sim.reserve_events(kReserve);

  Lcg rng;
  std::int64_t fired = 0;
  EventHandle last_handle;
  int cancelled = 0;

  // 64 self-rescheduling chains; each firing re-arms with a mixed horizon
  // (short stride / mid band / far spike) and occasionally schedules a
  // throwaway event that is immediately cancelled.
  std::function<void(int)> chain = [&](int id) {
    ++fired;
    if (fired >= 40'000) return;
    const std::uint64_t r = rng.next();
    const std::int64_t horizon =
        r % 10 < 7 ? 1 + static_cast<std::int64_t>(r % 97)
                   : (r % 10 < 9 ? 1'000 + static_cast<std::int64_t>(r % 9'001)
                                 : 500'000 + static_cast<std::int64_t>(
                                                 r % 1'000'000));
    sim.schedule_after(SimTime{horizon}, [&chain, id] { chain(id); });
    if (r % 16 == 0) {
      last_handle = sim.schedule_after(SimTime{static_cast<std::int64_t>(
                                           1 + r % 50'000)},
                                       [] {});
      last_handle.cancel();
      ++cancelled;
    }
  };
  // Everything from here on is measured — the reserve is the only warm-up
  // (the std::function holding `chain` above is test scaffolding, not
  // engine state, so it sits outside the counted region).
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);

  for (int id = 0; id < 64; ++id) {
    sim.schedule_at(SimTime{id}, [&chain, id] { chain(id); });
  }
  // A dense far-future burst on top of the chains: enough simultaneous
  // entries to push the ladder through spill, top conversion, and rung
  // spawn/collapse — all inside the pre-reserve.
  for (int i = 0; i < 3'000; ++i) {
    const std::uint64_t r = rng.next();
    sim.schedule_at(SimTime{200'000 + static_cast<std::int64_t>(r % 800'000)},
                    [] {});
  }
  sim.run();

  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_GE(fired, 40'000);
  EXPECT_GT(cancelled, 0);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "event engine allocated after reserve_events(" << kReserve << ")";
}

TEST(EventQueueAlloc, LadderEngineIsAllocFreeAfterReserve) {
  run_engine_workload(QueueKind::kLadder);
}

TEST(EventQueueAlloc, HeapEngineIsAllocFreeAfterReserve) {
  run_engine_workload(QueueKind::kHeap);
}

}  // namespace
}  // namespace dasched
