// Unit tests for the tiered LadderQueue (sim/ladder_queue.h, DESIGN.md §15).
//
// The differential suite (tests/sim/queue_differential_test.cc) proves the
// ladder pops the same sequence as the reference heap; these tests pin the
// *mechanics* — which tier an event lands in, when rungs spawn and collapse,
// when the bottom spills to the top — plus the internal invariants via
// validate() after every structural transition.
#include "sim/ladder_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dasched {
namespace {

QueuedEvent ev(std::int64_t time, std::uint64_t seq) {
  return QueuedEvent{SimTime{time}, seq, 0};
}

/// Pops everything, checking strict (time, seq) order and the invariants.
std::vector<QueuedEvent> drain_checked(LadderQueue& q) {
  std::vector<QueuedEvent> out;
  while (!q.empty()) {
    q.validate();
    out.push_back(q.top());
    q.pop();
    if (out.size() >= 2) {
      EXPECT_TRUE(event_before(out[out.size() - 2], out.back()))
          << "pop order violated at index " << out.size() - 1;
    }
  }
  q.validate();
  return out;
}

TEST(LadderQueue, PopsStrictTimeSeqOrder) {
  LadderQueue q;
  std::uint64_t seq = 0;
  for (std::int64_t t : {50, 10, 30, 10, 90, 30, 10}) q.push(ev(t, seq++));
  const std::vector<QueuedEvent> out = drain_checked(q);
  ASSERT_EQ(out.size(), 7u);
  // Ties (three events at t=10, two at t=30) resolve by scheduling order.
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(out[2].seq, 6u);
  EXPECT_EQ(out[3].seq, 2u);
  EXPECT_EQ(out[4].seq, 5u);
}

TEST(LadderQueue, TimerChainStaysInTheBottomRing) {
  // The engine's dominant pattern: each pop schedules the next event a
  // little later.  Everything must live in the bottom tier — no rungs, no
  // top — so the insert is the O(1) tail append.
  LadderQueue q;
  q.push(ev(0, 0));
  std::uint64_t seq = 1;
  for (int i = 0; i < 10'000; ++i) {
    const QueuedEvent cur = q.top();
    q.pop();
    q.push(ev(cur.time.count() + 7, seq++));
    EXPECT_EQ(q.num_rungs(), 0);
    EXPECT_EQ(q.top_size(), 0u);
  }
  q.validate();
}

TEST(LadderQueue, SameTimeFloodIsOneTieGroup) {
  // A tie group may never straddle a tier boundary; a flood of equal times
  // larger than every threshold must still pop in seq order.
  LadderQueue q;
  for (std::uint64_t s = 0; s < 2'000; ++s) q.push(ev(42, s));
  q.validate();
  const std::vector<QueuedEvent> out = drain_checked(q);
  ASSERT_EQ(out.size(), 2'000u);
  for (std::uint64_t s = 0; s < out.size(); ++s) EXPECT_EQ(out[s].seq, s);
}

TEST(LadderQueue, BottomSpillsFarTailToTop) {
  // More near-term events than the bottom wants to hold: the far tail moves
  // to the top tier, keeping the sorted ring small.
  LadderQueue q;
  std::uint64_t seq = 0;
  const auto n = LadderQueue::kBottomSpill + 64;
  for (std::size_t i = 0; i < n; ++i) {
    q.push(ev(static_cast<std::int64_t>(i * 3), seq++));
  }
  q.validate();
  EXPECT_GT(q.top_size(), 0u);
  EXPECT_LE(q.bottom_size(), LadderQueue::kBottomSpill + 1);
  const std::vector<QueuedEvent> out = drain_checked(q);
  EXPECT_EQ(out.size(), n);
}

TEST(LadderQueue, FarFutureSpanSpawnsAndCollapsesRungs) {
  // A wide far-future span lands in the top tier, converts to a rung when
  // the bottom drains, and the rungs collapse again as they empty.
  LadderQueue q;
  std::uint64_t seq = 0;
  q.push(ev(0, seq++));  // pins the bottom bound at 0
  q.pop();               // queue now empty; bound re-arms
  q.push(ev(1, seq++));
  for (int i = 0; i < 4'096; ++i) {
    // 64 events per millisecond bucket over a 64 ms span.
    q.push(ev(10'000 + (i % 64) * 1'000 + (i / 64), seq++));
  }
  q.validate();
  EXPECT_GT(q.top_size(), 0u);

  int max_rungs = 0;
  std::size_t popped = 0;
  SimTime prev = SimTime::min();
  while (!q.empty()) {
    const QueuedEvent e = q.top();
    EXPECT_GE(e.time, prev);
    prev = e.time;
    q.pop();
    ++popped;
    if (q.num_rungs() > max_rungs) max_rungs = q.num_rungs();
    if (popped % 512 == 0) q.validate();
  }
  EXPECT_EQ(popped, 4'097u);
  // The far-future span converted into at least one rung on the way down.
  EXPECT_GE(max_rungs, 1);
  EXPECT_EQ(q.num_rungs(), 0);  // everything collapsed on the way out
}

TEST(LadderQueue, DrainReArmsTheBottomFastPath) {
  LadderQueue q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) q.push(ev(1'000'000 + i, seq++));
  while (!q.empty()) q.pop();
  // After a full drain the bound must re-arm: a nearby event goes straight
  // to the bottom even though it is far below the last popped time.
  q.push(ev(3, seq++));
  EXPECT_EQ(q.num_rungs(), 0);
  EXPECT_EQ(q.top_size(), 0u);
  EXPECT_EQ(q.bottom_size(), 1u);
  EXPECT_EQ(q.top().time, 3);
  q.validate();
}

TEST(LadderQueue, ReserveBoundsArenaAndRings) {
  LadderQueue q;
  q.reserve(8'192);
  const std::size_t arena0 = q.arena_capacity();
  EXPECT_GE(arena0, 8'192u);
  std::uint64_t seq = 0;
  q.push(ev(0, seq++));
  q.pop();
  q.push(ev(1, seq++));
  for (int i = 0; i < 4'096; ++i) {
    q.push(ev(10'000 + (i % 64) * 1'000 + (i / 64), seq++));
  }
  while (!q.empty()) q.pop();
  // Rung traffic stayed within the pre-reserve: the arena never regrew.
  EXPECT_EQ(q.arena_capacity(), arena0);
}

TEST(LadderQueue, InterleavedPushPopAcrossTiersKeepsInvariants) {
  // Pushes that land in every tier while pops drain the front, with
  // validate() sweeping the full structure throughout.
  LadderQueue q;
  std::uint64_t seq = 0;
  std::uint64_t lcg = 1;
  std::int64_t now = 0;
  std::size_t pushed = 0;
  std::size_t popped = 0;
  for (int step = 0; step < 20'000; ++step) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto r = static_cast<std::int64_t>((lcg >> 33) % 1'000);
    if (q.empty() || r < 600) {
      // Mix of near (timer-chain), mid, and far-future horizons.
      const std::int64_t horizon = r < 300 ? 10 : (r < 500 ? 1'000 : 100'000);
      q.push(ev(now + 1 + r % horizon, seq++));
      ++pushed;
    } else {
      const QueuedEvent e = q.top();
      EXPECT_GE(e.time.count(), now);
      now = e.time.count();
      q.pop();
      ++popped;
    }
    if (step % 1'000 == 0) q.validate();
  }
  q.validate();
  EXPECT_EQ(q.size(), pushed - popped);
}

}  // namespace
}  // namespace dasched
