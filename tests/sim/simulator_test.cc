#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace dasched {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeEventsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner_fire = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { inner_fire = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_fire, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++count; });
  sim.run();
  h.cancel();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_executed(), 100);
}

TEST(Simulator, IdleReflectsQueueState) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  sim.schedule_at(5, [] {});
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace dasched
