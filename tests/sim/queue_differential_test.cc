// Differential suite: LadderQueue vs BinaryHeapQueue (sim/ladder_queue.h).
//
// Every event key (time, seq) is unique, so the strict total order has
// exactly one pop sequence — any correct priority queue must produce it.
// These tests drive both implementations through identical randomized
// push/pop mixes and compare every popped entry bit-for-bit.  This is the
// unit-level half of the bit-identity argument; the driver-level half
// (whole experiments under DASCHED_QUEUE=heap vs =ladder) lives in
// tests/driver/queue_kind_differential_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "sim/ladder_queue.h"

namespace dasched {
namespace {

QueuedEvent ev(std::int64_t time, std::uint64_t seq) {
  return QueuedEvent{SimTime{time}, seq, static_cast<std::uint32_t>(seq)};
}

/// Drives both queues through the same operation stream: `push_weight`% of
/// steps push an event drawn by `next_time`, the rest pop (when non-empty)
/// and compare.  Ends by draining both and comparing the tails.
template <typename NextTime>
void run_differential(std::mt19937& rng, int steps, int push_weight,
                      NextTime next_time) {
  LadderQueue ladder;
  BinaryHeapQueue heap;
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  std::uniform_int_distribution<int> coin(0, 99);
  for (int i = 0; i < steps; ++i) {
    if (ladder.empty() || coin(rng) < push_weight) {
      const QueuedEvent e = ev(next_time(now), seq++);
      ladder.push(e);
      heap.push(e);
    } else {
      ASSERT_FALSE(heap.empty());
      const QueuedEvent a = ladder.top();
      const QueuedEvent b = heap.top();
      ASSERT_EQ(a.time.count(), b.time.count()) << "step " << i;
      ASSERT_EQ(a.seq, b.seq) << "step " << i;
      ASSERT_EQ(a.slot, b.slot) << "step " << i;
      now = a.time.count();  // times are monotone within one drain phase
      ladder.pop();
      heap.pop();
    }
  }
  ASSERT_EQ(ladder.size(), heap.size());
  while (!heap.empty()) {
    const QueuedEvent a = ladder.top();
    const QueuedEvent b = heap.top();
    ASSERT_EQ(a.time.count(), b.time.count());
    ASSERT_EQ(a.seq, b.seq);
    ladder.pop();
    heap.pop();
  }
  EXPECT_TRUE(ladder.empty());
  ladder.validate();
}

TEST(QueueDifferential, UniformRandomTimes) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<std::int64_t> dt(0, 1'000'000);
  for (int round = 0; round < 4; ++round) {
    run_differential(rng, 20'000, 60,
                     [&](std::int64_t now) { return now + dt(rng); });
  }
}

TEST(QueueDifferential, TimerChainsWithJitter) {
  // The engine's dominant shape: short strictly-increasing strides, which
  // exercises the bottom ring's tail-append and compaction paths.
  std::mt19937 rng(2);
  std::uniform_int_distribution<std::int64_t> dt(1, 50);
  run_differential(rng, 50'000, 50,
                   [&](std::int64_t now) { return now + dt(rng); });
}

TEST(QueueDifferential, TieHeavyWorkload) {
  // Many events per instant: only the seq tie-break distinguishes them, so
  // any tier boundary through a tie group would show up immediately.
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::int64_t> dt(0, 5);
  run_differential(rng, 50'000, 55,
                   [&](std::int64_t now) { return now + dt(rng); });
}

TEST(QueueDifferential, BimodalNearAndFarFuture) {
  // 80% near events, 20% far-future spikes: drives spill, top conversion,
  // rung spawn/collapse — every structural transition the ladder has.
  std::mt19937 rng(4);
  std::uniform_int_distribution<std::int64_t> near(1, 100);
  std::uniform_int_distribution<std::int64_t> far(100'000, 10'000'000);
  std::uniform_int_distribution<int> mode(0, 4);
  run_differential(rng, 50'000, 65, [&](std::int64_t now) {
    return now + (mode(rng) == 0 ? far(rng) : near(rng));
  });
}

TEST(QueueDifferential, BurstFillThenDrain) {
  // Alternating full fills and full drains at varying scales, so the ladder
  // repeatedly tears down to empty and re-arms its bottom bound.
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::int64_t> dt(0, 1'000'000);
  for (int size : {1, 3, 64, 65, 257, 2'000, 5'000}) {
    LadderQueue ladder;
    BinaryHeapQueue heap;
    std::uint64_t seq = 0;
    for (int i = 0; i < size; ++i) {
      const QueuedEvent e = ev(dt(rng), seq++);
      ladder.push(e);
      heap.push(e);
    }
    ladder.validate();
    for (int i = 0; i < size; ++i) {
      ASSERT_EQ(ladder.top().seq, heap.top().seq) << "size " << size;
      ASSERT_EQ(ladder.top().time.count(), heap.top().time.count());
      ladder.pop();
      heap.pop();
    }
    EXPECT_TRUE(ladder.empty());
  }
}

}  // namespace
}  // namespace dasched
