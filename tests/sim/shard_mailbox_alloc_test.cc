// Zero-allocation regression test for the cross-shard mailbox path.
//
// Mirrors tests/storage/alloc_count_test.cc: global operator new/delete are
// replaced with counting versions gated by a flag.  A warm-up phase of
// ping-pong rounds grows every pool to its high-water mark — the lanes'
// event-record pools and heap vectors, and both parities of every mailbox
// buffer.  The counting flag is then flipped by an in-simulation event, so
// only the steady-state window loop is measured: post() append, barrier
// plan, drain_lane() inject, run_window() dispatch.  Those must perform
// ZERO heap allocations; a new allocation site in the mailbox protocol
// turns into a failure here, not a silent throughput regression.
//
// The engine runs with shards=1: identical code path through post / plan /
// drain (the protocol does not branch on worker count), with no thread
// machinery in the measured loop.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/sharded_sim.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* counted_alloc(std::size_t n) {
  note_allocation();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  note_allocation();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n == 0 ? align : n) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replaceable global allocation functions — every variant the runtime may
// pick, so no allocation slips past the counter.
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_allocation();
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_allocation();
  return std::malloc(n == 0 ? 1 : n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dasched {
namespace {

TEST(ShardMailboxAlloc, SteadyStateCrossShardPathAllocatesNothing) {
  ShardedSimConfig cfg;
  cfg.num_streams = 3;  // client + two node lanes: both mailbox directions
  cfg.shards = 1;
  cfg.lookahead = 10;
  ShardedSimulator sim(cfg);

  constexpr int kWarmupRounds = 50;
  constexpr int kMeasuredEnd = 150;
  constexpr int kTotalRounds = 200;
  int rounds = 0;

  // One round: the client fans a ping out to both nodes, each node echoes,
  // and the second ack starts the next round.  Every round exercises all
  // four mailboxes with the same traffic shape, so the warm-up reaches the
  // steady-state high-water mark of every buffer and pool.
  int pending_acks = 0;
  std::function<void()> start_round = [&] {
    const SimTime t = sim.lane(0).now() + cfg.lookahead;
    pending_acks = 2;
    for (int node = 1; node <= 2; ++node) {
      sim.post(0, node, t, [&, node] {
        sim.post(node, 0, sim.lane(node).now() + cfg.lookahead, [&] {
          if (--pending_acks > 0) return;
          ++rounds;
          if (rounds == kWarmupRounds) {
            g_allocations.store(0, std::memory_order_relaxed);
            g_counting.store(true, std::memory_order_relaxed);
          } else if (rounds == kMeasuredEnd) {
            g_counting.store(false, std::memory_order_relaxed);
          }
          if (rounds < kTotalRounds) start_round();
        });
      });
    }
  };
  sim.lane(0).schedule_at(0, [&] { start_round(); });
  sim.run([&] { return rounds >= kTotalRounds; });

  EXPECT_EQ(rounds, kTotalRounds);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state mailbox path performed heap allocations";
}

}  // namespace
}  // namespace dasched
