// Unit tests for the sharded event engine (DESIGN.md §14).
//
// These exercise the protocol directly — mailbox ordering, lookahead
// windows, deadlock detection, stop stamping, worker-count invariance —
// with tiny hand-built lane programs.  End-to-end bit-identity against the
// serial engine lives in tests/driver/shard_differential_test.cc.
#include "sim/sharded_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dasched {
namespace {

ShardedSimConfig make_cfg(int streams, int shards, SimTime lookahead = 10) {
  ShardedSimConfig cfg;
  cfg.num_streams = streams;
  cfg.shards = shards;
  cfg.lookahead = lookahead;
  return cfg;
}

/// One (time, tag) log per lane.  Each lane's log is only ever touched by
/// the worker that owns the lane, and the run() join publishes it to the
/// test thread, so no extra synchronization is needed.
using LaneLog = std::vector<std::pair<SimTime, int>>;

TEST(ShardedSim, PingPongCrossesLanesAndStops) {
  ShardedSimulator sim(make_cfg(/*streams=*/2, /*shards=*/1));
  LaneLog client_log;
  LaneLog node_log;
  int rounds = 0;
  constexpr int kRounds = 5;

  // Client ping at t -> node echo at t+10 -> client ack at t+20 -> next
  // ping.  Every hop is exactly one lookahead, the tightest legal send.
  std::function<void(SimTime)> ping = [&](SimTime t) {
    sim.post(0, 1, t, [&, t] {
      node_log.emplace_back(sim.lane(1).now(), 0);
      sim.post(1, 0, t + 10, [&] {
        client_log.emplace_back(sim.lane(0).now(), 0);
        if (++rounds < kRounds) ping(sim.lane(0).now() + 10);
      });
    });
  };
  ping(10);
  sim.run([&] { return rounds >= kRounds; });

  ASSERT_EQ(node_log.size(), static_cast<std::size_t>(kRounds));
  ASSERT_EQ(client_log.size(), static_cast<std::size_t>(kRounds));
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(node_log[static_cast<std::size_t>(i)].first, 10 + 20 * i);
    EXPECT_EQ(client_log[static_cast<std::size_t>(i)].first, 20 + 20 * i);
  }
  EXPECT_FALSE(sim.deadlocked());
  EXPECT_EQ(sim.events_executed(), 2 * kRounds);
}

TEST(ShardedSim, MailboxTiesFireInSendOrder) {
  ShardedSimulator sim(make_cfg(2, 1));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.post(0, 1, 50, [&order, i] { order.push_back(i); });
  }
  int fired = 0;
  sim.lane(1).schedule_at(0, [&] { fired = 1; });  // keeps the queue alive
  sim.run([&] { return order.size() == 4; });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, ClientSendsOrderBeforeNodeLocalEventsOnTies) {
  // At equal times the key (time, stream, local_seq) decides: an event sent
  // by the client (stream 0) precedes the receiving node's own events
  // (stream 1+i), regardless of injection order or worker count.
  ShardedSimulator sim(make_cfg(2, 1));
  std::vector<int> order;
  sim.lane(1).schedule_at(40, [&] { order.push_back(1); });
  sim.post(0, 1, 40, [&] { order.push_back(0); });
  sim.run([&] { return order.size() == 2; });
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(ShardedSim, WindowsSkipIdleGaps) {
  // Two events a million ticks apart must take two windows, not 10^5: the
  // planner jumps each window to the global minimum pending time.
  ShardedSimulator sim(make_cfg(2, 1));
  int fired = 0;
  sim.lane(0).schedule_at(5, [&] { ++fired; });
  sim.lane(1).schedule_at(1'000'000, [&] { ++fired; });
  sim.run([&] { return fired == 2; });
  EXPECT_EQ(fired, 2);
  EXPECT_LE(sim.windows_run(), 3);
}

TEST(ShardedSim, DrainedMailRunsInThePlannedWindow) {
  // A first-ever send to an idle node is the global minimum the planner
  // keyed the window on (window_end = mail time + lookahead), so the
  // drained event must run inside that same window — not slip one window
  // because the receiving lane's cached next-event time was stale at the
  // gate.  Node 2 sits on worker 1 at shards=2 (round robin), forcing the
  // mailbox drain path.
  for (int shards : {1, 2}) {
    ShardedSimulator sim(make_cfg(/*streams=*/3, shards));
    SimTime fired_at = 0;
    bool done = false;
    sim.post(0, 2, 10, [&] {
      fired_at = sim.lane(2).now();
      done = true;
    });
    const SimTime end = sim.run([&] { return done; });
    EXPECT_EQ(fired_at, 10) << "shards=" << shards;
    EXPECT_EQ(sim.windows_run(), 1) << "shards=" << shards;
    EXPECT_EQ(end, 20) << "shards=" << shards;
  }
}

TEST(ShardedSim, WindowSequenceIsWorkerCountInvariant) {
  // Tightest-legal ping-pong across a true cross-worker mailbox: every hop
  // lands exactly at the next window's keying minimum, so any stale-cache
  // skip doubles the window count.  The documented invariant is the *exact*
  // window sequence for every worker count, which windows_run() witnesses.
  const auto run_chain = [](int shards) {
    ShardedSimulator sim(make_cfg(/*streams=*/3, shards));
    int rounds = 0;
    constexpr int kRounds = 4;
    std::function<void(SimTime)> ping = [&](SimTime t) {
      sim.post(0, 2, t, [&, t] {
        sim.post(2, 0, t + 10, [&] {
          if (++rounds < kRounds) ping(sim.lane(0).now() + 10);
        });
      });
    };
    ping(10);
    const SimTime end = sim.run([&] { return rounds >= kRounds; });
    return std::pair<SimTime, std::int64_t>(end, sim.windows_run());
  };
  const auto serial = run_chain(1);
  const auto threaded = run_chain(2);
  EXPECT_EQ(serial.first, threaded.first);
  EXPECT_EQ(serial.second, threaded.second);
  EXPECT_EQ(serial.second, 8);  // two windows per round, no slipped drains
}

TEST(ShardedSim, RerunAfterEarlyStopDeliversLeftoverMail) {
  // An early stop returns from the barrier with posted mail still sitting
  // in the pending parity; a second run() on the same instance must
  // re-account that mail from the buffers and deliver it.
  for (int shards : {1, 2}) {
    ShardedSimulator sim(make_cfg(/*streams=*/3, shards));
    bool posted = false;
    bool delivered = false;
    sim.lane(0).schedule_at(5, [&] {
      posted = true;
      sim.post(0, 2, 30, [&] { delivered = true; });
    });
    sim.run([&] { return posted; });
    EXPECT_FALSE(delivered) << "shards=" << shards;
    const SimTime end = sim.run([&] { return delivered; });
    EXPECT_TRUE(delivered) << "shards=" << shards;
    EXPECT_EQ(end, 40) << "shards=" << shards;  // window keyed on t=30
    EXPECT_EQ(sim.lane(2).now(), sim.lane(0).now());
  }
}

TEST(ShardedSim, DrainingWithoutStopIsDeadlock) {
  ShardedSimulator sim(make_cfg(2, 1));
  sim.lane(0).schedule_at(5, [] {});
  sim.run([] { return false; });
  EXPECT_TRUE(sim.deadlocked());
}

TEST(ShardedSim, StopStampsEveryLaneToTheWindowEnd) {
  ShardedSimulator sim(make_cfg(3, 1));
  bool done = false;
  sim.lane(2).schedule_at(25, [&] { done = true; });
  sim.lane(1).schedule_at(3, [] {});
  const SimTime end = sim.run([&] { return done; });
  // All lanes share the final clock, so trailing idle accrual (finalize)
  // is identical whichever lane a disk happens to live on.
  EXPECT_EQ(sim.lane(0).now(), end);
  EXPECT_EQ(sim.lane(1).now(), end);
  EXPECT_EQ(sim.lane(2).now(), end);
  EXPECT_GT(end, 25);
}

TEST(ShardedSim, WorkerExceptionPropagatesToRun) {
  ShardedSimulator sim(make_cfg(2, 2));
  sim.lane(1).schedule_at(5, [] { throw std::runtime_error("lane blew up"); });
  EXPECT_THROW(sim.run([] { return false; }), std::runtime_error);
}

/// Runs the same three-lane scatter/gather program and returns the per-lane
/// logs; the sharded engine promises these are worker-count invariant.
std::vector<LaneLog> run_scatter(int shards) {
  ShardedSimulator sim(make_cfg(3, shards));
  std::vector<LaneLog> logs(3);
  int acks = 0;
  constexpr int kPings = 8;
  for (int i = 0; i < kPings; ++i) {
    const int node = 1 + i % 2;
    sim.post(0, node, 10 + 5 * i, [&, i, node] {
      logs[static_cast<std::size_t>(node)].emplace_back(
          sim.lane(node).now(), i);
      sim.post(node, 0, sim.lane(node).now() + 10, [&, i] {
        logs[0].emplace_back(sim.lane(0).now(), i);
        ++acks;
      });
    });
  }
  sim.run([&] { return acks >= kPings; });
  return logs;
}

TEST(ShardedSim, LaneSequencesAreWorkerCountInvariant) {
  const std::vector<LaneLog> one = run_scatter(1);
  const std::vector<LaneLog> two = run_scatter(2);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t lane = 0; lane < one.size(); ++lane) {
    EXPECT_EQ(one[lane], two[lane]) << "lane " << lane;
  }
  EXPECT_EQ(one[0].size(), 8u);
  EXPECT_EQ(one[1].size(), 4u);
  EXPECT_EQ(one[2].size(), 4u);
}

// --- lane→worker assignment (DESIGN.md §15.3) ------------------------------

/// Flattens an assignment into lane -> worker for easy comparison.
std::vector<int> lane_to_worker(const std::vector<std::vector<int>>& owned,
                                int num_streams) {
  std::vector<int> map(static_cast<std::size_t>(num_streams), -1);
  for (std::size_t w = 0; w < owned.size(); ++w) {
    for (int lane : owned[w]) {
      EXPECT_EQ(map[static_cast<std::size_t>(lane)], -1)
          << "lane " << lane << " assigned twice";
      map[static_cast<std::size_t>(lane)] = static_cast<int>(w);
    }
  }
  for (std::size_t s = 0; s < map.size(); ++s) {
    EXPECT_NE(map[s], -1) << "lane " << s << " unassigned";
  }
  return map;
}

TEST(LaneAssignment, RoundRobinMatchesTheLegacyMap) {
  const auto owned = assign_lanes(5, 2, LaneAssign::kRoundRobin, {});
  ASSERT_EQ(owned.size(), 2u);
  // Lane 0 on worker 0; node lane j on worker (j-1) % shards.
  EXPECT_EQ(owned[0], (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(owned[1], (std::vector<int>{2, 4}));
}

TEST(LaneAssignment, BalancedPutsHeaviestLanesFirst) {
  // Node lane 1 dominates: LPT sends it to the emptiest worker (not worker
  // 0, which already carries the pinned client lane) and routes the light
  // lanes around it.
  const std::vector<double> costs = {1.0, 8.0, 1.0, 1.0, 1.0, 1.0};
  const auto owned = assign_lanes(6, 2, LaneAssign::kBalanced, costs);
  const std::vector<int> map = lane_to_worker(owned, 6);
  EXPECT_EQ(map[0], 0);
  EXPECT_EQ(map[1], 1);
  for (int s = 2; s < 6; ++s) EXPECT_EQ(map[s], 0) << "lane " << s;
}

TEST(LaneAssignment, BalancedUniformCostsSpreadEvenly) {
  for (int shards : {1, 2, 3, 4}) {
    const auto owned = assign_lanes(9, shards, LaneAssign::kBalanced, {});
    ASSERT_EQ(owned.size(), static_cast<std::size_t>(shards));
    const std::vector<int> map = lane_to_worker(owned, 9);
    EXPECT_EQ(map[0], 0);
    std::size_t min_lanes = 9;
    std::size_t max_lanes = 0;
    for (const auto& lanes : owned) {
      min_lanes = std::min(min_lanes, lanes.size());
      max_lanes = std::max(max_lanes, lanes.size());
      // Deterministic per-worker order: ascending stream id.
      EXPECT_TRUE(std::is_sorted(lanes.begin(), lanes.end()));
    }
    EXPECT_LE(max_lanes - min_lanes, 1u) << "shards=" << shards;
  }
}

TEST(LaneAssignment, IsDeterministic) {
  const std::vector<double> costs = {2.0, 3.0, 3.0, 1.0, 5.0, 1.0, 3.0};
  const auto a = assign_lanes(7, 3, LaneAssign::kBalanced, costs);
  const auto b = assign_lanes(7, 3, LaneAssign::kBalanced, costs);
  EXPECT_EQ(a, b);
}

TEST(LaneAssignment, ParseRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(parse_lane_assign("round_robin"), LaneAssign::kRoundRobin);
  EXPECT_EQ(parse_lane_assign("balanced"), LaneAssign::kBalanced);
  EXPECT_FALSE(parse_lane_assign("fastest").has_value());
  EXPECT_FALSE(parse_lane_assign("").has_value());
  EXPECT_STREQ(to_string(LaneAssign::kRoundRobin), "round_robin");
  EXPECT_STREQ(to_string(LaneAssign::kBalanced), "balanced");
}

TEST(ShardedSim, LaneWorkerReflectsTheConfiguredAssignment) {
  ShardedSimConfig cfg = make_cfg(5, 2);
  cfg.lane_assign = LaneAssign::kBalanced;
  cfg.lane_costs = {1.0, 6.0, 1.0, 1.0, 1.0};
  ShardedSimulator sim(cfg);
  EXPECT_EQ(sim.lane_worker(0), 0);
  EXPECT_EQ(sim.lane_worker(1), 1);  // the heavy lane got the empty worker
  const auto owned = assign_lanes(5, 2, LaneAssign::kBalanced, cfg.lane_costs);
  for (std::size_t w = 0; w < owned.size(); ++w) {
    for (int lane : owned[w]) {
      EXPECT_EQ(sim.lane_worker(lane), static_cast<int>(w));
    }
  }
}

TEST(ShardedSim, ScatterResultsAreAssignmentInvariant) {
  // Same program, both placement policies, multiple worker counts: the
  // per-lane logs must be identical — placement is wall-clock only.
  const std::vector<LaneLog> ref = run_scatter(1);
  for (int shards : {1, 2}) {
    ShardedSimConfig cfg = make_cfg(3, shards);
    cfg.lane_assign = LaneAssign::kBalanced;
    cfg.lane_costs = {4.0, 1.0, 2.0};
    ShardedSimulator sim(cfg);
    std::vector<LaneLog> logs(3);
    int acks = 0;
    constexpr int kPings = 8;
    for (int i = 0; i < kPings; ++i) {
      const int node = 1 + i % 2;
      sim.post(0, node, 10 + 5 * i, [&, i, node] {
        logs[static_cast<std::size_t>(node)].emplace_back(
            sim.lane(node).now(), i);
        sim.post(node, 0, sim.lane(node).now() + 10, [&, i] {
          logs[0].emplace_back(sim.lane(0).now(), i);
          ++acks;
        });
      });
    }
    sim.run([&] { return acks >= kPings; });
    for (std::size_t lane = 0; lane < logs.size(); ++lane) {
      EXPECT_EQ(logs[lane], ref[lane])
          << "lane " << lane << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace dasched
