#include "compiler/lower.h"

#include <gtest/gtest.h>

#include "compiler/loop_program.h"

namespace dasched {
namespace {

using AE = AffineExpr;

TEST(Lower, SimpleSlotLoopProducesOneSlotPerIteration) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(9),
                                {make_read(0, AE::var("i") * kib(64).count(), kib(64).count()),
                                 make_compute(AE(1'000))}));
  const CompiledProgram cp = lower(prog, 1);
  ASSERT_EQ(cp.num_processes(), 1);
  EXPECT_EQ(cp.num_slots, 10);
  for (const SlotPlan& s : cp.processes[0].slots) {
    EXPECT_EQ(s.ops.size(), 1u);
    EXPECT_EQ(s.compute, 1'000);
  }
}

TEST(Lower, OffsetsEvaluatePerIteration) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(3),
                                {make_read(0, AE::var("i") * 100, 10)}));
  const CompiledProgram cp = lower(prog, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cp.processes[0].slots[static_cast<std::size_t>(i)].ops[0].offset,
              i * 100);
  }
}

TEST(Lower, ProcessIdIsBound) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(0),
                                {make_read(0, AE::var("p") * 1'000, 10)}));
  const CompiledProgram cp = lower(prog, 3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(cp.processes[static_cast<std::size_t>(p)].slots[0].ops[0].offset,
              p * 1'000);
  }
}

TEST(Lower, ProcessCountIsBound) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(0),
                                {make_read(0, AE::var("P") * 10, 10)}));
  const CompiledProgram cp = lower(prog, 4);
  EXPECT_EQ(cp.processes[0].slots[0].ops[0].offset, 40);
}

TEST(Lower, NestedNonSlotLoopAccumulatesIntoParentSlot) {
  // Outer slot loop, inner plain loop: the inner iterations' compute piles
  // into the outer iteration's slot.
  LoopProgram prog;
  prog.body.push_back(make_loop(
      "i", 0, AE(1),
      {make_loop("j", 0, AE(4), {make_compute(AE(10))}, /*slot_loop=*/false)},
      /*slot_loop=*/true));
  const CompiledProgram cp = lower(prog, 1);
  ASSERT_EQ(cp.num_slots, 2);
  EXPECT_EQ(cp.processes[0].slots[0].compute, 50);
}

TEST(Lower, TriangularBoundsDependOnOuterVariable) {
  LoopProgram prog;
  prog.body.push_back(make_loop(
      "i", 0, AE(3),
      {make_loop("j", 0, AE::var("i"), {make_compute(AE(1))},
                 /*slot_loop=*/true)},
      /*slot_loop=*/false));
  const CompiledProgram cp = lower(prog, 1);
  // 1 + 2 + 3 + 4 inner iterations.
  EXPECT_EQ(cp.num_slots, 10);
}

TEST(Lower, PerProcessBoundsYieldUnevenSlotCountsThatAlign) {
  // Process p runs p+1 iterations; alignment pads everyone to the max.
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE::var("p"),
                                {make_compute(AE(5))}));
  const CompiledProgram cp = lower(prog, 3);
  EXPECT_EQ(cp.num_slots, 3);
  EXPECT_EQ(cp.processes[0].slots.size(), 3u);
  // Padding slots are empty.
  EXPECT_EQ(cp.processes[0].slots[2].compute, 0);
  EXPECT_EQ(cp.processes[2].slots[2].compute, 5);
}

TEST(Lower, EmptySlotIterationsAreDropped) {
  // Slot-loop iterations with neither compute nor I/O do not create slots.
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(4), {}));
  const CompiledProgram cp = lower(prog, 1);
  EXPECT_EQ(cp.num_slots, 0);
}

TEST(Lower, TrailingStatementsFormFinalSlot) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(1), {make_compute(AE(1))}));
  prog.body.push_back(make_write(0, 0, kib(64).count()));
  const CompiledProgram cp = lower(prog, 1);
  EXPECT_EQ(cp.num_slots, 3);
  EXPECT_TRUE(cp.processes[0].slots[2].ops[0].is_write);
}

TEST(Lower, StepGreaterThanOne) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(9), {make_compute(AE(1))},
                                /*slot_loop=*/true, /*step=*/3));
  const CompiledProgram cp = lower(prog, 1);
  EXPECT_EQ(cp.num_slots, 4);  // i = 0, 3, 6, 9
}

TEST(Lower, MaxSlotsGuardThrows) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(10'000), {make_compute(AE(1))}));
  LowerOptions opts;
  opts.max_slots_per_process = 100;
  EXPECT_THROW((void)lower(prog, 1, opts), std::runtime_error);
}

TEST(Coarsen, MergesGroupsOfDSlots) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(9),
                                {make_read(0, AE::var("i") * 10, 10),
                                 make_compute(AE(100))}));
  CompiledProgram cp = lower(prog, 1);
  coarsen(cp, 4);
  ASSERT_EQ(cp.num_slots, 3);  // ceil(10 / 4)
  EXPECT_EQ(cp.processes[0].slots[0].ops.size(), 4u);
  EXPECT_EQ(cp.processes[0].slots[0].compute, 400);
  EXPECT_EQ(cp.processes[0].slots[2].ops.size(), 2u);
}

TEST(Coarsen, GranularityOneIsIdentity) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(4), {make_compute(AE(1))}));
  CompiledProgram cp = lower(prog, 1);
  const Slot before = cp.num_slots;
  coarsen(cp, 1);
  EXPECT_EQ(cp.num_slots, before);
}

TEST(Lower, TotalsHelpers) {
  LoopProgram prog;
  prog.body.push_back(make_loop("i", 0, AE(4),
                                {make_read(0, 0, kib(64).count()),
                                 make_write(1, 0, kib(32).count())}));
  const CompiledProgram cp = lower(prog, 2);
  EXPECT_EQ(cp.total_ops(), 20);
  EXPECT_EQ(cp.total_bytes(/*writes=*/false), 2 * 5 * kib(64).count());
  EXPECT_EQ(cp.total_bytes(/*writes=*/true), 2 * 5 * kib(32).count());
}

}  // namespace
}  // namespace dasched
