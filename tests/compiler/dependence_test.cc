#include "compiler/dependence.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dasched {
namespace {

using AE = AffineExpr;

TEST(RenameVars, AppendsSuffixToEveryVariable) {
  const AE e = 2 * AE::var("i") + 3 * AE::var("j") + 7;
  const AE r = rename_vars(e, "#w");
  EXPECT_EQ(r.coefficient("i#w"), 2);
  EXPECT_EQ(r.coefficient("j#w"), 3);
  EXPECT_EQ(r.coefficient("i"), 0);
  EXPECT_EQ(r.constant(), 7);
}

TEST(GcdTest, DivisibilityDecidesSolvability) {
  const AE h = 4 * AE::var("i") + 6 * AE::var("j");  // gcd 2
  EXPECT_TRUE(gcd_admits_solution(h, 8));
  EXPECT_TRUE(gcd_admits_solution(h, -2));
  EXPECT_FALSE(gcd_admits_solution(h, 3));
}

TEST(GcdTest, ConstantExpression) {
  EXPECT_TRUE(gcd_admits_solution(AE{}, 0));
  EXPECT_FALSE(gcd_admits_solution(AE{}, 1));
}

TEST(ValueRange, RectangularBounds) {
  const AE e = 3 * AE::var("i") - 2 * AE::var("j") + 10;
  const std::vector<VarBound> bounds{{"i", 0, 4}, {"j", 1, 3}};
  const ValueRange r = value_range(e, bounds);
  EXPECT_EQ(r.min, 0 - 6 + 10);   // i=0, j=3
  EXPECT_EQ(r.max, 12 - 2 + 10);  // i=4, j=1
}

TEST(ValueRange, UnboundVariablesPinnedAtZero) {
  const AE e = 5 * AE::var("k") + 1;
  const ValueRange r = value_range(e, {});
  EXPECT_EQ(r.min, 1);
  EXPECT_EQ(r.max, 1);
}

TEST(MayAlias, DisjointConstantRanges) {
  EXPECT_FALSE(may_alias(AE(0), 100, {}, AE(100), 100, {}));
  EXPECT_TRUE(may_alias(AE(0), 101, {}, AE(100), 100, {}));
  EXPECT_TRUE(may_alias(AE(50), 10, {}, AE(55), 1, {}));
}

TEST(MayAlias, BanerjeeSeparatesDisjointBands) {
  // Write covers [0, 100*i) for i in 0..9 => up to 1000; read starts at 2000.
  const std::vector<VarBound> wb{{"i", 0, 9}};
  const std::vector<VarBound> rb{{"j", 0, 9}};
  EXPECT_FALSE(may_alias(100 * AE::var("i"), 100, wb,
                         AE(2'000) + 100 * AE::var("j"), 100, rb));
  EXPECT_TRUE(may_alias(100 * AE::var("i"), 100, wb,
                        AE(900) + 100 * AE::var("j"), 100, rb));
}

TEST(MayAlias, GcdSeparatesInterleavedLattices) {
  // Writes at offsets 0, 1000, 2000... of size 100; reads at 500, 1500...
  // of size 100: same stride, offset by 500 — never overlapping.
  const std::vector<VarBound> b{{"i", 0, 99}};
  EXPECT_FALSE(may_alias(1'000 * AE::var("i"), 100, b,
                         AE(500) + 1'000 * AE::var("i"), 100, b));
  // Offset 950: windows [950+1000k, 1050+1000k) overlap [1000k, 1000k+100).
  EXPECT_TRUE(may_alias(1'000 * AE::var("i"), 100, b,
                        AE(950) + 1'000 * AE::var("i"), 100, b));
}

TEST(MayAlias, IsConservativeNeverFalseNegative) {
  // Randomized property: whenever a brute-force overlap exists, may_alias
  // must return true.
  Rng rng(2025);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int64_t cw = rng.next_int(-5, 5) * 10;
    const std::int64_t cr = rng.next_int(-5, 5) * 10;
    const std::int64_t kw = rng.next_int(0, 500);
    const std::int64_t kr = rng.next_int(0, 500);
    const Bytes sw = rng.next_int(1, 60);
    const Bytes sr = rng.next_int(1, 60);
    const std::vector<VarBound> wb{{"i", 0, 7}};
    const std::vector<VarBound> rb{{"j", 0, 7}};
    const AE f = cw * AE::var("i") + kw;
    const AE g = cr * AE::var("j") + kr;

    bool really_overlaps = false;
    for (std::int64_t i = 0; i <= 7 && !really_overlaps; ++i) {
      for (std::int64_t j = 0; j <= 7; ++j) {
        const std::int64_t fo = cw * i + kw;
        const std::int64_t go = cr * j + kr;
        if (fo < go + sr && go < fo + sw) {
          really_overlaps = true;
          break;
        }
      }
    }
    if (really_overlaps) {
      EXPECT_TRUE(may_alias(f, sw, wb, g, sr, rb))
          << "false negative at trial " << trial;
    }
  }
}

TEST(ScreenDependences, SeparatesDistinctFiles) {
  LoopProgram prog;
  prog.body.push_back(make_loop(
      "i", 0, AE(9),
      {make_write(0, AE::var("i") * 100, 100),
       make_read(1, AE::var("i") * 100, 100)}));
  const DependenceSummary s = screen_dependences(prog, 2);
  EXPECT_GT(s.pairs, 0);
  EXPECT_EQ(s.proven_independent, s.pairs);
  EXPECT_DOUBLE_EQ(s.pruned_fraction(), 1.0);
}

TEST(ScreenDependences, DetectsTrueDependence) {
  LoopProgram prog;
  prog.body.push_back(make_loop(
      "i", 0, AE(9),
      {make_write(0, AE::var("i") * 100, 100),
       make_read(0, AE::var("i") * 100, 100)}));
  const DependenceSummary s = screen_dependences(prog, 2);
  EXPECT_LT(s.proven_independent, s.pairs);
}

TEST(ScreenDependences, ProcessPartitionedAccessesAreIndependent) {
  // Each process owns a disjoint band; writes of process a never alias reads
  // of process b != a... but the screen is conservative over samples that
  // include a == b, so only the fully partitioned-by-file case proves out.
  LoopProgram prog;
  prog.body.push_back(make_loop(
      "i", 0, AE(9),
      {make_write(0, AE::var("p") * 10'000 + AE::var("i") * 100, 100),
       make_read(1, AE::var("p") * 10'000 + AE::var("i") * 100, 100)}));
  const DependenceSummary s = screen_dependences(prog, 4);
  EXPECT_DOUBLE_EQ(s.pruned_fraction(), 1.0);
}

TEST(ScreenDependences, EmptyProgram) {
  const DependenceSummary s = screen_dependences(LoopProgram{}, 4);
  EXPECT_EQ(s.pairs, 0);
  EXPECT_DOUBLE_EQ(s.pruned_fraction(), 0.0);
}

}  // namespace
}  // namespace dasched
